// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment at a
// reduced slot length (60 s instead of the paper's 600 s — the dynamics
// are identical, 10× faster) and reports the headline quantities of that
// table/figure as custom metrics, so `go test -bench . -benchmem` prints
// the reproduction next to the timing. `cmd/benchmark` runs the same
// experiments at full scale with rendered tables.
package dragster

import (
	"math"
	"testing"

	"dragster/internal/experiment"
	"dragster/internal/gp"
	"dragster/internal/osp"
	"dragster/internal/stats"
	"dragster/internal/ucb"
	"dragster/internal/workload"
)

const benchSlotSeconds = 60

// BenchmarkFig4NoBudget — Fig. 4(a–c): WordCount search trajectories
// without a budget. Reports convergence minutes per policy (scaled to the
// paper's 10-minute slots).
func BenchmarkFig4NoBudget(b *testing.B) {
	var r *experiment.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig4(0, 20, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	scale := 600.0 / benchSlotSeconds
	b.ReportMetric(r.ConvergenceMinutes["dhalion"]*scale, "dhalion-conv-min")
	b.ReportMetric(r.ConvergenceMinutes["dragster-saddle"]*scale, "saddle-conv-min")
	b.ReportMetric(r.ConvergenceMinutes["dragster-ogd"]*scale, "ogd-conv-min")
}

// BenchmarkFig4Budget — Fig. 4(d–f): the tight-budget WordCount run.
// Reports the final-throughput gap Dragster achieves over Dhalion (the
// paper's 64.7% figure).
func BenchmarkFig4Budget(b *testing.B) {
	var r *experiment.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig4(13, 20, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	gain := 100 * (r.FinalThroughput["dragster-saddle"]/r.FinalThroughput["dhalion"] - 1)
	b.ReportMetric(gain, "%gain-vs-dhalion")
	b.ReportMetric(r.FinalThroughput["dragster-saddle"]/1000, "saddle-ktuples/s")
	b.ReportMetric(r.FinalThroughput["dhalion"]/1000, "dhalion-ktuples/s")
}

// BenchmarkFig5Convergence — Fig. 5: convergence time across the workload
// suite. Reports the mean Dragster-saddle speed-up over Dhalion across
// the workloads where both converge.
func BenchmarkFig5Convergence(b *testing.B) {
	var rows []experiment.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Fig5(40, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum, n float64
	for _, row := range rows {
		if s, ok := row.SpeedupVsDhalion["dragster-saddle"]; ok && s > 0 {
			sum += s
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/n, "mean-saddle-speedup-x")
	}
	b.ReportMetric(n, "workloads-compared")
}

// BenchmarkFig6Tracking — Fig. 6: WordCount under recurring load changes.
// Reports the elastic gain over a static configuration (the paper's
// "5X–6X improvement despite the 5% checkpoint cost").
func BenchmarkFig6Tracking(b *testing.B) {
	var r *experiment.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig6(60, 12, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	var saddleMean float64
	for _, v := range r.Throughput["dragster-saddle"] {
		saddleMean += v
	}
	saddleMean /= float64(len(r.Throughput["dragster-saddle"]))
	b.ReportMetric(saddleMean/r.StaticMeanThroughput, "elastic-gain-x")
}

// BenchmarkTable2 — Table 2: per-phase goodput and cost under recurring
// load changes. Reports Dragster's low-phase cost savings versus Dhalion
// (paper: 14.6–15.6%) and the tuple-processing gain on the first high
// phase (paper: 20.0–25.8%).
func BenchmarkTable2(b *testing.B) {
	var r *experiment.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig6(60, 12, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	var dh, sd, n float64
	for pi := range r.Phases["dhalion"] {
		if pi%2 == 1 { // low phases
			dh += r.Phases["dhalion"][pi].CostPerBillion
			sd += r.Phases["dragster-saddle"][pi].CostPerBillion
			n++
		}
	}
	if n > 0 && dh > 0 {
		b.ReportMetric(100*(1-sd/dh), "%low-phase-cost-savings")
	}
	gain := 100 * (r.Phases["dragster-saddle"][0].Processed/r.Phases["dhalion"][0].Processed - 1)
	b.ReportMetric(gain, "%goodput-gain-phase0")
}

// BenchmarkFig7Yahoo — Fig. 7: the Yahoo benchmark with a mid-run load
// step. Reports the convergence speed-up after the step.
func BenchmarkFig7Yahoo(b *testing.B) {
	var r *experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig7(60, 30, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	scale := 600.0 / benchSlotSeconds
	dh := r.Phases["dhalion"][1].ConvergenceMinutes2()
	sd := r.Phases["dragster-saddle"][1].ConvergenceMinutes2()
	b.ReportMetric(dh*scale, "dhalion-restep-min")
	b.ReportMetric(sd*scale, "saddle-restep-min")
	if dh > 0 && sd > 0 {
		b.ReportMetric(dh/sd, "restep-speedup-x")
	}
}

// BenchmarkTable3 — Table 3: Yahoo first-phase processing rate and cost.
// Reports the relative goodput gain and cost savings of Dragster-saddle
// over Dhalion (paper: +11.2–14.9% tuples, 4.2% cost savings).
func BenchmarkTable3(b *testing.B) {
	var r *experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig7(60, 30, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	dh := r.Phases["dhalion"][0]
	sd := r.Phases["dragster-saddle"][0]
	b.ReportMetric(100*(sd.MeanThroughput/dh.MeanThroughput-1), "%proc-rate-gain")
	if dh.CostPerBillion > 0 && !math.IsInf(dh.CostPerBillion, 0) {
		b.ReportMetric(100*(1-sd.CostPerBillion/dh.CostPerBillion), "%cost-savings")
	}
}

// BenchmarkRegretSublinear — Theorem 1 validation: dynamic regret and fit
// growth over a 120-slot run. Reports the sub-linearity ratio (average
// regret late/early; ≪1 means sub-linear) and the bound slack.
func BenchmarkRegretSublinear(b *testing.B) {
	spec, err := workload.WordCount()
	if err != nil {
		b.Fatal(err)
	}
	var r *experiment.RegretResult
	for i := 0; i < b.N; i++ {
		r, err = experiment.RegretRun(spec, osp.SaddlePoint, 120, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SublinearityRegret, "sublinearity-ratio")
	if r.RegretBound > 0 {
		b.ReportMetric(r.Regret/r.RegretBound, "regret/bound")
	}
	if r.FitBound > 0 {
		b.ReportMetric(r.PositiveFit/r.FitBound, "fit/bound")
	}
}

// BenchmarkTheorem2LearnedH — Theorem 2 validation: Dragster whose
// controller only has throughput functions learned online from 2×-wrong
// priors versus the exact-h controller. Reports the regret ratio (Theorem
// 2 predicts the same order) and the selectivity estimation error.
func BenchmarkTheorem2LearnedH(b *testing.B) {
	var r *experiment.Theorem2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Theorem2Run(0.5, 25, benchSlotSeconds, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.ExactRegret > 0 {
		b.ReportMetric(r.LearnedRegret/r.ExactRegret, "regret-ratio-learned/exact")
	}
	b.ReportMetric(math.Abs(r.LearnedK-r.TrueK), "selectivity-error")
}

// BenchmarkLatencyBound — the bounded-buffer/low-latency claim: mean
// Little's-law end-to-end latency during the WordCount ramp under each
// policy.
func BenchmarkLatencyBound(b *testing.B) {
	spec, err := workload.WordCount()
	if err != nil {
		b.Fatal(err)
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		b.Fatal(err)
	}
	var dh, sd float64
	for i := 0; i < b.N; i++ {
		run := func(f experiment.PolicyFactory) float64 {
			res, err := experiment.Run(experiment.Scenario{
				Spec: spec, Rates: rates, Slots: 20, SlotSeconds: benchSlotSeconds, Seed: int64(i + 1),
			}, f)
			if err != nil {
				b.Fatal(err)
			}
			return experiment.MeanLatency(res)
		}
		dh = run(experiment.DhalionPolicy())
		sd = run(experiment.DragsterSaddle())
	}
	b.ReportMetric(dh, "dhalion-latency-s")
	b.ReportMetric(sd, "saddle-latency-s")
}

// BenchmarkAblationAcquisition — design-choice ablation (Remark 1): the
// extended target-tracking acquisition versus conventional GP-UCB on a
// down-scaling scenario. Reports the cost premium conventional UCB pays.
func BenchmarkAblationAcquisition(b *testing.B) {
	spec, err := workload.WordCount()
	if err != nil {
		b.Fatal(err)
	}
	cyc, err := workload.Cycle(10, spec.HighRates, spec.LowRates)
	if err != nil {
		b.Fatal(err)
	}
	var extCost, convCost, thompCost float64
	for i := 0; i < b.N; i++ {
		run := func(f experiment.PolicyFactory) float64 {
			res, err := experiment.Run(experiment.Scenario{
				Spec: spec, Rates: cyc, Slots: 30, SlotSeconds: benchSlotSeconds, Seed: int64(i + 1),
			}, f)
			if err != nil {
				b.Fatal(err)
			}
			return experiment.CostPerBillion(res)
		}
		extCost = run(experiment.DragsterSaddle())
		convCost = run(experiment.DragsterConventionalUCB())
		thompCost = run(experiment.DragsterThompson())
	}
	if extCost > 0 {
		b.ReportMetric(100*(convCost/extCost-1), "%conventional-cost-premium")
		b.ReportMetric(100*(thompCost/extCost-1), "%thompson-cost-premium")
	}
}

// BenchmarkAblationVerticalScaling — extension ablation: the 1-D task
// grid versus the full 2-D (tasks × per-pod CPU) configuration vector of
// the paper's model, on the resource-aware WordCount at the low rate.
// Reports cost per billion tuples under each space.
func BenchmarkAblationVerticalScaling(b *testing.B) {
	spec, err := workload.WordCount2D()
	if err != nil {
		b.Fatal(err)
	}
	rates, err := workload.Constant(spec.LowRates)
	if err != nil {
		b.Fatal(err)
	}
	var c1, c2 float64
	for i := 0; i < b.N; i++ {
		run := func(vertical bool) float64 {
			res, err := experiment.Run(experiment.Scenario{
				Spec: spec, Rates: rates, Slots: 30, SlotSeconds: benchSlotSeconds,
				Seed: int64(i + 1), VerticalScaling: vertical,
			}, experiment.DragsterSaddle())
			if err != nil {
				b.Fatal(err)
			}
			return experiment.CostPerBillion(res)
		}
		c1 = run(false)
		c2 = run(true)
	}
	b.ReportMetric(c1, "tasks-only-$/1e9")
	b.ReportMetric(c2, "tasks+cpu-$/1e9")
}

// BenchmarkAblationKernel — design-choice ablation: SE versus Matérn-5/2
// kernel for learning a concave capacity curve from noisy Eq. 8 samples.
// Reports each kernel's mean absolute prediction error after 20 samples.
func BenchmarkAblationKernel(b *testing.B) {
	truth := func(n float64) float64 { return 16000 * math.Pow(n, 0.85) }
	cands := make([][]float64, 10)
	for n := 1; n <= 10; n++ {
		cands[n-1] = []float64{float64(n)}
	}
	evalKernel := func(k gp.Kernel, seed int64) float64 {
		rng := stats.NewRNG(seed)
		s, err := ucb.NewSearcher(ucb.Config{Kernel: k, NoiseVar: 1e6, Candidates: cands})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			n := 1 + float64(rng.Intn(10))
			if err := s.Observe([]float64{n}, truth(n)+rng.Normal(0, 1000)); err != nil {
				b.Fatal(err)
			}
		}
		var mae float64
		for n := 1; n <= 10; n++ {
			mu, _, err := s.PosteriorAt(n - 1)
			if err != nil {
				b.Fatal(err)
			}
			mae += math.Abs(mu - truth(float64(n)))
		}
		return mae / 10
	}
	se, err := gp.NewSquaredExponential(2.25, 2.5e9)
	if err != nil {
		b.Fatal(err)
	}
	mat, err := gp.NewMatern52(2.25, 2.5e9)
	if err != nil {
		b.Fatal(err)
	}
	var seMAE, matMAE float64
	for i := 0; i < b.N; i++ {
		seMAE = evalKernel(se, int64(i+1))
		matMAE = evalKernel(mat, int64(i+1))
	}
	b.ReportMetric(seMAE, "se-mae-tuples/s")
	b.ReportMetric(matMAE, "matern-mae-tuples/s")
}

// BenchmarkForecastUnderDrift — extension: Holt load forecasting versus
// the paper's one-slot-lagged targets, under sinusoidal offered-load
// drift (the "gradual drifts" of §1). Reports processed tuples for each.
func BenchmarkForecastUnderDrift(b *testing.B) {
	spec, err := workload.WordCount()
	if err != nil {
		b.Fatal(err)
	}
	drift, err := workload.Sinusoid([]float64{30000}, []float64{20000}, 10)
	if err != nil {
		b.Fatal(err)
	}
	var lagged, forecast float64
	for i := 0; i < b.N; i++ {
		run := func(alpha float64) float64 {
			res, err := experiment.Run(experiment.Scenario{
				Spec: spec, Rates: drift, Slots: 48, SlotSeconds: benchSlotSeconds,
				Seed: int64(i + 1), ForecastAlpha: alpha,
			}, experiment.DragsterSaddle())
			if err != nil {
				b.Fatal(err)
			}
			return experiment.TotalProcessed(res)
		}
		lagged = run(0)
		forecast = run(0.6)
	}
	if lagged > 0 {
		b.ReportMetric(100*(forecast/lagged-1), "%goodput-gain-forecast")
	}
}

// BenchmarkStormSubstrate — Dragster on the Storm substrate (§3.2:
// rebalance instead of savepoints). Reports the goodput advantage of the
// cheaper 10 s reconfiguration over Flink's 30 s savepoint during the
// search phase.
func BenchmarkStormSubstrate(b *testing.B) {
	spec, err := workload.WordCount()
	if err != nil {
		b.Fatal(err)
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		b.Fatal(err)
	}
	var flinkT, stormT float64
	for i := 0; i < b.N; i++ {
		run := func(engine string) float64 {
			res, err := experiment.Run(experiment.Scenario{
				Spec: spec, Rates: rates, Slots: 12, SlotSeconds: benchSlotSeconds,
				Seed: int64(i + 1), StreamEngine: engine,
			}, experiment.DragsterSaddle())
			if err != nil {
				b.Fatal(err)
			}
			return experiment.TotalProcessed(res)
		}
		flinkT = run("flink")
		stormT = run("storm")
	}
	if flinkT > 0 {
		b.ReportMetric(100*(stormT/flinkT-1), "%goodput-gain-vs-flink")
	}
}

// BenchmarkControllerDecide — the per-slot cost of one full Algorithm 2
// pass (dual update, saddle solve, GP refits, acquisition) on the
// six-operator Yahoo application, the heaviest case in the suite.
func BenchmarkControllerDecide(b *testing.B) {
	spec, err := workload.Yahoo()
	if err != nil {
		b.Fatal(err)
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		b.Fatal(err)
	}
	// One real run to warm the GPs, then time Decide in isolation via the
	// harness (Run includes simulation; report per-slot wall time).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(experiment.Scenario{
			Spec: spec, Rates: rates, Slots: 10, SlotSeconds: 30, Seed: int64(i + 1),
		}, experiment.DragsterSaddle()); err != nil {
			b.Fatal(err)
		}
	}
}
