// Command benchsnapshot parses `go test -bench -benchmem` output from
// stdin and writes a machine-diffable JSON snapshot of ns/op, B/op and
// allocs/op per benchmark. `make bench-snapshot` pipes the GP/linalg/UCB
// micro-benchmarks through it into BENCH_gp.json and `make bench-e2e`
// pipes the end-to-end harness benchmarks into BENCH_e2e.json, so
// successive perf PRs can diff the trajectory instead of eyeballing
// terminal output.
//
// With -gate, the tool compares stdin against a committed snapshot
// instead of writing one: any benchmark whose ns/op exceeds the
// snapshot's by more than the tolerance factor — or that the snapshot
// lists but stdin lacks — fails the run with exit status 1. CI uses this
// as the perf-regression tripwire.
//
// With -flat, the tool reads no stdin at all: it checks scaling pairs
// *within* the committed snapshot. Each repeated -pair small=large flag
// names two benchmarks that differ only in problem scale (e.g. 1k vs 10k
// warm observations at a fixed observation budget); the large one must
// stay within the tolerance factor of the small one's ns/op. This is how
// CI proves the budgeted GP's per-round cost is flat in the horizon.
//
// Entries are emitted sorted by benchmark name (CPU-count suffixes like
// "-8" stripped) so the file is deterministic for a given machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkSelect200Obs-8   1522   791694 ns/op   10 B/op   1 allocs/op
//	BenchmarkRunRoundsPerSec  577    2145101 ns/op  1594 rounds/sec  12 B/op  3 allocs/op
//
// The -benchmem columns are optional so plain -bench output still
// parses, and custom b.ReportMetric columns may sit between ns/op and
// B/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the BENCH_gp.json / BENCH_e2e.json document.
type Snapshot struct {
	GeneratedBy string  `json:"generated_by"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// parseEntries reads `go test -bench` output and returns the benchmark
// lines sorted by name.
func parseEntries(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchsnapshot: iterations %q: %w", m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchsnapshot: ns/op %q: %w", m[3], err)
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			if e.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("benchsnapshot: B/op %q: %w", m[4], err)
			}
			if e.AllocsPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
				return nil, fmt.Errorf("benchsnapshot: allocs/op %q: %w", m[5], err)
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchsnapshot: reading input: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("benchsnapshot: no benchmark lines found on stdin")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

func run(out, label string) error {
	entries, err := parseEntries(os.Stdin)
	if err != nil {
		return err
	}
	doc := Snapshot{GeneratedBy: label, Benchmarks: entries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("benchsnapshot: marshal: %w", err)
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fmt.Errorf("benchsnapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchsnapshot: wrote %d benchmarks to %s\n", len(entries), out)
	return nil
}

// gate compares stdin against the committed snapshot at gatePath: every
// snapshot benchmark must appear on stdin with ns/op ≤ tolerance × the
// snapshot value. Stdin benchmarks absent from the snapshot pass (new
// benchmarks gate only once committed), and B/op / allocs/op are
// informational — wall time is the contract.
func gate(gatePath string, tolerance float64) error {
	if tolerance < 1 {
		return fmt.Errorf("benchsnapshot: -tolerance %g < 1 would reject unchanged results", tolerance)
	}
	data, err := os.ReadFile(gatePath)
	if err != nil {
		return fmt.Errorf("benchsnapshot: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchsnapshot: parsing %s: %w", gatePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchsnapshot: %s has no benchmarks", gatePath)
	}
	entries, err := parseEntries(os.Stdin)
	if err != nil {
		return err
	}
	got := make(map[string]Entry, len(entries))
	for _, e := range entries {
		got[e.Name] = e
	}
	failures := 0
	for _, want := range base.Benchmarks {
		cur, ok := got[want.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: in %s but missing from the bench run\n", want.Name, gatePath)
			failures++
			continue
		}
		ratio := cur.NsPerOp / want.NsPerOp
		status := "ok  "
		if cur.NsPerOp > want.NsPerOp*tolerance {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(os.Stderr, "%s %s: %.0f ns/op vs snapshot %.0f (%.2fx, limit %.2fx)\n",
			status, want.Name, cur.NsPerOp, want.NsPerOp, ratio, tolerance)
	}
	if failures > 0 {
		return fmt.Errorf("benchsnapshot: %d benchmark(s) regressed past %.2fx of %s", failures, tolerance, gatePath)
	}
	fmt.Fprintf(os.Stderr, "benchsnapshot: %d benchmarks within %.2fx of %s\n", len(base.Benchmarks), tolerance, gatePath)
	return nil
}

// pairList collects repeated -pair small=large flags.
type pairList [][2]string

func (p *pairList) String() string { return fmt.Sprint(*p) }

func (p *pairList) Set(v string) error {
	i := strings.IndexByte(v, '=')
	if i <= 0 || i == len(v)-1 {
		return fmt.Errorf("want small=large, got %q", v)
	}
	*p = append(*p, [2]string{v[:i], v[i+1:]})
	return nil
}

// flat checks scaling pairs inside the committed snapshot: for each
// small=large pair, large's ns/op must be ≤ tolerance × small's. Unlike
// -gate this reads no fresh bench run — it pins a *structural* property
// of the recorded numbers, so regenerating the snapshot with a cost that
// grew in the horizon fails CI even though every individual benchmark
// merely "changed".
func flat(flatPath string, pairs pairList, tolerance float64) error {
	if len(pairs) == 0 {
		return fmt.Errorf("benchsnapshot: -flat needs at least one -pair small=large")
	}
	if tolerance < 1 {
		return fmt.Errorf("benchsnapshot: -tolerance %g < 1 would reject identical results", tolerance)
	}
	data, err := os.ReadFile(flatPath)
	if err != nil {
		return fmt.Errorf("benchsnapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("benchsnapshot: parsing %s: %w", flatPath, err)
	}
	byName := make(map[string]Entry, len(snap.Benchmarks))
	for _, e := range snap.Benchmarks {
		byName[e.Name] = e
	}
	failures := 0
	for _, p := range pairs {
		small, okS := byName[p[0]]
		large, okL := byName[p[1]]
		if !okS || !okL {
			fmt.Fprintf(os.Stderr, "FAIL %s=%s: missing from %s\n", p[0], p[1], flatPath)
			failures++
			continue
		}
		ratio := large.NsPerOp / small.NsPerOp
		status := "ok  "
		if large.NsPerOp > small.NsPerOp*tolerance {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(os.Stderr, "%s %s → %s: %.0f vs %.0f ns/op (%.2fx, limit %.2fx)\n",
			status, p[0], p[1], small.NsPerOp, large.NsPerOp, ratio, tolerance)
	}
	if failures > 0 {
		return fmt.Errorf("benchsnapshot: %d pair(s) in %s scale past %.2fx — per-op cost is not flat", failures, flatPath, tolerance)
	}
	fmt.Fprintf(os.Stderr, "benchsnapshot: %d pair(s) flat within %.2fx in %s\n", len(pairs), tolerance, flatPath)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_gp.json", "output path (- for stdout)")
	label := flag.String("label", "make bench-snapshot", "generated_by stamp written into the snapshot")
	gatePath := flag.String("gate", "", "compare stdin against this snapshot instead of writing one; exit 1 on regression")
	flatPath := flag.String("flat", "", "check -pair scaling pairs inside this snapshot (no stdin); exit 1 if any pair is not flat")
	tolerance := flag.Float64("tolerance", 1.2, "with -gate or -flat, maximum allowed ns/op ratio")
	var pairs pairList
	flag.Var(&pairs, "pair", "with -flat, a small=large benchmark pair whose ns/op must match within the tolerance (repeatable)")
	flag.Parse()
	var err error
	switch {
	case *flatPath != "":
		err = flat(*flatPath, pairs, *tolerance)
	case *gatePath != "":
		err = gate(*gatePath, *tolerance)
	default:
		err = run(*out, *label)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
