// Command benchsnapshot parses `go test -bench -benchmem` output from
// stdin and writes a machine-diffable JSON snapshot of ns/op, B/op and
// allocs/op per benchmark. `make bench-snapshot` pipes the GP/linalg/UCB
// micro-benchmarks through it into BENCH_gp.json so successive perf PRs
// can diff the trajectory instead of eyeballing terminal output.
//
// Entries are emitted sorted by benchmark name (CPU-count suffixes like
// "-8" stripped) so the file is deterministic for a given machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g.
//
//	BenchmarkSelect200Obs-8   1522   791694 ns/op   10 B/op   1 allocs/op
//
// The -benchmem columns are optional so plain -bench output still parses.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the BENCH_gp.json document.
type Snapshot struct {
	GeneratedBy string  `json:"generated_by"`
	Benchmarks  []Entry `json:"benchmarks"`
}

func run(out string) error {
	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("benchsnapshot: iterations %q: %w", m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("benchsnapshot: ns/op %q: %w", m[3], err)
		}
		e := Entry{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			if e.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return fmt.Errorf("benchsnapshot: B/op %q: %w", m[4], err)
			}
			if e.AllocsPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
				return fmt.Errorf("benchsnapshot: allocs/op %q: %w", m[5], err)
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("benchsnapshot: reading stdin: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("benchsnapshot: no benchmark lines found on stdin")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	doc := Snapshot{GeneratedBy: "make bench-snapshot", Benchmarks: entries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("benchsnapshot: marshal: %w", err)
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fmt.Errorf("benchsnapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "benchsnapshot: wrote %d benchmarks to %s\n", len(entries), out)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_gp.json", "output path (- for stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
