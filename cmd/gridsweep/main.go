// Command gridsweep evaluates the ground-truth throughput landscape of a
// workload: the full task grid for ≤2-operator applications (the Fig. 4
// heatmap data) or the greedy/budgeted optimum plus per-operator capacity
// curves otherwise.
//
// Usage:
//
//	gridsweep -workload wordcount -rate high
//	gridsweep -workload yahoo -rate low -budget 30
package main

import (
	"flag"
	"fmt"
	"os"

	"dragster/internal/experiment"
	"dragster/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "wordcount", "workload name")
		rate   = flag.String("rate", "high", "offered load: high|low")
		budget = flag.Int("budget", 0, "task budget (0 = unbounded)")
	)
	flag.Parse()
	if err := run(*wl, *rate, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(1)
	}
}

func run(wl, rate string, budget int) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	rates := spec.HighRates
	if rate == "low" {
		rates = spec.LowRates
	} else if rate != "high" {
		return fmt.Errorf("unknown rate %q", rate)
	}

	fmt.Printf("workload %s at %s rate %v\n\n", spec.Name, rate, rates)

	fmt.Println("per-operator ground-truth capacity curves (tuples/s):")
	fmt.Printf("%-14s", "tasks:")
	for n := 1; n <= spec.MaxTasks; n++ {
		fmt.Printf(" %8d", n)
	}
	fmt.Println()
	for i, m := range spec.Models {
		fmt.Printf("%-14s", spec.Graph.OperatorName(i))
		for n := 1; n <= spec.MaxTasks; n++ {
			fmt.Printf(" %8.0f", m.Capacity(n))
		}
		fmt.Println()
	}
	fmt.Println()

	if spec.Graph.NumOperators() == 2 {
		fmt.Println("throughput grid (rows: op0 tasks, cols: op1 tasks, ktuples/s):")
		for a := spec.MaxTasks; a >= 1; a-- {
			fmt.Printf("%3d |", a)
			for b := 1; b <= spec.MaxTasks; b++ {
				th, err := experiment.SteadyThroughput(spec, rates, []int{a, b})
				if err != nil {
					return err
				}
				fmt.Printf(" %6.1f", th/1000)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	opt, err := experiment.OptimalConfig(spec, rates, budget)
	if err != nil {
		return err
	}
	fmt.Printf("optimum (budget %d): tasks %v (%d total) → %.0f tuples/s\n",
		budget, opt.Tasks, opt.TotalTasks, opt.Throughput)
	return nil
}
