// Command gridsweep evaluates the ground-truth throughput landscape of a
// workload: the full task grid for ≤2-operator applications (the Fig. 4
// heatmap data) or the greedy/budgeted optimum plus per-operator capacity
// curves otherwise.
//
// Usage:
//
//	gridsweep -workload wordcount -rate high
//	gridsweep -workload yahoo -rate low -budget 30
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"dragster/internal/experiment"
	"dragster/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "wordcount", "workload name")
		rate    = flag.String("rate", "high", "offered load: high|low")
		budget  = flag.Int("budget", 0, "task budget (0 = unbounded)")
		workers = flag.Int("workers", 0, "grid evaluation goroutines (0 = one per CPU)")
	)
	flag.Parse()
	if err := run(*wl, *rate, *budget, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "gridsweep:", err)
		os.Exit(1)
	}
}

func run(wl, rate string, budget, workers int) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	rates := spec.HighRates
	if rate == "low" {
		rates = spec.LowRates
	} else if rate != "high" {
		return fmt.Errorf("unknown rate %q", rate)
	}

	fmt.Printf("workload %s at %s rate %v\n\n", spec.Name, rate, rates)

	fmt.Println("per-operator ground-truth capacity curves (tuples/s):")
	fmt.Printf("%-14s", "tasks:")
	for n := 1; n <= spec.MaxTasks; n++ {
		fmt.Printf(" %8d", n)
	}
	fmt.Println()
	for i, m := range spec.Models {
		fmt.Printf("%-14s", spec.Graph.OperatorName(i))
		for n := 1; n <= spec.MaxTasks; n++ {
			fmt.Printf(" %8.0f", m.Capacity(n))
		}
		fmt.Println()
	}
	fmt.Println()

	if spec.Graph.NumOperators() == 2 {
		// The MaxTasks² cells are independent, so a bounded strided pool
		// fills an index-addressed result grid and the rows print serially
		// afterwards — same output at any worker count.
		n := spec.MaxTasks
		cells := make([]float64, n*n)
		errs := make([]error, n*n)
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(cells) {
			workers = len(cells)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(cells); i += workers {
					a, b := i/n+1, i%n+1
					cells[i], errs[i] = experiment.SteadyThroughput(spec, rates, []int{a, b})
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		fmt.Println("throughput grid (rows: op0 tasks, cols: op1 tasks, ktuples/s):")
		for a := n; a >= 1; a-- {
			fmt.Printf("%3d |", a)
			for b := 1; b <= n; b++ {
				fmt.Printf(" %6.1f", cells[(a-1)*n+b-1]/1000)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	opt, err := experiment.OptimalConfig(spec, rates, budget)
	if err != nil {
		return err
	}
	fmt.Printf("optimum (budget %d): tasks %v (%d total) → %.0f tuples/s\n",
		budget, opt.Tasks, opt.TotalTasks, opt.Throughput)
	return nil
}
