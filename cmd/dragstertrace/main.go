// Command dragstertrace records, summarizes, converts, and diffs
// sim-time observability traces (see internal/telemetry).
//
// Usage:
//
//	dragstertrace record -out trace.jsonl [-workload wordcount] [-chaos node-flap]
//	                     [-slots 20] [-slotsec 60] [-seed 1] [-budget 0]
//	dragstertrace summarize trace.jsonl
//	dragstertrace diff a.jsonl b.jsonl
//	dragstertrace chrome -out trace.json trace.jsonl
//
// record runs one scenario with a tracer installed and writes the JSONL
// trace; the same (workload, chaos, slots, slotsec, seed) flags always
// produce a byte-identical file. summarize prints the time-in-phase
// table, the per-round regret timeline, and the metrics snapshot. diff
// compares two traces phase by phase and round by round — e.g. a chaos
// run against its fault-free twin. chrome converts a JSONL trace to the
// Chrome trace_event format (load via chrome://tracing or Perfetto).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dragster/internal/chaos"
	"dragster/internal/experiment"
	"dragster/internal/telemetry"
	"dragster/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "chrome":
		err = cmdChrome(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dragstertrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dragstertrace record -out trace.jsonl [-workload wordcount] [-chaos name]
                       [-slots 20] [-slotsec 60] [-seed 1] [-budget 0]
  dragstertrace summarize trace.jsonl
  dragstertrace diff a.jsonl b.jsonl
  dragstertrace chrome -out trace.json trace.jsonl

chaos scenarios:`, chaos.Names())
}

// cmdRecord runs one scenario with a tracer installed and writes the
// JSONL trace to -out ("-" = stdout).
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out      = fs.String("out", "-", "output JSONL path (- = stdout)")
		wlName   = fs.String("workload", "wordcount", "workload spec name")
		chaosSc  = fs.String("chaos", "", "named chaos scenario (empty = fault-free)")
		slots    = fs.Int("slots", 20, "decision slots to run")
		slotSec  = fs.Int("slotsec", 60, "slot length in simulated seconds")
		seed     = fs.Int64("seed", 1, "random seed")
		budget   = fs.Int("budget", 0, "task budget (0 = unbounded)")
		policyFl = fs.String("policy", "saddle", "policy: saddle|ogd|dhalion|ds2")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := record(*wlName, *chaosSc, *slots, *slotSec, *seed, *budget, *policyFl)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.WriteJSONL(w)
}

// record builds and runs the scenario, returning the populated tracer.
func record(wlName, chaosName string, slots, slotSec int, seed int64, budget int, policy string) (*telemetry.Tracer, error) {
	spec, err := workload.ByName(wlName)
	if err != nil {
		return nil, err
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		return nil, err
	}
	var chaosSpec *chaos.Spec
	if chaosName != "" {
		chaosSpec, err = chaos.ByName(chaosName)
		if err != nil {
			return nil, err
		}
	}
	var factory experiment.PolicyFactory
	switch policy {
	case "saddle":
		factory = experiment.DragsterSaddle()
	case "ogd":
		factory = experiment.DragsterOGD()
	case "dhalion":
		factory = experiment.DhalionPolicy()
	case "ds2":
		factory = experiment.DS2Policy()
	default:
		return nil, fmt.Errorf("unknown policy %q", policy)
	}
	tr := telemetry.NewTracer()
	tr.SetMetrics(telemetry.NewRegistry())
	_, err = experiment.Run(experiment.Scenario{
		Spec:        spec,
		Rates:       rates,
		Slots:       slots,
		SlotSeconds: slotSec,
		Seed:        seed,
		TaskBudget:  budget,
		Chaos:       chaosSpec,
		Tracer:      tr,
	}, factory)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

func readTrace(path string) (*telemetry.TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadJSONL(f)
}

// cmdSummarize prints the time-in-phase table, the per-round regret
// timeline, and the metrics snapshot of one trace.
func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summarize needs exactly one trace file, got %d", fs.NArg())
	}
	tf, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	w := os.Stdout
	fmt.Fprintf(w, "trace: %d spans, %d metrics\n\n", len(tf.Spans), len(tf.Metrics))

	fmt.Fprintln(w, "time in phase (sim seconds):")
	fmt.Fprintf(w, "  %-12s %-16s %8s %10s\n", "cat", "name", "count", "seconds")
	for _, row := range telemetry.TimeInPhase(tf.Spans) {
		fmt.Fprintf(w, "  %-12s %-16s %8d %10d\n", row.Cat, row.Name, row.Count, row.Seconds)
	}

	rounds := roundTimeline(tf.Spans)
	if len(rounds) > 0 {
		fmt.Fprintln(w, "\nper-round regret timeline:")
		fmt.Fprintf(w, "  %4s %12s %12s %12s  %s\n", "slot", "steady", "optimal", "regret", "tasks")
		for _, r := range rounds {
			fmt.Fprintf(w, "  %4d %12s %12s %12s  %s\n", r.slot, r.steady, r.optimal, r.regret, r.tasks)
		}
	}

	if len(tf.Metrics) > 0 {
		fmt.Fprintln(w, "\nmetrics:")
		for _, m := range tf.Metrics {
			switch m.Kind {
			case "histogram":
				fmt.Fprintf(w, "  %-32s count=%d sum=%g buckets=%v bounds=%v\n",
					m.Name, m.Count, m.Sum, m.Buckets, m.Bounds)
			default:
				fmt.Fprintf(w, "  %-32s %g\n", m.Name, m.Value)
			}
		}
	}
	return nil
}

// roundRow is one "experiment/round" span flattened for display.
type roundRow struct {
	slot                           int
	steady, optimal, regret, tasks string
	outcome                        string
}

func roundTimeline(spans []telemetry.SpanRecord) []roundRow {
	var out []roundRow
	for _, sp := range spans {
		if sp.Cat != "experiment" || sp.Name != "round" {
			continue
		}
		r := roundRow{slot: sp.Slot}
		r.steady, _ = sp.AttrValue("steady")
		r.optimal, _ = sp.AttrValue("optimal")
		r.regret, _ = sp.AttrValue("regret")
		r.tasks, _ = sp.AttrValue("tasks")
		r.outcome, _ = sp.AttrValue("outcome")
		out = append(out, r)
	}
	return out
}

// cmdDiff compares two traces: span-volume and time-in-phase per (cat,
// name), the per-round regret timelines, and the metric snapshots.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two trace files, got %d", fs.NArg())
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	w := os.Stdout
	fmt.Fprintf(w, "A: %s (%d spans)\nB: %s (%d spans)\n\n",
		fs.Arg(0), len(a.Spans), fs.Arg(1), len(b.Spans))

	diffPhases(w, a.Spans, b.Spans)
	diffRounds(w, a.Spans, b.Spans)
	diffMetrics(w, a.Metrics, b.Metrics)
	return nil
}

func diffPhases(w io.Writer, a, b []telemetry.SpanRecord) {
	pa, pb := telemetry.TimeInPhase(a), telemetry.TimeInPhase(b)
	type key struct{ cat, name string }
	rows := make(map[key][2]telemetry.PhaseDuration)
	var order []key
	for _, r := range pa {
		k := key{r.Cat, r.Name}
		rows[k] = [2]telemetry.PhaseDuration{r, {}}
		order = append(order, k)
	}
	for _, r := range pb {
		k := key{r.Cat, r.Name}
		if cur, ok := rows[k]; ok {
			cur[1] = r
			rows[k] = cur
		} else {
			rows[k] = [2]telemetry.PhaseDuration{{}, r}
			order = append(order, k)
		}
	}
	fmt.Fprintln(w, "phase           countA countB  secondsA secondsB    Δsec")
	for _, k := range order {
		pair := rows[k]
		dSec := pair[1].Seconds - pair[0].Seconds
		marker := " "
		if pair[0].Count != pair[1].Count || dSec != 0 {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-12s %6d %6d  %8d %8d %+7d\n",
			marker, k.cat+"/"+k.name, pair[0].Count, pair[1].Count,
			pair[0].Seconds, pair[1].Seconds, dSec)
	}
}

func diffRounds(w io.Writer, a, b []telemetry.SpanRecord) {
	ra, rb := roundTimeline(a), roundTimeline(b)
	n := len(ra)
	if len(rb) > n {
		n = len(rb)
	}
	if n == 0 {
		return
	}
	fmt.Fprintln(w, "\nper-round regret (A vs B):")
	fmt.Fprintf(w, "  %4s %12s %12s  %-12s %-12s\n", "slot", "regretA", "regretB", "tasksA", "tasksB")
	for i := 0; i < n; i++ {
		var av, bv roundRow
		if i < len(ra) {
			av = ra[i]
		}
		if i < len(rb) {
			bv = rb[i]
		}
		marker := " "
		if av.regret != bv.regret || av.tasks != bv.tasks {
			marker = "*"
		}
		slot := av.slot
		if i >= len(ra) {
			slot = bv.slot
		}
		fmt.Fprintf(w, "%s %4d %12s %12s  %-12s %-12s\n",
			marker, slot, orDash(av.regret), orDash(bv.regret), orDash(av.tasks), orDash(bv.tasks))
	}
}

func diffMetrics(w io.Writer, a, b []telemetry.MetricRecord) {
	type key struct{ kind, name string }
	rows := make(map[key][2]*telemetry.MetricRecord)
	var order []key
	for i := range a {
		k := key{a[i].Kind, a[i].Name}
		rows[k] = [2]*telemetry.MetricRecord{&a[i], nil}
		order = append(order, k)
	}
	for i := range b {
		k := key{b[i].Kind, b[i].Name}
		if cur, ok := rows[k]; ok {
			cur[1] = &b[i]
			rows[k] = cur
		} else {
			rows[k] = [2]*telemetry.MetricRecord{nil, &b[i]}
			order = append(order, k)
		}
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintln(w, "\nmetrics (A vs B):")
	for _, k := range order {
		pair := rows[k]
		va, vb := "-", "-"
		same := false
		if pair[0] != nil {
			va = metricValue(pair[0])
		}
		if pair[1] != nil {
			vb = metricValue(pair[1])
		}
		same = va == vb
		marker := "*"
		if same {
			marker = " "
		}
		fmt.Fprintf(w, "%s %-32s %-16s %-16s\n", marker, k.name, va, vb)
	}
}

func metricValue(m *telemetry.MetricRecord) string {
	if m.Kind == "histogram" {
		return fmt.Sprintf("n=%d sum=%g", m.Count, m.Sum)
	}
	return fmt.Sprintf("%g", m.Value)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// cmdChrome converts a JSONL trace to the Chrome trace_event format.
func cmdChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ExitOnError)
	out := fs.String("out", "-", "output path (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("chrome needs exactly one trace file, got %d", fs.NArg())
	}
	tf, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return telemetry.WriteChromeTrace(w, tf.Spans)
}
