// Command dragsterd runs the Dragster controller as a long-lived daemon
// with an operational HTTP surface:
//
//	GET /healthz   liveness
//	GET /status    controller state as JSON
//	GET /metrics   Prometheus text format
//
// Usage:
//
//	dragsterd -addr :8080 -workload wordcount -policy saddle -slots 100 \
//	          -wall 2s      # one decision slot every 2 s of wall clock
//
// The daemon drives the simulated Flink-on-Kubernetes stack; in a real
// deployment the same loop would sit behind the Flink REST API and the
// Kubernetes metrics server (see internal/monitor.HTTPSource).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"dragster/internal/daemon"
	"dragster/internal/experiment"
	"dragster/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		wl      = flag.String("workload", "wordcount", "workload name")
		policy  = flag.String("policy", "saddle", "policy: saddle|ogd|dhalion|ds2")
		profile = flag.String("profile", "cycle", "offered load: high|low|cycle|step")
		period  = flag.Int("period", 20, "phase length (cycle) or change slot (step)")
		slots   = flag.Int("slots", 1000, "decision slots to run")
		slotSec = flag.Int("slotsec", 600, "slot length in simulated seconds")
		wall    = flag.Duration("wall", time.Second, "wall-clock pacing between slots (0 = flat out)")
		budget  = flag.Int("budget", 0, "task budget (0 = unbounded)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*addr, *wl, *policy, *profile, *period, *slots, *slotSec, *wall, *budget, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dragsterd:", err)
		os.Exit(1)
	}
}

func run(addr, wl, policy, profile string, period, slots, slotSec int, wall time.Duration, budget int, seed int64) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	var rates workload.RateFunc
	switch profile {
	case "high":
		rates, err = workload.Constant(spec.HighRates)
	case "low":
		rates, err = workload.Constant(spec.LowRates)
	case "cycle":
		rates, err = workload.Cycle(period, spec.HighRates, spec.LowRates)
	case "step":
		rates, err = workload.StepAt(period, spec.LowRates, spec.HighRates)
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	if err != nil {
		return err
	}
	var factory experiment.PolicyFactory
	switch policy {
	case "saddle":
		factory = experiment.DragsterSaddle()
	case "ogd":
		factory = experiment.DragsterOGD()
	case "dhalion":
		factory = experiment.DhalionPolicy()
	case "ds2":
		factory = experiment.DS2Policy()
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	d, err := daemon.New(daemon.Config{
		Scenario: experiment.Scenario{
			Spec:        spec,
			Rates:       rates,
			Slots:       slots,
			SlotSeconds: slotSec,
			Seed:        seed,
			TaskBudget:  budget,
		},
		Factory:          factory,
		SlotWallInterval: wall,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: d.Handler()}
	go func() {
		log.Printf("dragsterd: serving on %s (workload=%s policy=%s)", addr, wl, policy)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("dragsterd: http server: %v", err)
		}
	}()

	err = d.Run(ctx)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err != nil && err != context.Canceled {
		return err
	}
	s := d.Snapshot()
	log.Printf("dragsterd: finished %d/%d slots, %.3fe9 tuples, $%.2f",
		s.SlotsCompleted, s.SlotsTotal, s.ProcessedTotal/1e9, s.CostDollars)
	return nil
}
