// Command dragsterd runs the Dragster controller as a long-lived daemon
// with an operational HTTP surface:
//
//	GET /healthz   liveness
//	GET /status    controller state as JSON
//	GET /metrics   Prometheus text format
//
// Usage:
//
//	dragsterd -addr :8080 -workload wordcount -policy saddle -slots 100 \
//	          -wall 2s      # one decision slot every 2 s of wall clock
//
// Fleet mode runs the multi-job control plane (internal/fleet) instead
// of a single controller and adds the multi-tenant surface
// (/fleet/status, /fleet/jobs, POST/DELETE job management):
//
//	dragsterd -fleet "hot=wordcount:high,light=group:low" \
//	          -fleet-budget 20 -arbiter dual -slots 100 -shards 4
//
// The daemon drives the simulated Flink-on-Kubernetes stack; in a real
// deployment the same loop would sit behind the Flink REST API and the
// Kubernetes metrics server (see internal/monitor.HTTPSource).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"dragster/internal/daemon"
	"dragster/internal/experiment"
	"dragster/internal/fleet"
	"dragster/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		wl      = flag.String("workload", "wordcount", "workload name")
		policy  = flag.String("policy", "saddle", "policy: saddle|ogd|dhalion|ds2")
		profile = flag.String("profile", "cycle", "offered load: high|low|cycle|step")
		period  = flag.Int("period", 20, "phase length (cycle) or change slot (step)")
		slots   = flag.Int("slots", 1000, "decision slots to run")
		slotSec = flag.Int("slotsec", 600, "slot length in simulated seconds")
		wall    = flag.Duration("wall", time.Second, "wall-clock pacing between slots (0 = flat out)")
		budget  = flag.Int("budget", 0, "task budget (0 = unbounded)")
		seed    = flag.Int64("seed", 1, "random seed")

		fleetJobs   = flag.String("fleet", "", `fleet mode: comma-separated "name=workload:profile" job list`)
		fleetBudget = flag.Int("fleet-budget", 20, "fleet mode: global Σ-tasks budget")
		arbiter     = flag.String("arbiter", "dual", "fleet mode: budget arbitration, dual|equal")
		shards      = flag.Int("shards", 0, "fleet mode: decide-pool shard count (0 = single shard)")
	)
	flag.Parse()
	var err error
	if *fleetJobs != "" {
		err = runFleet(*addr, *fleetJobs, *arbiter, *slots, *slotSec, *fleetBudget, *shards, *wall, *seed)
	} else {
		err = run(*addr, *wl, *policy, *profile, *period, *slots, *slotSec, *wall, *budget, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dragsterd:", err)
		os.Exit(1)
	}
}

// runFleet parses the job list and serves the multi-job control plane.
func runFleet(addr, jobList, arbiter string, slots, slotSec, budget, shards int, wall time.Duration, seed int64) error {
	var jobs []fleet.JobSpec
	for _, item := range strings.Split(jobList, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return fmt.Errorf("fleet job %q: want name=workload:profile", item)
		}
		wlName, prof, _ := strings.Cut(rest, ":")
		req := daemon.SubmitRequest{Name: name, Workload: wlName, Profile: prof}
		spec, err := req.ToSpec()
		if err != nil {
			return fmt.Errorf("fleet job %q: %w", name, err)
		}
		jobs = append(jobs, spec)
	}
	var arb fleet.Arbitration
	switch arbiter {
	case "dual":
		arb = fleet.DualPrice
	case "equal":
		arb = fleet.EqualSplit
	default:
		return fmt.Errorf("unknown arbiter %q", arbiter)
	}
	d, err := daemon.NewFleet(daemon.FleetConfig{
		Fleet: fleet.Config{
			Jobs:            jobs,
			Slots:           slots,
			SlotSeconds:     slotSec,
			Seed:            seed,
			TotalTaskBudget: budget,
			Arbitration:     arb,
			Shards:          shards,
		},
		SlotWallInterval: wall,
	})
	if err != nil {
		return err
	}
	return serve(addr, fmt.Sprintf("fleet mode, %d jobs, budget %d, arbiter %s, shards %d", len(jobs), budget, arb, shards),
		d.Handler(), d.Run, func() string {
			res := d.Result()
			return fmt.Sprintf("finished %d rounds, $%.2f cluster spend", res.Slots, res.ClusterCost)
		})
}

func run(addr, wl, policy, profile string, period, slots, slotSec int, wall time.Duration, budget int, seed int64) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	var rates workload.RateFunc
	switch profile {
	case "high":
		rates, err = workload.Constant(spec.HighRates)
	case "low":
		rates, err = workload.Constant(spec.LowRates)
	case "cycle":
		rates, err = workload.Cycle(period, spec.HighRates, spec.LowRates)
	case "step":
		rates, err = workload.StepAt(period, spec.LowRates, spec.HighRates)
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	if err != nil {
		return err
	}
	var factory experiment.PolicyFactory
	switch policy {
	case "saddle":
		factory = experiment.DragsterSaddle()
	case "ogd":
		factory = experiment.DragsterOGD()
	case "dhalion":
		factory = experiment.DhalionPolicy()
	case "ds2":
		factory = experiment.DS2Policy()
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	d, err := daemon.New(daemon.Config{
		Scenario: experiment.Scenario{
			Spec:        spec,
			Rates:       rates,
			Slots:       slots,
			SlotSeconds: slotSec,
			Seed:        seed,
			TaskBudget:  budget,
		},
		Factory:          factory,
		SlotWallInterval: wall,
	})
	if err != nil {
		return err
	}

	return serve(addr, fmt.Sprintf("workload=%s policy=%s", wl, policy),
		d.Handler(), d.Run, func() string {
			s := d.Snapshot()
			return fmt.Sprintf("finished %d/%d slots, %.3fe9 tuples, $%.2f",
				s.SlotsCompleted, s.SlotsTotal, s.ProcessedTotal/1e9, s.CostDollars)
		})
}

// serve runs the HTTP server alongside the loop until the loop finishes
// or the process is interrupted, then logs the epilogue.
func serve(addr, banner string, h http.Handler, loop func(context.Context) error, epilogue func() string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: h}
	go func() {
		log.Printf("dragsterd: serving on %s (%s)", addr, banner)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("dragsterd: http server: %v", err)
		}
	}()

	err := loop(ctx)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err != nil && err != context.Canceled {
		return err
	}
	log.Printf("dragsterd: %s", epilogue())
	return nil
}
