// Command benchmark regenerates every table and figure of the paper's
// evaluation section against the simulated Flink-on-Kubernetes stack.
//
// Usage:
//
//	benchmark -exp all                 # everything at paper scale
//	benchmark -exp fig4 -slotsec 60    # one experiment, 1-minute slots
//
// Experiments: fig4, fig4budget, fig5, fig6, table2, fig7, table3,
// regret, theorem2, robustness, ablation, fleet, fleetscale, longhorizon,
// all. At the paper's 10-minute
// slots (default -slotsec 600) the full suite simulates tens of hours of
// cluster time and takes a few minutes of wall clock; -slotsec 60 gives a
// quick pass with the same qualitative shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dragster/internal/experiment"
	"dragster/internal/osp"
	"dragster/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig4|fig4budget|fig5|fig6|table2|fig7|table3|regret|theorem2|ds2|robustness|ablation|capacity|fleet|fleetscale|longhorizon|all")
		slotSec    = flag.Int("slotsec", 600, "slot length in simulated seconds (paper: 600)")
		seed       = flag.Int64("seed", 1, "random seed")
		budget     = flag.Int("budget", 13, "task budget for fig4budget (paper: $1.6/h ≈ 13 TaskManager pods)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if err := runProfiled(*exp, *slotSec, *seed, *budget, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

// runProfiled wraps run with the optional pprof capture: the CPU profile
// spans the whole experiment suite, and the heap profile snapshots live
// allocations after a final GC — the pair `-exp fig4 -cpuprofile cpu.out
// -memprofile mem.out` is how the hot-path work in this repo is measured.
func runProfiled(exp string, slotSec int, seed int64, budget int, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(exp, slotSec, seed, budget); err != nil {
		return err
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

func run(exp string, slotSec int, seed int64, budget int) error {
	w := os.Stdout
	sep := func() {
		fmt.Fprintln(w, "\n"+string(make([]byte, 0))+"────────────────────────────────────────────────────────────")
	}

	runOne := func(name string) error {
		switch name {
		case "fig4":
			r, err := experiment.Fig4(0, 20, slotSec, seed)
			if err != nil {
				return err
			}
			experiment.RenderFig4(w, r)
		case "fig4budget":
			r, err := experiment.Fig4(budget, 20, slotSec, seed)
			if err != nil {
				return err
			}
			experiment.RenderFig4(w, r)
		case "fig5":
			rows, err := experiment.Fig5(40, slotSec, seed)
			if err != nil {
				return err
			}
			experiment.RenderFig5(w, rows)
		case "fig6", "table2":
			r, err := experiment.Fig6(100, 20, slotSec, seed)
			if err != nil {
				return err
			}
			if name == "fig6" {
				experiment.RenderFig6(w, r)
			} else {
				experiment.RenderTable2(w, r)
			}
		case "fig7", "table3":
			r, err := experiment.Fig7(60, 30, slotSec, seed)
			if err != nil {
				return err
			}
			if name == "fig7" {
				experiment.RenderFig7(w, r)
			} else {
				experiment.RenderTable3(w, r)
			}
		case "regret":
			spec, err := workload.WordCount()
			if err != nil {
				return err
			}
			r, err := experiment.RegretRun(spec, osp.SaddlePoint, 200, slotSec, seed)
			if err != nil {
				return err
			}
			experiment.RenderRegret(w, r)
		case "theorem2":
			r, err := experiment.Theorem2Run(0.5, 30, slotSec, seed)
			if err != nil {
				return err
			}
			fmt.Println("Theorem 2: exact vs learned throughput functions (WordCount, priors at 50% of truth)")
			fmt.Printf("  convergence: exact %.0f min, learned %.0f min\n", r.ExactConvMin, r.LearnedConvMin)
			fmt.Printf("  cumulative regret: exact %.3e, learned %.3e\n", r.ExactRegret, r.LearnedRegret)
			fmt.Printf("  map selectivity: prior %.2f → learned %.3f (truth %.1f, %d samples)\n",
				r.PriorK, r.LearnedK, r.TrueK, r.LearnerSamples)
		case "ds2":
			if err := runDS2(slotSec, seed); err != nil {
				return err
			}
		case "robustness":
			if err := runRobustness(slotSec); err != nil {
				return err
			}
		case "ablation":
			if err := runAblation(slotSec, seed); err != nil {
				return err
			}
		case "capacity":
			spec, err := workload.WordCount()
			if err != nil {
				return err
			}
			// 24 slots gives the cold floor room to climb, the surge room
			// to land mid-horizon, and the plan a horizon to amortize over.
			r, err := experiment.RunCapacity(spec, 24, slotSec, seed)
			if err != nil {
				return err
			}
			experiment.RenderCapacity(w, r)
		case "fleet":
			r, err := experiment.FleetBench(20, slotSec, seed)
			if err != nil {
				return err
			}
			experiment.RenderFleetBench(w, r)
		case "fleetscale":
			// 1,000-tenant control-plane load test (not part of -exp all:
			// it measures the fleet core, not the paper's evaluation).
			// cmd/ may read the wall clock; the experiment package may not,
			// so the clock is injected here.
			r, err := experiment.FleetScale(experiment.FleetScaleConfig{Seed: seed, Now: time.Now})
			if err != nil {
				return err
			}
			experiment.RenderFleetScale(w, r)
		case "longhorizon":
			// Budgeted vs exact posteriors over 1200 rounds (the exact
			// run dominates the wall clock — its per-round cost grows
			// quadratically, which is the point of the table).
			rs, err := experiment.LongHorizonSweep([]int{0, 64, 128, 256}, 1200, seed)
			if err != nil {
				return err
			}
			experiment.RenderLongHorizon(w, rs)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if exp != "all" {
		return runOne(exp)
	}
	order := []string{"fig4", "fig4budget", "fig5", "fig6", "table2", "fig7", "table3", "regret", "theorem2", "ds2", "robustness", "ablation", "capacity", "fleet", "longhorizon"}
	for i, name := range order {
		if i > 0 {
			sep()
		}
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// runDS2 adds the related-work comparator (Kalavri et al., OSDI '18) to
// the WordCount recurring-load scenario: DS2's proportional model assumes
// capacity is linear in the task count, so on concave curves it lands a
// notch short and iterates; it also re-derives the configuration from
// scratch at every load change.
func runDS2(slotSec int, seed int64) error {
	spec, err := workload.WordCount()
	if err != nil {
		return err
	}
	cyc, err := workload.Cycle(15, spec.HighRates, spec.LowRates)
	if err != nil {
		return err
	}
	fmt.Println("DS2 comparison: WordCount, recurring high/low load (30 slots)")
	fmt.Printf("%-18s %14s %16s %14s %16s\n", "policy", "conv. (min)", "processed 1e9", "cost $", "cost per 1e9 $")
	for _, pol := range []struct {
		name    string
		factory experiment.PolicyFactory
	}{
		{"dhalion", experiment.DhalionPolicy()},
		{"ds2", experiment.DS2Policy()},
		{"dragster-saddle", experiment.DragsterSaddle()},
	} {
		res, err := experiment.Run(experiment.Scenario{
			Spec:        spec,
			Rates:       cyc,
			Slots:       30,
			SlotSeconds: slotSec,
			Seed:        seed,
		}, pol.factory)
		if err != nil {
			return err
		}
		conv, err := experiment.ConvergenceMinutes(res)
		if err != nil {
			return err
		}
		convStr := "never"
		if conv >= 0 {
			convStr = fmt.Sprintf("%.0f", conv)
		}
		fmt.Printf("%-18s %14s %16.3f %14.2f %16.2f\n", pol.name, convStr,
			experiment.TotalProcessed(res)/1e9,
			experiment.TotalCost(res),
			experiment.CostPerBillion(res))
	}
	return nil
}

// runRobustness repeats the WordCount convergence comparison over 10
// seeds, reporting mean ± std — the seed-sensitivity check behind every
// single-seed table above.
func runRobustness(slotSec int) error {
	spec, err := workload.WordCount()
	if err != nil {
		return err
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		return err
	}
	fmt.Println("Robustness: WordCount convergence across 10 seeds (minutes)")
	fmt.Printf("%-18s %-34s %12s %22s\n", "policy", "convergence (mean ± std [min,max])", "unconverged", "cost $/1e9 (mean±std)")
	for _, pol := range []struct {
		name    string
		factory experiment.PolicyFactory
	}{
		{"dhalion", experiment.DhalionPolicy()},
		{"dragster-saddle", experiment.DragsterSaddle()},
		{"dragster-ogd", experiment.DragsterOGD()},
	} {
		rr, err := experiment.Repeat(experiment.Scenario{
			Spec:        spec,
			Rates:       rates,
			Slots:       30,
			SlotSeconds: slotSec,
		}, pol.factory, experiment.Seeds(10))
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-34s %12d %12.2f ± %.2f\n",
			pol.name, rr.ConvergenceMinutes.String(), rr.Unconverged,
			rr.CostPerBillion.Mean, rr.CostPerBillion.Std)
	}
	return nil
}

// runAblation compares the extended acquisition (Remark 1) against
// conventional GP-UCB on the Fig. 6 down-scaling scenario: both converge
// at the high rate, but only the extended rule scales down economically.
func runAblation(slotSec int, seed int64) error {
	spec, err := workload.WordCount()
	if err != nil {
		return err
	}
	cyc, err := workload.Cycle(15, spec.HighRates, spec.LowRates)
	if err != nil {
		return err
	}
	fmt.Println("Ablation: extended (target-tracking) vs conventional GP-UCB acquisition")
	fmt.Printf("%-26s %14s %14s %16s\n", "acquisition", "processed 1e9", "cost $", "cost per 1e9 $")
	for _, pf := range []struct {
		name    string
		factory experiment.PolicyFactory
	}{
		{"extended (paper)", experiment.DragsterSaddle()},
		{"conventional", experiment.DragsterConventionalUCB()},
	} {
		name, factory := pf.name, pf.factory
		res, err := experiment.Run(experiment.Scenario{
			Spec:        spec,
			Rates:       cyc,
			Slots:       30,
			SlotSeconds: slotSec,
			Seed:        seed,
		}, factory)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %14.3f %14.2f %16.2f\n", name,
			experiment.TotalProcessed(res)/1e9,
			experiment.TotalCost(res),
			experiment.CostPerBillion(res))
	}
	return nil
}
