// Command dragster runs one autoscaling policy on one benchmark workload
// against the simulated Flink-on-Kubernetes stack, streaming per-slot
// progress to stdout.
//
// Usage:
//
//	dragster -workload wordcount -policy saddle -slots 20
//	dragster -workload yahoo -policy dhalion -profile step -slots 60
//	dragster -workload wordcount -policy ogd -budget 13
//
// Policies: saddle, ogd, dhalion, ds2. Profiles: high, low, cycle
// (high/low every -period slots), step (low→high at -period).
package main

import (
	"flag"
	"fmt"
	"os"

	"dragster/internal/experiment"
	"dragster/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "wordcount", "workload: group|asyncio|join|window|wordcount|yahoo")
		policy  = flag.String("policy", "saddle", "policy: saddle|ogd|dhalion|ds2")
		profile = flag.String("profile", "high", "offered load: high|low|cycle|step")
		slots   = flag.Int("slots", 20, "decision slots to run")
		slotSec = flag.Int("slotsec", 600, "slot length in simulated seconds")
		period  = flag.Int("period", 20, "phase length (cycle) or change slot (step)")
		budget  = flag.Int("budget", 0, "task budget (0 = unbounded)")
		seed    = flag.Int64("seed", 1, "random seed")
		engine  = flag.String("engine", "flink", "stream engine substrate: flink|storm")
	)
	flag.Parse()
	if err := run(*wl, *policy, *profile, *slots, *slotSec, *period, *budget, *seed, *engine); err != nil {
		fmt.Fprintln(os.Stderr, "dragster:", err)
		os.Exit(1)
	}
}

func run(wl, policy, profile string, slots, slotSec, period, budget int, seed int64, engine string) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	var rates workload.RateFunc
	switch profile {
	case "high":
		rates, err = workload.Constant(spec.HighRates)
	case "low":
		rates, err = workload.Constant(spec.LowRates)
	case "cycle":
		rates, err = workload.Cycle(period, spec.HighRates, spec.LowRates)
	case "step":
		rates, err = workload.StepAt(period, spec.LowRates, spec.HighRates)
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	if err != nil {
		return err
	}
	var factory experiment.PolicyFactory
	switch policy {
	case "saddle":
		factory = experiment.DragsterSaddle()
	case "ogd":
		factory = experiment.DragsterOGD()
	case "dhalion":
		factory = experiment.DhalionPolicy()
	case "ds2":
		factory = experiment.DS2Policy()
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	res, err := experiment.Run(experiment.Scenario{
		Spec:         spec,
		Rates:        rates,
		Slots:        slots,
		SlotSeconds:  slotSec,
		Seed:         seed,
		TaskBudget:   budget,
		StreamEngine: engine,
	}, factory)
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s/%s (%d operators), %d slots × %ds, budget %s\n",
		res.Policy, engine, res.Workload, spec.Graph.NumOperators(), slots, slotSec, budgetStr(budget))
	opt := res.OptimaByPhase[0]
	fmt.Printf("phase-0 optimum: tasks %v → %.0f tuples/s\n\n", opt.Tasks, opt.Throughput)
	fmt.Printf("%4s %-24s %12s %12s %8s %10s\n", "slot", "tasks", "steady t/s", "measured", "paused", "cost $")
	for _, tr := range res.Trace {
		fmt.Printf("%4d %-24s %12.0f %12.0f %7ds %10.2f\n",
			tr.Slot, fmt.Sprint(tr.Tasks), tr.SteadyThroughput, tr.MeasuredThroughput, tr.PausedSeconds, tr.CostCum)
	}
	fmt.Println()
	ph, err := experiment.Phases(res)
	if err != nil {
		return err
	}
	for _, p := range ph {
		conv := "never"
		if p.ConvergenceSlots >= 0 {
			conv = fmt.Sprintf("%.0f min", p.ConvergenceMinutes)
		}
		fmt.Printf("phase slots [%d,%d): optimal %.0f t/s, converged %s, %.2fe9 tuples, $%.2f/1e9\n",
			p.StartSlot, p.EndSlot, p.OptimalThroughput, conv, p.Processed/1e9, p.CostPerBillion)
	}
	fmt.Printf("\ntotal: %.3fe9 tuples processed, $%.2f spent ($%.2f per 1e9 tuples)\n",
		experiment.TotalProcessed(res)/1e9, experiment.TotalCost(res), experiment.CostPerBillion(res))
	return nil
}

func budgetStr(b int) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprint(b)
}
