// Command dragsterlint runs the project's static-analysis suite
// (internal/analysis): simclock, detrand, maporder, errflow, chaoshook,
// fleethook, hotpath, goroutine, and lockorder — the machine-enforced
// determinism, error-handling, fault-model, allocation, and concurrency
// invariants the reproduction depends on.
//
// It speaks the `go vet` unit-checker protocol, so the supported way to
// run it is through the go tool, which supplies per-package type
// information from the build cache:
//
//	go build -o bin/dragsterlint ./cmd/dragsterlint
//	go vet -vettool=bin/dragsterlint ./...
//
// or simply `make lint`. Run a subset with -check=simclock,errflow.
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory: a bare //lint:allow suppresses nothing and is
// itself diagnosed, as is a reasoned allow that no longer matches any
// finding of an analyzer in the run.
//
// Machine-readable output: -json emits the x/tools vet-JSON shape and
// -sarif one SARIF 2.1.0 document per package (both on stdout, exit 0 —
// text mode stays the gate). `go vet` relays tool output on its stderr,
// so a whole-module -sarif stream is captured from there and folded into
// a single document with
//
//	go vet -vettool=bin/dragsterlint -sarif ./... 2> lint.stream
//	bin/dragsterlint -merge-sarif lint.stream > dragsterlint.sarif
//
// or `make lint-sarif`.
package main

import (
	"os"

	"dragster/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
