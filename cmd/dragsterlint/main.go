// Command dragsterlint runs the project's static-analysis suite
// (internal/analysis): simclock, detrand, maporder, errflow, and
// chaoshook — the machine-enforced determinism, error-handling, and
// fault-model invariants the reproduction depends on.
//
// It speaks the `go vet` unit-checker protocol, so the supported way to
// run it is through the go tool, which supplies per-package type
// information from the build cache:
//
//	go build -o bin/dragsterlint ./cmd/dragsterlint
//	go vet -vettool=bin/dragsterlint ./...
//
// or simply `make lint`. Run a subset with -check=simclock,errflow.
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:allow <rule> <reason>
package main

import (
	"os"

	"dragster/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
