// Command covergate enforces per-package statement-coverage floors. It
// parses one or more Go cover profiles (`go test -coverprofile`), computes
// coverage per package (the directory of each instrumented file), and
// exits non-zero if any package listed in the floor file is below its
// checked-in floor — the CI gate that keeps the observability and fault
// layers from silently losing test coverage.
//
//	go test -coverprofile=cover.out ./...
//	go run ./cmd/covergate -profile cover.out -floors COVERAGE_FLOOR.txt
//
// The floor file holds one `import/path minimum-percent` pair per line;
// blank lines and #-comments are ignored. Packages not listed are
// reported but never gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// block is one cover-profile block key; profiles merged across test
// binaries may repeat a block, in which case the highest count wins
// (matching `go tool cover` semantics).
type block struct {
	file string
	span string // "l0.c0,l1.c1"
}

// pkgCoverage accumulates statement counts for one package.
type pkgCoverage struct {
	total, covered int
}

// parseProfiles folds cover-profile readers into per-package statement
// coverage. The first line of each profile is the `mode:` header; every
// other line is `file:l0.c0,l1.c1 numStmts count`.
func parseProfiles(readers ...io.Reader) (map[string]*pkgCoverage, error) {
	stmts := make(map[block]int)  // block → numStmts
	counts := make(map[block]int) // block → max execution count
	for _, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "mode:") {
				continue
			}
			colon := strings.LastIndex(line, ":")
			if colon < 0 {
				return nil, fmt.Errorf("covergate: malformed profile line %q", line)
			}
			file := line[:colon]
			fields := strings.Fields(line[colon+1:])
			if len(fields) != 3 {
				return nil, fmt.Errorf("covergate: malformed profile line %q", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("covergate: bad statement count in %q: %v", line, err)
			}
			cnt, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("covergate: bad execution count in %q: %v", line, err)
			}
			b := block{file: file, span: fields[0]}
			stmts[b] = n
			if cnt > counts[b] {
				counts[b] = cnt
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	out := make(map[string]*pkgCoverage)
	for b, n := range stmts {
		pkg := path.Dir(b.file)
		pc, ok := out[pkg]
		if !ok {
			pc = &pkgCoverage{}
			out[pkg] = pc
		}
		pc.total += n
		if counts[b] > 0 {
			pc.covered += n
		}
	}
	return out, nil
}

// percent returns the package's statement coverage in [0, 100].
func (p *pkgCoverage) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// floorEntry is one gated package.
type floorEntry struct {
	pkg   string
	floor float64
}

// parseFloors reads the floor file: `import/path percent` per line, with
// blank lines and #-comments skipped.
func parseFloors(r io.Reader) ([]floorEntry, error) {
	var out []floorEntry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("covergate: malformed floor line %q", line)
		}
		f, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || f < 0 || f > 100 {
			return nil, fmt.Errorf("covergate: bad floor %q for %s", fields[1], fields[0])
		}
		out = append(out, floorEntry{pkg: fields[0], floor: f})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// gate reports per-package coverage to w and returns the gated packages
// that fell below their floor (or are missing from the profile entirely).
func gate(w io.Writer, cov map[string]*pkgCoverage, floors []floorEntry) []string {
	pkgs := make([]string, 0, len(cov))
	for pkg := range cov {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	floorFor := make(map[string]float64, len(floors))
	for _, f := range floors {
		floorFor[f.pkg] = f.floor
	}
	fmt.Fprintf(w, "%-40s %9s %9s\n", "package", "coverage", "floor")
	for _, pkg := range pkgs {
		floorCol := "-"
		if f, ok := floorFor[pkg]; ok {
			floorCol = fmt.Sprintf("%.1f%%", f)
		}
		fmt.Fprintf(w, "%-40s %8.1f%% %9s\n", pkg, cov[pkg].percent(), floorCol)
	}
	var failed []string
	for _, f := range floors {
		pc, ok := cov[f.pkg]
		if !ok {
			failed = append(failed, fmt.Sprintf("%s: no coverage data (floor %.1f%%)", f.pkg, f.floor))
			continue
		}
		if got := pc.percent(); got < f.floor {
			failed = append(failed, fmt.Sprintf("%s: %.1f%% < floor %.1f%%", f.pkg, got, f.floor))
		}
	}
	return failed
}

func main() {
	profile := flag.String("profile", "cover.out", "cover profile produced by go test -coverprofile")
	floorsPath := flag.String("floors", "COVERAGE_FLOOR.txt", "per-package coverage floors")
	flag.Parse()

	pf, err := os.Open(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer pf.Close()
	cov, err := parseProfiles(pf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ff, err := os.Open(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer ff.Close()
	floors, err := parseFloors(ff)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	failed := gate(os.Stdout, cov, floors)
	if len(failed) > 0 {
		fmt.Fprintln(os.Stderr, "\ncoverage gate FAILED:")
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("\ncoverage gate passed")
}
