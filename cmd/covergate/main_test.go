package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
dragster/internal/telemetry/trace.go:10.20,12.2 2 1
dragster/internal/telemetry/trace.go:14.20,16.2 2 0
dragster/internal/core/controller.go:5.10,9.2 4 3
dragster/internal/core/controller.go:11.10,13.2 1 0
`

func TestParseProfiles(t *testing.T) {
	cov, err := parseProfiles(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	tele := cov["dragster/internal/telemetry"]
	if tele == nil || tele.total != 4 || tele.covered != 2 {
		t.Fatalf("telemetry coverage = %+v, want total 4 covered 2", tele)
	}
	core := cov["dragster/internal/core"]
	if core == nil || core.total != 5 || core.covered != 4 {
		t.Fatalf("core coverage = %+v, want total 5 covered 4", core)
	}
	if got := core.percent(); got != 80 {
		t.Errorf("core percent = %v, want 80", got)
	}
}

// TestParseProfilesMergesDuplicateBlocks: profiles concatenated from
// several test binaries repeat blocks; the highest execution count must
// win, matching `go tool cover`.
func TestParseProfilesMergesDuplicateBlocks(t *testing.T) {
	a := "mode: set\ndragster/internal/x/f.go:1.1,2.2 3 0\n"
	b := "mode: set\ndragster/internal/x/f.go:1.1,2.2 3 5\n"
	cov, err := parseProfiles(strings.NewReader(a), strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	pc := cov["dragster/internal/x"]
	if pc == nil || pc.total != 3 || pc.covered != 3 {
		t.Fatalf("merged coverage = %+v, want total 3 covered 3", pc)
	}
}

func TestParseProfilesRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no-colon-here 1 2 3\n",
		"f.go:1.1,2.2 1\n",
		"f.go:1.1,2.2 x 1\n",
		"f.go:1.1,2.2 1 x\n",
	} {
		if _, err := parseProfiles(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q accepted", strings.TrimSpace(bad))
		}
	}
}

func TestParseFloors(t *testing.T) {
	in := `# gated packages
dragster/internal/core 75.5

dragster/internal/telemetry 90
`
	floors, err := parseFloors(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(floors) != 2 {
		t.Fatalf("got %d floors, want 2", len(floors))
	}
	if floors[0].pkg != "dragster/internal/core" || floors[0].floor != 75.5 {
		t.Errorf("floors[0] = %+v", floors[0])
	}
	for _, bad := range []string{"pkg\n", "pkg 101\n", "pkg -1\n", "pkg x\n", "pkg 1 2\n"} {
		if _, err := parseFloors(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed floor line %q accepted", strings.TrimSpace(bad))
		}
	}
}

func TestGate(t *testing.T) {
	cov, err := parseProfiles(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		floors   []floorEntry
		wantFail int
	}{
		{"all-above", []floorEntry{{"dragster/internal/core", 75}}, 0},
		{"one-below", []floorEntry{{"dragster/internal/telemetry", 60}}, 1},
		{"missing-package-fails", []floorEntry{{"dragster/internal/chaos", 10}}, 1},
		{"mixed", []floorEntry{
			{"dragster/internal/core", 75},
			{"dragster/internal/telemetry", 60},
			{"dragster/internal/chaos", 10},
		}, 2},
		{"ungated-packages-only-report", nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			failed := gate(&buf, cov, tc.floors)
			if len(failed) != tc.wantFail {
				t.Fatalf("got %d failures %v, want %d", len(failed), failed, tc.wantFail)
			}
			if !strings.Contains(buf.String(), "dragster/internal/core") {
				t.Error("report omits a covered package")
			}
		})
	}
}
