package dragster_test

import (
	"fmt"
	"log"

	"dragster"
)

// ExampleNewGraphBuilder builds the WordCount DAG by hand and evaluates
// its steady-state throughput under explicit capacities (Eq. 4).
func ExampleNewGraphBuilder() {
	b := dragster.NewGraphBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	b.Edge(src, mp, nil, 1)
	b.Edge(mp, sh, dragster.Selectivity(2), 1) // flatMap: 2 words per line
	b.Edge(sh, snk, dragster.Selectivity(1), 1)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Offered 100 lines/s; map capacity 150 words/s is the bottleneck.
	th, err := g.Throughput([]float64{100}, []float64{150, 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("throughput: %.0f tuples/s\n", th)
	// Output: throughput: 150 tuples/s
}

// ExampleGraph_Gradient shows the autodiff-based bottleneck signal: the
// saturated operator carries all the throughput gradient.
func ExampleGraph_Gradient() {
	b := dragster.NewGraphBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	b.Edge(src, mp, nil, 1)
	b.Edge(mp, sh, dragster.Selectivity(2), 1)
	b.Edge(sh, snk, dragster.Selectivity(1), 1)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	_, grad, err := g.Gradient([]float64{100}, []float64{150, 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("∂f/∂y_map=%.0f ∂f/∂y_shuffle=%.0f\n", grad[0], grad[1])
	// Output: ∂f/∂y_map=1 ∂f/∂y_shuffle=0
}

// ExampleNewController wires the Dragster controller against a fabricated
// monitor snapshot (normally produced by the Job Monitor each slot).
func ExampleNewController() {
	b := dragster.NewGraphBuilder()
	src := b.Source("source")
	op := b.Operator("op")
	snk := b.Sink("sink")
	b.Edge(src, op, nil, 1)
	b.Edge(op, snk, dragster.Selectivity(1), 1)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := dragster.NewController(dragster.ControllerConfig{
		Graph:    g,
		Method:   dragster.SaddlePoint,
		YMax:     1000,
		NoiseVar: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ctrl.Name())
	// Output: dragster-saddle-point
}

// ExampleNewLearnedLinear fits an unknown selectivity online (Theorem 2).
func ExampleNewLearnedLinear() {
	l, err := dragster.NewLearnedLinear(1.0) // prior guess: 1 output per input
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.ObserveRates(100, 250); err != nil { // truth: 2.5
			log.Fatal(err)
		}
	}
	fmt.Printf("learned selectivity ≈ %.2f\n", l.K())
	// Output: learned selectivity ≈ 2.43
}
