module dragster

go 1.22
