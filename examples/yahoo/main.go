// Yahoo streaming benchmark (the Fig. 7 / Table 3 scenario): the
// six-operator advertising pipeline starts at the low offered rate, the
// load doubles mid-run without notice, and the three policies race to
// re-converge.
//
//	go run ./examples/yahoo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dragster/internal/experiment"
)

func main() {
	slots := flag.Int("slots", 60, "decision slots (paper: 60 × 10 min)")
	change := flag.Int("change", 30, "slot at which the load steps up")
	slotSec := flag.Int("slotsec", 600, "slot length in simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	r, err := experiment.Fig7(*slots, *change, *slotSec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	experiment.RenderFig7(os.Stdout, r)
	fmt.Println()
	experiment.RenderTable3(os.Stdout, r)

	fmt.Println("\nper-phase convergence (minutes):")
	for _, name := range experiment.PolicyOrder {
		ph := r.Phases[name]
		fmt.Printf("  %-16s", name)
		for _, p := range ph {
			if p.ConvergenceSlots < 0 {
				fmt.Printf("  phase@%d: never", p.StartSlot)
			} else {
				fmt.Printf("  phase@%d: %.0f min", p.StartSlot, p.ConvergenceMinutes)
			}
		}
		fmt.Println()
	}
}
