package main

import (
	"io"
	"testing"

	"dragster/internal/experiment"
)

// TestYahooSmoke runs a scaled-down version of what main() does — the
// Yahoo benchmark with a mid-run load change, rendered to a discarded
// writer — so the example cannot rot away from the experiment API.
func TestYahooSmoke(t *testing.T) {
	r, err := experiment.Fig7(8, 4, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range experiment.PolicyOrder {
		tp, ok := r.Throughput[name]
		if !ok || len(tp) != 8 {
			t.Fatalf("policy %s: %d throughput slots, want 8", name, len(tp))
		}
		for slot, v := range tp {
			if v < 0 {
				t.Fatalf("policy %s slot %d: negative throughput %v", name, slot, v)
			}
		}
		if len(r.Phases[name]) == 0 {
			t.Fatalf("policy %s: no phase statistics", name)
		}
	}
	experiment.RenderFig7(io.Discard, r)
	experiment.RenderTable3(io.Discard, r)
}
