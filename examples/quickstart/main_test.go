package main

import (
	"testing"

	"dragster"
	"dragster/internal/experiment"
)

// TestQuickstartSmoke runs a scaled-down version of what main() does —
// the WordCount convergence demo for both the Dragster saddle policy and
// the Dhalion baseline — so the example cannot rot away from the public
// API.
func TestQuickstartSmoke(t *testing.T) {
	spec, err := dragster.WordCountWorkload()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := dragster.ConstantRates(spec.HighRates)
	if err != nil {
		t.Fatal(err)
	}
	sc := dragster.Scenario{
		Spec:        spec,
		Rates:       rates,
		Slots:       8,
		SlotSeconds: 60,
		Seed:        1,
	}
	res, err := dragster.RunScenario(sc, dragster.DragsterSaddlePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 8 {
		t.Fatalf("got %d trace slots, want 8", len(res.Trace))
	}
	opt := res.OptimaByPhase[0]
	if opt == nil || opt.Throughput <= 0 {
		t.Fatalf("missing or degenerate phase-0 optimum: %+v", opt)
	}
	for _, tr := range res.Trace {
		if tr.SteadyThroughput < 0 || tr.SteadyThroughput > opt.Throughput*1.001 {
			t.Fatalf("slot %d: steady throughput %v outside [0, optimum %v]",
				tr.Slot, tr.SteadyThroughput, opt.Throughput)
		}
	}
	if _, err := experiment.ConvergenceMinutes(res); err != nil {
		t.Fatal(err)
	}

	dh, err := dragster.RunScenario(sc, dragster.DhalionPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(dh.Trace) != 8 {
		t.Fatalf("Dhalion: got %d trace slots, want 8", len(dh.Trace))
	}
}
