// Quickstart: build a two-operator stream application, run the full
// Dragster stack (simulated Kubernetes + Flink + Job Monitor + two-level
// optimizer) for 15 decision slots, and watch it converge to a
// near-optimal configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dragster"
	"dragster/internal/experiment"
)

func main() {
	// The WordCount benchmark: source → map (flatMap ×2) → shuffle → sink,
	// with hidden concave capacity curves the optimizer must learn.
	spec, err := dragster.WordCountWorkload()
	if err != nil {
		log.Fatal(err)
	}
	rates, err := dragster.ConstantRates(spec.HighRates)
	if err != nil {
		log.Fatal(err)
	}

	res, err := dragster.RunScenario(dragster.Scenario{
		Spec:        spec,
		Rates:       rates,
		Slots:       15,
		SlotSeconds: 600, // the paper's 10-minute decision slots
		Seed:        1,
	}, dragster.DragsterSaddlePolicy())
	if err != nil {
		log.Fatal(err)
	}

	opt := res.OptimaByPhase[0]
	fmt.Printf("offered load: %.0f tuples/s — optimal config %v → %.0f tuples/s\n\n",
		spec.HighRates[0], opt.Tasks, opt.Throughput)
	fmt.Printf("%4s  %-10s  %12s  %s\n", "slot", "tasks", "steady t/s", "of optimal")
	for _, tr := range res.Trace {
		fmt.Printf("%4d  %-10s  %12.0f  %5.1f%%\n",
			tr.Slot, fmt.Sprint(tr.Tasks), tr.SteadyThroughput, 100*tr.SteadyThroughput/opt.Throughput)
	}

	conv, err := experiment.ConvergenceMinutes(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDragster reached a near-optimal configuration after %.0f simulated minutes.\n", conv)

	// The same scenario under the Dhalion baseline, for contrast (its
	// one-task-per-slot walk needs a longer horizon).
	dh, err := dragster.RunScenario(dragster.Scenario{
		Spec: spec, Rates: rates, Slots: 25, SlotSeconds: 600, Seed: 1,
	}, dragster.DhalionPolicy())
	if err != nil {
		log.Fatal(err)
	}
	dhConv, err := experiment.ConvergenceMinutes(dh)
	if err != nil {
		log.Fatal(err)
	}
	if dhConv < 0 {
		fmt.Println("Dhalion did not converge within the horizon.")
	} else {
		fmt.Printf("Dhalion needed %.0f minutes — a %.1fX speed-up for Dragster.\n", dhConv, dhConv/conv)
	}
}
