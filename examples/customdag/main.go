// Custom DAG, wired by hand: this example skips the experiment harness and
// shows the low-level public API — build your own application graph with
// mixed throughput-function forms (Eq. 2a/2b/2c), stand up the simulated
// Kubernetes cluster and Flink session, attach the Job Monitor, and drive
// the Dragster controller slot by slot. It also persists the history
// database and warm-starts a second controller from it.
//
//	go run ./examples/customdag
package main

import (
	"bytes"
	"fmt"
	"log"

	"dragster"
	"dragster/internal/streamsim"
)

func main() {
	// ---- 1. The application: two sources joined, then enriched ----
	//
	//   clicks ──┐
	//            ├─ join ── enrich(tanh) ── sink
	//   orders ──┘
	b := dragster.NewGraphBuilder()
	clicks := b.Source("clicks")
	orders := b.Source("orders")
	join := b.Operator("join")
	enrich := b.Operator("enrich")
	sink := b.Sink("sink")

	b.Edge(clicks, join, nil, 1)
	b.Edge(orders, join, nil, 1)
	minRate, err := dragster.NewMinRate(1, 1) // Eq. 2b: one click per order
	if err != nil {
		log.Fatal(err)
	}
	b.Edge(join, enrich, minRate, 1)
	// Eq. 2c: the enrichment saturates against an external dictionary.
	tanh, err := dragster.NewTanh(60000, 1.0/30000)
	if err != nil {
		log.Fatal(err)
	}
	b.Edge(enrich, sink, tanh, 1)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built DAG: %d sources, %d operators\n", g.NumSources(), g.NumOperators())

	// ---- 2. The substrate: Kubernetes + Flink + dataflow simulator ----
	k8s := dragster.NewKubeCluster(dragster.WithPricePerCoreHour(0.08))
	if err := k8s.AddNodes("node", 8, dragster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		log.Fatal(err)
	}
	session, err := dragster.NewFlinkSession(k8s, dragster.DefaultFlinkOptions())
	if err != nil {
		log.Fatal(err)
	}
	// Hidden ground truth: the join scales sub-linearly, the enrichment
	// is throttled by the external service.
	joinCurve, err := streamsim.NewPowerCurve(7000, 0.85, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	enrichInner, err := streamsim.NewPowerCurve(8000, 0.9, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	enrichCurve, err := streamsim.NewSaturatingCurve(enrichInner, 45000)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := dragster.NewEngine(dragster.EngineConfig{
		Graph:  g,
		Models: []dragster.CapacityModel{joinCurve, enrichCurve},
	})
	if err != nil {
		log.Fatal(err)
	}
	job, err := session.SubmitJob("clickstream", g, engine, []int{1, 1})
	if err != nil {
		log.Fatal(err)
	}

	// ---- 3. Monitor + controller with a persistent history database ----
	mon, err := dragster.NewMonitor(dragster.DirectSource{Job: job}, dragster.MonitorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	db := dragster.NewHistoryDB()
	ctrl, err := dragster.NewController(dragster.ControllerConfig{
		Graph:    g,
		Method:   dragster.SaddlePoint,
		YMax:     80000,
		NoiseVar: 4e6,
		DB:       db,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ---- 4. The control loop: observe → decide → rescale ----
	rates := []float64{30000, 24000} // orders are the slow side
	fmt.Println("\nslot  tasks      sink t/s")
	for slot := 0; slot < 12; slot++ {
		rep, err := job.RunSlot(600, func(int) []float64 { return rates })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-9s  %8.0f\n", slot, fmt.Sprint(job.EffectiveParallelism()), rep.Throughput)
		snap, err := mon.Collect()
		if err != nil {
			log.Fatal(err)
		}
		desired, err := ctrl.Decide(snap)
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Rescale(desired); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ncluster cost so far: $%.2f; history records: %d\n", k8s.Cost(), db.Len())

	// ---- 5. Persistence: snapshot the database, warm-start a clone ----
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		log.Fatal(err)
	}
	db2 := dragster.NewHistoryDB()
	if err := db2.Restore(&buf); err != nil {
		log.Fatal(err)
	}
	warm, err := dragster.NewController(dragster.ControllerConfig{
		Graph:    g,
		Method:   dragster.SaddlePoint,
		YMax:     80000,
		NoiseVar: 4e6,
		DB:       db2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm-started controller holds %d GP observations for %q\n",
		warm.Searcher(0).Observations(), g.OperatorName(0))
}
