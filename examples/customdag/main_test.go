package main

import (
	"bytes"
	"testing"

	"dragster"
	"dragster/internal/streamsim"
)

// TestCustomDAGSmoke runs a scaled-down version of what main() does — the
// hand-wired two-source join application driven slot by slot through the
// low-level public API, plus the history-database warm start — so the
// example cannot rot away from that API.
func TestCustomDAGSmoke(t *testing.T) {
	b := dragster.NewGraphBuilder()
	clicks := b.Source("clicks")
	orders := b.Source("orders")
	join := b.Operator("join")
	enrich := b.Operator("enrich")
	sink := b.Sink("sink")
	b.Edge(clicks, join, nil, 1)
	b.Edge(orders, join, nil, 1)
	minRate, err := dragster.NewMinRate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Edge(join, enrich, minRate, 1)
	tanh, err := dragster.NewTanh(60000, 1.0/30000)
	if err != nil {
		t.Fatal(err)
	}
	b.Edge(enrich, sink, tanh, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	k8s := dragster.NewKubeCluster(dragster.WithPricePerCoreHour(0.08))
	if err := k8s.AddNodes("node", 8, dragster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	session, err := dragster.NewFlinkSession(k8s, dragster.DefaultFlinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	joinCurve, err := streamsim.NewPowerCurve(7000, 0.85, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	enrichInner, err := streamsim.NewPowerCurve(8000, 0.9, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	enrichCurve, err := streamsim.NewSaturatingCurve(enrichInner, 45000)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := dragster.NewEngine(dragster.EngineConfig{
		Graph:  g,
		Models: []dragster.CapacityModel{joinCurve, enrichCurve},
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := session.SubmitJob("clickstream", g, engine, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}

	mon, err := dragster.NewMonitor(dragster.DirectSource{Job: job}, dragster.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	db := dragster.NewHistoryDB()
	ctrl, err := dragster.NewController(dragster.ControllerConfig{
		Graph:    g,
		Method:   dragster.SaddlePoint,
		YMax:     80000,
		NoiseVar: 4e6,
		DB:       db,
	})
	if err != nil {
		t.Fatal(err)
	}

	rates := []float64{30000, 24000}
	for slot := 0; slot < 5; slot++ {
		rep, err := job.RunSlot(60, func(int) []float64 { return rates })
		if err != nil {
			t.Fatal(err)
		}
		if rep.Throughput < 0 {
			t.Fatalf("slot %d: negative throughput %v", slot, rep.Throughput)
		}
		snap, err := mon.Collect()
		if err != nil {
			t.Fatal(err)
		}
		desired, err := ctrl.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Rescale(desired); err != nil {
			t.Fatal(err)
		}
	}
	if k8s.Cost() <= 0 {
		t.Errorf("cluster cost = %v, want > 0", k8s.Cost())
	}
	if db.Len() == 0 {
		t.Error("history database stayed empty")
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := dragster.NewHistoryDB()
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	warm, err := dragster.NewController(dragster.ControllerConfig{
		Graph:    g,
		Method:   dragster.SaddlePoint,
		YMax:     80000,
		NoiseVar: 4e6,
		DB:       db2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Searcher(0).Observations(); got == 0 {
		t.Error("warm-started controller holds no GP observations")
	}
}
