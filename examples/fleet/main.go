// Fleet quickstart: run three tenants — one hot WordCount and two
// lightly loaded Group jobs — on one shared simulated cluster under a
// global 20-task budget, and compare the dual-price budget arbiter
// against a static equal split.
//
// The dual-price rule reads each tenant's OSP shadow price (the dual λ
// of its long-term buffer constraint): a starved job carries a positive
// price and outbids satisfied tenants for the surplus, while satisfied
// tenants are ratcheted down toward their measured need. The result is
// less money spent AND less regret than splitting the budget evenly.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"dragster"
)

func main() {
	for _, arb := range []dragster.FleetArbitration{dragster.FleetDualPrice, dragster.FleetEqualSplit} {
		score, err := runFleet(arb, 20, 300)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] aggregate regret %.0f tuples/s·slot, spend $%.4f\n",
			score.Arbitration, score.AggregateRegret, score.AggregateCost)
		for _, j := range score.Jobs {
			fmt.Printf("    %-8s (%s): regret %.0f, $%.4f over %d rounds\n",
				j.Name, j.Workload, j.Regret, j.Cost, j.Rounds)
		}
	}
}

func runFleet(arb dragster.FleetArbitration, slots, slotSeconds int) (*dragster.FleetScore, error) {
	wc, err := dragster.WordCountWorkload()
	if err != nil {
		return nil, err
	}
	g1, err := dragster.GroupWorkload()
	if err != nil {
		return nil, err
	}
	g2, err := dragster.GroupWorkload()
	if err != nil {
		return nil, err
	}
	hot, err := dragster.ConstantRates(wc.HighRates)
	if err != nil {
		return nil, err
	}
	lightA, err := dragster.ConstantRates([]float64{3000})
	if err != nil {
		return nil, err
	}
	lightB, err := dragster.ConstantRates([]float64{4000})
	if err != nil {
		return nil, err
	}
	return dragster.RunFleetScenario(dragster.FleetScenario{
		Config: dragster.FleetConfig{
			Jobs: []dragster.FleetJobSpec{
				{Name: "hot", Workload: wc, Rates: hot},
				{Name: "light-a", Workload: g1, Rates: lightA},
				{Name: "light-b", Workload: g2, Rates: lightB},
			},
			Slots:           slots,
			SlotSeconds:     slotSeconds,
			Seed:            1,
			TotalTaskBudget: 20,
			Arbitration:     arb,
			RebalanceEvery:  2,
			MaxGrowTasks:    6,
		},
	})
}
