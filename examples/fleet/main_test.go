package main

import (
	"testing"

	"dragster"
)

// TestFleetExampleSmoke runs a scaled-down version of what main() does —
// both arbitration rules over the three-tenant fleet — so the example
// cannot rot away from the public API.
func TestFleetExampleSmoke(t *testing.T) {
	dual, err := runFleet(dragster.FleetDualPrice, 6, 60)
	if err != nil {
		t.Fatal(err)
	}
	equal, err := runFleet(dragster.FleetEqualSplit, 6, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(dual.Jobs) != 3 || len(equal.Jobs) != 3 {
		t.Fatalf("job counts: dual %d, equal %d", len(dual.Jobs), len(equal.Jobs))
	}
	if dual.Arbitration.String() != "dual-price" || equal.Arbitration.String() != "equal-split" {
		t.Errorf("arbitration labels: %s / %s", dual.Arbitration, equal.Arbitration)
	}
	for _, s := range []struct {
		name string
		cost float64
		over int
	}{
		{"dual-price", dual.AggregateCost, dual.BudgetOverruns},
		{"equal-split", equal.AggregateCost, equal.BudgetOverruns},
	} {
		if s.cost <= 0 {
			t.Errorf("%s: aggregate cost %v", s.name, s.cost)
		}
		if s.over != 0 {
			t.Errorf("%s: %d budget overruns", s.name, s.over)
		}
	}
}
