// WordCount search trajectories (the Fig. 4 scenario): run Dhalion and
// both Dragster variants over the 10×10 (map, shuffle) grid, with and
// without a resource budget, and print the landscape with each policy's
// path across it.
//
//	go run ./examples/wordcount            # no budget (Fig. 4a–c)
//	go run ./examples/wordcount -budget 13 # tight budget (Fig. 4d–f)
package main

import (
	"flag"
	"log"
	"os"

	"dragster/internal/experiment"
)

func main() {
	budget := flag.Int("budget", 0, "task budget (0 = unbounded; the paper's $1.6/h ≈ 13 TaskManager pods)")
	slotSec := flag.Int("slotsec", 600, "slot length in simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	r, err := experiment.Fig4(*budget, 20, *slotSec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	experiment.RenderFig4(os.Stdout, r)
}
