package main

import (
	"io"
	"testing"

	"dragster/internal/experiment"
)

// TestWordCountSmoke runs a scaled-down version of what main() does — the
// Fig. 4 search-trajectory experiment, unbudgeted and budgeted, rendered
// to a discarded writer — so the example cannot rot away from the
// experiment API.
func TestWordCountSmoke(t *testing.T) {
	for _, budget := range []int{0, 13} {
		r, err := experiment.Fig4(budget, 8, 60, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Optimum == nil || r.Optimum.Throughput <= 0 {
			t.Fatalf("budget %d: missing or degenerate optimum", budget)
		}
		if len(r.Heatmap) == 0 {
			t.Fatalf("budget %d: empty throughput landscape", budget)
		}
		if len(r.Paths) == 0 {
			t.Fatalf("budget %d: no policy trajectories", budget)
		}
		for name, path := range r.Paths {
			if len(path) == 0 {
				t.Fatalf("budget %d: policy %s has an empty trajectory", budget, name)
			}
		}
		experiment.RenderFig4(io.Discard, r)
	}
}
