package main

import (
	"testing"

	"dragster"
	"dragster/internal/experiment"
)

// TestVerticalSmoke runs a scaled-down version of what main() does — the
// resource-aware WordCount under the tasks-only and the tasks×CPU
// searches — so the example cannot rot away from the vertical-scaling
// API.
func TestVerticalSmoke(t *testing.T) {
	spec, err := dragster.WordCount2DWorkload()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := dragster.ConstantRates(spec.LowRates)
	if err != nil {
		t.Fatal(err)
	}
	for _, vertical := range []bool{false, true} {
		res, err := dragster.RunScenario(dragster.Scenario{
			Spec:            spec,
			Rates:           rates,
			Slots:           8,
			SlotSeconds:     60,
			Seed:            4,
			VerticalScaling: vertical,
		}, dragster.DragsterSaddlePolicy())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Trace) != 8 {
			t.Fatalf("vertical=%v: got %d trace slots, want 8", vertical, len(res.Trace))
		}
		final := res.Trace[len(res.Trace)-1]
		if len(final.Tasks) == 0 || len(final.CPUMilli) == 0 {
			t.Fatalf("vertical=%v: final slot missing tasks/CPU: %+v", vertical, final)
		}
		if got := experiment.TotalProcessed(res); got <= 0 {
			t.Errorf("vertical=%v: total processed = %v, want > 0", vertical, got)
		}
		if got := experiment.CostPerBillion(res); got <= 0 {
			t.Errorf("vertical=%v: cost per billion = %v, want > 0", vertical, got)
		}
	}
}
