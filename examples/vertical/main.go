// Vertical scaling: Dragster searching the paper's full configuration
// vector — number of executors × per-pod CPU — against the resource-aware
// WordCount. Compares the tasks-only search with the 2-D search at the
// low offered rate, where half-core pods let Dragster right-size more
// finely than whole task slots (at the price of exploring a 4× larger
// candidate space first).
//
//	go run ./examples/vertical
package main

import (
	"fmt"
	"log"

	"dragster"
	"dragster/internal/experiment"
)

func main() {
	spec, err := dragster.WordCount2DWorkload()
	if err != nil {
		log.Fatal(err)
	}
	rates, err := dragster.ConstantRates(spec.LowRates)
	if err != nil {
		log.Fatal(err)
	}

	run := func(vertical bool) *dragster.Result {
		res, err := dragster.RunScenario(dragster.Scenario{
			Spec:            spec,
			Rates:           rates,
			Slots:           30,
			SlotSeconds:     600,
			Seed:            4,
			VerticalScaling: vertical,
		}, dragster.DragsterSaddlePolicy())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("offered load:", spec.LowRates[0], "tuples/s (demand ≈ 40 ktuples/s at the sink)")
	oneD := run(false)
	twoD := run(true)

	show := func(label string, res *dragster.Result) {
		final := res.Trace[len(res.Trace)-1]
		fmt.Printf("\n%s:\n", label)
		fmt.Printf("  final configuration: %v tasks × %v mCPU\n", final.Tasks, final.CPUMilli)
		fmt.Printf("  steady throughput:   %.0f tuples/s\n", final.SteadyThroughput)
		fmt.Printf("  total processed:     %.3fe9 tuples\n", experiment.TotalProcessed(res)/1e9)
		fmt.Printf("  cost per 1e9 tuples: $%.2f\n", experiment.CostPerBillion(res))
	}
	show("tasks-only (1-D candidates)", oneD)
	show("tasks × CPU (2-D candidates, VPA path)", twoD)

	c1 := experiment.CostPerBillion(oneD)
	c2 := experiment.CostPerBillion(twoD)
	if c1 > 0 {
		fmt.Printf("\nrelative cost of the 2-D search at this load: %+.1f%% per billion tuples\n", 100*(c2/c1-1))
		fmt.Println("(the larger configuration space pays an exploration tax up front; at")
		fmt.Println(" longer horizons or finer CPU grids the right-sizing gain dominates —")
		fmt.Println(" see BenchmarkAblationVerticalScaling)")
	}
}
