// Workload tracking (the Fig. 6 / Table 2 scenario): WordCount under an
// offered load that alternates high/low every 200 simulated minutes for
// 1000 minutes. Shows throughput curves (reconfiguration dips included),
// the per-phase Table 2 statistics, and the gain over a static
// configuration.
//
//	go run ./examples/workloadshift
//	go run ./examples/workloadshift -slots 40 -phase 10 -slotsec 120  # quick pass
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dragster/internal/experiment"
)

func main() {
	slots := flag.Int("slots", 100, "decision slots (paper: 100 × 10 min = 1000 min)")
	phase := flag.Int("phase", 20, "phase length in slots (paper: 20 = 200 min)")
	slotSec := flag.Int("slotsec", 600, "slot length in simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	r, err := experiment.Fig6(*slots, *phase, *slotSec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	experiment.RenderFig6(os.Stdout, r)
	fmt.Println()
	experiment.RenderTable2(os.Stdout, r)

	// The paper's cost-savings claim: compare low-phase cost per billion
	// tuples between Dhalion and Dragster-saddle.
	fmt.Println("\nlow-phase cost per 1e9 tuples:")
	var dhalionCost, saddleCost, n float64
	for pi, ph := range r.Phases["dhalion"] {
		if pi%2 == 1 { // odd phases are the low-load ones
			dhalionCost += ph.CostPerBillion
			saddleCost += r.Phases["dragster-saddle"][pi].CostPerBillion
			n++
		}
	}
	if n > 0 && dhalionCost > 0 {
		fmt.Printf("  dhalion $%.2f  dragster-saddle $%.2f  → %.1f%% savings\n",
			dhalionCost/n, saddleCost/n, 100*(1-saddleCost/dhalionCost))
	}
}
