package main

import (
	"io"
	"testing"

	"dragster/internal/experiment"
)

// TestWorkloadShiftSmoke runs a scaled-down version of what main() does —
// the alternating-load WordCount experiment plus the static-baseline
// comparison — so the example cannot rot away from the experiment API.
func TestWorkloadShiftSmoke(t *testing.T) {
	r, err := experiment.Fig6(8, 4, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range experiment.PolicyOrder {
		tp, ok := r.Throughput[name]
		if !ok || len(tp) != 8 {
			t.Fatalf("policy %s: %d throughput slots, want 8", name, len(tp))
		}
		if len(r.Phases[name]) == 0 {
			t.Fatalf("policy %s: no phase statistics", name)
		}
	}
	if r.StaticMeanThroughput <= 0 {
		t.Errorf("static baseline throughput = %v, want > 0", r.StaticMeanThroughput)
	}
	experiment.RenderFig6(io.Discard, r)
	experiment.RenderTable2(io.Discard, r)
}
