// Package dragster is the public API of the Dragster reproduction — an
// online-optimization-based dynamic resource allocation scheme for elastic
// stream processing with a sub-linear regret guarantee (Liu, Xu, Lau:
// "Online Resource Optimization for Elastic Stream Processing with Regret
// Guarantee", ICPP 2022).
//
// The package re-exports the stable surface of the internal packages via
// type aliases, so downstream users program against one import:
//
//	import "dragster"
//
//	b := dragster.NewGraphBuilder()
//	src := b.Source("source")
//	op := b.Operator("map")
//	sink := b.Sink("sink")
//	b.Edge(src, op, nil, 1)
//	b.Edge(op, sink, dragster.Selectivity(1.5), 1)
//	g, err := b.Build()
//	...
//	ctrl, err := dragster.NewController(dragster.ControllerConfig{
//	    Graph: g, YMax: 1e5, NoiseVar: 1e6,
//	})
//
// The full stack — simulated Kubernetes cluster, Flink session cluster,
// job monitor, history database, baselines, benchmark workloads and the
// experiment harness that regenerates every table and figure of the paper
// — is exposed below. See README.md for a tour and DESIGN.md for the
// architecture.
package dragster

import (
	"dragster/internal/baseline"
	"dragster/internal/cluster"
	"dragster/internal/core"
	"dragster/internal/dag"
	"dragster/internal/experiment"
	"dragster/internal/fleet"
	"dragster/internal/flink"
	"dragster/internal/monitor"
	"dragster/internal/osp"
	"dragster/internal/store"
	"dragster/internal/storm"
	"dragster/internal/streamsim"
	"dragster/internal/ucb"
	"dragster/internal/workload"
)

// ---- Application model (DAG of Eq. 1–4) ----

// Graph is a validated stream-application DAG.
type Graph = dag.Graph

// GraphBuilder accumulates sources, operators, sinks and edges.
type GraphBuilder = dag.Builder

// NodeID identifies a node within one Graph.
type NodeID = dag.NodeID

// ThroughputFunc is the edge mapping h_{i,j} of Eq. 3.
type ThroughputFunc = dag.ThroughputFunc

// Linear, MinRate and Tanh are the throughput-function forms of Eq. 2.
type (
	Linear  = dag.Linear
	MinRate = dag.MinRate
	Tanh    = dag.Tanh
)

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return dag.NewBuilder() }

// Selectivity returns the one-input linear throughput function h(e) = s·e.
func Selectivity(s float64) Linear { return dag.Selectivity(s) }

// NewLinear builds Eq. 2a; NewMinRate Eq. 2b; NewTanh Eq. 2c.
var (
	NewLinear  = dag.NewLinear
	NewMinRate = dag.NewMinRate
	NewTanh    = dag.NewTanh
)

// LearnedLinear is a selectivity learned online by regression — the
// Theorem 2 setting for operators whose logic is unknown.
type LearnedLinear = dag.LearnedLinear

// NewLearnedLinear starts a learner from a prior selectivity guess.
var NewLearnedLinear = dag.NewLearnedLinear

// ---- Controller (Algorithm 2) ----

// Controller is the two-level Dragster optimization engine.
type Controller = core.Controller

// ControllerConfig assembles a Controller.
type ControllerConfig = core.Config

// Autoscaler is the per-slot policy interface shared with the baselines.
type Autoscaler = core.Autoscaler

// Method selects the level-1 algorithm.
type Method = osp.Method

// Level-1 algorithm choices.
const (
	SaddlePoint     = osp.SaddlePoint
	GradientDescent = osp.GradientDescent
)

// NewController builds the Dragster controller.
func NewController(cfg ControllerConfig) (*Controller, error) { return core.New(cfg) }

// Acquisition selects the GP-UCB scoring rule (Eq. 18 vs conventional).
type Acquisition = ucb.Acquisition

// Acquisition choices.
const (
	ExtendedUCB     = ucb.Extended
	ConventionalUCB = ucb.Conventional
	ThompsonUCB     = ucb.Thompson
)

// ---- Baselines ----

// Dhalion is the rule-based baseline of the evaluation.
type Dhalion = baseline.Dhalion

// DS2 is the proportional-controller baseline from related work.
type DS2 = baseline.DS2

// NewDhalion and NewDS2 construct the baselines.
var (
	NewDhalion = baseline.NewDhalion
	NewDS2     = baseline.NewDS2
)

// ---- Substrate: Kubernetes, Flink, dataflow simulator ----

// KubeCluster simulates the Kubernetes control plane (nodes, pods,
// deployments, scheduler, metrics server, cost meter).
type KubeCluster = cluster.Cluster

// ResourceSpec is a pod resource request.
type ResourceSpec = cluster.ResourceSpec

// NewKubeCluster returns an empty cluster.
var NewKubeCluster = cluster.New

// WithPricePerCoreHour configures the cost meter.
var WithPricePerCoreHour = cluster.WithPricePerCoreHour

// StormCluster is an Apache-Storm-like cluster on Kubernetes — the second
// substrate the paper names (rebalance-based rescaling, §3.2).
type StormCluster = storm.Cluster

// StormTopology is a running Storm topology.
type StormTopology = storm.Topology

// NewStormCluster creates the Storm control plane (Nimbus included).
var NewStormCluster = storm.NewCluster

// DefaultStormOptions returns the standard Storm setup (10 s rebalance
// pause, homogeneous 1-CPU workers).
var DefaultStormOptions = storm.DefaultOptions

// FlinkSession is a Flink session cluster on Kubernetes.
type FlinkSession = flink.SessionCluster

// FlinkJob is a running Flink application.
type FlinkJob = flink.Job

// FlinkOptions configures a session cluster.
type FlinkOptions = flink.Options

// NewFlinkSession creates a session cluster (JobManager included).
var NewFlinkSession = flink.NewSession

// DefaultFlinkOptions mirrors the paper's setup (1 CPU / 2 GB slots, 30 s
// savepoint pause).
var DefaultFlinkOptions = flink.DefaultOptions

// Engine is the ground-truth dataflow simulator.
type Engine = streamsim.Engine

// EngineConfig assembles an Engine.
type EngineConfig = streamsim.Config

// CapacityModel maps parallelism to ground-truth service capacity.
type CapacityModel = streamsim.CapacityModel

// NewEngine builds a dataflow simulator.
var NewEngine = streamsim.New

// Capacity-curve constructors for custom workloads: PowerCurve (concave
// diminishing returns), SaturatingCurve (external-service ceiling),
// CPUScaledCurve (resource-aware: capacity depends on per-pod CPU too).
var (
	NewPowerCurve      = streamsim.NewPowerCurve
	NewSaturatingCurve = streamsim.NewSaturatingCurve
	NewCPUScaledCurve  = streamsim.NewCPUScaledCurve
	NewLinearCurve     = streamsim.NewLinearCurve
)

// ---- Monitoring and history ----

// Monitor is the Job Monitor (Eq. 8 capacity estimation, backpressure).
type Monitor = monitor.Monitor

// MonitorConfig tunes backpressure detection (zero value = defaults).
type MonitorConfig = monitor.Config

// Snapshot is the per-slot metrics view consumed by Autoscalers.
type Snapshot = monitor.Snapshot

// NewMonitor wraps a metrics source.
var NewMonitor = monitor.New

// DirectSource reads metrics straight off a FlinkJob.
type DirectSource = monitor.DirectSource

// HistoryDB is the candidate-configuration and observation database.
type HistoryDB = store.DB

// NewHistoryDB returns an empty database.
var NewHistoryDB = store.New

// ---- Workloads and experiments ----

// Workload bundles a benchmark application (graph, hidden capacity
// curves, offered-load levels).
type Workload = workload.Spec

// Benchmark workload constructors (Nexmark suite + Yahoo streaming
// benchmark) and lookup.
var (
	WordCountWorkload   = workload.WordCount
	WordCount2DWorkload = workload.WordCount2D
	GroupWorkload       = workload.Group
	AsyncIOWorkload     = workload.AsyncIO
	JoinWorkload        = workload.Join
	WindowWorkload      = workload.Window
	YahooWorkload       = workload.Yahoo
	WorkloadByName      = workload.ByName
	AllWorkloads        = workload.All
)

// RateFunc yields offered source rates per (slot, second).
type RateFunc = workload.RateFunc

// Offered-load profile constructors.
var (
	ConstantRates = workload.Constant
	CycleRates    = workload.Cycle
	StepRates     = workload.StepAt
	SinusoidRates = workload.Sinusoid
	TraceRates    = workload.Trace
	LoadTraceCSV  = workload.LoadTraceCSV
)

// Scenario describes one experiment run; Run executes it.
type Scenario = experiment.Scenario

// Result is a completed run.
type Result = experiment.Result

// RunScenario executes a scenario under a policy factory.
var RunScenario = experiment.Run

// PolicyFactory builds an Autoscaler for a scenario.
type PolicyFactory = experiment.PolicyFactory

// Policy factories for the three evaluated schemes (plus extras).
var (
	DragsterSaddlePolicy   = experiment.DragsterSaddle
	DragsterOGDPolicy      = experiment.DragsterOGD
	DragsterThompsonPolicy = experiment.DragsterThompson
	DhalionPolicy          = experiment.DhalionPolicy
	DS2Policy              = experiment.DS2Policy
)

// Fleet is the multi-job control plane: N controllers sharing one
// cluster under a global Σ-tasks budget, with admission control,
// dual-price budget arbitration, and cross-job GP warm-starts.
type (
	Fleet            = fleet.Manager
	FleetConfig      = fleet.Config
	FleetJobSpec     = fleet.JobSpec
	FleetResult      = fleet.Result
	FleetArbitration = fleet.Arbitration
	FleetScenario    = experiment.FleetScenario
	FleetScore       = experiment.FleetScore
)

// Fleet arbitration rules.
const (
	FleetDualPrice  = fleet.DualPrice
	FleetEqualSplit = fleet.EqualSplit
)

// NewFleet builds a fleet manager over a fresh shared cluster.
var NewFleet = fleet.New

// RunFleetScenario runs a fleet and scores every tenant's regret and
// attributed cost against its unbudgeted single-job optimum.
var RunFleetScenario = experiment.RunFleetScenario
