# Dragster reproduction — common workflows.

GO ?= go

.PHONY: all build test race cover bench bench-gp bench-e2e bench-e2e-gate bench-snapshot bench-flat fuzz-smoke lint lint-sarif repro repro-quick examples clean

all: build test lint

build:
	$(GO) build ./...
	$(GO) vet ./...

# Static-analysis suite (internal/analysis): simclock, detrand, maporder,
# errflow, chaoshook, fleethook, hotpath, goroutine, lockorder — the
# determinism, error-handling, fault-model, allocation, and concurrency
# invariants. Runs through `go vet -vettool` so analyzers see
# build-accurate type information. See DESIGN.md "Static analysis".
lint:
	$(GO) build -o bin/dragsterlint ./cmd/dragsterlint
	$(GO) vet -vettool=$(CURDIR)/bin/dragsterlint ./...

# Same run in SARIF: cmd/go echoes each package's tool output on stderr,
# so the stream is captured there and merged into one SARIF 2.1.0 file
# (dragsterlint.sarif) for CI artifact upload / code-scanning import.
# The text-mode `lint` target stays the gate; this one always exits 0
# per package and reports through the document instead.
lint-sarif:
	$(GO) build -o bin/dragsterlint ./cmd/dragsterlint
	$(GO) vet -vettool=$(CURDIR)/bin/dragsterlint -sarif ./... 2> lint.stream
	bin/dragsterlint -merge-sarif lint.stream > dragsterlint.sarif
	rm -f lint.stream

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-package coverage with the checked-in floors enforced
# (COVERAGE_FLOOR.txt; see cmd/covergate). CI runs the same gate.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/covergate -profile cover.out -floors COVERAGE_FLOOR.txt

# Short coverage-guided run of every fuzz target (go test accepts one
# -fuzz pattern per invocation, hence the loop). Catches fuzz-harness rot
# and shallow panics; long campaigns stay a manual job.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzNewCholesky -fuzztime 3s ./internal/linalg
	$(GO) test -run NONE -fuzz FuzzCholeskyExtend -fuzztime 3s ./internal/linalg
	$(GO) test -run NONE -fuzz FuzzCholeskyDowndate -fuzztime 3s ./internal/linalg
	$(GO) test -run NONE -fuzz FuzzGraphBuild -fuzztime 3s ./internal/dag
	$(GO) test -run NONE -fuzz FuzzFleetEvent -fuzztime 3s ./internal/fleet/event
	$(GO) test -run NONE -fuzz FuzzLoadTraceCSV -fuzztime 3s ./internal/workload

# Everything: the GP-stack micro-benchmarks and the end-to-end harness
# benchmarks.
bench: bench-gp bench-e2e

# GP/linalg/UCB micro-benchmarks only (the optimizer inner loops).
bench-gp:
	$(GO) test -run NONE -bench 'Posterior|Observe|Select|MaximizeLML|Cholesky' -benchmem \
		./internal/gp ./internal/ucb ./internal/linalg

# End-to-end harness benchmarks — full Run rounds/sec, the 8-seed Repeat
# fan-out at 1 and 4 workers, and fleet rounds at 10 and 100 tenants —
# snapshotted into BENCH_e2e.json for the CI regression gate.
bench-e2e:
	$(GO) test -run NONE -bench 'RunRoundsPerSec|Repeat8Seeds|FleetRound' -benchmem \
		./internal/experiment ./internal/fleet | $(GO) run ./cmd/benchsnapshot -out BENCH_e2e.json -label "make bench-e2e"

# Re-run the e2e benchmarks and fail if any ns/op regressed more than 20%
# against the committed snapshot (CI runs the same gate).
bench-e2e-gate:
	$(GO) test -run NONE -bench 'RunRoundsPerSec|Repeat8Seeds|FleetRound' -benchmem \
		./internal/experiment ./internal/fleet | $(GO) run ./cmd/benchsnapshot -gate BENCH_e2e.json

# Snapshot the GP-stack micro-benchmarks (posterior, incremental refit,
# UCB select, LML search, Cholesky) into BENCH_gp.json so perf PRs can
# diff ns/op and allocs/op against the recorded trajectory.
bench-snapshot:
	$(GO) test -run NONE -bench 'Posterior|Observe|Select|MaximizeLML|Cholesky' -benchmem \
		./internal/gp ./internal/ucb ./internal/linalg | $(GO) run ./cmd/benchsnapshot -out BENCH_gp.json

# Flat-horizon gate: inside the committed BENCH_gp.json, the 10k-warm
# budgeted Observe/Select benchmarks must sit within 1.2× of their
# 1k-warm twins — the bounded-memory posterior's whole point is that
# per-round cost depends on the budget, not the horizon. Reads only the
# snapshot, so CI can run it without timing jitter.
bench-flat:
	$(GO) run ./cmd/benchsnapshot -flat BENCH_gp.json \
		-pair BenchmarkObserve1kBudget256=BenchmarkObserve10kBudget256 \
		-pair BenchmarkSelect1kBudget256=BenchmarkSelect10kBudget256

# Regenerate every paper table and figure at the paper's 10-minute slots.
repro:
	$(GO) run ./cmd/benchmark -exp all -slotsec 600 | tee results_full.txt

# Same experiments at 1-minute slots (~10× faster, same shapes).
repro-quick:
	$(GO) run ./cmd/benchmark -exp all -slotsec 60

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customdag
	$(GO) run ./examples/vertical
	$(GO) run ./examples/wordcount -slotsec 60
	$(GO) run ./examples/workloadshift -slots 40 -phase 10 -slotsec 60
	$(GO) run ./examples/yahoo -slots 24 -change 12 -slotsec 60

clean:
	$(GO) clean ./...
	rm -rf bin
