package store

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSetCandidatesValidation(t *testing.T) {
	d := New()
	if err := d.SetCandidates("", [][]float64{{1}}); err == nil {
		t.Error("empty operator accepted")
	}
	if err := d.SetCandidates("op", nil); err == nil {
		t.Error("empty candidates accepted")
	}
	if err := d.SetCandidates("op", [][]float64{{1}, {1, 2}}); err == nil {
		t.Error("mixed dimensions accepted")
	}
	if err := d.SetCandidates("op", [][]float64{{}}); err == nil {
		t.Error("zero-dimension candidates accepted")
	}
}

func TestCandidatesCopySemantics(t *testing.T) {
	d := New()
	in := [][]float64{{1}, {2}}
	if err := d.SetCandidates("op", in); err != nil {
		t.Fatal(err)
	}
	in[0][0] = 99
	got := d.Candidates("op")
	if got[0][0] != 1 {
		t.Error("SetCandidates did not copy input")
	}
	got[1][0] = 99
	if d.Candidates("op")[1][0] != 2 {
		t.Error("Candidates leaked internal storage")
	}
	if d.Candidates("missing") != nil {
		t.Error("missing operator should return nil")
	}
}

func TestAppendHistory(t *testing.T) {
	d := New()
	if err := d.Append(Record{Operator: "", Config: []float64{1}}); err == nil {
		t.Error("record without operator accepted")
	}
	if err := d.Append(Record{Operator: "op"}); err == nil {
		t.Error("record without config accepted")
	}
	cfg := []float64{3}
	if err := d.Append(Record{Slot: 1, Operator: "map", Config: cfg, CapacityObs: 100}); err != nil {
		t.Fatal(err)
	}
	cfg[0] = 99 // must not affect the stored record
	if err := d.Append(Record{Slot: 2, Operator: "shuffle", Config: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	h := d.History("map")
	if len(h) != 1 || h[0].Config[0] != 3 || h[0].CapacityObs != 100 {
		t.Errorf("History(map) = %+v", h)
	}
	h[0].Config[0] = 77
	if d.History("map")[0].Config[0] != 3 {
		t.Error("History leaked internal storage")
	}
	if len(d.History("nobody")) != 0 {
		t.Error("unknown operator has history")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := New()
	if err := d.SetCandidates("map", [][]float64{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Slot: 4, Operator: "map", Config: []float64{2}, Throughput: 123, Util: 0.7}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if err := d2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("restored Len = %d", d2.Len())
	}
	h := d2.History("map")
	if h[0].Throughput != 123 || h[0].Util != 0.7 || h[0].Slot != 4 {
		t.Errorf("restored record = %+v", h[0])
	}
	if got := d2.Candidates("map"); len(got) != 3 || got[2][0] != 3 {
		t.Errorf("restored candidates = %v", got)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	d := New()
	if err := d.Restore(strings.NewReader("{not json")); err == nil {
		t.Error("garbage restore succeeded")
	}
	// Valid JSON with no candidates leaves a usable empty map.
	if err := d.Restore(strings.NewReader(`{"records": null}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.SetCandidates("op", [][]float64{{1}}); err != nil {
		t.Errorf("store unusable after minimal restore: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = d.Append(Record{Slot: i, Operator: "op", Config: []float64{float64(w)}})
				_ = d.History("op")
				_ = d.Len()
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 800 {
		t.Errorf("Len = %d, want 800", d.Len())
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := New()
	if err := d.SetCandidates("map", [][]float64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Slot: 1, Operator: "map", Config: []float64{2}, CapacityObs: 50}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/history.json"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if err := d2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 || len(d2.Candidates("map")) != 2 {
		t.Errorf("restored db: len=%d candidates=%v", d2.Len(), d2.Candidates("map"))
	}
	if err := d2.LoadFile(path + ".missing"); err == nil {
		t.Error("missing file load succeeded")
	}
	if err := d.SaveFile("/nonexistent-dir/x.json"); err == nil {
		t.Error("save into missing directory succeeded")
	}
}

func TestTaskGrid(t *testing.T) {
	g, err := TaskGrid(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 10 || g[0][0] != 1 || g[9][0] != 10 {
		t.Errorf("TaskGrid = %v", g)
	}
	if _, err := TaskGrid(0, 5); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := TaskGrid(5, 2); err == nil {
		t.Error("max < min accepted")
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(1, 2, 500, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 4 {
		t.Fatalf("Grid2D size = %d, want 4", len(g))
	}
	if g[0][0] != 1 || g[0][1] != 500 || g[3][0] != 2 || g[3][1] != 1000 {
		t.Errorf("Grid2D = %v", g)
	}
	if _, err := Grid2D(2, 1, 1, 2, 1); err == nil {
		t.Error("bad task bounds accepted")
	}
	if _, err := Grid2D(1, 2, 1, 2, 0); err == nil {
		t.Error("zero step accepted")
	}
}
