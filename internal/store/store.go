// Package store implements Dragster's Database component: the list of
// candidate configurations per operator and the timestamped history of
// (configuration, throughput, observed capacity, utilization) tuples the
// optimization engine learns from. The store can snapshot itself to JSON
// and restore, which is what lets a restarted controller warm-start its
// Gaussian processes ("learn from history").
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record is one observation of one operator during one decision slot.
type Record struct {
	Slot        int       `json:"slot"`
	Operator    string    `json:"operator"`
	Config      []float64 `json:"config"`       // e.g. [tasks] or [tasks, cpuMilli]
	Throughput  float64   `json:"throughput"`   // application throughput that slot
	CapacityObs float64   `json:"capacity_obs"` // Eq. 8 sample
	Util        float64   `json:"util"`
}

// DB is the in-memory database. It is safe for concurrent use.
type DB struct {
	mu         sync.RWMutex
	records    []Record
	candidates map[string][][]float64
}

// New returns an empty database.
func New() *DB {
	return &DB{candidates: make(map[string][][]float64)}
}

// SetCandidates registers the candidate configuration list for an
// operator, replacing any previous list. Configurations are copied.
func (d *DB) SetCandidates(operator string, configs [][]float64) error {
	if operator == "" {
		return errors.New("store: empty operator name")
	}
	if len(configs) == 0 {
		return fmt.Errorf("store: operator %q needs at least one candidate", operator)
	}
	dim := len(configs[0])
	cp := make([][]float64, len(configs))
	for i, c := range configs {
		if len(c) != dim || dim == 0 {
			return fmt.Errorf("store: candidate %d of %q has dimension %d, want %d > 0", i, operator, len(c), dim)
		}
		cp[i] = append([]float64(nil), c...)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.candidates[operator] = cp
	return nil
}

// Candidates returns a copy of the operator's candidate list, or nil when
// none is registered.
func (d *DB) Candidates(operator string) [][]float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	src, ok := d.candidates[operator]
	if !ok {
		return nil
	}
	out := make([][]float64, len(src))
	for i, c := range src {
		out[i] = append([]float64(nil), c...)
	}
	return out
}

// Append stores a record. The config slice is copied.
func (d *DB) Append(r Record) error {
	if r.Operator == "" {
		return errors.New("store: record without operator")
	}
	if len(r.Config) == 0 {
		return errors.New("store: record without config")
	}
	r.Config = append([]float64(nil), r.Config...)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.records = append(d.records, r)
	return nil
}

// History returns copies of all records for one operator in insertion
// order.
func (d *DB) History(operator string) []Record {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Record
	for _, r := range d.records {
		if r.Operator == operator {
			rc := r
			rc.Config = append([]float64(nil), r.Config...)
			out = append(out, rc)
		}
	}
	return out
}

// Len returns the total number of records.
func (d *DB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.records)
}

// snapshot is the JSON wire format.
type snapshot struct {
	Records    []Record               `json:"records"`
	Candidates map[string][][]float64 `json:"candidates"`
}

// Snapshot writes the full database as JSON.
func (d *DB) Snapshot(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snapshot{Records: d.records, Candidates: d.candidates})
}

// Restore replaces the database contents from a Snapshot stream.
func (d *DB) Restore(r io.Reader) error {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.records = s.Records
	if s.Candidates == nil {
		s.Candidates = make(map[string][][]float64)
	}
	d.candidates = s.Candidates
	return nil
}

// SaveFile snapshots the database to path (written atomically via a
// temporary file in the same directory).
func (d *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	if err := d.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

// LoadFile restores the database from a SaveFile snapshot.
func (d *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	defer f.Close()
	return d.Restore(f)
}

// TaskGrid returns the 1-D candidate list {min, ..., max} task counts, the
// paper's configuration space (1..10 tasks per operator).
func TaskGrid(min, max int) ([][]float64, error) {
	if min < 1 || max < min {
		return nil, fmt.Errorf("store: invalid task grid [%d, %d]", min, max)
	}
	out := make([][]float64, 0, max-min+1)
	for n := min; n <= max; n++ {
		out = append(out, []float64{float64(n)})
	}
	return out, nil
}

// Grid2D returns the cross product {t0..t1} × {c0..c1 step} as 2-D
// candidates (tasks, CPU millicores), exercising the multi-dimensional
// configuration extension.
func Grid2D(t0, t1, c0, c1, step int) ([][]float64, error) {
	if t0 < 1 || t1 < t0 || c0 < 1 || c1 < c0 || step < 1 {
		return nil, fmt.Errorf("store: invalid 2-D grid [%d %d]×[%d %d]/%d", t0, t1, c0, c1, step)
	}
	var out [][]float64
	for t := t0; t <= t1; t++ {
		for c := c0; c <= c1; c += step {
			out = append(out, []float64{float64(t), float64(c)})
		}
	}
	return out, nil
}
