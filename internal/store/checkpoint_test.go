package store

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

type arbiterSection struct {
	Round   int            `json:"round"`
	Budgets map[string]int `json:"budgets"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := NewCheckpoint("fleet")
	want := arbiterSection{Round: 7, Budgets: map[string]int{"alpha": 9, "beta": 4}}
	if err := ck.Put("arbiter", want); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := ck.Put("meta", map[string]int{"slots": 12}); err != nil {
		t.Fatalf("put meta: %v", err)
	}
	var buf bytes.Buffer
	if err := ck.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	got, err := RestoreCheckpoint(bytes.NewReader(buf.Bytes()), "fleet")
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	var sec arbiterSection
	if err := got.Get("arbiter", &sec); err != nil {
		t.Fatalf("get: %v", err)
	}
	if sec.Round != want.Round || sec.Budgets["alpha"] != 9 || sec.Budgets["beta"] != 4 {
		t.Fatalf("restored %+v, want %+v", sec, want)
	}
	if s := got.Sections(); len(s) != 2 || s[0] != "arbiter" || s[1] != "meta" {
		t.Fatalf("sections %v, want [arbiter meta]", s)
	}
	if !got.Has("meta") || got.Has("nope") {
		t.Fatal("Has misreports sections")
	}
}

func TestCheckpointDeterministicBytes(t *testing.T) {
	build := func() []byte {
		ck := NewCheckpoint("fleet")
		// Insertion order must not leak into the bytes.
		for _, name := range []string{"zeta", "alpha", "mid"} {
			if err := ck.Put(name, map[string]int{"v": len(name)}); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := ck.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("checkpoint bytes are not deterministic")
	}
}

func TestCheckpointKindAndVersionGuards(t *testing.T) {
	ck := NewCheckpoint("fleet")
	if err := ck.Put("s", 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCheckpoint(bytes.NewReader(buf.Bytes()), "history"); err == nil {
		t.Fatal("wrong kind accepted")
	}
	bad := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if _, err := RestoreCheckpoint(strings.NewReader(bad), "fleet"); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := RestoreCheckpoint(strings.NewReader("{garbage"), "fleet"); err == nil {
		t.Fatal("malformed stream accepted")
	}
}

func TestCheckpointMissingSection(t *testing.T) {
	ck := NewCheckpoint("fleet")
	var v int
	if err := ck.Get("absent", &v); err == nil {
		t.Fatal("missing section read as success")
	}
	if err := ck.Put("", 1); err == nil {
		t.Fatal("empty section name accepted")
	}
}

func TestCheckpointSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	ck := NewCheckpoint("fleet")
	if err := ck.Put("round", 3); err != nil {
		t.Fatal(err)
	}
	if err := ck.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadCheckpointFile(path, "fleet")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var round int
	if err := got.Get("round", &round); err != nil || round != 3 {
		t.Fatalf("round = %d, %v; want 3", round, err)
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "absent"), "fleet"); err == nil {
		t.Fatal("loading a missing file should error")
	}
}
