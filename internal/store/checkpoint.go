package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Checkpoint is a generic, versioned, sectioned snapshot envelope: each
// subsystem that needs durable state (the fleet arbiter, the daemon's
// input log) serializes itself into a named JSON section, and the whole
// envelope round-trips through the same Snapshot/Restore contract the
// history DB uses. Sections are opaque to the envelope, so a replica can
// restore only the sections it understands and verify the rest by
// inspection.
//
// The wire form is deterministic: encoding/json writes map keys in
// sorted order, so the same state always produces the same bytes — a
// checkpoint diff is therefore a state diff.
type Checkpoint struct {
	// Kind names the producing subsystem (e.g. "fleet"); Restore refuses
	// an envelope of the wrong kind so a fleet replica cannot boot from a
	// history-DB snapshot.
	Kind string
	// Version guards the section schema; bump it when a section's layout
	// changes incompatibly.
	Version int

	sections map[string]json.RawMessage
}

// checkpointVersion is the current envelope schema version.
const checkpointVersion = 1

// NewCheckpoint returns an empty envelope of the given kind.
func NewCheckpoint(kind string) *Checkpoint {
	return &Checkpoint{
		Kind:     kind,
		Version:  checkpointVersion,
		sections: make(map[string]json.RawMessage),
	}
}

// Put serializes v into the named section, replacing any previous value.
func (c *Checkpoint) Put(section string, v any) error {
	if section == "" {
		return errors.New("store: checkpoint section without a name")
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: checkpoint section %q: %w", section, err)
	}
	if c.sections == nil {
		c.sections = make(map[string]json.RawMessage)
	}
	c.sections[section] = b
	return nil
}

// Get deserializes the named section into v. Missing sections error so a
// replica notices a truncated envelope instead of restoring zero values.
func (c *Checkpoint) Get(section string, v any) error {
	raw, ok := c.sections[section]
	if !ok {
		return fmt.Errorf("store: checkpoint has no section %q", section)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("store: checkpoint section %q: %w", section, err)
	}
	return nil
}

// Has reports whether the named section is present.
func (c *Checkpoint) Has(section string) bool {
	_, ok := c.sections[section]
	return ok
}

// Sections lists the section names in sorted order.
func (c *Checkpoint) Sections() []string {
	out := make([]string, 0, len(c.sections))
	for name := range c.sections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// checkpointWire is the JSON envelope layout.
type checkpointWire struct {
	Kind     string                     `json:"kind"`
	Version  int                        `json:"version"`
	Sections map[string]json.RawMessage `json:"sections"`
}

// Snapshot writes the envelope as indented JSON (sorted keys, so the
// bytes are a pure function of the state).
func (c *Checkpoint) Snapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(checkpointWire{Kind: c.Kind, Version: c.Version, Sections: c.sections})
}

// RestoreCheckpoint reads a Snapshot stream and verifies its kind.
func RestoreCheckpoint(r io.Reader, wantKind string) (*Checkpoint, error) {
	var wire checkpointWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("store: restore checkpoint: %w", err)
	}
	if wire.Kind != wantKind {
		return nil, fmt.Errorf("store: checkpoint kind %q, want %q", wire.Kind, wantKind)
	}
	if wire.Version != checkpointVersion {
		return nil, fmt.Errorf("store: checkpoint version %d, want %d", wire.Version, checkpointVersion)
	}
	if wire.Sections == nil {
		wire.Sections = make(map[string]json.RawMessage)
	}
	return &Checkpoint{Kind: wire.Kind, Version: wire.Version, sections: wire.Sections}, nil
}

// SaveFile snapshots the checkpoint to path atomically (temporary file
// plus rename, like DB.SaveFile).
func (c *Checkpoint) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	if err := c.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpointFile restores a checkpoint from a SaveFile snapshot.
func LoadCheckpointFile(path, wantKind string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: load checkpoint: %w", err)
	}
	defer f.Close()
	return RestoreCheckpoint(f, wantKind)
}
