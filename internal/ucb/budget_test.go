package ucb

import (
	"math"
	"testing"

	"dragster/internal/gp"
	"dragster/internal/stats"
)

// budgetedSearcher returns a Searcher over a 1-D task grid with the given
// observation budget and hyperparameter refit cadence.
func budgetedSearcher(t testing.TB, budget, refitEvery int, policy gp.EvictionPolicy) *Searcher {
	t.Helper()
	cands := make([][]float64, 20)
	for i := range cands {
		cands[i] = []float64{1 + float64(i)*0.5}
	}
	s, err := NewSearcher(Config{
		NoiseVar:          25,
		Candidates:        cands,
		RefitEvery:        refitEvery,
		ObservationBudget: budget,
		Eviction:          policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bruteForceSelect recomputes the Extended acquisition argmax from a
// fresh exact regressor fed only the searcher's retained observations —
// no cross-covariance cache, no incremental factor. This is the oracle
// the cached budgeted Select must agree with.
func bruteForceSelect(t *testing.T, s *Searcher, target, beta float64) int {
	t.Helper()
	ref, err := gp.NewRegressor(s.Regressor().Kernel(), s.Regressor().NoiseVar())
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := s.Regressor().Observations()
	for i := range xs {
		if err := ref.Observe(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	best, idx := math.Inf(-1), -1
	for i, cand := range s.Candidates() {
		mu, variance, err := ref.Posterior(cand)
		if err != nil {
			t.Fatal(err)
		}
		score := -math.Abs(mu-target) + math.Sqrt(beta)*math.Sqrt(variance)
		if score > best {
			best, idx = score, i
		}
	}
	return idx
}

// TestBudgetedSelectMatchesBruteForce drives a full observe/select loop
// with eviction churning the retained set (and the hyperparameter refit
// swapping kernels mid-run) and checks every Select against a from-scratch
// brute-force scoring of the retained observations. This pins the whole
// chain: eviction hook → cache surgery → PosteriorFromCross.
func TestBudgetedSelectMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name       string
		budget     int
		refitEvery int
		policy     gp.EvictionPolicy
	}{
		{"lowest-information", 8, 0, gp.EvictLowestInformation},
		{"sliding-window", 8, 0, gp.EvictOldest},
		{"with-hyper-refits", 10, 7, gp.EvictLowestInformation},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := budgetedSearcher(t, tc.budget, tc.refitEvery, tc.policy)
			rng := stats.NewRNG(29)
			for round := 0; round < 60; round++ {
				n := rng.Uniform(1, 10)
				if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
					t.Fatal(err)
				}
				if got := s.Regressor().Len(); got > tc.budget {
					t.Fatalf("round %d: retained %d exceeds budget %d", round, got, tc.budget)
				}
				_, idx, beta, err := s.Select(500)
				if err != nil {
					t.Fatal(err)
				}
				if want := bruteForceSelect(t, s, 500, beta); idx != want {
					t.Fatalf("round %d: cached Select chose %d, brute force %d", round, idx, want)
				}
			}
			if s.Regressor().Evictions() == 0 {
				t.Fatal("no evictions happened; the test did not exercise the cache surgery")
			}
		})
	}
}

// TestEvictionKeepsCrossCacheAligned white-box checks the cache after
// churn: every cached entry must equal a fresh kernel evaluation against
// the retained observation it claims to cover.
func TestEvictionKeepsCrossCacheAligned(t *testing.T) {
	s := budgetedSearcher(t, 6, 0, gp.EvictLowestInformation)
	rng := stats.NewRNG(31)
	for round := 0; round < 40; round++ {
		n := rng.Uniform(1, 10)
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := s.Select(500); err != nil { // force a sync
		t.Fatal(err)
	}
	xs, _ := s.Regressor().Observations()
	if s.crossN != len(xs) {
		t.Fatalf("crossN = %d, retained = %d", s.crossN, len(xs))
	}
	k := s.Regressor().Kernel()
	c := len(s.candidates)
	for i, x := range xs {
		for ci, cand := range s.candidates {
			if got, want := s.crossK[i*c+ci], k.Eval(x, cand); got != want {
				t.Fatalf("crossK[%d][%d] = %v, fresh eval = %v: cache misaligned after eviction", i, ci, got, want)
			}
		}
	}
}

// TestSelectAfterEvictingTheNewPoint covers the corner where the
// observation just fed is itself the lowest-information point and is
// evicted before it ever reaches the cache: the cache must stay aligned
// (idx == crossN no-op path in onEvict).
func TestSelectAfterEvictingTheNewPoint(t *testing.T) {
	s := budgetedSearcher(t, 3, 0, gp.EvictLowestInformation)
	// Three well-separated anchors fill the budget.
	for _, n := range []float64{1, 5, 10} {
		if err := s.Observe([]float64{n}, capCurve(n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := s.Select(500); err != nil {
		t.Fatal(err)
	}
	// A near-duplicate of the first anchor carries the least conditional
	// information and is evicted immediately — it is the new point itself.
	if err := s.Observe([]float64{1 + 1e-9}, capCurve(1)); err != nil {
		t.Fatal(err)
	}
	xs, _ := s.Regressor().Observations()
	if len(xs) != 3 || xs[0][0] != 1 || xs[1][0] != 5 || xs[2][0] != 10 {
		t.Fatalf("retained set %v, want the three anchors", xs)
	}
	_, idx, beta, err := s.Select(500)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForceSelect(t, s, 500, beta); idx != want {
		t.Fatalf("Select chose %d after new-point eviction, brute force %d", idx, want)
	}
}

// TestConfigRejectsNegativeBudget: the knob is validated at construction.
func TestConfigRejectsNegativeBudget(t *testing.T) {
	_, err := NewSearcher(Config{
		NoiseVar:          25,
		Candidates:        [][]float64{{1}, {2}},
		ObservationBudget: -1,
	})
	if err == nil {
		t.Fatal("negative observation budget accepted")
	}
}

// benchmarkSelectBudget times steady-state Select after warm observations
// at a fixed budget of 256. The 1k/10k pair must be flat (within 1.2×,
// gated in CI via BENCH_gp.json): per-round cost depends on the budget,
// not the horizon.
func benchmarkSelectBudget(b *testing.B, warm int) {
	cands := make([][]float64, 40)
	for i := range cands {
		cands[i] = []float64{1 + float64(i)*0.25}
	}
	s, err := NewSearcher(Config{
		NoiseVar:          25,
		Candidates:        cands,
		ObservationBudget: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(19)
	for i := 0; i < warm; i++ {
		n := rng.Uniform(1, 10)
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.Select(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect1kBudget256(b *testing.B)  { benchmarkSelectBudget(b, 1_000) }
func BenchmarkSelect10kBudget256(b *testing.B) { benchmarkSelectBudget(b, 10_000) }
