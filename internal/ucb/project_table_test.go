package ucb

import (
	"testing"
)

// TestProjectTasksEdgeTable drives the budget projection through its
// degenerate corners: a budget with zero slack (exactly minTasks per
// operator), budgets below the floor, zero/invalid budgets, and
// single-operator jobs.
func TestProjectTasksEdgeTable(t *testing.T) {
	flat := func(int, int) float64 { return 1 }
	cases := []struct {
		name     string
		desired  []int
		budget   int
		minTasks int
		want     []int
		wantErr  bool
	}{
		{
			name:     "zero-slack-budget-pins-everything-to-min",
			desired:  []int{8, 5, 3},
			budget:   3,
			minTasks: 1,
			want:     []int{1, 1, 1},
		},
		{
			name:     "zero-budget-infeasible",
			desired:  []int{2},
			budget:   0,
			minTasks: 1,
			wantErr:  true,
		},
		{
			name:     "budget-below-floor-infeasible",
			desired:  []int{4, 4},
			budget:   3,
			minTasks: 2,
			wantErr:  true,
		},
		{
			name:     "min-tasks-zero-rejected",
			desired:  []int{2},
			budget:   2,
			minTasks: 0,
			wantErr:  true,
		},
		{
			name:     "single-operator-squeezed",
			desired:  []int{9},
			budget:   4,
			minTasks: 1,
			want:     []int{4},
		},
		{
			name:     "single-operator-at-exact-budget",
			desired:  []int{4},
			budget:   4,
			minTasks: 1,
			want:     []int{4},
		},
		{
			name:     "desired-below-min-raised",
			desired:  []int{0, 6},
			budget:   10,
			minTasks: 2,
			want:     []int{2, 6},
		},
		{
			name:     "empty-job-trivially-feasible",
			desired:  nil,
			budget:   0,
			minTasks: 1,
			want:     nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ProjectTasks(tc.desired, tc.budget, tc.minTasks, flat)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("infeasible projection accepted: %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			total := 0
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
				total += got[i]
			}
			if total > tc.budget {
				t.Fatalf("projection %v exceeds budget %d", got, tc.budget)
			}
		})
	}
}
