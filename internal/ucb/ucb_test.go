package ucb

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dragster/internal/gp"
	"dragster/internal/stats"
	"dragster/internal/store"
)

func taskCandidates(t testing.TB) [][]float64 {
	t.Helper()
	g, err := store.TaskGrid(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newSearcher(t testing.TB, acq Acquisition) *Searcher {
	t.Helper()
	s, err := NewSearcher(Config{
		NoiseVar:    25,
		Candidates:  taskCandidates(t),
		Acquisition: acq,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBetaSchedule(t *testing.T) {
	b1 := Beta(1, 100, 2)
	b10 := Beta(10, 100, 2)
	if b1 <= 0 {
		t.Errorf("β_1 = %v, want positive", b1)
	}
	if b10 <= b1 {
		t.Errorf("β must grow with t: β_1=%v β_10=%v", b1, b10)
	}
	if Beta(0, 100, 2) != b1 {
		t.Error("t < 1 not clamped")
	}
	// Tiny candidate sets must still give positive β.
	if Beta(1, 1, 1.0001) <= 0 {
		t.Error("β non-positive for tiny |X|")
	}
}

func TestNewSearcherValidation(t *testing.T) {
	if _, err := NewSearcher(Config{NoiseVar: 1}); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := NewSearcher(Config{NoiseVar: 1, Candidates: [][]float64{{}}}); err == nil {
		t.Error("zero-dim candidates accepted")
	}
	if _, err := NewSearcher(Config{NoiseVar: 1, Candidates: [][]float64{{1}, {1, 2}}}); err == nil {
		t.Error("ragged candidates accepted")
	}
	if _, err := NewSearcher(Config{NoiseVar: 1, Candidates: [][]float64{{1}}, Delta: 0.5}); err == nil {
		t.Error("delta ≤ 1 accepted")
	}
	if _, err := NewSearcher(Config{NoiseVar: 0, Candidates: [][]float64{{1}}}); err == nil {
		t.Error("zero noise accepted")
	}
}

func TestSelectBeforeDataReturnsErrNoData(t *testing.T) {
	s := newSearcher(t, Extended)
	if _, _, _, err := s.Select(100); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

// capCurve is the hidden capacity function the searcher must learn:
// concave in the task count, 100·n^0.9.
func capCurve(n float64) float64 { return 100 * math.Pow(n, 0.9) }

func TestExtendedTracksTarget(t *testing.T) {
	s := newSearcher(t, Extended)
	rng := stats.NewRNG(1)
	// Observe a few scattered configurations.
	for _, n := range []float64{1, 4, 7, 10} {
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	// Run the select→observe loop toward a target of 500 tuples/s
	// (capCurve(6)≈500). It must settle near 6 tasks, not at 10.
	var lastIdx int
	for i := 0; i < 15; i++ {
		x, idx, beta, err := s.Select(500)
		if err != nil {
			t.Fatal(err)
		}
		if beta <= 0 {
			t.Fatalf("β = %v", beta)
		}
		lastIdx = idx
		if err := s.Observe(x, capCurve(x[0])+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	chosen := float64(lastIdx + 1) // grid is 1..10
	if math.Abs(chosen-6) > 1 {
		t.Errorf("extended UCB settled at %v tasks, want ≈6 for target 500", chosen)
	}
}

func TestConventionalChasesMaximum(t *testing.T) {
	s := newSearcher(t, Conventional)
	rng := stats.NewRNG(2)
	for _, n := range []float64{1, 5, 10} {
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	var lastIdx int
	for i := 0; i < 15; i++ {
		x, idx, _, err := s.Select(0) // target ignored
		if err != nil {
			t.Fatal(err)
		}
		lastIdx = idx
		if err := s.Observe(x, capCurve(x[0])+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if lastIdx < 8 { // should sit at/near 10 tasks (index 9)
		t.Errorf("conventional UCB settled at index %d, want near max", lastIdx)
	}
}

func TestSelectExploresUnseenUnderHighUncertainty(t *testing.T) {
	// With a single observation far from target, high σ² regions should win
	// initially (exploration).
	s := newSearcher(t, Extended)
	if err := s.Observe([]float64{1}, capCurve(1)); err != nil {
		t.Fatal(err)
	}
	_, idx, _, err := s.Select(capCurve(1))
	if err != nil {
		t.Fatal(err)
	}
	if idx == 0 {
		t.Error("no exploration despite flat posterior mean elsewhere")
	}
}

func TestPosteriorAt(t *testing.T) {
	s := newSearcher(t, Extended)
	if _, _, err := s.PosteriorAt(99); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := s.Observe([]float64{5}, 480); err != nil {
		t.Fatal(err)
	}
	mu, s2, err := s.PosteriorAt(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-480) > 30 || s2 > 26 {
		t.Errorf("posterior at observed point = (%v, %v)", mu, s2)
	}
}

func TestCandidatesCopied(t *testing.T) {
	in := [][]float64{{1}, {2}}
	s, err := NewSearcher(Config{NoiseVar: 1, Candidates: in})
	if err != nil {
		t.Fatal(err)
	}
	in[0][0] = 99
	if s.Candidates()[0][0] != 1 {
		t.Error("constructor did not copy candidates")
	}
	got := s.Candidates()
	got[1][0] = 99
	if s.Candidates()[1][0] != 2 {
		t.Error("Candidates leaked internal storage")
	}
}

func TestProjectTasksWithinBudgetUnchanged(t *testing.T) {
	loss := func(op, from int) float64 { return 1 }
	got, err := ProjectTasks([]int{3, 4}, 10, 1, loss)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("within-budget projection changed: %v", got)
	}
}

func TestProjectTasksTrimsCheapestCapacity(t *testing.T) {
	// Removing a task from op 0 costs 10, from op 1 costs 100: the
	// projection should strip op 0 first.
	loss := func(op, from int) float64 {
		if op == 0 {
			return 10
		}
		return 100
	}
	got, err := ProjectTasks([]int{5, 5}, 7, 1, loss)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 5 {
		t.Errorf("projection = %v, want [2 5]", got)
	}
}

func TestProjectTasksRespectsMin(t *testing.T) {
	loss := func(op, from int) float64 { return float64(op) }
	got, err := ProjectTasks([]int{10, 1}, 3, 1, loss)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("projection = %v, want [2 1]", got)
	}
	if _, err := ProjectTasks([]int{1, 1}, 1, 1, loss); err == nil {
		t.Error("impossible budget accepted")
	}
	if _, err := ProjectTasks([]int{2}, 2, 0, loss); err == nil {
		t.Error("minTasks 0 accepted")
	}
}

func TestProjectTasksFeasibilityProperty(t *testing.T) {
	loss := func(op, from int) float64 { return float64(op*31+from) * 0.7 }
	f := func(a, b, c uint8, budgetRaw uint8) bool {
		desired := []int{1 + int(a%12), 1 + int(b%12), 1 + int(c%12)}
		budget := 3 + int(budgetRaw%30)
		got, err := ProjectTasks(desired, budget, 1, loss)
		if err != nil {
			return false
		}
		total := 0
		for i, v := range got {
			if v < 1 {
				return false
			}
			if v > desired[i] && desired[i] >= 1 {
				return false // projection must never add tasks
			}
			total += v
		}
		return total <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRefitEveryImprovesFit(t *testing.T) {
	// Start with a badly mis-scaled kernel; periodic LML refits should
	// recover a sensible posterior while a frozen kernel stays poor.
	badKernel, err := gp.NewSquaredExponential(0.1, 1) // tiny scale, unit variance vs ~1e5 targets
	if err != nil {
		t.Fatal(err)
	}
	mk := func(refit int) *Searcher {
		s, err := NewSearcher(Config{
			Kernel:     badKernel,
			NoiseVar:   1e6,
			Candidates: taskCandidates(t),
			RefitEvery: refit,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	truth := func(n float64) float64 { return 16000 * math.Pow(n, 0.85) }
	feed := func(s *Searcher) {
		rng := stats.NewRNG(21)
		for i := 0; i < 20; i++ {
			n := 1 + float64(rng.Intn(10))
			if err := s.Observe([]float64{n}, truth(n)+rng.Normal(0, 500)); err != nil {
				t.Fatal(err)
			}
		}
	}
	mae := func(s *Searcher) float64 {
		var m float64
		for i := 0; i < 10; i++ {
			mu, _, err := s.PosteriorAt(i)
			if err != nil {
				t.Fatal(err)
			}
			m += math.Abs(mu - truth(float64(i+1)))
		}
		return m / 10
	}
	frozen := mk(0)
	refit := mk(5)
	feed(frozen)
	feed(refit)
	if mae(refit) >= mae(frozen) {
		t.Errorf("refit MAE %v not below frozen MAE %v", mae(refit), mae(frozen))
	}
	if _, err := NewSearcher(Config{NoiseVar: 1, Candidates: taskCandidates(t), RefitEvery: -1}); err == nil {
		t.Error("negative refit interval accepted")
	}
}

func TestAcquisitionString(t *testing.T) {
	if Extended.String() != "extended" || Conventional.String() != "conventional" || Thompson.String() != "thompson" {
		t.Error("acquisition names wrong")
	}
	if Acquisition(7).String() == "" {
		t.Error("unknown acquisition empty name")
	}
}

func TestThompsonRequiresRNG(t *testing.T) {
	if _, err := NewSearcher(Config{
		NoiseVar:    25,
		Candidates:  taskCandidates(t),
		Acquisition: Thompson,
	}); err == nil {
		t.Error("Thompson without RNG accepted")
	}
}

func TestThompsonTracksTarget(t *testing.T) {
	s, err := NewSearcher(Config{
		NoiseVar:    25,
		Candidates:  taskCandidates(t),
		Acquisition: Thompson,
		RNG:         stats.NewRNG(17),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(18)
	for _, n := range []float64{1, 4, 7, 10} {
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	// Thompson is stochastic; check the MODE of its choices tracks the
	// target (capCurve(6) ≈ 500) after the select→observe loop warms up.
	counts := make(map[int]int)
	for i := 0; i < 30; i++ {
		x, idx, beta, err := s.Select(500)
		if err != nil {
			t.Fatal(err)
		}
		if beta <= 0 {
			t.Fatalf("β = %v", beta)
		}
		counts[idx]++
		if err := s.Observe(x, capCurve(x[0])+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	best, bestN := -1, 0
	for idx, n := range counts {
		if n > bestN {
			best, bestN = idx, n
		}
	}
	chosen := float64(best + 1)
	if math.Abs(chosen-6) > 1 {
		t.Errorf("Thompson mode at %v tasks (%d/30 picks), want ≈6", chosen, bestN)
	}
	// And it must actually explore: more than one distinct arm pulled.
	if len(counts) < 2 {
		t.Error("Thompson never explored")
	}
}

// TestSelectMatchesUncachedPosteriors pins the cross-covariance cache to
// the uncached reference: after interleaved observations and a
// hyperparameter refit (kernel swap ⇒ full cache rebuild), Select's
// cached scoring must pick the same candidate the direct PosteriorBatch
// scoring picks, with identical posterior values at the winner.
func TestSelectMatchesUncachedPosteriors(t *testing.T) {
	s, err := NewSearcher(Config{
		NoiseVar:   25,
		Candidates: taskCandidates(t),
		RefitEvery: 7, // force kernel swaps mid-sequence
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	for i := 0; i < 30; i++ {
		n := 1 + float64(rng.Intn(10))
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			continue
		}
		target := rng.Uniform(100, 700)
		_, idx, beta, err := s.Select(target)
		if err != nil {
			t.Fatal(err)
		}
		// Reference scoring without the cache.
		mus, vars, err := s.Regressor().PosteriorBatch(s.Candidates())
		if err != nil {
			t.Fatal(err)
		}
		best, bestScore := -1, math.Inf(-1)
		for c := range mus {
			score := -math.Abs(mus[c]-target) + math.Sqrt(beta)*math.Sqrt(vars[c])
			if score > bestScore {
				bestScore, best = score, c
			}
		}
		if idx != best {
			t.Fatalf("step %d: cached Select chose %d, uncached reference %d", i, idx, best)
		}
		mu, v2, err := s.PosteriorAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		if mu != mus[idx] || v2 != vars[idx] {
			t.Fatalf("step %d: cached posterior (%v, %v) vs direct (%v, %v)", i, mu, v2, mus[idx], vars[idx])
		}
	}
}

// TestSearchDeterministicWithParallelLML runs the same seeded search —
// hyperparameter refits enabled — under different LML worker pool sizes
// and requires the full selection trajectory to be identical: the
// parallel grid search must not leak scheduling nondeterminism into the
// seeded experiments.
func TestSearchDeterministicWithParallelLML(t *testing.T) {
	trajectory := func(workers int) []int {
		s, err := NewSearcher(Config{
			NoiseVar:   25,
			Candidates: taskCandidates(t),
			RefitEvery: 5,
			LMLWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(23)
		var picks []int
		for i := 0; i < 40; i++ {
			n := 1 + float64(rng.Intn(10))
			if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
				t.Fatal(err)
			}
			_, idx, _, err := s.Select(rng.Uniform(100, 700))
			if err != nil {
				t.Fatal(err)
			}
			picks = append(picks, idx)
		}
		return picks
	}
	serial := trajectory(1)
	for _, workers := range []int{2, 8, 0} {
		got := trajectory(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: step %d selected %d, serial selected %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func BenchmarkSelect200Obs(b *testing.B) {
	cands := make([][]float64, 40)
	for i := range cands {
		cands[i] = []float64{1 + float64(i)*0.25}
	}
	s, err := NewSearcher(Config{NoiseVar: 25, Candidates: cands})
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(19)
	for i := 0; i < 200; i++ {
		n := 1 + 9*rng.Uniform(0, 1)
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.Select(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect10Candidates(b *testing.B) {
	s, err := NewSearcher(Config{NoiseVar: 25, Candidates: func() [][]float64 {
		g, _ := store.TaskGrid(1, 10)
		return g
	}()})
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 20; i++ {
		n := 1 + float64(rng.Intn(10))
		if err := s.Observe([]float64{n}, capCurve(n)+rng.Normal(0, 5)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.Select(500); err != nil {
			b.Fatal(err)
		}
	}
}
