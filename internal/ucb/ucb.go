// Package ucb implements the level-2 optimizer of Dragster: the extended
// Gaussian-Process UCB acquisition of Eq. 18,
//
//	x_t = Π_X[ argmax_x  −|μ_{t−1}(x) − y_t| + β_{t−1}·σ²_{t−1}(x) ],
//
// with the UCB weight schedule β_t = 2·log(|X|·t²·π²·δ/6) and the budget
// projection Π_X onto {Σ_i x_i ≤ B}. Unlike conventional GP-UCB (which
// maximizes μ + βσ²), the extended acquisition tracks a *target* capacity:
// it prefers configurations believed to deliver just enough capacity for
// the incoming load (Remark 1 of the paper), which is what produces the
// cost savings on down-scaling.
package ucb

import (
	"errors"
	"fmt"
	"math"

	"dragster/internal/gp"
	"dragster/internal/stats"
	"dragster/internal/telemetry"
)

// Acquisition selects the scoring rule.
type Acquisition int

// Acquisitions. Extended is the paper's target-tracking rule; Conventional
// is classic GP-UCB maximization (kept for the ablation benchmark);
// Thompson replaces the UCB bonus with posterior sampling — one joint
// draw across all candidates, pick the one whose sampled capacity tracks
// the target (randomness is the exploration).
const (
	Extended Acquisition = iota
	Conventional
	Thompson
)

// String implements fmt.Stringer.
func (a Acquisition) String() string {
	switch a {
	case Extended:
		return "extended"
	case Conventional:
		return "conventional"
	case Thompson:
		return "thompson"
	default:
		return fmt.Sprintf("Acquisition(%d)", int(a))
	}
}

// BonusForm selects the exploration-bonus functional form.
type BonusForm int

// Bonus forms. Eq. 18 of the paper literally writes β_t·σ², but the
// proof of Theorem 1 manipulates β^{1/2}·σ confidence widths (Eq. 22),
// and β·σ² is dimensionally a variance that swamps the |μ−y| tracking
// term at realistic tuples/s scales. StdBonus (β^{1/2}·σ, the
// Srinivas-et-al form the proof supports) is therefore the default;
// VarianceBonus keeps the paper-literal expression for comparison.
const (
	StdBonus BonusForm = iota
	VarianceBonus
)

// String implements fmt.Stringer.
func (b BonusForm) String() string {
	switch b {
	case StdBonus:
		return "sqrt-beta-sigma"
	case VarianceBonus:
		return "beta-sigma-squared"
	default:
		return fmt.Sprintf("BonusForm(%d)", int(b))
	}
}

// Beta returns the UCB weight β_t = 2·log(|X|·t²·π²·δ/6) for candidate-set
// size nCandidates and confidence parameter δ ∈ (1, ∞). t is clamped to 1.
func Beta(t, nCandidates int, delta float64) float64 {
	if t < 1 {
		t = 1
	}
	arg := float64(nCandidates) * float64(t) * float64(t) * math.Pi * math.Pi * delta / 6
	if arg < math.E { // keep β positive even for tiny candidate sets
		arg = math.E
	}
	return 2 * math.Log(arg)
}

// Searcher runs the per-operator Bayesian search. Each Dragster operator
// owns one Searcher over its candidate configuration list. Not safe for
// concurrent use.
type Searcher struct {
	reg        *gp.Regressor
	candidates [][]float64
	delta      float64
	acq        Acquisition
	bonus      BonusForm
	explore    float64
	refitEvery int
	lmlWorkers int
	rng        *stats.RNG
	t          int // observations consumed (the UCB round counter)

	// diam caches candidateDiameter: the candidate list is immutable, so
	// the hyperparameter-refit hot loop must not rescan it.
	diam float64

	// Running target moments (Welford, insertion order — bit-identical to
	// rescanning reg.Observations() per refit, without the O(n) copy).
	meanY, m2Y float64

	// Cross-covariance cache for Select: crossK[i*C+ci] = k(x_i, cand_ci)
	// (observation-major so one Observe appends one contiguous block of C
	// entries), crossKxx[ci] = k(cand_ci, cand_ci). Valid only while
	// crossEpoch matches the regressor's kernel epoch; a kernel swap
	// (hyperparameter refit) forces a full recompute.
	crossK     []float64
	crossKxx   []float64
	crossN     int // observations covered by crossK
	crossEpoch uint64
	kxScratch  []float64 // per-candidate gather buffer for PosteriorFromCross

	// observability hooks; nil-safe, see internal/telemetry.
	tracer *telemetry.Tracer
	label  string
}

// SetTracer installs (or, with nil, removes) the observability tracer,
// forwarding it to the underlying regressor. label identifies this
// searcher in span attributes (typically the operator name). The searcher
// emits one "select" event per acquisition round and one "refit_hyper"
// span per LML grid search; the grid search's worker goroutines never
// touch the tracer (spans bracket the call, not the workers).
func (s *Searcher) SetTracer(tr *telemetry.Tracer, label string) {
	s.tracer = tr
	s.label = label
	s.reg.SetTracer(tr, label)
}

// Config assembles a Searcher.
type Config struct {
	// Kernel defaults to a squared-exponential with length scale covering
	// ~20% of the candidate range and unit variance scaled to CapacityScale.
	Kernel gp.Kernel
	// NoiseVar is the observation noise σ² of Eq. 8 samples (required).
	NoiseVar float64
	// Candidates is the operator's configuration list (required, copied).
	Candidates [][]float64
	// Delta is the confidence parameter δ ∈ (1, ∞) of Theorem 1
	// (default 2: 1−1/δ = 50%... the paper leaves δ free; 2 is sensible).
	Delta float64
	// Acquisition defaults to Extended.
	Acquisition Acquisition
	// Bonus defaults to StdBonus (see BonusForm).
	Bonus BonusForm
	// ExplorationScale multiplies the exploration bonus (default 1, the
	// theoretical schedule). Practical deployments shrink it — the paper's
	// sklearn implementation normalizes targets, which has the same
	// effect — because the raw β_t bonus in tuples/s units keeps
	// exploring long after the posterior is decision-grade.
	ExplorationScale float64
	// RefitEvery re-fits the SE-kernel hyperparameters by log-marginal-
	// likelihood grid search every RefitEvery observations (0 disables).
	// This mirrors the sklearn GaussianProcessRegressor's per-fit
	// optimizer the paper's implementation used.
	RefitEvery int
	// LMLWorkers bounds the worker pool of the parallel LML grid search
	// run on each hyperparameter refit (0 = automatic; see
	// gp.Regressor.MaximizeLMLWorkers — the result is deterministic for
	// any worker count).
	LMLWorkers int
	// RNG supplies the posterior draws for the Thompson acquisition
	// (required for Thompson, ignored otherwise).
	RNG *stats.RNG
	// ObservationBudget caps the GP's retained observations (0 =
	// unlimited). With a budget, per-round Observe/Select cost stays flat
	// over unbounded horizons instead of growing as O(n²); see
	// gp.Regressor.SetObservationBudget and DESIGN.md "Bounded-memory
	// posterior".
	ObservationBudget int
	// Eviction picks which observation a full budget drops (default
	// gp.EvictLowestInformation; gp.EvictOldest is the sliding window).
	Eviction gp.EvictionPolicy
}

// NewSearcher validates cfg and returns a Searcher.
func NewSearcher(cfg Config) (*Searcher, error) {
	if len(cfg.Candidates) == 0 {
		return nil, errors.New("ucb: no candidates")
	}
	dim := len(cfg.Candidates[0])
	if dim == 0 {
		return nil, errors.New("ucb: zero-dimensional candidates")
	}
	cands := make([][]float64, len(cfg.Candidates))
	for i, c := range cfg.Candidates {
		if len(c) != dim {
			return nil, fmt.Errorf("ucb: candidate %d has dimension %d, want %d", i, len(c), dim)
		}
		cands[i] = append([]float64(nil), c...)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 2
	}
	if cfg.Delta <= 1 {
		return nil, fmt.Errorf("ucb: delta %v must exceed 1", cfg.Delta)
	}
	if cfg.ExplorationScale == 0 {
		cfg.ExplorationScale = 1
	}
	if cfg.ExplorationScale < 0 {
		return nil, fmt.Errorf("ucb: negative exploration scale %v", cfg.ExplorationScale)
	}
	if cfg.RefitEvery < 0 {
		return nil, fmt.Errorf("ucb: negative refit interval %d", cfg.RefitEvery)
	}
	if cfg.LMLWorkers < 0 {
		return nil, fmt.Errorf("ucb: negative LML worker count %d", cfg.LMLWorkers)
	}
	if cfg.Acquisition == Thompson && cfg.RNG == nil {
		return nil, errors.New("ucb: Thompson acquisition needs an RNG")
	}
	diam := candidateDiameter(cands)
	if cfg.Kernel == nil {
		// Length scale ≈ 20% of the candidate diameter in each dimension.
		k, err := gp.NewSquaredExponential(math.Max(0.2*diam, 1e-3), 1)
		if err != nil {
			return nil, err
		}
		cfg.Kernel = k
	}
	reg, err := gp.NewRegressor(cfg.Kernel, cfg.NoiseVar)
	if err != nil {
		return nil, err
	}
	if err := reg.SetObservationBudget(cfg.ObservationBudget, cfg.Eviction); err != nil {
		return nil, fmt.Errorf("ucb: %w", err)
	}
	s := &Searcher{
		reg:        reg,
		candidates: cands,
		delta:      cfg.Delta,
		acq:        cfg.Acquisition,
		bonus:      cfg.Bonus,
		explore:    cfg.ExplorationScale,
		refitEvery: cfg.RefitEvery,
		lmlWorkers: cfg.LMLWorkers,
		rng:        cfg.RNG,
		diam:       diam,
		crossKxx:   make([]float64, len(cands)),
		crossEpoch: reg.KernelEpoch(),
	}
	for ci, cand := range s.candidates {
		s.crossKxx[ci] = reg.Kernel().Eval(cand, cand)
	}
	// The eviction hook keeps the cross-covariance cache aligned with the
	// retained set by deleting exactly the evicted observation's block —
	// without it every eviction would force an O(C·n) rebuild in Select.
	reg.SetEvictionHook(s.onEvict)
	return s, nil
}

// SetObservationBudget re-caps the underlying regressor's retained
// observations mid-run (0 = unlimited), draining immediately; the
// cross-covariance cache follows along through the eviction hook.
func (s *Searcher) SetObservationBudget(budget int, policy gp.EvictionPolicy) error {
	return s.reg.SetObservationBudget(budget, policy)
}

// onEvict is the regressor's eviction hook: observation idx was just
// removed from the retained set, so its C cached cross-covariances are
// deleted in place (one memmove), keeping the cache aligned without
// touching the other n−1 blocks. idx ≥ crossN means the evicted
// observation was never cached (it was newer than the last sync) and the
// cache is already consistent; a stale epoch means a kernel swap will
// force a full rebuild anyway.
//
//lint:hotpath
func (s *Searcher) onEvict(idx int) {
	if s.crossEpoch != s.reg.KernelEpoch() || idx >= s.crossN {
		return
	}
	c := len(s.candidates)
	copy(s.crossK[idx*c:], s.crossK[(idx+1)*c:s.crossN*c])
	s.crossK = s.crossK[:(s.crossN-1)*c]
	s.crossN--
}

func candidateDiameter(cands [][]float64) float64 {
	var maxD float64
	for d := range cands[0] {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range cands {
			if c[d] < lo {
				lo = c[d]
			}
			if c[d] > hi {
				hi = c[d]
			}
		}
		if hi-lo > maxD {
			maxD = hi - lo
		}
	}
	return maxD
}

// Observe feeds one Eq. 8 capacity sample for configuration x, refitting
// the kernel hyperparameters on the configured schedule.
func (s *Searcher) Observe(x []float64, capacityObs float64) error {
	if err := s.reg.Observe(x, capacityObs); err != nil {
		return err
	}
	s.t++
	d := capacityObs - s.meanY
	s.meanY += d / float64(s.t)
	s.m2Y += d * (capacityObs - s.meanY)
	s.appendCross(x)
	if s.refitEvery > 0 && s.t >= 5 && s.t%s.refitEvery == 0 {
		if err := s.refitHyperparams(); err != nil && !errors.Is(err, gp.ErrTooFewPoints) {
			return err
		}
	}
	return nil
}

// appendCross extends the cross-covariance cache by the one observation
// just fed — O(C) kernel evaluations instead of the O(C·n) a full rebuild
// costs. If the cache is already stale (kernel swapped since the last
// sync) the append is skipped and Select's syncCross rebuilds it.
func (s *Searcher) appendCross(x []float64) {
	if s.crossEpoch != s.reg.KernelEpoch() || s.crossN != s.reg.Len()-1 {
		return
	}
	k := s.reg.Kernel()
	for _, cand := range s.candidates {
		s.crossK = append(s.crossK, k.Eval(x, cand))
	}
	s.crossN++
}

// syncCross brings the cross-covariance cache up to date with the
// regressor: a no-op in steady state (appendCross keeps it current), a
// catch-up append if observations arrived out of band, and a full O(C·n)
// recompute after a kernel swap — kernel swaps invalidate every cached
// covariance, including the candidate self-covariances.
func (s *Searcher) syncCross() {
	epoch := s.reg.KernelEpoch()
	n := s.reg.Len()
	if s.crossEpoch == epoch && s.crossN == n {
		return
	}
	k := s.reg.Kernel()
	if s.crossEpoch != epoch || s.crossN > n {
		s.crossK = s.crossK[:0]
		s.crossN = 0
		s.crossEpoch = epoch
		for ci, cand := range s.candidates {
			s.crossKxx[ci] = k.Eval(cand, cand)
		}
	}
	if s.crossN < n {
		xs, _ := s.reg.Observations()
		for i := s.crossN; i < n; i++ {
			for _, cand := range s.candidates {
				s.crossK = append(s.crossK, k.Eval(xs[i], cand))
			}
		}
		s.crossN = n
	}
}

// refitHyperparams runs the parallel LML grid search over scales derived
// from the cached candidate diameter and the running target variance.
func (s *Searcher) refitHyperparams() error {
	if s.t < 2 {
		return gp.ErrTooFewPoints
	}
	targetVar := s.m2Y / float64(s.t-1)
	if targetVar <= 0 {
		return nil // degenerate constant data; keep current kernel
	}
	grid, err := gp.DefaultHyperGrid(math.Max(s.diam, 1e-3), targetVar)
	if err != nil {
		return err
	}
	sp := s.tracer.Begin("gp", "refit_hyper",
		telemetry.Str("op", s.label),
		telemetry.Int("n", s.t),
		telemetry.Int("grid", len(grid.LengthScales)*len(grid.Variances)))
	defer sp.End()
	ls, variance, lml, err := s.reg.MaximizeLMLWorkers(grid, s.lmlWorkers)
	if err != nil {
		sp.Annotate(telemetry.Str("error", err.Error()))
		return err
	}
	sp.Annotate(
		telemetry.Float("length_scale", ls),
		telemetry.Float("variance", variance),
		telemetry.Float("lml", lml))
	s.tracer.Metrics().Inc("ucb_hyper_refits")
	return nil
}

// Observations returns the number of samples consumed.
func (s *Searcher) Observations() int { return s.t }

// Regressor exposes the underlying GP (read-only use: information gain,
// posterior inspection, persistence).
func (s *Searcher) Regressor() *gp.Regressor { return s.reg }

// Candidates returns a copy of the candidate list.
func (s *Searcher) Candidates() [][]float64 {
	out := make([][]float64, len(s.candidates))
	for i, c := range s.candidates {
		out[i] = append([]float64(nil), c...)
	}
	return out
}

// PosteriorAt returns μ, σ² at candidate index i (ErrNoData before any
// observation).
func (s *Searcher) PosteriorAt(i int) (float64, float64, error) {
	if i < 0 || i >= len(s.candidates) {
		return 0, 0, fmt.Errorf("ucb: candidate index %d out of range", i)
	}
	return s.reg.Posterior(s.candidates[i])
}

// OptimisticAt returns the upper confidence value μ(x) + s·√β_t·σ(x) at an
// arbitrary configuration, with s the searcher's exploration scale. The
// budget rebalancer scores candidate reallocations with this optimistic
// capacity so unexplored operators still attract tasks (plain posterior
// means are flat before exploration and would freeze the allocation).
func (s *Searcher) OptimisticAt(x []float64) (float64, error) {
	mu, variance, err := s.reg.Posterior(x)
	if err != nil {
		return 0, err
	}
	beta := Beta(s.t, len(s.candidates), s.delta)
	return mu + s.explore*math.Sqrt(beta)*math.Sqrt(variance), nil
}

// ErrNoData is returned by Select before any observation; callers should
// fall back to an exploratory choice (Dragster uses the current
// configuration for the first slot, so this only happens at cold start).
var ErrNoData = errors.New("ucb: no observations yet")

// Static sentinels for invalid enum configurations: Select sits on the
// per-round critical path, so its error returns must not build strings.
var (
	errUnknownBonus       = errors.New("ucb: unknown bonus form")
	errUnknownAcquisition = errors.New("ucb: unknown acquisition")
)

// Select returns the candidate maximizing the acquisition for the given
// target capacity, along with its index and the β_t used. For the
// Conventional acquisition the target is ignored.
func (s *Searcher) Select(target float64) (x []float64, idx int, beta float64, err error) {
	if s.reg.Len() == 0 {
		return nil, 0, 0, ErrNoData
	}
	beta = Beta(s.t, len(s.candidates), s.delta)
	if s.acq == Thompson {
		sample, err := s.reg.SampleJoint(s.candidates, func() float64 { return s.rng.Normal(0, 1) })
		if err != nil {
			return nil, 0, 0, err
		}
		idx = -1
		bestScore := math.Inf(-1)
		for i, v := range sample {
			score := -math.Abs(v - target)
			if score > bestScore {
				bestScore, idx = score, i
			}
		}
		s.traceSelect(target, idx, beta)
		return append([]float64(nil), s.candidates[idx]...), idx, beta, nil
	}
	// Score candidates from the cross-covariance cache: only observations
	// that arrived since the last Select (or a kernel swap) cost kernel
	// evaluations; the per-candidate posterior is then two cached-vector
	// triangular passes via PosteriorFromCross.
	s.syncCross()
	n := s.reg.Len()
	c := len(s.candidates)
	if cap(s.kxScratch) < n {
		s.kxScratch = make([]float64, n)
	}
	kx := s.kxScratch[:n]
	bestScore := math.Inf(-1)
	idx = -1
	for i := 0; i < c; i++ {
		for j := 0; j < n; j++ {
			kx[j] = s.crossK[j*c+i]
		}
		mu, variance, err := s.reg.PosteriorFromCross(kx, s.crossKxx[i])
		if err != nil {
			return nil, 0, 0, err
		}
		var bonus float64
		switch s.bonus {
		case StdBonus:
			bonus = math.Sqrt(beta) * math.Sqrt(variance)
		case VarianceBonus:
			bonus = beta * variance
		default:
			return nil, 0, 0, errUnknownBonus
		}
		bonus *= s.explore
		var score float64
		switch s.acq {
		case Extended:
			score = -math.Abs(mu-target) + bonus
		case Conventional:
			score = mu + bonus
		default:
			return nil, 0, 0, errUnknownAcquisition
		}
		if score > bestScore {
			bestScore, idx = score, i
		}
	}
	s.traceSelect(target, idx, beta)
	return append([]float64(nil), s.candidates[idx]...), idx, beta, nil
}

// traceSelect emits the per-round acquisition event.
func (s *Searcher) traceSelect(target float64, idx int, beta float64) {
	s.tracer.Event("ucb", "select",
		telemetry.Str("op", s.label),
		telemetry.Str("acq", s.acq.String()),
		telemetry.Float("target", target),
		telemetry.Int("idx", idx),
		telemetry.Float("beta", beta))
	s.tracer.Metrics().Inc("ucb_selects")
}

// ProjectTasks is Π_X: it projects desired per-operator task counts onto
// the budget {Σ_i tasks_i ≤ B} by repeatedly decrementing the operator
// whose last task is believed to contribute the least capacity relative
// to its target shortfall. loss(op, fromTasks) must return the estimated
// penalty of going from fromTasks to fromTasks−1 for that operator
// (larger = more valuable to keep). minTasks floors every operator
// (usually 1).
func ProjectTasks(desired []int, budget, minTasks int, loss func(op, fromTasks int) float64) ([]int, error) {
	if budget < minTasks*len(desired) {
		return nil, fmt.Errorf("ucb: budget %d cannot host %d operators at min %d tasks", budget, len(desired), minTasks)
	}
	if minTasks < 1 {
		return nil, errors.New("ucb: minTasks must be ≥ 1")
	}
	out := append([]int(nil), desired...)
	total := 0
	for i, v := range out {
		if v < minTasks {
			out[i] = minTasks
			v = minTasks
		}
		total += v
	}
	for total > budget {
		best := -1
		bestLoss := math.Inf(1)
		for i, v := range out {
			if v <= minTasks {
				continue
			}
			if l := loss(i, v); l < bestLoss {
				bestLoss, best = l, i
			}
		}
		if best == -1 {
			// Cannot shrink further (all at minTasks) — guarded above, but
			// loss() returning +Inf everywhere also lands here.
			return nil, errors.New("ucb: projection stuck above budget")
		}
		out[best]--
		total--
	}
	return out, nil
}
