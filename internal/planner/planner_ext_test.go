package planner_test

import (
	"testing"

	"dragster/internal/experiment"
	"dragster/internal/planner"
	"dragster/internal/workload"
)

// This file lives in the external test package: validating plans against
// the ground-truth optimum needs internal/experiment, which reaches
// planner again through the fleet admission path.

// The plan must actually work: running the planned task counts against
// the hidden ground-truth capacity curves sustains the SLO fraction of
// the unconstrained target throughput.
func TestPlanCoversTarget(t *testing.T) {
	for _, name := range []string{"wordcount", "group", "yahoo"} {
		spec, err := workload.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		cfg := planner.Config{Spec: spec, TargetRates: spec.HighRates, Seed: 7}
		p, err := planner.Build(cfg)
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		if !p.Feasible {
			t.Errorf("%s: plan infeasible: %s", name, p)
		}
		got, err := experiment.SteadyThroughput(spec, spec.HighRates, p.Tasks)
		if err != nil {
			t.Fatalf("%s: SteadyThroughput: %v", name, err)
		}
		if got < 0.95*p.TargetThroughput {
			t.Errorf("%s: planned tasks %v sustain %.0f < 95%% of target %.0f",
				name, p.Tasks, got, p.TargetThroughput)
		}

		// Conservative, not absurd: between the greedy ground-truth
		// optimum and a flat max-tasks grant.
		opt, err := experiment.OptimalConfig(spec, spec.HighRates, 0)
		if err != nil {
			t.Fatalf("%s: OptimalConfig: %v", name, err)
		}
		maxTotal := spec.Graph.NumOperators() * spec.MaxTasks
		if p.TotalTasks < opt.TotalTasks || p.TotalTasks > maxTotal {
			t.Errorf("%s: total %d outside [optimum %d, flat max %d]",
				name, p.TotalTasks, opt.TotalTasks, maxTotal)
		}
	}
}
