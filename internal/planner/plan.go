package planner

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"dragster/internal/store"
)

// OperatorCurve is one operator's fitted capacity curve: posterior mean
// and standard deviation indexed by task count (entry n-1 = n tasks).
// Capacity units are emitted-output tuples/s, the same units the DAG's
// throughput evaluation consumes.
type OperatorCurve struct {
	Operator string    `json:"operator"`
	Mu       []float64 `json:"mu"`
	Sigma    []float64 `json:"sigma"`
}

// Plan is the planner's answer: the per-operator task floors a job needs
// to sustain its target rate, with the evidence behind them.
type Plan struct {
	// Workload names the planned workload spec.
	Workload string `json:"workload"`
	// Seed is the probe-simulation seed the plan was built from.
	Seed int64 `json:"seed"`
	// TargetRates is the sustained per-source load the plan covers.
	TargetRates []float64 `json:"target_rates"`
	// SLOFraction and Beta echo the planning knobs.
	SLOFraction float64 `json:"slo_fraction"`
	Beta        float64 `json:"beta"`
	// Tasks is the per-operator admission floor; TotalTasks its sum.
	Tasks      []int `json:"tasks"`
	TotalTasks int   `json:"total_tasks"`
	// PredictedThroughput is the lower-confidence-bound steady throughput
	// at Tasks; TargetThroughput the unconstrained sink rate at the
	// target load. Feasible ⇔ predicted ≥ SLOFraction × target.
	PredictedThroughput float64 `json:"predicted_throughput"`
	TargetThroughput    float64 `json:"target_throughput"`
	Feasible            bool    `json:"feasible"`
	// CostPerHour is the predicted steady-state dollar cost of running
	// the plan's allocation.
	CostPerHour float64 `json:"cost_per_hour"`
	// ProbeCost is the dollar cost of the probe schedule itself (task
	// seconds across every probe topology, priced like the live cluster).
	// Probes run on the scaled-down simulator, not the production
	// cluster, so this is reported context, not tenant-attributed spend.
	ProbeCost float64 `json:"probe_cost"`
	// Curves are the fitted per-operator capacity curves (confidence
	// bands included); Probes the full probe schedule that produced them.
	Curves []OperatorCurve `json:"curves"`
	Probes []Probe         `json:"probes"`
}

// Encode returns the canonical binary encoding of the plan. Two plans
// are identical iff their encodings are byte-equal — the property the
// determinism tests pin (floats are encoded as IEEE-754 bit patterns, so
// equality is exact, not approximate).
func (p *Plan) Encode() []byte {
	var buf []byte
	buf = appendString(buf, p.Workload)
	buf = appendInt64(buf, p.Seed)
	buf = appendFloats(buf, p.TargetRates)
	buf = appendFloat(buf, p.SLOFraction)
	buf = appendFloat(buf, p.Beta)
	buf = appendInt64(buf, int64(len(p.Tasks)))
	for _, n := range p.Tasks {
		buf = appendInt64(buf, int64(n))
	}
	buf = appendInt64(buf, int64(p.TotalTasks))
	buf = appendFloat(buf, p.PredictedThroughput)
	buf = appendFloat(buf, p.TargetThroughput)
	if p.Feasible {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendFloat(buf, p.CostPerHour)
	buf = appendFloat(buf, p.ProbeCost)
	buf = appendInt64(buf, int64(len(p.Curves)))
	for _, c := range p.Curves {
		buf = appendString(buf, c.Operator)
		buf = appendFloats(buf, c.Mu)
		buf = appendFloats(buf, c.Sigma)
	}
	buf = appendInt64(buf, int64(len(p.Probes)))
	for _, pr := range p.Probes {
		buf = appendString(buf, pr.Operator)
		buf = appendInt64(buf, int64(pr.OpIndex))
		buf = appendInt64(buf, int64(pr.Tasks))
		buf = appendFloat(buf, pr.Capacity)
		buf = appendFloat(buf, pr.Util)
		if pr.Saturated {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// Digest returns the FNV-1a hash of the canonical encoding — the plan's
// identity in fleet events and checkpoints.
func (p *Plan) Digest() uint64 {
	h := fnv.New64a()
	h.Write(p.Encode())
	return h.Sum64()
}

// DigestHex renders the digest as a fixed-width hex string.
func (p *Plan) DigestHex() string { return fmt.Sprintf("%016x", p.Digest()) }

// Records converts the saturated probes into warm-start history records:
// seeding a controller's store.DB with them replays the probed curve
// into its per-operator GPs (core.New's warm-start path). Slots are
// negative — the observations predate the job's first round.
func (p *Plan) Records() []store.Record {
	out := make([]store.Record, 0, len(p.Probes))
	for k, pr := range p.Probes {
		if !pr.Saturated {
			continue
		}
		out = append(out, store.Record{
			Slot:        -(len(p.Probes) - k), // probe order, all pre-launch
			Operator:    pr.Operator,
			Config:      []float64{float64(pr.Tasks)},
			Throughput:  pr.Capacity,
			CapacityObs: pr.Capacity,
			Util:        pr.Util,
		})
	}
	return out
}

// String renders a compact human-readable summary.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s tasks=%v total=%d predicted=%.0f target=%.0f feasible=%v cost=$%.2f/h probes=%d",
		p.Workload, p.Tasks, p.TotalTasks, p.PredictedThroughput, p.TargetThroughput, p.Feasible, p.CostPerHour, len(p.Probes))
	return b.String()
}

func appendInt64(buf []byte, v int64) []byte {
	u := uint64(v)
	return append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func appendFloat(buf []byte, v float64) []byte {
	return appendInt64(buf, int64(math.Float64bits(v)))
}

func appendFloats(buf []byte, vs []float64) []byte {
	buf = appendInt64(buf, int64(len(vs)))
	for _, v := range vs {
		buf = appendFloat(buf, v)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = appendInt64(buf, int64(len(s)))
	return append(buf, s...)
}
