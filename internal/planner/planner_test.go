package planner

import (
	"bytes"
	"reflect"
	"testing"

	"dragster/internal/workload"
)

func wordcountConfig(t *testing.T, seed int64) Config {
	t.Helper()
	spec, err := workload.WordCount()
	if err != nil {
		t.Fatalf("WordCount: %v", err)
	}
	return Config{Spec: spec, TargetRates: spec.HighRates, Seed: seed}
}

// Same seed + DAG → byte-identical Plan. This is the property fleet
// replay depends on: the admission controller rebuilds the plan from the
// journaled seed and must land on the same digest.
func TestBuildDeterministic(t *testing.T) {
	a, err := Build(wordcountConfig(t, 42))
	if err != nil {
		t.Fatalf("Build a: %v", err)
	}
	b, err := Build(wordcountConfig(t, 42))
	if err != nil {
		t.Fatalf("Build b: %v", err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("same config produced different plans:\n%s\n%s", a, b)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest mismatch: %016x vs %016x", a.Digest(), b.Digest())
	}

	c, err := Build(wordcountConfig(t, 43))
	if err != nil {
		t.Fatalf("Build c: %v", err)
	}
	if bytes.Equal(a.Encode(), c.Encode()) {
		t.Fatal("different seeds produced byte-identical plans (noise not seeded?)")
	}
}

func TestProbeBudgetBound(t *testing.T) {
	cfg := wordcountConfig(t, 5)
	cfg.ProbeBudget = 3
	p, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(p.Probes) > 3 {
		t.Fatalf("budget 3, ran %d probes", len(p.Probes))
	}
}

func TestProbeScheduleShape(t *testing.T) {
	p, err := Build(wordcountConfig(t, 11))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Operators visited in dense-index order, task counts ascending
	// within an operator, and at least one saturated probe for the first
	// operator (sources feed it directly, so small n must saturate).
	lastOp, lastN, sawSaturated := -1, 0, false
	for _, pr := range p.Probes {
		if pr.OpIndex < lastOp {
			t.Fatalf("probe order regressed to operator %d after %d", pr.OpIndex, lastOp)
		}
		if pr.OpIndex > lastOp {
			lastOp, lastN = pr.OpIndex, 0
		}
		if pr.Tasks <= lastN {
			t.Fatalf("op %d: task counts not ascending (%d after %d)", pr.OpIndex, pr.Tasks, lastN)
		}
		lastN = pr.Tasks
		if pr.OpIndex == 0 && pr.Saturated {
			sawSaturated = true
		}
		if pr.Saturated && pr.Capacity <= 0 {
			t.Fatalf("saturated probe %s n=%d recorded no capacity", pr.Operator, pr.Tasks)
		}
		if !pr.Saturated && pr.Capacity != 0 {
			t.Fatalf("unsaturated probe %s n=%d recorded capacity %f", pr.Operator, pr.Tasks, pr.Capacity)
		}
	}
	if !sawSaturated {
		t.Fatal("no saturated probe on the source-fed operator")
	}
}

func TestProbePoints(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{3, []int{1, 2, 3}},
		{4, []int{1, 2, 3, 4}},
		{6, []int{1, 2, 3, 5, 6}},
		{10, []int{1, 2, 3, 5, 7, 9, 10}},
	}
	for _, c := range cases {
		if got := probePoints(c.max); !reflect.DeepEqual(got, c.want) {
			t.Errorf("probePoints(%d) = %v, want %v", c.max, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	spec, err := workload.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil spec", func(c *Config) { c.Spec = nil }},
		{"rate count", func(c *Config) { c.TargetRates = []float64{1, 2} }},
		{"negative rate", func(c *Config) { c.TargetRates = []float64{-1} }},
		{"short probe", func(c *Config) { c.ProbeSeconds = probeWarmupSec + 1 }},
		{"negative budget", func(c *Config) { c.ProbeBudget = -1 }},
		{"negative noise", func(c *Config) { c.NoiseSigma = -0.1 }},
		{"slo > 1", func(c *Config) { c.SLOFraction = 1.5 }},
		{"negative beta", func(c *Config) { c.Beta = -1 }},
		{"negative price", func(c *Config) { c.PricePerCoreHour = -1 }},
		{"zero cpu", func(c *Config) { c.TaskCPUMilli = -5 }},
	}
	for _, c := range cases {
		cfg := Config{Spec: spec, TargetRates: spec.HighRates, Seed: 1}
		c.mut(&cfg)
		if _, err := Build(cfg); err == nil {
			t.Errorf("%s: Build accepted invalid config", c.name)
		}
	}
}
