package planner

import (
	"fmt"
	"math"

	"dragster/internal/stats"
	"dragster/internal/streamsim"
)

// Probe mechanics. One probe pins operator i at n tasks, sets every
// other operator to the grid maximum, and overdrives the sources so that
// — if anything upstream can feed it — operator i becomes the bottleneck.
// The probe then runs a short simulated window and averages the
// operator's emitted rate, utilization, and input-queue imbalance past a
// warm-up prefix.
//
// Saturation gate: the emitted rate is only a capacity observation when
// the operator could not keep up — its inputs arrived faster than it
// drained them AND its CPU was pinned. An unsaturated probe (the rest of
// the DAG at max parallelism cannot feed cap_i(n)) measures the upstream
// feed rather than the operator, so it is recorded but contributes no
// observation, and the schedule stops probing that operator at larger n
// (capacity curves are monotone in the task count, so every larger probe
// would be unsaturated too).

// probeWarmupSec is the prefix of each probe excluded from the averages
// (queues fill and the drain pattern stabilizes during it).
const probeWarmupSec = 5

// Saturation thresholds: arrivals must outpace consumption by 5% and the
// mean reported utilization must be pinned near the top of its range.
const (
	probeMinArrivalExcess = 1.05
	probeMinUtil          = 0.8
)

// Probe records one probe simulation of the schedule.
type Probe struct {
	// Operator is the probed operator's name; OpIndex its dense index.
	Operator string
	OpIndex  int
	// Tasks is the probed task count.
	Tasks int
	// Capacity is the mean emitted-output rate (tuples/s) past warm-up —
	// a capacity observation only when Saturated.
	Capacity float64
	// Util is the mean reported CPU utilization past warm-up.
	Util float64
	// Saturated reports whether the operator was the binding constraint.
	Saturated bool
}

// probePoints is the ascending task-count ladder probed per operator:
// dense at small n (where short scaled-down runs are cheap and the curve
// bends) and sparse above, always ending at the grid bound.
func probePoints(maxTasks int) []int {
	var out []int
	for n := 1; n <= maxTasks && n <= 3; n++ {
		out = append(out, n)
	}
	for n := 5; n < maxTasks; n += 2 {
		out = append(out, n)
	}
	if maxTasks > 3 {
		out = append(out, maxTasks)
	}
	return out
}

// runSchedule executes the budget-bounded probe schedule: operators in
// topological (dense-index) order, ascending task counts, early stop per
// operator on the first unsaturated probe, hard stop at ProbeBudget.
func runSchedule(cfg *Config) ([]Probe, error) {
	spec := cfg.Spec
	m := spec.Graph.NumOperators()
	drive := driveRates(cfg)
	points := probePoints(spec.MaxTasks)
	var probes []Probe
	for i := 0; i < m; i++ {
		for _, n := range points {
			if len(probes) >= cfg.ProbeBudget {
				return probes, nil
			}
			pr, err := runProbe(cfg, i, n, drive, int64(len(probes)))
			if err != nil {
				return nil, err
			}
			probes = append(probes, pr)
			if !pr.Saturated {
				break // larger n cannot saturate either
			}
		}
	}
	return probes, nil
}

// driveRates overdrives every source far past the target so the probed
// operator, not the offered load, is the binding constraint. YMax bounds
// every reachable operator capacity, so a YMax-scale feed saturates any
// operator its upstream can keep fed.
func driveRates(cfg *Config) []float64 {
	out := make([]float64, len(cfg.TargetRates))
	for i, r := range cfg.TargetRates {
		out[i] = math.Max(2*r, cfg.Spec.YMax)
	}
	return out
}

// runProbe simulates one probe on a fresh engine. Each probe gets its
// own deterministic RNG stream (derived from the plan seed and the probe
// index) and its own queues, so probe order never leaks state and the
// schedule is trivially replayable.
func runProbe(cfg *Config, op, n int, drive []float64, probeIdx int64) (Probe, error) {
	spec := cfg.Spec
	m := spec.Graph.NumOperators()
	tasks := make([]int, m)
	for i := range tasks {
		tasks[i] = spec.MaxTasks
	}
	tasks[op] = n

	// Buffers large enough to keep growing for the whole probe: the gate
	// watches arrival excess, which a full (dropping) buffer would mask.
	var peak float64
	for _, r := range drive {
		if r > peak {
			peak = r
		}
	}
	engine, err := streamsim.New(streamsim.Config{
		Graph:            spec.Graph,
		Models:           spec.Models,
		NoiseSigma:       cfg.NoiseSigma,
		UtilNoiseSigma:   cfg.UtilNoiseSigma,
		MaxBufferPerEdge: 4 * float64(cfg.ProbeSeconds) * math.Max(peak, 1),
		RNG:              stats.NewRNG(cfg.Seed + 7919*(probeIdx+1)),
	})
	if err != nil {
		return Probe{}, err
	}
	if err := engine.SetTasks(tasks); err != nil {
		return Probe{}, err
	}
	engine.BeginSlot()

	var arrived, consumed, emitted, util float64
	samples := 0
	for sec := 0; sec < cfg.ProbeSeconds; sec++ {
		st, err := engine.Tick(drive)
		if err != nil {
			return Probe{}, fmt.Errorf("planner: probe %s n=%d tick %d: %w",
				spec.Graph.OperatorName(op), n, sec, err)
		}
		if sec < probeWarmupSec {
			continue
		}
		ot := st.Ops[op]
		arrived += ot.Arrived
		consumed += ot.Consumed
		emitted += ot.Emitted
		util += ot.Util
		samples++
	}
	s := float64(samples)
	meanEmitted, meanUtil := emitted/s, util/s
	saturated := arrived > consumed*probeMinArrivalExcess && meanUtil >= probeMinUtil
	pr := Probe{
		Operator:  spec.Graph.OperatorName(op),
		OpIndex:   op,
		Tasks:     n,
		Util:      meanUtil,
		Saturated: saturated,
	}
	if saturated {
		pr.Capacity = meanEmitted
	}
	return pr, nil
}
