// Package planner is Dragster's pre-launch capacity planner: given a
// job's DAG and a target sustained rate, it answers "what per-operator
// task counts does this job need to sustain X tuples/s?" before the job
// is ever admitted — the StreamBed problem (Lambion et al., arXiv
// 2309.03377) solved with the machinery this repo already owns.
//
// The planner runs a deterministic, budget-bounded schedule of short
// scaled-down probe simulations against the workload's hidden capacity
// models (internal/streamsim): each probe pins one operator at a small
// task count, over-provisions every other operator at the grid maximum,
// overdrives the sources, and measures the probed operator's emitted
// rate. A probe only yields a capacity observation when the operator was
// genuinely saturated — input backlog growing and CPU pinned — because
// an unsaturated probe measures the upstream feed, not the operator.
// Operators whose large-n capacity exceeds what the rest of the DAG can
// feed them stop probing early; their curves extrapolate from the
// scaled-down observations with widening confidence bands, which is
// exactly the StreamBed story: short cheap runs at small scale, a fitted
// model for the target scale.
//
// Per-operator capacity curves are fitted with the existing GP engine
// (internal/gp, one-dimensional task-count inputs, LML-optimized SE
// kernel), and the plan is synthesized by the same greedy topological
// pass the ground-truth optimum uses (experiment.OptimalConfig) — except
// demands are covered by the GP lower confidence bound rather than the
// hidden truth, so the plan is conservative exactly where the data is
// thin.
//
// The fleet admission controller consumes plans through
// fleet.JobSpec.PlanOnAdmit: the tenant's admission grant and initial
// configuration come from Plan.Tasks instead of the cold floor, and
// Plan.Records seeds the tenant's GP warm-start store so the online
// controller starts from the probed curves.
package planner

import (
	"errors"
	"fmt"
	"math"

	"dragster/internal/gp"
	"dragster/internal/workload"
)

// bigCap stands in for "unconstrained" capacity when evaluating the
// unconstrained target throughput (dag.Evaluate rejects Inf).
const bigCap = 1e15

// Config assembles a planning run.
type Config struct {
	// Spec is the workload to plan (DAG, capacity models, grid bounds).
	Spec *workload.Spec
	// TargetRates is the sustained per-source offered load (tuples/s) the
	// plan must cover (required; one entry per source).
	TargetRates []float64
	// Seed drives probe-simulation noise. Plans are a pure function of
	// (Spec, TargetRates, Seed, knobs): same inputs, byte-identical plan.
	Seed int64
	// ProbeSeconds is the simulated length of one probe run (default 30).
	ProbeSeconds int
	// ProbeBudget bounds the total number of probe simulations (default
	// 6 per operator). The schedule visits operators in topological
	// order, ascending task counts, and stops early per operator once a
	// probe comes back unsaturated.
	ProbeBudget int
	// NoiseSigma / UtilNoiseSigma mirror the simulator knobs the live run
	// will see (defaults 0.05 / 0.02).
	NoiseSigma     float64
	UtilNoiseSigma float64
	// SLOFraction is the fraction of the unconstrained target throughput
	// the plan must predict to be called feasible (default 0.95).
	SLOFraction float64
	// Beta widens the GP lower confidence bound used to cover demand:
	// lcb = mu − Beta·sigma (default 1).
	Beta float64
	// PricePerCoreHour and TaskCPUMilli size the plan's predicted cost at
	// SLO (defaults 0.08 $/core·h, 1000 m per task).
	PricePerCoreHour float64
	TaskCPUMilli     int
}

func (c *Config) setDefaults() error {
	if c.Spec == nil {
		return errors.New("planner: nil workload spec")
	}
	if err := c.Spec.Validate(); err != nil {
		return fmt.Errorf("planner: %w", err)
	}
	if len(c.TargetRates) != c.Spec.Graph.NumSources() {
		return fmt.Errorf("planner: got %d target rates, want %d", len(c.TargetRates), c.Spec.Graph.NumSources())
	}
	for i, r := range c.TargetRates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("planner: target rate %d = %v invalid", i, r)
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProbeSeconds == 0 {
		c.ProbeSeconds = 30
	}
	if c.ProbeSeconds < probeWarmupSec+5 {
		return fmt.Errorf("planner: ProbeSeconds must be ≥ %d", probeWarmupSec+5)
	}
	if c.ProbeBudget == 0 {
		c.ProbeBudget = 6 * c.Spec.Graph.NumOperators()
	}
	if c.ProbeBudget < 1 {
		return errors.New("planner: ProbeBudget must be ≥ 1")
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.05
	}
	if c.UtilNoiseSigma == 0 {
		c.UtilNoiseSigma = 0.02
	}
	if c.NoiseSigma < 0 || c.UtilNoiseSigma < 0 {
		return errors.New("planner: negative noise")
	}
	if c.SLOFraction == 0 {
		c.SLOFraction = 0.95
	}
	if c.SLOFraction <= 0 || c.SLOFraction > 1 {
		return errors.New("planner: SLOFraction outside (0, 1]")
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.Beta < 0 {
		return errors.New("planner: negative Beta")
	}
	if c.PricePerCoreHour == 0 {
		c.PricePerCoreHour = 0.08
	}
	if c.PricePerCoreHour < 0 {
		return errors.New("planner: negative price")
	}
	if c.TaskCPUMilli == 0 {
		c.TaskCPUMilli = 1000
	}
	if c.TaskCPUMilli < 1 {
		return errors.New("planner: TaskCPUMilli must be ≥ 1")
	}
	return nil
}

// Build runs the probe schedule, fits the per-operator capacity curves,
// and synthesizes the plan. The result is deterministic: the same config
// produces a byte-identical Plan (see Plan.Encode).
func Build(cfg Config) (*Plan, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	spec := cfg.Spec
	m := spec.Graph.NumOperators()

	probes, err := runSchedule(&cfg)
	if err != nil {
		return nil, err
	}

	regs, err := fitCurves(&cfg, probes)
	if err != nil {
		return nil, err
	}

	// Tabulate posterior curves and the lower confidence bounds the
	// synthesis covers demand with. Capacity is monotone in the task
	// count (adding tasks never reduces capacity in this model family),
	// so the bound is floored by the running max of observed saturated
	// capacities and kept non-decreasing — without this, the zero-mean GP
	// reverts toward the prior past the largest saturated probe and the
	// bound would collapse exactly where extrapolation matters most.
	curves := make([]OperatorCurve, m)
	lcb := make([][]float64, m)
	for i := 0; i < m; i++ {
		curves[i] = OperatorCurve{
			Operator: spec.Graph.OperatorName(i),
			Mu:       make([]float64, spec.MaxTasks),
			Sigma:    make([]float64, spec.MaxTasks),
		}
		lcb[i] = make([]float64, spec.MaxTasks)
		floor := 0.0
		for n := 1; n <= spec.MaxTasks; n++ {
			for _, pr := range probes {
				if pr.OpIndex == i && pr.Saturated && pr.Tasks == n && pr.Capacity > floor {
					floor = pr.Capacity
				}
			}
			if regs[i].Len() == 0 {
				// No saturated probe at any scale: the rest of the DAG cannot
				// feed this operator past cap(1), so one task is already
				// over-provisioned. An unbounded band records that honestly.
				curves[i].Mu[n-1] = 0
				curves[i].Sigma[n-1] = spec.YMax
				lcb[i][n-1] = bigCap
				continue
			}
			mu, variance, err := regs[i].Posterior([]float64{float64(n)})
			if err != nil {
				return nil, fmt.Errorf("planner: posterior %s n=%d: %w", curves[i].Operator, n, err)
			}
			sigma := math.Sqrt(math.Max(variance, 0))
			curves[i].Mu[n-1] = mu
			curves[i].Sigma[n-1] = sigma
			lcb[i][n-1] = math.Max(math.Max(0, mu-cfg.Beta*sigma), floor)
			if n > 1 && lcb[i][n-2] > lcb[i][n-1] {
				lcb[i][n-1] = lcb[i][n-2]
			}
		}
	}

	tasks, caps, err := synthesize(&cfg, lcb)
	if err != nil {
		return nil, err
	}
	predicted, err := spec.Graph.Throughput(cfg.TargetRates, caps)
	if err != nil {
		return nil, err
	}
	unconstrained := make([]float64, m)
	for i := range unconstrained {
		unconstrained[i] = bigCap
	}
	target, err := spec.Graph.Throughput(cfg.TargetRates, unconstrained)
	if err != nil {
		return nil, err
	}

	total := 0
	for _, n := range tasks {
		total += n
	}
	// Probe spend: each probe runs the probed operator at its pinned task
	// count and every other operator at the grid maximum for ProbeSeconds.
	probeTaskSec := 0.0
	for _, pr := range probes {
		probeTaskSec += float64(pr.Tasks+(m-1)*spec.MaxTasks) * float64(cfg.ProbeSeconds)
	}
	p := &Plan{
		Workload:            spec.Name,
		Seed:                cfg.Seed,
		TargetRates:         append([]float64(nil), cfg.TargetRates...),
		SLOFraction:         cfg.SLOFraction,
		Beta:                cfg.Beta,
		Tasks:               tasks,
		TotalTasks:          total,
		PredictedThroughput: predicted,
		TargetThroughput:    target,
		Feasible:            predicted >= cfg.SLOFraction*target,
		CostPerHour:         float64(total*cfg.TaskCPUMilli) / 1000 * cfg.PricePerCoreHour,
		ProbeCost:           probeTaskSec / 3600 * float64(cfg.TaskCPUMilli) / 1000 * cfg.PricePerCoreHour,
		Curves:              curves,
		Probes:              probes,
	}
	return p, nil
}

// fitCurves builds one GP per operator from the saturated probes. The
// kernel hyperparameters are refit by deterministic grid LML search once
// the observations are in, so sparse curves keep honest bands.
func fitCurves(cfg *Config, probes []Probe) ([]*gp.Regressor, error) {
	spec := cfg.Spec
	m := spec.Graph.NumOperators()
	capScale := spec.YMax / 3
	noiseSD := math.Max(cfg.NoiseSigma, 0.02) * capScale
	regs := make([]*gp.Regressor, m)
	for i := 0; i < m; i++ {
		kernel, err := gp.NewSquaredExponential(float64(spec.MaxTasks)/2, capScale*capScale)
		if err != nil {
			return nil, err
		}
		regs[i], err = gp.NewRegressor(kernel, noiseSD*noiseSD)
		if err != nil {
			return nil, err
		}
	}
	for _, pr := range probes {
		if !pr.Saturated {
			continue
		}
		if err := regs[pr.OpIndex].Observe([]float64{float64(pr.Tasks)}, pr.Capacity); err != nil {
			return nil, fmt.Errorf("planner: observing probe %s n=%d: %w", pr.Operator, pr.Tasks, err)
		}
	}
	grid, err := gp.DefaultHyperGrid(math.Max(float64(spec.MaxTasks-1), 1), capScale*capScale)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		if regs[i].Len() < 3 {
			continue // too few points to re-fit; keep the prior kernel
		}
		if _, _, _, err := regs[i].MaximizeLML(grid); err != nil {
			return nil, fmt.Errorf("planner: hyperfit %s: %w", spec.Graph.OperatorName(i), err)
		}
	}
	return regs, nil
}

// synthesize mirrors the greedy topological pass of the ground-truth
// optimum search, covering each operator's demand with the fitted lower
// confidence bound instead of the hidden capacity curve. Flows depend
// only on upstream capacities, so one pass in operator order is exact.
func synthesize(cfg *Config, lcb [][]float64) (tasks []int, caps []float64, err error) {
	spec := cfg.Spec
	m := spec.Graph.NumOperators()
	tasks = make([]int, m)
	caps = make([]float64, m)
	for i := 0; i < m; i++ {
		tasks[i] = spec.MaxTasks
		caps[i] = lcb[i][spec.MaxTasks-1]
	}
	for i := 0; i < m; i++ {
		rep, err := spec.Graph.Evaluate(cfg.TargetRates, caps)
		if err != nil {
			return nil, nil, err
		}
		need := rep.Demand[i]
		chosen := spec.MaxTasks
		for n := 1; n <= spec.MaxTasks; n++ {
			if lcb[i][n-1] >= need {
				chosen = n
				break
			}
		}
		tasks[i] = chosen
		caps[i] = lcb[i][chosen-1]
	}
	return tasks, caps, nil
}
