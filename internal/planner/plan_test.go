package planner

import (
	"bytes"
	"testing"
)

func samplePlan() *Plan {
	return &Plan{
		Workload:            "wordcount",
		Seed:                42,
		TargetRates:         []float64{50000},
		SLOFraction:         0.95,
		Beta:                1,
		Tasks:               []int{4, 3},
		TotalTasks:          7,
		PredictedThroughput: 98000,
		TargetThroughput:    100000,
		Feasible:            true,
		CostPerHour:         0.56,
		Curves: []OperatorCurve{
			{Operator: "map", Mu: []float64{16000, 29000}, Sigma: []float64{500, 800}},
			{Operator: "shuffle", Mu: []float64{18000, 32000}, Sigma: []float64{600, 900}},
		},
		Probes: []Probe{
			{Operator: "map", OpIndex: 0, Tasks: 1, Capacity: 16000, Util: 0.99, Saturated: true},
			{Operator: "map", OpIndex: 0, Tasks: 2, Capacity: 0, Util: 0.7, Saturated: false},
			{Operator: "shuffle", OpIndex: 1, Tasks: 1, Capacity: 18000, Util: 0.98, Saturated: true},
		},
	}
}

// Every field participates in the canonical encoding: flipping any one of
// them must change the digest.
func TestEncodeDistinguishesFields(t *testing.T) {
	base := samplePlan().Digest()
	muts := map[string]func(*Plan){
		"workload":  func(p *Plan) { p.Workload = "yahoo" },
		"seed":      func(p *Plan) { p.Seed = 43 },
		"rates":     func(p *Plan) { p.TargetRates[0] = 50001 },
		"slo":       func(p *Plan) { p.SLOFraction = 0.9 },
		"beta":      func(p *Plan) { p.Beta = 2 },
		"tasks":     func(p *Plan) { p.Tasks[0] = 5 },
		"total":     func(p *Plan) { p.TotalTasks = 8 },
		"predicted": func(p *Plan) { p.PredictedThroughput = 97000 },
		"target":    func(p *Plan) { p.TargetThroughput = 99000 },
		"feasible":  func(p *Plan) { p.Feasible = false },
		"cost":      func(p *Plan) { p.CostPerHour = 0.6 },
		"probecost": func(p *Plan) { p.ProbeCost = 1.25 },
		"curve mu":  func(p *Plan) { p.Curves[1].Mu[0] = 18001 },
		"probe cap": func(p *Plan) { p.Probes[0].Capacity = 16001 },
		"probe sat": func(p *Plan) { p.Probes[2].Saturated = false },
	}
	for name, mut := range muts {
		p := samplePlan()
		mut(p)
		if p.Digest() == base {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}

func TestEncodeStable(t *testing.T) {
	a, b := samplePlan(), samplePlan()
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("identical plans encode differently")
	}
	if len(a.DigestHex()) != 16 {
		t.Fatalf("DigestHex = %q, want 16 hex chars", a.DigestHex())
	}
}

// Records feed the warm-start store: saturated probes only, 1-D task
// configs, and strictly pre-launch (negative) slots in probe order.
func TestRecords(t *testing.T) {
	p := samplePlan()
	recs := p.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (saturated probes only)", len(recs))
	}
	lastSlot := -1 << 30
	for i, r := range recs {
		if r.CapacityObs <= 0 {
			t.Errorf("record %d: CapacityObs = %f", i, r.CapacityObs)
		}
		if len(r.Config) != 1 || r.Config[0] < 1 {
			t.Errorf("record %d: config %v, want 1-D task count", i, r.Config)
		}
		if r.Slot >= 0 {
			t.Errorf("record %d: slot %d not pre-launch", i, r.Slot)
		}
		if r.Slot <= lastSlot {
			t.Errorf("record %d: slots not ascending (%d after %d)", i, r.Slot, lastSlot)
		}
		lastSlot = r.Slot
	}
	if recs[0].Operator != "map" || recs[1].Operator != "shuffle" {
		t.Errorf("records out of probe order: %v", recs)
	}
}

func TestStringSummary(t *testing.T) {
	s := samplePlan().String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
