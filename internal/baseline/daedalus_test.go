package baseline

import (
	"testing"

	"dragster/internal/monitor"
)

func TestNewDaedalusValidation(t *testing.T) {
	if _, err := NewDaedalus(0); err == nil {
		t.Error("MaxTasks 0 accepted")
	}
	if _, err := NewDaedalus(10, func(d *Daedalus) { d.MinTasks = 20 }); err == nil {
		t.Error("MinTasks above MaxTasks accepted")
	}
	if _, err := NewDaedalus(10, WithTargetUtil(1.2)); err == nil {
		t.Error("TargetUtil > 1 accepted")
	}
	if _, err := NewDaedalus(10, func(d *Daedalus) { d.MaxStep = 0 }); err == nil {
		t.Error("MaxStep 0 accepted")
	}
	if _, err := NewDaedalus(10, WithDaedalusBudget(-1)); err == nil {
		t.Error("negative budget accepted")
	}
	d, err := NewDaedalus(10, WithDaedalusBudget(12), WithTargetUtil(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if d.TaskBudget != 12 || d.TargetUtil != 0.6 || d.Name() != "daedalus" {
		t.Errorf("options not applied: %+v", d)
	}
}

func TestDaedalusScalesAllOperators(t *testing.T) {
	d, err := NewDaedalus(10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decide(snap(
		// Hot: 4 tasks at 0.95 util → wants ceil(4·0.95/0.75) = 6.
		monitor.OperatorMetrics{Name: "a", Tasks: 4, Util: 0.95},
		// In band: 3 tasks at 0.7 → ceil(2.8) = 3, unchanged.
		monitor.OperatorMetrics{Name: "b", Tasks: 3, Util: 0.7},
		// Idle: 6 tasks at 0.2 → ceil(1.6) = 2, step-capped to 4.
		monitor.OperatorMetrics{Name: "c", Tasks: 6, Util: 0.2},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Unlike Dhalion, every operator moves in the same slot.
	if got[0] != 6 || got[1] != 3 || got[2] != 4 {
		t.Errorf("Decide = %v, want [6 3 4]", got)
	}
}

func TestDaedalusEscalatesBackpressure(t *testing.T) {
	d, err := NewDaedalus(10)
	if err != nil {
		t.Fatal(err)
	}
	// Saturated operator whose util model alone would keep it in place
	// (util ≈ target) must still escalate.
	got, err := d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 4, Util: 0.75, Backlog: 5000, Backpressured: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("backpressured op = %d tasks, want 5", got[0])
	}
}

func TestDaedalusBoundedStep(t *testing.T) {
	d, err := NewDaedalus(10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decide(snap(
		// Model wants ceil(7·1.0/0.75) = 10; the step cap keeps the move
		// at +2.
		monitor.OperatorMetrics{Name: "a", Tasks: 7, Util: 1, Backpressured: true},
		// Scale-down is bounded too: 9 tasks at 0.1 util wants 2, gets 7.
		monitor.OperatorMetrics{Name: "b", Tasks: 9, Util: 0.1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[1] != 7 {
		t.Errorf("Decide = %v, want [9 7]", got)
	}
}

func TestDaedalusRespectsBudget(t *testing.T) {
	d, err := NewDaedalus(10, WithDaedalusBudget(9))
	if err != nil {
		t.Fatal(err)
	}
	// Both hot: each wants ceil(4·0.95/0.75) = 6, step-capped at 6 —
	// over the 9-task budget by three. Revocations come from the
	// smaller-backlog operator first.
	got, err := d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 4, Util: 0.95, Backlog: 900, Backpressured: true},
		monitor.OperatorMetrics{Name: "b", Tasks: 4, Util: 0.95, Backlog: 100, Backpressured: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0]+got[1] > 9 {
		t.Fatalf("Decide = %v exceeds budget 9", got)
	}
	if got[0] != 5 || got[1] != 4 {
		t.Errorf("Decide = %v, want [5 4] (trim takes from the smaller backlog)", got)
	}
	// A budget already exceeded by the *current* allocation never forces
	// scale-downs below it.
	tight, err := NewDaedalus(10, WithDaedalusBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err = tight.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 3, Util: 0.8, Backpressured: true},
		monitor.OperatorMetrics{Name: "b", Tasks: 3, Util: 0.8, Backpressured: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 3 {
		t.Errorf("Decide = %v, want current [3 3] kept under infeasible budget", got)
	}
	if _, err := d.Decide(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
