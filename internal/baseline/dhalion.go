// Package baseline implements the comparison policies of the paper's
// evaluation: Dhalion (the rule-based self-regulating scaler of Twitter
// Heron, §6.1) and a DS2-style proportional controller (related work,
// included as an extra baseline). Both implement the same Autoscaler
// surface as the Dragster controller.
package baseline

import (
	"errors"
	"fmt"

	"dragster/internal/monitor"
)

// Dhalion reproduces the baseline policy as the paper describes it:
// "Dhalion linearly increases the number of tasks for an operator
// suffering from the backpressure and removes the idle one if its CPU
// utilization is lower than a threshold", adjusting one operator per slot
// (§6.2: "at each time slot, Dhalion selects one operator to adjust its
// configuration"). It is purely rule-based — it keeps no history, which
// is why it repeats the same search after every recurring load change.
type Dhalion struct {
	// MaxTasks caps scale-up per operator (the paper's grid tops at 10).
	MaxTasks int
	// MinTasks floors scale-down (default 1).
	MinTasks int
	// IdleUtil is the CPU threshold below which a task is removed
	// (default 0.7, which parks the scale-down at roughly 1.4× the
	// minimal configuration — the over-provisioning gap behind the
	// paper's Table 2 cost comparison).
	IdleUtil float64
	// TaskBudget bounds Σ tasks when positive. Dhalion respects the budget
	// by refusing scale-ups that would exceed it (it does not rebalance
	// across operators — the behaviour behind Fig. 4(d)).
	TaskBudget int
}

// NewDhalion validates and returns the policy.
func NewDhalion(maxTasks int, opts ...func(*Dhalion)) (*Dhalion, error) {
	if maxTasks < 1 {
		return nil, errors.New("baseline: MaxTasks must be ≥ 1")
	}
	d := &Dhalion{MaxTasks: maxTasks, MinTasks: 1, IdleUtil: 0.7}
	for _, o := range opts {
		o(d)
	}
	if d.MinTasks < 1 || d.MinTasks > d.MaxTasks {
		return nil, fmt.Errorf("baseline: MinTasks %d outside [1, %d]", d.MinTasks, d.MaxTasks)
	}
	if d.IdleUtil <= 0 || d.IdleUtil >= 1 {
		return nil, fmt.Errorf("baseline: IdleUtil %v outside (0, 1)", d.IdleUtil)
	}
	if d.TaskBudget < 0 {
		return nil, errors.New("baseline: negative TaskBudget")
	}
	return d, nil
}

// WithBudget sets the task budget.
func WithBudget(b int) func(*Dhalion) {
	return func(d *Dhalion) { d.TaskBudget = b }
}

// WithIdleUtil overrides the idle threshold.
func WithIdleUtil(u float64) func(*Dhalion) {
	return func(d *Dhalion) { d.IdleUtil = u }
}

// Name implements the Autoscaler surface.
func (d *Dhalion) Name() string { return "dhalion" }

// Decide implements the Autoscaler surface: one symptom → one diagnosis →
// one resolution action per slot.
func (d *Dhalion) Decide(snap *monitor.Snapshot) ([]int, error) {
	if snap == nil {
		return nil, errors.New("baseline: nil snapshot")
	}
	tasks := make([]int, len(snap.Operators))
	total := 0
	for i, om := range snap.Operators {
		tasks[i] = om.Tasks
		total += om.Tasks
	}

	// Symptom 1: backpressure. Scale up the operator with the largest
	// backlog among the backpressured ones.
	worst, worstBacklog := -1, -1.0
	for i, om := range snap.Operators {
		if om.Backpressured && om.Tasks < d.MaxTasks {
			if om.Backlog > worstBacklog {
				worst, worstBacklog = i, om.Backlog
			}
		}
	}
	if worst >= 0 {
		if d.TaskBudget == 0 || total+1 <= d.TaskBudget {
			tasks[worst]++
		}
		return tasks, nil
	}

	// Symptom 2: idleness. Remove one task from every operator below the
	// CPU threshold (scale-down is cheap and safe, so Dhalion applies it
	// cluster-wide in one resolution — this is what gives it the fast
	// down-phase convergence of Table 2).
	for i, om := range snap.Operators {
		if om.Tasks > d.MinTasks && om.Util < d.IdleUtil {
			tasks[i]--
		}
	}
	return tasks, nil
}
