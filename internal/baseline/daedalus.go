package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dragster/internal/monitor"
)

// Daedalus is a self-adaptive baseline in the spirit of Daedalus (Pfister
// et al., arXiv 2403.02093): it drives every operator toward a target
// CPU-utilization band each slot using a utilization model — required
// parallelism ≈ tasks × util / target — rather than one rule-selected
// operator per slot (Dhalion) or a single unbounded proportional jump
// (DS2). Steps are bounded per operator per slot (real rescales are not
// free), backpressured operators always escalate by at least one task,
// and a positive budget is respected by granting scale-ups in descending
// backlog order. It adapts fast but, keeping no model of the capacity
// curve, it re-pays the adaptation cost after every load change — the
// self-adaptive comparator the capacity experiment measures plans
// against.
type Daedalus struct {
	// MaxTasks caps per-operator parallelism; MinTasks floors it
	// (default 1).
	MaxTasks int
	MinTasks int
	// TargetUtil is the utilization the model steers every operator to
	// (default 0.75 — headroom below saturation, above idle-waste).
	TargetUtil float64
	// MaxStep bounds the per-operator parallelism change in one slot
	// (default 2).
	MaxStep int
	// TaskBudget bounds Σ tasks when positive; scale-ups beyond it are
	// granted in descending backlog order.
	TaskBudget int
}

// NewDaedalus validates and returns the policy.
func NewDaedalus(maxTasks int, opts ...func(*Daedalus)) (*Daedalus, error) {
	if maxTasks < 1 {
		return nil, errors.New("baseline: MaxTasks must be ≥ 1")
	}
	d := &Daedalus{MaxTasks: maxTasks, MinTasks: 1, TargetUtil: 0.75, MaxStep: 2}
	for _, o := range opts {
		o(d)
	}
	if d.MinTasks < 1 || d.MinTasks > d.MaxTasks {
		return nil, fmt.Errorf("baseline: MinTasks %d outside [1, %d]", d.MinTasks, d.MaxTasks)
	}
	if d.TargetUtil <= 0 || d.TargetUtil >= 1 {
		return nil, fmt.Errorf("baseline: TargetUtil %v outside (0, 1)", d.TargetUtil)
	}
	if d.MaxStep < 1 {
		return nil, errors.New("baseline: MaxStep must be ≥ 1")
	}
	if d.TaskBudget < 0 {
		return nil, errors.New("baseline: negative TaskBudget")
	}
	return d, nil
}

// WithDaedalusBudget sets the task budget.
func WithDaedalusBudget(b int) func(*Daedalus) {
	return func(d *Daedalus) { d.TaskBudget = b }
}

// WithTargetUtil overrides the utilization setpoint.
func WithTargetUtil(u float64) func(*Daedalus) {
	return func(d *Daedalus) { d.TargetUtil = u }
}

// Name implements the Autoscaler surface.
func (d *Daedalus) Name() string { return "daedalus" }

// Decide implements the Autoscaler surface.
func (d *Daedalus) Decide(snap *monitor.Snapshot) ([]int, error) {
	if snap == nil {
		return nil, errors.New("baseline: nil snapshot")
	}
	n := len(snap.Operators)
	tasks := make([]int, n)
	total := 0
	for i, om := range snap.Operators {
		cur := om.Tasks
		if cur < d.MinTasks {
			cur = d.MinTasks
		}
		// Utilization model: the work currently done by cur tasks at om.Util
		// needs cur·util/target tasks at the setpoint.
		want := cur
		if om.Util > 0 {
			want = int(math.Ceil(float64(cur) * om.Util / d.TargetUtil))
		}
		if om.Backpressured && want <= om.Tasks {
			// A saturated operator under-reports its demand (util tops out
			// at 1); always escalate it.
			want = om.Tasks + 1
		}
		// Bounded actuation: real rescales pause the job, so Daedalus moves
		// at most MaxStep tasks per slot.
		if want > om.Tasks+d.MaxStep {
			want = om.Tasks + d.MaxStep
		}
		if want < om.Tasks-d.MaxStep {
			want = om.Tasks - d.MaxStep
		}
		if want < d.MinTasks {
			want = d.MinTasks
		}
		if want > d.MaxTasks {
			want = d.MaxTasks
		}
		tasks[i] = want
		total += want
	}
	if d.TaskBudget > 0 && total > d.TaskBudget {
		d.trimToBudget(snap, tasks, total)
	}
	return tasks, nil
}

// trimToBudget revokes scale-ups — never forced scale-downs below the
// current allocation — until Σ tasks fits the budget, taking from the
// operators with the smallest backlog first (deterministic: ties break
// on the higher operator index, so earlier operators keep their grants).
func (d *Daedalus) trimToBudget(snap *monitor.Snapshot, tasks []int, total int) {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := snap.Operators[order[a]], snap.Operators[order[b]]
		if oa.Backlog != ob.Backlog {
			return oa.Backlog < ob.Backlog
		}
		return order[a] > order[b]
	})
	for total > d.TaskBudget {
		trimmed := false
		for _, i := range order {
			if tasks[i] > snap.Operators[i].Tasks && tasks[i] > d.MinTasks {
				tasks[i]--
				total--
				trimmed = true
				if total <= d.TaskBudget {
					return
				}
			}
		}
		if !trimmed {
			return // nothing left to revoke; budget was infeasible before us
		}
	}
}
