package baseline

import (
	"testing"

	"dragster/internal/monitor"
)

func snap(ops ...monitor.OperatorMetrics) *monitor.Snapshot {
	return &monitor.Snapshot{Operators: ops, SourceRates: []float64{100}}
}

func TestNewDhalionValidation(t *testing.T) {
	if _, err := NewDhalion(0); err == nil {
		t.Error("MaxTasks 0 accepted")
	}
	if _, err := NewDhalion(10, func(d *Dhalion) { d.MinTasks = 0 }); err == nil {
		t.Error("MinTasks 0 accepted")
	}
	if _, err := NewDhalion(10, WithIdleUtil(1.5)); err == nil {
		t.Error("IdleUtil > 1 accepted")
	}
	if _, err := NewDhalion(10, WithBudget(-1)); err == nil {
		t.Error("negative budget accepted")
	}
	d, err := NewDhalion(10, WithBudget(5), WithIdleUtil(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if d.TaskBudget != 5 || d.IdleUtil != 0.4 || d.Name() != "dhalion" {
		t.Errorf("options not applied: %+v", d)
	}
}

func TestDhalionScalesUpWorstBackpressure(t *testing.T) {
	d, err := NewDhalion(10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 2, Util: 0.99, Backlog: 100, Backpressured: true},
		monitor.OperatorMetrics{Name: "b", Tasks: 3, Util: 0.99, Backlog: 900, Backpressured: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	// One operator per slot, the one with the biggest backlog.
	if got[0] != 2 || got[1] != 4 {
		t.Errorf("Decide = %v, want [2 4]", got)
	}
}

func TestDhalionRespectsMaxTasksAndBudget(t *testing.T) {
	d, err := NewDhalion(4, WithBudget(6))
	if err != nil {
		t.Fatal(err)
	}
	// At max tasks: no further scale-up even when backpressured.
	got, err := d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 4, Util: 1, Backlog: 100, Backpressured: true},
		monitor.OperatorMetrics{Name: "b", Tasks: 1, Util: 0.8},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 1 {
		t.Errorf("max-task scale-up happened: %v", got)
	}
	// Budget exhausted: a backpressured operator cannot grow.
	got, err = d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 3, Util: 1, Backlog: 100, Backpressured: true},
		monitor.OperatorMetrics{Name: "b", Tasks: 3, Util: 0.9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 3 {
		t.Errorf("budget-violating scale-up: %v", got)
	}
}

func TestDhalionRemovesIdleTasksEverywhere(t *testing.T) {
	d, err := NewDhalion(10) // idle threshold 0.7
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 5, Util: 0.3},
		monitor.OperatorMetrics{Name: "b", Tasks: 4, Util: 0.5},
		monitor.OperatorMetrics{Name: "c", Tasks: 2, Util: 0.9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 3 || got[2] != 2 {
		t.Errorf("Decide = %v, want [4 3 2]", got)
	}
	// MinTasks floor.
	got, err = d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 1, Util: 0.1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("went below MinTasks: %v", got)
	}
}

func TestDhalionBackpressureBeatsIdle(t *testing.T) {
	d, err := NewDhalion(10)
	if err != nil {
		t.Fatal(err)
	}
	// One backpressured op + one idle op: the resolution this slot is the
	// scale-up; idleness waits.
	got, err := d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 2, Util: 1, Backlog: 10, Backpressured: true},
		monitor.OperatorMetrics{Name: "b", Tasks: 5, Util: 0.2},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 5 {
		t.Errorf("Decide = %v, want [3 5]", got)
	}
}

func TestDhalionNilSnapshot(t *testing.T) {
	d, err := NewDhalion(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decide(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestNewDS2Validation(t *testing.T) {
	if _, err := NewDS2(0); err == nil {
		t.Error("MaxTasks 0 accepted")
	}
	d, err := NewDS2(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "ds2" {
		t.Errorf("Name = %q", d.Name())
	}
	d.Headroom = 0.5
	if _, err := d.Decide(snap(monitor.OperatorMetrics{Tasks: 1})); err == nil {
		t.Error("bad headroom accepted at decide time")
	}
}

func TestDS2ProportionalScaling(t *testing.T) {
	d, err := NewDS2(10)
	if err != nil {
		t.Fatal(err)
	}
	d.DrainSeconds = 0 // isolate the proportional term
	// 2 tasks at full utilization process 100/s out of a required 300/s
	// (selectivity 1): per-task true rate 50 → need ceil(300·1.1/50) = 7.
	got, err := d.Decide(snap(monitor.OperatorMetrics{
		Name: "a", Tasks: 2, InRate: 300, OutRate: 100, ConsumedRate: 100, Util: 1.0,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Errorf("Decide = %v, want [7]", got)
	}
}

func TestDS2ScalesDownOverProvisioned(t *testing.T) {
	d, err := NewDS2(10)
	if err != nil {
		t.Fatal(err)
	}
	// 8 tasks at 25% utilization: per-task true rate = 100/0.25/8 = 50;
	// required 100·1.1 = 110 → 3 tasks (plus drain ≈ 0 backlog).
	got, err := d.Decide(snap(monitor.OperatorMetrics{
		Name: "a", Tasks: 8, InRate: 100, OutRate: 100, ConsumedRate: 100, Util: 0.25,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Errorf("Decide = %v, want [3]", got)
	}
}

func TestDS2BudgetsBacklogDrain(t *testing.T) {
	d, err := NewDS2(10)
	if err != nil {
		t.Fatal(err)
	}
	// Same as above but with a 6000-tuple backlog: +100/s drain budget at
	// DrainSeconds 60 → required 210·1.1 = 231 → 5 tasks.
	got, err := d.Decide(snap(monitor.OperatorMetrics{
		Name: "a", Tasks: 8, InRate: 100, OutRate: 100, ConsumedRate: 100, Util: 0.25, Backlog: 6000,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("Decide = %v, want [5]", got)
	}
}

func TestDS2Bounds(t *testing.T) {
	d, err := NewDS2(6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decide(snap(monitor.OperatorMetrics{
		Name: "a", Tasks: 2, InRate: 10000, OutRate: 10, ConsumedRate: 10, Util: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 {
		t.Errorf("MaxTasks cap failed: %v", got)
	}
	// Zero tasks bootstraps to MinTasks; zero output keeps current.
	got, err = d.Decide(snap(
		monitor.OperatorMetrics{Name: "a", Tasks: 0},
		monitor.OperatorMetrics{Name: "b", Tasks: 3, OutRate: 0, Util: 0.5},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("bounds handling = %v, want [1 3]", got)
	}
	if _, err := d.Decide(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
