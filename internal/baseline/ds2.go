package baseline

import (
	"errors"
	"fmt"
	"math"

	"dragster/internal/monitor"
)

// DS2 is a proportional controller in the spirit of Kalavri et al. (OSDI
// 2018): each operator's parallelism is set to
//
//	ceil( required output rate / observed per-task processing rate )
//
// in a single step, for every operator simultaneously. It assumes capacity
// scales linearly with tasks — the assumption Dragster's GP replaces —
// so it systematically misses the diminishing-returns knee of the real
// capacity curves. Included as the related-work comparator.
type DS2 struct {
	// MaxTasks caps per-operator parallelism.
	MaxTasks int
	// MinTasks floors it (default 1).
	MinTasks int
	// Headroom multiplies the required rate to absorb noise (default 1.1).
	Headroom float64
	// DrainSeconds sizes the extra rate budgeted to drain standing backlog
	// (default 60: clear the queue within a minute).
	DrainSeconds float64
}

// NewDS2 validates and returns the policy.
func NewDS2(maxTasks int) (*DS2, error) {
	if maxTasks < 1 {
		return nil, errors.New("baseline: MaxTasks must be ≥ 1")
	}
	return &DS2{MaxTasks: maxTasks, MinTasks: 1, Headroom: 1.1, DrainSeconds: 60}, nil
}

// Name implements the Autoscaler surface.
func (d *DS2) Name() string { return "ds2" }

// Decide implements the Autoscaler surface.
func (d *DS2) Decide(snap *monitor.Snapshot) ([]int, error) {
	if snap == nil {
		return nil, errors.New("baseline: nil snapshot")
	}
	if d.Headroom < 1 || d.DrainSeconds < 0 || d.MinTasks < 1 || d.MinTasks > d.MaxTasks {
		return nil, fmt.Errorf("baseline: invalid DS2 parameters %+v", *d)
	}
	tasks := make([]int, len(snap.Operators))
	for i, om := range snap.Operators {
		tasks[i] = om.Tasks
		if om.Tasks <= 0 {
			tasks[i] = d.MinTasks
			continue
		}
		// Observed per-task true processing rate (output units), from the
		// useful-time normalization: rate/util spreads over tasks.
		util := math.Max(om.Util, 0.05)
		perTask := om.OutRate / util / float64(om.Tasks)
		if perTask <= 0 {
			continue // nothing observed; keep current
		}
		// Required output rate: sustain the selectivity-scaled input plus
		// drain the standing backlog.
		sel := 1.0
		if om.ConsumedRate > 0 {
			sel = om.OutRate / om.ConsumedRate
		}
		required := om.InRate * sel
		if d.DrainSeconds > 0 {
			required += om.Backlog * sel / d.DrainSeconds
		}
		want := int(math.Ceil(required * d.Headroom / perTask))
		if want < d.MinTasks {
			want = d.MinTasks
		}
		if want > d.MaxTasks {
			want = d.MaxTasks
		}
		tasks[i] = want
	}
	return tasks, nil
}
