package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Split()
	c2 := g.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split streams look correlated: %d/100 identical draws", same)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(1)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(g.Normal(3, 2))
	}
	if math.Abs(w.Mean()-3) > 0.05 {
		t.Errorf("Normal mean = %v, want ~3", w.Mean())
	}
	if math.Abs(w.Std()-2) > 0.05 {
		t.Errorf("Normal std = %v, want ~2", w.Std())
	}
}

func TestNormalNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normal with negative sigma did not panic")
		}
	}()
	NewRNG(1).Normal(0, -1)
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(sorted, 1); got != 40 {
		t.Errorf("p1 = %v", got)
	}
	if got := Percentile(sorted, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25 (interpolated)", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 0.5) },
		func() { Percentile([]float64{1}, -0.1) },
		func() { Percentile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-12 {
		t.Errorf("Welford mean %v vs Summarize %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.Std()-s.Std) > 1e-12 {
		t.Errorf("Welford std %v vs Summarize %v", w.Std(), s.Std)
	}
	if w.N() != len(xs) {
		t.Errorf("Welford N = %d", w.N())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 {
		t.Error("Reset did not clear accumulator")
	}
}

func TestWelfordVarNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
			w.Add(x)
		}
		return w.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA reports initialized")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v", got)
	}
	if got := e.Add(20); got != 15 {
		t.Errorf("second Add = %v, want 15", got)
	}
	if !e.Initialized() || e.Value() != 15 {
		t.Errorf("Value = %v", e.Value())
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
	NewEWMA(1) // boundary is legal
}
