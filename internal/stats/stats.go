// Package stats provides the deterministic randomness and summary
// statistics used throughout the Dragster reproduction. Every stochastic
// component (cloud noise, GP observation noise, workload jitter) draws from
// a stats.RNG seeded explicitly, so experiments are reproducible
// run-to-run.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// RNG wraps math/rand.Rand with the distributions the simulator needs.
// It is NOT safe for concurrent use; give each goroutine its own via Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator. Children created with
// distinct labels (or in sequence) produce uncorrelated streams, letting
// components own private randomness without sharing a lock.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample from [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample from {0, ..., n-1}.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation. sigma must be non-negative.
func (g *RNG) Normal(mean, sigma float64) float64 {
	if sigma < 0 {
		panic("stats: Normal with negative sigma")
	}
	return mean + sigma*g.r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)); handy for multiplicative cloud
// noise that must stay positive.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Uniform returns a uniform sample from [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a random permutation of {0, ..., n-1}.
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary over xs. It returns the zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// slice using linear interpolation. It panics on an empty slice or p
// outside [0, 1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 1 {
		panic("stats: Percentile p outside [0, 1]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford tracks running mean and variance without storing samples. The
// job monitor uses one per operator to smooth noisy per-tick observations.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a new observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weights recent samples more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha outside (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds in an observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }
