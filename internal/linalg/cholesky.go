package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
// It is the workhorse behind the GP posterior (Eq. 17 of the Dragster
// paper): solving (K + σ²I)⁻¹ b reduces to two triangular solves.
//
// A factor built by NewCholesky also retains a private copy of A itself,
// kept in sync by Extend, because Downdate — the removal dual of Extend —
// must recompute trailing factor columns from the original matrix entries
// to stay bit-identical with a from-scratch refactorization (L·Lᵀ only
// reproduces A up to rounding). A zero-constructed Cholesky{L: ...} still
// supports every query and Extend, but not Downdate.
type Cholesky struct {
	L *Matrix // lower triangular, Rows == Cols

	// a is the factorized matrix (NewCholesky path only; nil otherwise).
	a *Matrix
	// w is the Extend scratch for the border solve L·w = row, so the
	// steady-state Extend allocates nothing once capacity has grown.
	w []float64
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD if a is not
// square, not symmetric within 1e-8·max|a|, or a pivot becomes non-positive.
// a is not modified (the factor keeps its own copy for Downdate).
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, ErrNotSPD
	}
	var maxAbs float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if !a.IsSymmetric(1e-8*maxAbs + 1e-12) {
		return nil, ErrNotSPD
	}

	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d += v * v
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{L: l, a: a.Clone()}, nil
}

// N returns the order of the factorized matrix.
func (c *Cholesky) N() int { return c.L.Rows }

// growSquare restrides m from n×n to (n+1)×(n+1) row-major, reusing
// m.Data when capacity allows and reallocating otherwise. Rows move
// back to front: row i's destination i·(n+1) starts at or after the end
// i·n of row i−1's source, so no unmoved row is clobbered, and Go's copy
// handles the self-overlap within a row like memmove. The new last row
// and column are zeroed (the backing array may hold stale values from an
// earlier shrink). Returns the matrix to assign back (it differs from m
// only on the reallocation path).
func growSquare(m *Matrix) *Matrix {
	n := m.Rows
	if cap(m.Data) < (n+1)*(n+1) {
		g := NewMatrix(n+1, n+1)
		for i := 0; i < n; i++ {
			copy(g.Data[i*(n+1):i*(n+1)+n], m.Data[i*n:(i+1)*n])
		}
		return g
	}
	m.Data = m.Data[:(n+1)*(n+1)]
	for i := n - 1; i >= 0; i-- {
		copy(m.Data[i*(n+1):i*(n+1)+n], m.Data[i*n:(i+1)*n])
		m.Data[i*(n+1)+n] = 0
	}
	for j := n * (n + 1); j < (n+1)*(n+1); j++ {
		m.Data[j] = 0
	}
	m.Rows, m.Cols = n+1, n+1
	return m
}

// Extend grows the factor of the n×n matrix A to the factor of the
// (n+1)×(n+1) bordered matrix
//
//	A' = ⎡A     row⎤
//	     ⎣rowᵀ  diag⎦
//
// in O(n²): the new off-diagonal row of L is the forward solve L·w = row
// and the new pivot is √(diag − wᵀw). row holds the n new off-diagonal
// entries A'[n][0..n−1]; diag is A'[n][n]. The arithmetic mirrors
// NewCholesky's column recurrence term for term, so an extended factor is
// bit-identical to refactorizing A' from scratch. On ErrNotSPD (the new
// pivot is not positive) the receiver is left unchanged — the border
// solve lands in scratch and is committed only after the pivot check.
//
// When backing capacity suffices (after a Downdate shrank the factor,
// or on a reused buffer), Extend restrides L and the retained copy of A
// in place and allocates nothing, which is what makes the budgeted
// evict-then-observe steady state in internal/gp allocation-free.
func (c *Cholesky) Extend(row []float64, diag float64) error {
	n := c.L.Rows
	if len(row) != n {
		panic(fmt.Sprintf("linalg: Extend row length %d, want %d", len(row), n))
	}
	if cap(c.w) < n {
		c.w = make([]float64, n+1)
	}
	w := c.w[:n]
	for j := 0; j < n; j++ {
		var s float64
		for k := 0; k < j; k++ {
			s += w[k] * c.L.At(j, k)
		}
		w[j] = (row[j] - s) / c.L.At(j, j)
	}
	var d float64
	for k := 0; k < n; k++ {
		d += w[k] * w[k]
	}
	d = diag - d
	if d <= 0 || math.IsNaN(d) {
		return ErrNotSPD
	}
	c.L = growSquare(c.L)
	copy(c.L.Data[n*(n+1):n*(n+1)+n], w)
	c.L.Data[n*(n+1)+n] = math.Sqrt(d)
	if c.a != nil {
		c.a = growSquare(c.a)
		for j := 0; j < n; j++ {
			c.a.Data[n*(n+1)+j] = row[j]
			c.a.Data[j*(n+1)+n] = row[j]
		}
		c.a.Data[n*(n+1)+n] = diag
	}
	return nil
}

// Downdate removes observation i from the factor: it shrinks the factor
// of the n×n matrix A to the factor of the (n−1)×(n−1) matrix A with row
// and column i deleted, in place and allocation-free. It is the removal
// dual of Extend, and like Extend it is bit-identical to refactorizing
// the retained submatrix from scratch: columns j < i of L are unchanged
// (the column-j recurrence reads only A entries and factor columns k < j,
// all of which survive the deletion untouched), and columns j ≥ i are
// recomputed with exactly NewCholesky's recurrence over the compacted
// copy of A that the factor retains. Cost is O((n−i)·n) — removing the
// newest row is O(n), the oldest O(n²).
//
// Downdate panics if the factor was not built by NewCholesky (no base
// matrix to recompute from), if i is out of range, or if n == 1 (an
// empty factor is not representable; callers track emptiness). It
// returns ErrNotSPD if a recomputed pivot is not positive — possible
// only through accumulated rounding, since a principal submatrix of an
// SPD matrix is SPD — and in that case the receiver is left invalid and
// must be discarded (the caller refits from its retained observations).
//
//lint:hotpath
func (c *Cholesky) Downdate(i int) error {
	n := c.L.Rows
	if c.a == nil {
		panic("linalg: Downdate on a factor without its base matrix (not built by NewCholesky)")
	}
	if i < 0 || i >= n {
		//lint:allow hotpath cold panic path: formatting happens only on caller misuse, never in steady state
		panic(fmt.Sprintf("linalg: Downdate index %d out of range [0,%d)", i, n))
	}
	if n == 1 {
		panic("linalg: Downdate would empty the factor; drop the Cholesky instead")
	}
	m := n - 1
	compactSquare(c.a, i)
	compactSquare(c.L, i)
	// Recompute columns i..m−1 with the NewCholesky column recurrence over
	// the compacted A. Column-major order guarantees every factor entry the
	// recurrence reads (columns k < j) is already final: k < i carried over,
	// k ∈ [i, j) recomputed on an earlier pass of this loop.
	for j := i; j < m; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := c.L.At(j, k)
			d += v * v
		}
		d = c.a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		ljj := math.Sqrt(d)
		c.L.Set(j, j, ljj)
		for r := j + 1; r < m; r++ {
			var s float64
			for k := 0; k < j; k++ {
				s += c.L.At(r, k) * c.L.At(j, k)
			}
			c.L.Set(r, j, (c.a.At(r, j)-s)/ljj)
		}
	}
	return nil
}

// compactSquare deletes row i and column i of the n×n matrix m in place,
// leaving an (n−1)×(n−1) matrix on the same backing array. The forward
// scan is safe because every destination index is at or before its
// source (deleting entries only ever shifts data left).
func compactSquare(m *Matrix, i int) {
	n := m.Rows
	dst := 0
	for r := 0; r < n; r++ {
		if r == i {
			continue
		}
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			m.Data[dst] = m.Data[r*n+k]
			dst++
		}
	}
	m.Data = m.Data[:(n-1)*(n-1)]
	m.Rows, m.Cols = n-1, n-1
}

// SolveVec solves A·x = b for x, where A is the factorized matrix.
// It panics if len(b) != n.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	return c.SolveVecInto(make([]float64, c.L.Rows), b)
}

// SolveVecInto solves A·x = b into dst and returns dst, allocating
// nothing. dst may alias b. It panics if len(dst) or len(b) != n.
func (c *Cholesky) SolveVecInto(dst, b []float64) []float64 {
	c.forwardSolveInto(dst, b)
	c.backwardSolveInto(dst, dst)
	return dst
}

// forwardSolveInto solves L·y = b into y. y may alias b: y[i] reads b[i]
// before writing index i and otherwise only touches already-computed
// entries.
func (c *Cholesky) forwardSolveInto(y, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(y) != n {
		panic("linalg: SolveVec dimension mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
}

// backwardSolveInto solves Lᵀ·x = y into x. x may alias y: index i is
// read from y before being written and later entries are already final.
func (c *Cholesky) backwardSolveInto(x, y []float64) {
	n := c.L.Rows
	if len(y) != n || len(x) != n {
		panic("linalg: SolveVec dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
}

// SolveLowerVec solves L·y = b (forward substitution only). The GP variance
// computation needs this half-solve: σ²(x) = k(x,x) − ‖L⁻¹ k_t(x)‖².
func (c *Cholesky) SolveLowerVec(b []float64) []float64 {
	return c.SolveLowerVecInto(make([]float64, c.L.Rows), b)
}

// SolveLowerVecInto solves L·y = b into dst and returns dst, allocating
// nothing. dst may alias b.
func (c *Cholesky) SolveLowerVecInto(dst, b []float64) []float64 {
	c.forwardSolveInto(dst, b)
	return dst
}

// LogDet returns log det(A) = 2·Σ log L_ii, used by the GP log-marginal
// likelihood.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
