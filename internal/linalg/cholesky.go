package linalg

import "math"

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
// It is the workhorse behind the GP posterior (Eq. 17 of the Dragster
// paper): solving (K + σ²I)⁻¹ b reduces to two triangular solves.
type Cholesky struct {
	L *Matrix // lower triangular, Rows == Cols
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD if a is not
// square, not symmetric within 1e-8·max|a|, or a pivot becomes non-positive.
// a is not modified.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, ErrNotSPD
	}
	var maxAbs float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if !a.IsSymmetric(1e-8*maxAbs + 1e-12) {
		return nil, ErrNotSPD
	}

	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d += v * v
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{L: l}, nil
}

// SolveVec solves A·x = b for x, where A is the factorized matrix.
// It panics if len(b) != n.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.forwardSolve(b)
	return c.backwardSolve(y)
}

// forwardSolve solves L·y = b.
func (c *Cholesky) forwardSolve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: SolveVec dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	return y
}

// backwardSolve solves Lᵀ·x = y.
func (c *Cholesky) backwardSolve(y []float64) []float64 {
	n := c.L.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// SolveLowerVec solves L·y = b (forward substitution only). The GP variance
// computation needs this half-solve: σ²(x) = k(x,x) − ‖L⁻¹ k_t(x)‖².
func (c *Cholesky) SolveLowerVec(b []float64) []float64 {
	return c.forwardSolve(b)
}

// LogDet returns log det(A) = 2·Σ log L_ii, used by the GP log-marginal
// likelihood.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
