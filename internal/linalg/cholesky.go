package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
// It is the workhorse behind the GP posterior (Eq. 17 of the Dragster
// paper): solving (K + σ²I)⁻¹ b reduces to two triangular solves.
type Cholesky struct {
	L *Matrix // lower triangular, Rows == Cols
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD if a is not
// square, not symmetric within 1e-8·max|a|, or a pivot becomes non-positive.
// a is not modified.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, ErrNotSPD
	}
	var maxAbs float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if !a.IsSymmetric(1e-8*maxAbs + 1e-12) {
		return nil, ErrNotSPD
	}

	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d += v * v
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{L: l}, nil
}

// N returns the order of the factorized matrix.
func (c *Cholesky) N() int { return c.L.Rows }

// Extend grows the factor of the n×n matrix A to the factor of the
// (n+1)×(n+1) bordered matrix
//
//	A' = ⎡A     row⎤
//	     ⎣rowᵀ  diag⎦
//
// in O(n²): the new off-diagonal row of L is the forward solve L·w = row
// and the new pivot is √(diag − wᵀw). row holds the n new off-diagonal
// entries A'[n][0..n−1]; diag is A'[n][n]. The arithmetic mirrors
// NewCholesky's column recurrence term for term, so an extended factor is
// bit-identical to refactorizing A' from scratch. On ErrNotSPD (the new
// pivot is not positive) the receiver is left unchanged.
func (c *Cholesky) Extend(row []float64, diag float64) error {
	n := c.L.Rows
	if len(row) != n {
		panic(fmt.Sprintf("linalg: Extend row length %d, want %d", len(row), n))
	}
	l := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(l.Data[i*(n+1):i*(n+1)+i+1], c.L.Data[i*n:i*n+i+1])
	}
	for j := 0; j < n; j++ {
		var s float64
		for k := 0; k < j; k++ {
			s += l.At(n, k) * l.At(j, k)
		}
		l.Set(n, j, (row[j]-s)/l.At(j, j))
	}
	var d float64
	for k := 0; k < n; k++ {
		v := l.At(n, k)
		d += v * v
	}
	d = diag - d
	if d <= 0 || math.IsNaN(d) {
		return ErrNotSPD
	}
	l.Set(n, n, math.Sqrt(d))
	c.L = l
	return nil
}

// SolveVec solves A·x = b for x, where A is the factorized matrix.
// It panics if len(b) != n.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	return c.SolveVecInto(make([]float64, c.L.Rows), b)
}

// SolveVecInto solves A·x = b into dst and returns dst, allocating
// nothing. dst may alias b. It panics if len(dst) or len(b) != n.
func (c *Cholesky) SolveVecInto(dst, b []float64) []float64 {
	c.forwardSolveInto(dst, b)
	c.backwardSolveInto(dst, dst)
	return dst
}

// forwardSolveInto solves L·y = b into y. y may alias b: y[i] reads b[i]
// before writing index i and otherwise only touches already-computed
// entries.
func (c *Cholesky) forwardSolveInto(y, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(y) != n {
		panic("linalg: SolveVec dimension mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
}

// backwardSolveInto solves Lᵀ·x = y into x. x may alias y: index i is
// read from y before being written and later entries are already final.
func (c *Cholesky) backwardSolveInto(x, y []float64) {
	n := c.L.Rows
	if len(y) != n || len(x) != n {
		panic("linalg: SolveVec dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
}

// SolveLowerVec solves L·y = b (forward substitution only). The GP variance
// computation needs this half-solve: σ²(x) = k(x,x) − ‖L⁻¹ k_t(x)‖².
func (c *Cholesky) SolveLowerVec(b []float64) []float64 {
	return c.SolveLowerVecInto(make([]float64, c.L.Rows), b)
}

// SolveLowerVecInto solves L·y = b into dst and returns dst, allocating
// nothing. dst may alias b.
func (c *Cholesky) SolveLowerVecInto(dst, b []float64) []float64 {
	c.forwardSolveInto(dst, b)
	return dst
}

// LogDet returns log det(A) = 2·Σ log L_ii, used by the GP log-marginal
// likelihood.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
