// Package linalg implements the small dense linear-algebra kernel that the
// Gaussian-process layer needs: column-major-free dense matrices, Cholesky
// factorization of symmetric positive-definite systems, and triangular
// solves. It deliberately covers only what Dragster uses; it is not a
// general-purpose BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNotSPD is returned by Cholesky when the input matrix is not (numerically)
// symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix. It panics if r or c is not positive.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d) with non-positive dimension", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// copied. It panics on a length mismatch.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: NewMatrixFrom(%d, %d) with %d elements", r, c, len(data)))
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j). Bounds are checked by the underlying slice.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.Rows, m.Cols, m.Data)
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec returns m·x. It panics if dimensions are incompatible.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns the matrix product m·b. It panics if dimensions are
// incompatible.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// AddScaledIdentity returns m + s·I for square m, as a new matrix.
func (m *Matrix) AddScaledIdentity(s float64) *Matrix {
	if m.Rows != m.Cols {
		panic("linalg: AddScaledIdentity on non-square matrix")
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Add(i, i, s)
	}
	return out
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders m for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
