package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// leadingMinor returns the top-left k×k block of a.
func leadingMinor(a *Matrix, k int) *Matrix {
	m := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			m.Set(i, j, a.At(i, j))
		}
	}
	return m
}

// TestExtendBitIdenticalToFromScratch is the incremental-GP cornerstone:
// growing a factor one bordered row at a time must produce the exact same
// bits as refactorizing each leading minor from scratch, because the
// extension mirrors NewCholesky's column recurrence term for term. The
// determinism regression tests (byte-identical seeded figures) depend on
// this equality, so it is exact, not approximate.
func TestExtendBitIdenticalToFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		a := randomSPD(rng, n)
		inc, err := NewCholesky(leadingMinor(a, 1))
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < n; k++ {
			row := make([]float64, k)
			for i := 0; i < k; i++ {
				row[i] = a.At(k, i)
			}
			if err := inc.Extend(row, a.At(k, k)); err != nil {
				t.Fatalf("trial %d: extend to %d: %v", trial, k+1, err)
			}
			ref, err := NewCholesky(leadingMinor(a, k+1))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k+1; i++ {
				for j := 0; j < k+1; j++ {
					if inc.L.At(i, j) != ref.L.At(i, j) {
						t.Fatalf("trial %d size %d: L[%d][%d] = %v incremental, %v from scratch",
							trial, k+1, i, j, inc.L.At(i, j), ref.L.At(i, j))
					}
				}
			}
		}
		if inc.N() != n {
			t.Fatalf("N() = %d, want %d", inc.N(), n)
		}
	}
}

func TestExtendRejectsNonSPDAndLeavesFactorIntact(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 1, 1, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L.Clone()
	// Bordering with diag 0 makes the pivot non-positive.
	if err := ch.Extend([]float64{1, 1}, 0); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	if ch.N() != 2 {
		t.Fatalf("failed Extend changed order to %d", ch.N())
	}
	for i := range before.Data {
		if ch.L.Data[i] != before.Data[i] {
			t.Fatal("failed Extend mutated the factor")
		}
	}
}

func TestExtendPanicsOnRowLengthMismatch(t *testing.T) {
	ch, err := NewCholesky(NewMatrixFrom(2, 2, []float64{4, 1, 1, 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extend with wrong row length did not panic")
		}
	}()
	if err := ch.Extend([]float64{1}, 5); err != nil {
		t.Fatal(err)
	}
}

func TestSolveIntoMatchesAllocatingAndSupportsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(20)
		ch, err := NewCholesky(randomSPD(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := ch.SolveVec(b)
		dst := make([]float64, n)
		if got := ch.SolveVecInto(dst, b); &got[0] != &dst[0] {
			t.Fatal("SolveVecInto did not return dst")
		}
		aliased := append([]float64(nil), b...)
		ch.SolveVecInto(aliased, aliased)
		wantLower := ch.SolveLowerVec(b)
		lowerAliased := append([]float64(nil), b...)
		ch.SolveLowerVecInto(lowerAliased, lowerAliased)
		for i := 0; i < n; i++ {
			if dst[i] != want[i] || aliased[i] != want[i] {
				t.Fatalf("SolveVecInto[%d] = %v / aliased %v, want %v", i, dst[i], aliased[i], want[i])
			}
			if lowerAliased[i] != wantLower[i] {
				t.Fatalf("SolveLowerVecInto aliased[%d] = %v, want %v", i, lowerAliased[i], wantLower[i])
			}
		}
		// Residual check: A·x ≈ b.
		x := dst
		var maxResid float64
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				var aij float64
				for k := 0; k <= i && k <= j; k++ {
					aij += ch.L.At(i, k) * ch.L.At(j, k)
				}
				s += aij * x[j]
			}
			if r := math.Abs(s - b[i]); r > maxResid {
				maxResid = r
			}
		}
		if maxResid > 1e-8 {
			t.Fatalf("residual %v too large", maxResid)
		}
	}
}

func BenchmarkCholeskyExtend64(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	a := randomSPD(rng, 65)
	base, err := NewCholesky(leadingMinor(a, 64))
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, 64)
	for i := range row {
		row[i] = a.At(64, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := Cholesky{L: base.L}
		if err := ch.Extend(row, a.At(64, 64)); err != nil {
			b.Fatal(err)
		}
	}
}
