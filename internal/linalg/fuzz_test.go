package linalg

import (
	"math"
	"testing"
)

// fuzzMatrix decodes raw fuzz bytes into an n×n matrix B with entries in
// [-4, 4) and returns the SPD matrix A = BᵀB + εI. The ridge keeps A
// comfortably positive definite so the factorization must succeed; the
// fuzzer's job is to explore the numerical range, not to find singular
// inputs (those are covered by explicit ErrNotSPD tests).
func fuzzSPD(data []byte) (*Matrix, int) {
	if len(data) == 0 {
		return nil, 0
	}
	n := 2 + int(data[0])%5 // 2..6
	data = data[1:]
	if len(data) < n*n {
		return nil, 0
	}
	b := NewMatrix(n, n)
	for i := 0; i < n*n; i++ {
		b.Data[i] = (float64(data[i]) - 128) / 32
	}
	return b.T().Mul(b).AddScaledIdentity(1e-3 * float64(n)), n
}

// FuzzNewCholesky checks the factorization round trip: for any SPD input
// A built from fuzz bytes, NewCholesky must succeed, produce a lower
// triangular L with positive diagonal, and satisfy L·Lᵀ ≈ A.
func FuzzNewCholesky(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 200, 10, 128, 128, 60, 250, 0, 128, 1, 99, 128, 128, 33, 77, 128, 128})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, n := fuzzSPD(data)
		if a == nil {
			t.Skip("not enough bytes")
		}
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("SPD matrix rejected: %v\nA = %v", err, a)
		}
		l := c.L
		var scale float64
		for _, v := range a.Data {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		tol := 1e-10 * (scale + 1)
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Fatalf("L[%d][%d] = %v, want > 0", i, i, l.At(i, i))
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L[%d][%d] = %v above the diagonal, want 0", i, j, l.At(i, j))
				}
			}
			for j := 0; j <= i; j++ {
				var s float64
				for k := 0; k <= j; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > tol {
					t.Fatalf("(L·Lᵀ)[%d][%d] = %v, want %v (±%v)", i, j, s, a.At(i, j), tol)
				}
			}
		}
	})
}

// FuzzCholeskyExtend checks the documented Extend contract: factorizing
// the leading (n−1)×(n−1) block and extending with the border row must be
// bit-identical to factorizing the full matrix from scratch.
func FuzzCholeskyExtend(f *testing.F) {
	f.Add([]byte{1, 3, 141, 59, 26, 53, 58, 97, 93, 238, 46})
	f.Add([]byte{4, 128, 0, 255, 17, 42, 128, 128, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 5, 15, 25, 35, 45, 55, 65, 75, 85, 95, 105, 115})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, n := fuzzSPD(data)
		if a == nil || n < 2 {
			t.Skip("not enough bytes")
		}
		lead := NewMatrix(n-1, n-1)
		for i := 0; i < n-1; i++ {
			for j := 0; j < n-1; j++ {
				lead.Set(i, j, a.At(i, j))
			}
		}
		ext, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("leading block rejected: %v", err)
		}
		row := make([]float64, n-1)
		for j := 0; j < n-1; j++ {
			row[j] = a.At(n-1, j)
		}
		if err := ext.Extend(row, a.At(n-1, n-1)); err != nil {
			t.Fatalf("Extend of SPD border failed: %v", err)
		}
		full, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("full matrix rejected: %v", err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if got, want := ext.L.At(i, j), full.L.At(i, j); got != want {
					t.Fatalf("extended L[%d][%d] = %v, from-scratch = %v: not bit-identical", i, j, got, want)
				}
			}
		}
	})
}

// FuzzCholeskyDowndate checks the Downdate contract two ways on every
// fuzz-generated SPD matrix: (1) extend-then-downdate of the border
// round-trips to the original factor bit-identically, and (2) removing a
// fuzz-chosen interior row/column matches factorizing the retained
// submatrix from scratch, bit for bit.
func FuzzCholeskyDowndate(f *testing.F) {
	f.Add([]byte{1, 3, 141, 59, 26, 53, 58, 97, 93, 238, 46})
	f.Add([]byte{4, 128, 0, 255, 17, 42, 128, 128, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 5, 15, 25, 35, 45, 55, 65, 75, 85, 95, 105, 115})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, n := fuzzSPD(data)
		if a == nil || n < 3 {
			t.Skip("not enough bytes")
		}
		// (1) Round trip: factor the leading minor, extend with the border,
		// downdate the border away, expect the original bits back.
		lead := NewMatrix(n-1, n-1)
		for i := 0; i < n-1; i++ {
			for j := 0; j < n-1; j++ {
				lead.Set(i, j, a.At(i, j))
			}
		}
		ch, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("leading block rejected: %v", err)
		}
		before := ch.L.Clone()
		row := make([]float64, n-1)
		for j := 0; j < n-1; j++ {
			row[j] = a.At(n-1, j)
		}
		if err := ch.Extend(row, a.At(n-1, n-1)); err != nil {
			t.Fatalf("Extend of SPD border failed: %v", err)
		}
		if err := ch.Downdate(n - 1); err != nil {
			t.Fatalf("Downdate of the border failed: %v", err)
		}
		for i := 0; i < n-1; i++ {
			for j := 0; j <= i; j++ {
				if got, want := ch.L.At(i, j), before.At(i, j); got != want {
					t.Fatalf("round-trip L[%d][%d] = %v, want %v: not bit-identical", i, j, got, want)
				}
			}
		}
		// (2) Interior removal: a fuzz-chosen index must match the
		// from-scratch factorization of the compacted matrix.
		idx := int(data[len(data)-1]) % n
		full, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("full matrix rejected: %v", err)
		}
		if err := full.Downdate(idx); err != nil {
			t.Fatalf("Downdate(%d) failed: %v", idx, err)
		}
		sub := NewMatrix(n-1, n-1)
		for i, ii := 0, 0; i < n; i++ {
			if i == idx {
				continue
			}
			for j, jj := 0, 0; j < n; j++ {
				if j == idx {
					continue
				}
				sub.Set(ii, jj, a.At(i, j))
				jj++
			}
			ii++
		}
		ref, err := NewCholesky(sub)
		if err != nil {
			t.Fatalf("retained submatrix rejected: %v", err)
		}
		for i := 0; i < n-1; i++ {
			for j := 0; j <= i; j++ {
				if got, want := full.L.At(i, j), ref.L.At(i, j); got != want {
					t.Fatalf("downdated L[%d][%d] = %v, from-scratch = %v: not bit-identical", i, j, got, want)
				}
			}
		}
	})
}
