package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestNewMatrixFromPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrixFrom with wrong length did not panic")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("zero value At(0,0) = %v", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("Identity At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares backing storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("T content wrong: %v", tr)
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 0, -1})
	want := []float64{-2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	got := a.Mul(b)
	want := NewMatrixFrom(2, 2, []float64{2, 1, 4, 3})
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", got, want)
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with incompatible dims did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestAddScaledIdentity(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	got := m.AddScaledIdentity(10)
	if got.At(0, 0) != 11 || got.At(1, 1) != 14 || got.At(0, 1) != 2 {
		t.Errorf("AddScaledIdentity = %v", got)
	}
	if m.At(0, 0) != 1 {
		t.Error("AddScaledIdentity mutated its receiver")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}).IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	if NewMatrixFrom(2, 2, []float64{1, 2, 3, 1}).IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix cannot be symmetric")
	}
}

// randomSPD builds a random SPD matrix A = BᵀB + n·I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.T().Mul(b).AddScaledIdentity(float64(n))
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// L·Lᵀ must reproduce A.
		rec := ch.L.Mul(ch.L.T())
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8*(1+math.Abs(a.Data[i])) {
				t.Fatalf("trial %d: reconstruction error at %d: %v vs %v", trial, i, rec.Data[i], a.Data[i])
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := ch.SolveVec(b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: solve[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	cases := []*Matrix{
		NewMatrixFrom(2, 2, []float64{1, 2, 3, 4}),   // asymmetric
		NewMatrixFrom(2, 2, []float64{0, 0, 0, 0}),   // singular
		NewMatrixFrom(2, 2, []float64{-1, 0, 0, -1}), // negative definite
		NewMatrix(2, 3), // non-square
	}
	for i, a := range cases {
		if _, err := NewCholesky(a); err == nil {
			t.Errorf("case %d: expected ErrNotSPD", i)
		}
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(4, 9): det = 36, log det = log 36.
	a := NewMatrixFrom(2, 2, []float64{4, 0, 0, 9})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.LogDet(), math.Log(36); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestCholeskySolveLowerVec(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 2, 2, 5})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 3}
	y := ch.SolveLowerVec(b)
	// Check L·y == b.
	back := ch.L.MulVec(y)
	for i := range b {
		if math.Abs(back[i]-b[i]) > 1e-12 {
			t.Errorf("L·y [%d] = %v, want %v", i, back[i], b[i])
		}
	}
}

func TestCholeskySolveIdentityProperty(t *testing.T) {
	// Property: for any vector v, solving I·x = v returns v.
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		ch, err := NewCholesky(Identity(3))
		if err != nil {
			return false
		}
		got := ch.SolveVec([]float64{a, b, c})
		return got[0] == a && got[1] == b && got[2] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholesky32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 64)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]float64, 64)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SolveVec(v)
	}
}
