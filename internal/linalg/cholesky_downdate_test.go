package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// deleteRowCol returns a copy of a with row i and column i removed.
func deleteRowCol(a *Matrix, i int) *Matrix {
	n := a.Rows
	m := NewMatrix(n-1, n-1)
	for r, rr := 0, 0; r < n; r++ {
		if r == i {
			continue
		}
		for c, cc := 0, 0; c < n; c++ {
			if c == i {
				continue
			}
			m.Set(rr, cc, a.At(r, c))
			cc++
		}
		rr++
	}
	return m
}

// TestDowndateBitIdenticalToFromScratch is the removal dual of the Extend
// cornerstone: deleting any observation from a factor must produce the
// exact same bits as refactorizing the retained submatrix from scratch.
// The budgeted-GP exact-posterior oracle (internal/gp) reduces to this
// equality, so it is exact, not approximate.
func TestDowndateBitIdenticalToFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		a := randomSPD(rng, n)
		for i := 0; i < n; i++ {
			ch, err := NewCholesky(a)
			if err != nil {
				t.Fatal(err)
			}
			if err := ch.Downdate(i); err != nil {
				t.Fatalf("trial %d: Downdate(%d): %v", trial, i, err)
			}
			if ch.N() != n-1 {
				t.Fatalf("trial %d: N() = %d after Downdate, want %d", trial, ch.N(), n-1)
			}
			ref, err := NewCholesky(deleteRowCol(a, i))
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n-1; r++ {
				for c := 0; c < n-1; c++ {
					if got, want := ch.L.At(r, c), ref.L.At(r, c); got != want {
						t.Fatalf("trial %d remove %d: L[%d][%d] = %v downdated, %v from scratch",
							trial, i, r, c, got, want)
					}
				}
			}
		}
	}
}

// TestDowndateNewestIsTruncation pins the O(n) fast case: removing the
// most recent observation recomputes nothing, so the surviving factor
// entries are exactly the original leading minor's.
func TestDowndateNewestIsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 12
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L.Clone()
	if err := ch.Downdate(n - 1); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n-1; r++ {
		for c := 0; c < n-1; c++ {
			if ch.L.At(r, c) != before.At(r, c) {
				t.Fatalf("L[%d][%d] changed on newest-row Downdate", r, c)
			}
		}
	}
}

// TestExtendDowndateRoundTrip: bordering a factor and then removing the
// border restores the original factor bit for bit, including after the
// in-place restride reused the grown backing array.
func TestExtendDowndateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 10
	a := randomSPD(rng, n+1)
	ch, err := NewCholesky(leadingMinor(a, n))
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L.Clone()
	row := make([]float64, n)
	for i := range row {
		row[i] = a.At(n, i)
	}
	for cycle := 0; cycle < 5; cycle++ {
		if err := ch.Extend(row, a.At(n, n)); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := ch.Downdate(n); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if ch.N() != n {
			t.Fatalf("cycle %d: N() = %d, want %d", cycle, ch.N(), n)
		}
		for r := 0; r < n; r++ {
			for c := 0; c <= r; c++ {
				if ch.L.At(r, c) != before.At(r, c) {
					t.Fatalf("cycle %d: L[%d][%d] drifted", cycle, r, c)
				}
			}
		}
	}
}

// TestDowndateExtendInterleaved drives a random evict/extend schedule
// against a reference factorization of the retained submatrix after every
// step — the linalg-level core of the gp-level exact-posterior oracle.
func TestDowndateExtendInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	big := randomSPD(rng, 40)
	// retained indexes into big, in insertion order
	retained := []int{0, 1, 2}
	sub := func() *Matrix {
		m := NewMatrix(len(retained), len(retained))
		for r, ri := range retained {
			for c, ci := range retained {
				m.Set(r, c, big.At(ri, ci))
			}
		}
		return m
	}
	ch, err := NewCholesky(sub())
	if err != nil {
		t.Fatal(err)
	}
	next := 3
	for step := 0; step < 60; step++ {
		if rng.Intn(2) == 0 && next < big.Rows {
			row := make([]float64, len(retained))
			for j, ri := range retained {
				row[j] = big.At(next, ri)
			}
			if err := ch.Extend(row, big.At(next, next)); err != nil {
				t.Fatalf("step %d: extend: %v", step, err)
			}
			retained = append(retained, next)
			next++
		} else if len(retained) > 1 {
			i := rng.Intn(len(retained))
			if err := ch.Downdate(i); err != nil {
				t.Fatalf("step %d: downdate(%d): %v", step, i, err)
			}
			retained = append(retained[:i], retained[i+1:]...)
		}
		ref, err := NewCholesky(sub())
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < len(retained); r++ {
			for c := 0; c <= r; c++ {
				if ch.L.At(r, c) != ref.L.At(r, c) {
					t.Fatalf("step %d: L[%d][%d] = %v, from scratch %v",
						step, r, c, ch.L.At(r, c), ref.L.At(r, c))
				}
			}
		}
	}
}

// TestDowndateThenSolve checks the factor still solves its matrix after
// removals: A'·x = b residual at numerical tolerance.
func TestDowndateThenSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 16
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	sub := a.Clone()
	for _, i := range []int{3, 0, 7} {
		if err := ch.Downdate(i); err != nil {
			t.Fatal(err)
		}
		sub = deleteRowCol(sub, i)
	}
	m := sub.Rows
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := ch.SolveVec(b)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += sub.At(i, j) * x[j]
		}
		if math.Abs(s-b[i]) > 1e-8 {
			t.Fatalf("residual[%d] = %v after downdates", i, s-b[i])
		}
	}
}

func TestDowndatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	rng := rand.New(rand.NewSource(53))
	a := randomSPD(rng, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("out of range high", func() { _ = ch.Downdate(3) })
	mustPanic("out of range low", func() { _ = ch.Downdate(-1) })
	// A zero-constructed factor has no base matrix to recompute from.
	bare := &Cholesky{L: ch.L.Clone()}
	mustPanic("no base matrix", func() { _ = bare.Downdate(0) })
	one, err := NewCholesky(NewMatrixFrom(1, 1, []float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("would empty", func() { _ = one.Downdate(0) })
}

// TestDowndateExtendAllocFree pins the bounded-memory contract: once the
// backing arrays have grown to the budget size, an evict-then-extend
// cycle performs zero heap allocations.
func TestDowndateExtendAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	n := 32
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, n-1)
	cycle := func() {
		if err := ch.Downdate(0); err != nil {
			t.Fatal(err)
		}
		for i := range row {
			row[i] = 0
		}
		if err := ch.Extend(row, 1+a.At(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the Extend scratch
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("evict-then-extend cycle allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkCholeskyDowndateOldest64(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	n := 64
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, n-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Downdate(0); err != nil {
			b.Fatal(err)
		}
		if err := ch.Extend(row, 1+a.At(0, 0)); err != nil {
			b.Fatal(err)
		}
	}
}
