package telemetry

import (
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d", got)
	}
	c.Inc("b")
	c.Add("a", 3)
	c.Inc("b")
	if got := c.Get("a"); got != 3 {
		t.Errorf("a = %d", got)
	}
	if got := c.Get("b"); got != 2 {
		t.Errorf("b = %d", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
	if got, want := c.String(), "a=3 b=2"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := NewCounters().String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCountersNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delta did not panic")
		}
	}()
	NewCounters().Add("x", -1)
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}
