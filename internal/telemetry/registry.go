package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Registry is the typed metrics surface of the observability layer:
// monotonic counters, last-value gauges, and fixed-bucket histograms. It
// generalizes Counters (kept for the fault-accounting paths) with types
// and a deterministic snapshot, and follows the same nil-default hook
// pattern: every method is a no-op on a nil receiver, so instrumented
// code needs no conditionals and runs unchanged when no registry is
// installed. Safe for concurrent use — the parallel LML search and any
// future worker pools may update metrics from multiple goroutines.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

type histogram struct {
	bounds  []float64 // upper bounds of the first len(bounds) buckets
	buckets []int64   // len(bounds)+1 counts; last bucket is +Inf
	count   int64
	sum     float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add increments the named counter by delta. Counters are monotonic;
// negative deltas panic so two runs always compare value-for-value.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("telemetry: negative counter delta %d for %q", delta, name))
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge records the gauge's current value (last write wins).
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// DefineHistogram declares a fixed-bucket histogram with the given
// ascending upper bounds (an implicit +Inf bucket is appended). Redefining
// with different bounds is an error; redefining identically is a no-op, so
// emission sites can declare idempotently.
func (r *Registry) DefineHistogram(name string, bounds []float64) error {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		return fmt.Errorf("telemetry: histogram %q needs at least one bucket bound", name)
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return fmt.Errorf("telemetry: histogram %q bounds not strictly ascending at %d", name, i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			return fmt.Errorf("telemetry: histogram %q redefined with different bounds", name)
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				return fmt.Errorf("telemetry: histogram %q redefined with different bounds", name)
			}
		}
		return nil
	}
	r.hists[name] = &histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
	}
	return nil
}

// Observe folds v into the named histogram. Observing an undefined
// histogram or a NaN value panics: both are instrumentation bugs, and a
// silently mis-bucketed trace would defeat the run-diff tooling.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	if math.IsNaN(v) {
		panic(fmt.Sprintf("telemetry: NaN observation for histogram %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		panic(fmt.Sprintf("telemetry: histogram %q observed before DefineHistogram", name))
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[idx]++
	h.count++
	h.sum += v
}

// MetricRecord is one metric in a deterministic snapshot (and one line of
// the JSONL export). Exactly one of the kind-specific field groups is
// meaningful: Value for counters and gauges; Count/Sum/Bounds/Buckets for
// histograms.
type MetricRecord struct {
	Kind    string    `json:"kind"` // "counter" | "gauge" | "histogram"
	Name    string    `json:"name"`
	Value   float64   `json:"value,omitempty"`
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot returns every metric sorted by (kind, name) — counters, then
// gauges, then histograms — so snapshots of identical runs are
// byte-identical regardless of update order.
func (r *Registry) Snapshot() []MetricRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricRecord, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, MetricRecord{Kind: "counter", Name: name, Value: float64(r.counters[name])})
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, MetricRecord{Kind: "gauge", Name: name, Value: r.gauges[name]})
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		out = append(out, MetricRecord{
			Kind:    "histogram",
			Name:    name,
			Count:   h.count,
			Sum:     h.sum,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]int64(nil), h.buckets...),
		})
	}
	return out
}

// CounterValue returns the named counter (0 when never incremented).
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// GaugeValue returns the named gauge and whether it was ever set.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}
