package telemetry

import (
	"strings"
	"testing"
)

func TestLabelEncodesAndEscapes(t *testing.T) {
	if got := Label("fleet_budget_share", "job", "alpha"); got != `fleet_budget_share{job="alpha"}` {
		t.Errorf("Label = %q", got)
	}
	got := Label("m", "k", "a\\b\"c\nd")
	if want := `m{k="a\\b\"c\nd"}`; got != want {
		t.Errorf("escaped Label = %q, want %q", got, want)
	}
	if got := baseName(`fleet_budget_share{job="alpha"}`); got != "fleet_budget_share" {
		t.Errorf("baseName = %q", got)
	}
	if got := baseName("plain"); got != "plain" {
		t.Errorf("baseName(plain) = %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Add("fleet_rounds", 4)
	reg.SetGauge("fleet_budget_total", 20)
	reg.SetGauge(Label("fleet_budget_share", "job", "alpha"), 8)
	reg.SetGauge(Label("fleet_budget_share", "job", "beta"), 12)
	if err := reg.DefineHistogram("decide_ms", []float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	reg.Observe("decide_ms", 0.5)
	reg.Observe("decide_ms", 5)
	reg.Observe("decide_ms", 50)

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE fleet_rounds counter\nfleet_rounds 4\n",
		"# TYPE fleet_budget_total gauge\nfleet_budget_total 20\n",
		// One TYPE line shared by both labelled series.
		"# TYPE fleet_budget_share gauge\nfleet_budget_share{job=\"alpha\"} 8\nfleet_budget_share{job=\"beta\"} 12\n",
		// Cumulative le buckets.
		"# TYPE decide_ms histogram\n",
		"decide_ms_bucket{le=\"1\"} 1\n",
		"decide_ms_bucket{le=\"10\"} 2\n",
		"decide_ms_bucket{le=\"+Inf\"} 3\n",
		"decide_ms_sum 55.5\n",
		"decide_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE fleet_budget_share"); n != 1 {
		t.Errorf("TYPE line for labelled family appears %d times", n)
	}

	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := WritePrometheus(&sb2, reg); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("two renders of the same registry differ")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry rendered %q", sb.String())
	}
}
