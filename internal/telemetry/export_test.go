package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func buildSampleTracer() *Tracer {
	clock := int64(0)
	tr := NewTracer()
	tr.SetClock(func() int64 { return clock })
	reg := NewRegistry()
	tr.SetMetrics(reg)
	tr.SetSlot(0)
	round := tr.Begin("experiment", "round", Int("slot", 0))
	clock = 12
	re := tr.Begin("flink", "rescale", Str("tasks", "[2 3]"))
	clock = 42
	re.End()
	tr.Event("chaos", "node-crash", Str("node", "node-1"))
	round.Annotate(Float("regret", 10.25))
	round.End()
	reg.Inc("rounds")
	reg.SetGauge("gp_observations", 4)
	if err := reg.DefineHistogram("pause_sec", []float64{10, 30, 60}); err != nil {
		panic(err)
	}
	reg.Observe("pause_sec", 30)
	return tr
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := buildSampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.Spans) != 3 {
		t.Fatalf("round-trip kept %d spans, want 3", len(tf.Spans))
	}
	if len(tf.Metrics) != 3 {
		t.Fatalf("round-trip kept %d metrics, want 3", len(tf.Metrics))
	}
	if tf.Spans[1].Name != "rescale" || tf.Spans[1].Start != 12 || tf.Spans[1].End != 42 {
		t.Errorf("rescale span %+v", tf.Spans[1])
	}
	if v, ok := tf.Spans[2].AttrValue("node"); !ok || v != "node-1" {
		t.Errorf("chaos attr = %q, %v", v, ok)
	}
	// Re-export of the parsed file must be byte-identical (the diff tool
	// depends on the format being canonical).
	var buf2 bytes.Buffer
	if err := writeJSONL(&buf2, tf.Spans, tf.Metrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-exported trace differs from original")
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSampleTracer().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSampleTracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical tracers exported different bytes")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"mystery"}` + "\n")); err == nil {
		t.Error("unknown line type accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"span"}` + "\n")); err == nil {
		t.Error("span line without span accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("non-JSON line accepted")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := buildSampleTracer()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"name": "rescale"`, `"dur": 30`, `"cat": "chaos"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, buildSampleTracer().Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("chrome export is nondeterministic")
	}
}
