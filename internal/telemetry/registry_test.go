package telemetry

import (
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Inc("a")
	r.Add("a", 5)
	r.SetGauge("g", 1.5)
	if err := r.DefineHistogram("h", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	r.Observe("h", 1.0)
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot has %d records", len(got))
	}
	if got := r.CounterValue("a"); got != 0 {
		t.Errorf("nil registry counter = %d", got)
	}
	if _, ok := r.GaugeValue("g"); ok {
		t.Error("nil registry gauge set")
	}
}

func TestRegistryTypedSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Inc("z_count")
	r.Add("a_count", 2)
	r.SetGauge("gauge", 3.5)
	r.SetGauge("gauge", 4.5) // last write wins
	if err := r.DefineHistogram("pause_sec", []float64{10, 30, 60}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 10, 31, 120} {
		r.Observe("pause_sec", v)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	// Counters sorted by name first.
	if snap[0].Name != "a_count" || snap[0].Kind != "counter" || snap[0].Value != 2 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "z_count" || snap[1].Value != 1 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
	if snap[2].Kind != "gauge" || snap[2].Value != 4.5 {
		t.Errorf("snap[2] = %+v", snap[2])
	}
	h := snap[3]
	if h.Kind != "histogram" || h.Count != 4 || h.Sum != 166 {
		t.Errorf("histogram record %+v", h)
	}
	// v ≤ bound goes into that bucket: 5,10 → ≤10; 31 → (30,60]; 120 → +Inf.
	wantBuckets := []int64{2, 0, 1, 1}
	for i, b := range h.Buckets {
		if b != wantBuckets[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b, wantBuckets[i])
		}
	}
}

func TestRegistryHistogramRedefine(t *testing.T) {
	r := NewRegistry()
	if err := r.DefineHistogram("h", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.DefineHistogram("h", []float64{1, 2}); err != nil {
		t.Errorf("identical redefine failed: %v", err)
	}
	if err := r.DefineHistogram("h", []float64{1, 3}); err == nil {
		t.Error("conflicting redefine succeeded")
	}
	if err := r.DefineHistogram("bad", []float64{2, 2}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if err := r.DefineHistogram("empty", nil); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("negative delta", func() { r.Add("c", -1) })
	expectPanic("undefined histogram", func() { r.Observe("nope", 1) })
}

// The registry is the one observability surface shared with worker
// goroutines (the parallel LML search); this test exists to put that
// contract under the race detector.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	if err := r.DefineHistogram("h", []float64{10, 100}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Inc("c")
				r.SetGauge("g", float64(w))
				r.Observe("h", float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != 1600 {
		t.Errorf("counter = %d, want 1600", got)
	}
	snap := r.Snapshot()
	for _, m := range snap {
		if m.Kind == "histogram" && m.Count != 1600 {
			t.Errorf("histogram count = %d, want 1600", m.Count)
		}
	}
}
