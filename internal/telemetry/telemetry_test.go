package telemetry

import (
	"math"
	"testing"

	"dragster/internal/streamsim"
)

func tick(sink float64, paused bool, ops ...streamsim.OpTick) streamsim.TickStats {
	return streamsim.TickStats{SinkThroughput: sink, Paused: paused, Ops: ops}
}

func TestNewSlotAccumulatorValidation(t *testing.T) {
	if _, err := NewSlotAccumulator("j", 0, 1, 1, 0); err == nil {
		t.Error("zero seconds accepted")
	}
	if _, err := NewSlotAccumulator("j", 0, -1, 1, 5); err == nil {
		t.Error("negative ops accepted")
	}
}

func TestAccumulatorAverages(t *testing.T) {
	acc, err := NewSlotAccumulator("job", 3, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ticks: one paused, three active.
	ticks := []streamsim.TickStats{
		tick(100, false, streamsim.OpTick{Arrived: 50, Emitted: 100, Consumed: 50, Util: 0.5, Buffered: 0}),
		tick(0, true, streamsim.OpTick{Buffered: 30}),
		tick(200, false, streamsim.OpTick{Arrived: 50, Emitted: 200, Consumed: 100, Util: 0.9, Buffered: 10}),
		tick(100, false, streamsim.OpTick{Arrived: 50, Emitted: 100, Consumed: 50, Util: 0.7, Buffered: 5}),
	}
	ticks[2].LatencySec = 2
	for _, st := range ticks {
		if err := acc.Tick([]float64{60}, st); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := acc.Finish([]string{"op"}, []int{3}, []int{3}, []int{1000}, 7, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Job != "job" || rep.Slot != 3 || rep.Seconds != 4 {
		t.Errorf("header: %+v", rep)
	}
	if rep.PausedSeconds != 1 {
		t.Errorf("PausedSeconds = %d", rep.PausedSeconds)
	}
	if rep.Throughput != 100 { // (100+0+200+100)/4
		t.Errorf("Throughput = %v", rep.Throughput)
	}
	if rep.ProcessedTuples != 400 || rep.DroppedTuples != 7 || rep.CostSoFar != 1.5 {
		t.Errorf("totals: %+v", rep)
	}
	if rep.SourceRates[0] != 60 {
		t.Errorf("SourceRates = %v", rep.SourceRates)
	}
	v := rep.Vertices[0]
	if v.InRate != 37.5 { // 150/4
		t.Errorf("InRate = %v", v.InRate)
	}
	if v.OutRate != 100 { // 400/4
		t.Errorf("OutRate = %v", v.OutRate)
	}
	if v.ConsumedRate != 50 { // 200/4
		t.Errorf("ConsumedRate = %v", v.ConsumedRate)
	}
	if math.Abs(v.Util-0.7) > 1e-12 { // mean over 3 active ticks
		t.Errorf("Util = %v", v.Util)
	}
	if v.Backlog != 5 { // last tick
		t.Errorf("Backlog = %v", v.Backlog)
	}
	if rep.AvgLatencySec != 0.5 || rep.MaxLatencySec != 2 {
		t.Errorf("latency: avg %v max %v", rep.AvgLatencySec, rep.MaxLatencySec)
	}
	if v.DesiredTasks != 3 || v.RunningTasks != 3 || v.CPUMilli != 1000 {
		t.Errorf("metadata: %+v", v)
	}
}

func TestAccumulatorErrors(t *testing.T) {
	acc, err := NewSlotAccumulator("j", 0, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Tick([]float64{1}, tick(0, false)); err == nil {
		t.Error("op count mismatch accepted")
	}
	if err := acc.Tick([]float64{1, 2}, tick(0, false, streamsim.OpTick{})); err == nil {
		t.Error("rate count mismatch accepted")
	}
	if err := acc.Tick([]float64{1}, tick(0, false, streamsim.OpTick{})); err != nil {
		t.Fatal(err)
	}
	// Finishing before all ticks ran is rejected.
	if _, err := acc.Finish([]string{"op"}, []int{1}, []int{1}, []int{1000}, 0, 0); err == nil {
		t.Error("early finish accepted")
	}
	if err := acc.Tick([]float64{1}, tick(0, false, streamsim.OpTick{})); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Finish([]string{"op", "extra"}, []int{1}, []int{1}, []int{1000}, 0, 0); err == nil {
		t.Error("metadata mismatch accepted")
	}
	if _, err := acc.Finish([]string{"op"}, []int{1}, []int{1}, []int{1000}, 0, 0); err != nil {
		t.Errorf("valid finish rejected: %v", err)
	}
}
