package telemetry

import (
	"bytes"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.SetClock(func() int64 { return 5 })
	tr.SetSlot(3)
	tr.SetMetrics(NewRegistry())
	sp := tr.Begin("core", "decide", Int("slot", 3))
	sp.Annotate(Float("y", 1.5))
	sp.End()
	tr.Event("chaos", "node-crash")
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer recorded %d spans", len(got))
	}
	if tr.Metrics() != nil {
		t.Error("nil tracer returned a registry")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil tracer wrote %d bytes", buf.Len())
	}
}

func TestTracerNesting(t *testing.T) {
	clock := int64(0)
	tr := NewTracer()
	tr.SetClock(func() int64 { return clock })
	tr.SetSlot(7)

	round := tr.Begin("experiment", "round")
	clock = 10
	gp := tr.Begin("gp", "refit", Int("n", 42))
	clock = 25
	tr.Event("chaos", "node-crash", Str("node", "node-3"))
	gp.End()
	clock = 30
	round.Annotate(Float("regret", 123.5))
	round.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	r, g, ev := spans[0], spans[1], spans[2]
	if r.Parent != 0 || r.Start != 0 || r.End != 30 || r.Slot != 7 {
		t.Errorf("round span %+v", r)
	}
	if g.Parent != r.ID || g.Start != 10 || g.End != 25 {
		t.Errorf("gp span %+v, want parent %d", g, r.ID)
	}
	if ev.Parent != g.ID || ev.Start != 25 || ev.End != 25 {
		t.Errorf("event span %+v, want parent %d", ev, g.ID)
	}
	if v, ok := r.AttrValue("regret"); !ok || v != "123.5" {
		t.Errorf("regret attr = %q, %v", v, ok)
	}
	if v, ok := ev.AttrValue("node"); !ok || v != "node-3" {
		t.Errorf("node attr = %q, %v", v, ok)
	}
}

// A parent ending before its child (error-path early return) must close
// the child at the same instant, keeping the trace well-nested.
func TestTracerEndClosesOrphanedChildren(t *testing.T) {
	clock := int64(0)
	tr := NewTracer()
	tr.SetClock(func() int64 { return clock })
	outer := tr.Begin("core", "decide")
	tr.Begin("osp", "step") // never explicitly ended
	clock = 9
	outer.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.End != 9 {
			t.Errorf("span %s end = %d, want 9", sp.Name, sp.End)
		}
	}
	// The stack must be empty again: a new span is a root.
	nxt := tr.Begin("core", "decide")
	nxt.End()
	if got := tr.Spans()[2].Parent; got != 0 {
		t.Errorf("post-cleanup span parent = %d, want 0 (root)", got)
	}
}

func TestTimeInPhase(t *testing.T) {
	clock := int64(0)
	tr := NewTracer()
	tr.SetClock(func() int64 { return clock })
	for i := 0; i < 3; i++ {
		sp := tr.Begin("flink", "rescale")
		clock += 30
		sp.End()
		ev := tr.Begin("gp", "refit")
		clock += 5
		ev.End()
	}
	rows := TimeInPhase(tr.Spans())
	if len(rows) != 2 {
		t.Fatalf("got %d phase rows, want 2", len(rows))
	}
	if rows[0].Name != "rescale" || rows[0].Seconds != 90 || rows[0].Count != 3 {
		t.Errorf("top row %+v, want rescale/90s/3", rows[0])
	}
	if rows[1].Name != "refit" || rows[1].Seconds != 15 {
		t.Errorf("second row %+v, want refit/15s", rows[1])
	}
}

func TestAttrConstructors(t *testing.T) {
	cases := []struct {
		attr Attr
		want string
	}{
		{Str("a", "b"), "b"},
		{Int("a", -3), "-3"},
		{Int64("a", 1<<40), "1099511627776"},
		{Float("a", 0.1), "0.1"},
		{Float("a", 12345.678), "12345.678"},
		{Bool("a", true), "true"},
	}
	for _, c := range cases {
		if c.attr.Value != c.want {
			t.Errorf("attr value %q, want %q", c.attr.Value, c.want)
		}
	}
}
