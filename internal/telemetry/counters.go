package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is one named monotonic count in a Counters snapshot.
type Counter struct {
	Name  string
	Value int64
}

// Counters is a registry of named monotonic counters. The chaos engine and
// the controller hardening paths use one to account for every fault seen,
// retried, and recovered, so a seeded run's fault handling can be compared
// across runs counter-for-counter. Snapshots are sorted by name, making
// String output deterministic regardless of increment order. Safe for
// concurrent use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add increments the named counter by delta. Negative deltas panic:
// counters are monotonic so two runs can be compared by value.
func (c *Counters) Add(name string, delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("telemetry: negative counter delta %d for %q", delta, name))
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (0 when never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns all counters sorted by name.
func (c *Counters) Snapshot() []Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Counter, 0, len(c.m))
	for name, v := range c.m {
		out = append(out, Counter{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as "name=value name=value ..." in name
// order; the empty registry renders as "".
func (c *Counters) String() string {
	snap := c.Snapshot()
	parts := make([]string, len(snap))
	for i, ct := range snap {
		parts[i] = fmt.Sprintf("%s=%d", ct.Name, ct.Value)
	}
	return strings.Join(parts, " ")
}
