package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// The JSONL trace format: one JSON object per line, spans first (in span
// ID order, which is start order), then the metrics snapshot sorted by
// (kind, name). Field order inside each object is fixed by the struct
// definitions and encoding/json, so a seeded run exports byte-identical
// bytes on every replay — the golden-trace determinism contract.

type jsonlLine struct {
	Type   string        `json:"type"` // "span" | "metric"
	Span   *SpanRecord   `json:"span,omitempty"`
	Metric *MetricRecord `json:"metric,omitempty"`
}

// TraceFile is a parsed JSONL trace.
type TraceFile struct {
	Spans   []SpanRecord
	Metrics []MetricRecord
}

// WriteJSONL exports the tracer's spans and, when a registry is attached,
// its metrics snapshot. Safe on a nil tracer (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return writeJSONL(w, t.Spans(), t.Metrics().Snapshot())
}

func writeJSONL(w io.Writer, spans []SpanRecord, metrics []MetricRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(jsonlLine{Type: "span", Span: &spans[i]}); err != nil {
			return fmt.Errorf("telemetry: encoding span %d: %w", spans[i].ID, err)
		}
	}
	for i := range metrics {
		if err := enc.Encode(jsonlLine{Type: "metric", Metric: &metrics[i]}); err != nil {
			return fmt.Errorf("telemetry: encoding metric %q: %w", metrics[i].Name, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace produced by WriteJSONL. Unknown line
// types are an error: the format is versioned by construction and a diff
// over partially understood traces would silently lie.
func ReadJSONL(r io.Reader) (*TraceFile, error) {
	var tf TraceFile
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line jsonlLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", lineNo, err)
		}
		switch line.Type {
		case "span":
			if line.Span == nil {
				return nil, fmt.Errorf("telemetry: trace line %d: span line without span", lineNo)
			}
			tf.Spans = append(tf.Spans, *line.Span)
		case "metric":
			if line.Metric == nil {
				return nil, fmt.Errorf("telemetry: trace line %d: metric line without metric", lineNo)
			}
			tf.Metrics = append(tf.Metrics, *line.Metric)
		default:
			return nil, fmt.Errorf("telemetry: trace line %d: unknown type %q", lineNo, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	if len(tf.Spans) == 0 && len(tf.Metrics) == 0 {
		return nil, errors.New("telemetry: empty trace")
	}
	return &tf, nil
}

// chromeEvent is one entry of the Chrome trace_event "X" (complete) form;
// load the output in chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports spans in the Chrome trace_event format, mapping
// one simulated second to one microsecond of trace time and one category
// to one thread row. Instant events render as 1µs slices so they remain
// visible. encoding/json sorts the Args maps, keeping output
// deterministic.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	tids := make(map[string]int)
	out := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		tid, ok := tids[sp.Cat]
		if !ok {
			tid = len(tids)
			tids[sp.Cat] = tid
		}
		dur := sp.End - sp.Start
		if dur < 1 {
			dur = 1
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   sp.Start,
			Dur:  dur,
			PID:  0,
			TID:  tid,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs)+1)
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		} else {
			ev.Args = make(map[string]string, 1)
		}
		ev.Args["slot"] = fmt.Sprint(sp.Slot)
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
