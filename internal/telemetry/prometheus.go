package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition for a Registry (version 0.0.4, the format
// every Prometheus-compatible scraper speaks). The registry itself keeps
// flat metric names; labelled series are encoded into the name with
// Label, and the renderer splits them back out so `name{k="v"}` series
// share one TYPE declaration. Rendering reads one deterministic Snapshot,
// so two identical runs expose byte-identical /metrics bodies.

// Label encodes one labelled series name for a Registry metric:
// Label("fleet_budget_share", "job", "alpha") → fleet_budget_share{job="alpha"}.
// Label values are escaped per the exposition format (backslash, quote,
// newline).
func Label(name, key, value string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	b.WriteString(escapeLabelValue(value))
	b.WriteString(`"}`)
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// baseName strips a Label-encoded series down to its metric family name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters (with a _total-less name, as stored), gauges, and
// histograms with cumulative le buckets, _sum, and _count. A nil registry
// renders nothing.
func WritePrometheus(w io.Writer, reg *Registry) error {
	snap := reg.Snapshot()
	// Group records by (kind, family) so labelled series share one TYPE
	// line; Snapshot order is deterministic, and sorting families keeps
	// the output stable too.
	type familyKey struct{ kind, family string }
	families := make(map[familyKey][]MetricRecord)
	var order []familyKey
	for _, rec := range snap {
		k := familyKey{rec.Kind, baseName(rec.Name)}
		if _, ok := families[k]; !ok {
			order = append(order, k)
		}
		families[k] = append(families[k], rec)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].kind != order[b].kind {
			return order[a].kind < order[b].kind
		}
		return order[a].family < order[b].family
	})
	for _, k := range order {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", k.family, k.kind); err != nil {
			return err
		}
		for _, rec := range families[k] {
			if err := writeRecord(w, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeRecord(w io.Writer, rec MetricRecord) error {
	switch rec.Kind {
	case "counter", "gauge":
		_, err := fmt.Fprintf(w, "%s %s\n", rec.Name, formatValue(rec.Value))
		return err
	case "histogram":
		// Cumulative buckets per the exposition format: each le bucket
		// counts every observation ≤ its bound, ending at le="+Inf".
		var cum int64
		for i, b := range rec.Bounds {
			cum += rec.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", rec.Name, formatValue(b), cum); err != nil {
				return err
			}
		}
		cum += rec.Buckets[len(rec.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", rec.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", rec.Name, formatValue(rec.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", rec.Name, rec.Count)
		return err
	default:
		return fmt.Errorf("telemetry: unknown metric kind %q", rec.Kind)
	}
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
