// Package telemetry defines the per-slot metrics surface shared by the
// stream-engine substrates (Flink, Storm) and consumed by the Job
// Monitor, plus the accumulator that builds a slot report from raw
// engine ticks.
package telemetry

import (
	"errors"

	"dragster/internal/streamsim"
)

// VertexStats is the per-operator view of one decision slot (the
// monitoring-API vertex payload).
type VertexStats struct {
	Name         string  `json:"name"`
	DesiredTasks int     `json:"desired_tasks"`
	RunningTasks int     `json:"running_tasks"`
	CPUMilli     int     `json:"cpu_milli"`     // per-pod CPU template
	InRate       float64 `json:"in_rate"`       // tuples/s arriving, slot average
	OutRate      float64 `json:"out_rate"`      // tuples/s emitted, slot average
	ConsumedRate float64 `json:"consumed_rate"` // tuples/s drained from buffers
	Util         float64 `json:"cpu_util"`      // mean CPU utilization over active ticks
	Backlog      float64 `json:"backlog"`       // buffered tuples at slot end
}

// SlotReport summarizes one decision slot of job execution.
type SlotReport struct {
	Job             string        `json:"job"`
	Slot            int           `json:"slot"`
	Seconds         int           `json:"seconds"`
	PausedSeconds   int           `json:"paused_seconds"`
	Throughput      float64       `json:"throughput"`       // mean sink tuples/s
	ProcessedTuples float64       `json:"processed_tuples"` // tuples absorbed this slot
	DroppedTuples   float64       `json:"dropped_tuples"`
	SourceRates     []float64     `json:"source_rates"` // mean offered tuples/s per source
	Vertices        []VertexStats `json:"vertices"`
	CostSoFar       float64       `json:"cost_so_far"` // dollars accrued by the cluster
	// AvgLatencySec and MaxLatencySec summarize the Little's-law
	// end-to-end latency estimate over the slot's ticks.
	AvgLatencySec float64 `json:"avg_latency_sec"`
	MaxLatencySec float64 `json:"max_latency_sec"`
}

// SlotAccumulator folds engine ticks into a SlotReport. One accumulator
// per slot; both the Flink and Storm substrates drive it.
type SlotAccumulator struct {
	job     string
	slot    int
	seconds int

	nOps    int
	ticks   int
	active  int
	paused  int
	sinkSum float64
	inSum   []float64
	outSum  []float64
	consSum []float64
	utilSum []float64
	rateSum []float64
	latSum  float64
	latMax  float64
	lastOps []streamsim.OpTick
}

// NewSlotAccumulator sizes an accumulator for a slot of `seconds` ticks.
func NewSlotAccumulator(job string, slot, nOps, nSources, seconds int) (*SlotAccumulator, error) {
	if seconds <= 0 {
		return nil, errors.New("telemetry: slot must last at least one second")
	}
	if nOps < 0 || nSources < 0 {
		return nil, errors.New("telemetry: negative operator or source count")
	}
	return &SlotAccumulator{
		job:     job,
		slot:    slot,
		seconds: seconds,
		nOps:    nOps,
		inSum:   make([]float64, nOps),
		outSum:  make([]float64, nOps),
		consSum: make([]float64, nOps),
		utilSum: make([]float64, nOps),
		rateSum: make([]float64, nSources),
	}, nil
}

// Tick folds in one engine tick at the given offered rates.
func (a *SlotAccumulator) Tick(rates []float64, st streamsim.TickStats) error {
	if len(st.Ops) != a.nOps {
		return errors.New("telemetry: tick operator count mismatch")
	}
	if len(rates) != len(a.rateSum) {
		return errors.New("telemetry: tick rate count mismatch")
	}
	a.ticks++
	for i, r := range rates {
		a.rateSum[i] += r
	}
	a.sinkSum += st.SinkThroughput
	a.latSum += st.LatencySec
	if st.LatencySec > a.latMax {
		a.latMax = st.LatencySec
	}
	if st.Paused {
		a.paused++
	} else {
		a.active++
		for i := range st.Ops {
			a.utilSum[i] += st.Ops[i].Util
		}
	}
	for i := range st.Ops {
		a.inSum[i] += st.Ops[i].Arrived
		a.outSum[i] += st.Ops[i].Emitted
		a.consSum[i] += st.Ops[i].Consumed
	}
	// st.Ops aliases the engine's per-tick scratch buffer; copy it, since
	// Finish reads lastOps after further ticks have overwritten it.
	a.lastOps = append(a.lastOps[:0], st.Ops...)
	return nil
}

// Finish assembles the slot report. names, desired, running and cpuMilli
// are per dense operator index; dropped is the engine's per-slot drop
// count and cost the cluster's cumulative dollars.
func (a *SlotAccumulator) Finish(names []string, desired, running, cpuMilli []int, dropped, cost float64) (*SlotReport, error) {
	if a.ticks != a.seconds {
		return nil, errors.New("telemetry: slot finished before all ticks ran")
	}
	if len(names) != a.nOps || len(desired) != a.nOps || len(running) != a.nOps || len(cpuMilli) != a.nOps {
		return nil, errors.New("telemetry: finish metadata length mismatch")
	}
	rep := &SlotReport{
		Job:             a.job,
		Slot:            a.slot,
		Seconds:         a.seconds,
		PausedSeconds:   a.paused,
		Throughput:      a.sinkSum / float64(a.seconds),
		ProcessedTuples: a.sinkSum,
		DroppedTuples:   dropped,
		CostSoFar:       cost,
		AvgLatencySec:   a.latSum / float64(a.seconds),
		MaxLatencySec:   a.latMax,
		Vertices:        make([]VertexStats, a.nOps),
		SourceRates:     make([]float64, len(a.rateSum)),
	}
	for i, s := range a.rateSum {
		rep.SourceRates[i] = s / float64(a.seconds)
	}
	for i := 0; i < a.nOps; i++ {
		v := &rep.Vertices[i]
		v.Name = names[i]
		v.DesiredTasks = desired[i]
		v.RunningTasks = running[i]
		v.CPUMilli = cpuMilli[i]
		v.InRate = a.inSum[i] / float64(a.seconds)
		v.OutRate = a.outSum[i] / float64(a.seconds)
		v.ConsumedRate = a.consSum[i] / float64(a.seconds)
		if a.active > 0 {
			v.Util = a.utilSum[i] / float64(a.active)
		}
		if a.lastOps != nil {
			v.Backlog = a.lastOps[i].Buffered
		}
	}
	return rep, nil
}
