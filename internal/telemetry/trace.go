package telemetry

import (
	"sort"
	"strconv"
	"sync"
)

// Attr is one key-value pair attached to a span or event. Values are
// pre-rendered to strings by the typed constructors so a span's byte
// representation is independent of encoder float heuristics.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr {
	return Attr{Key: k, Value: strconv.FormatInt(v, 10)}
}

// Float builds a float attribute rendered with the shortest round-trip
// representation ('g', -1), which is deterministic for a given value.
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// SpanRecord is one closed span of the sim-time trace. Start and End are
// simulation seconds (the cluster clock), never wall time: traces from a
// fixed seed are byte-identical across runs and machines, which is what
// makes a golden trace the strictest determinism oracle in the repo.
type SpanRecord struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"` // 0 = root
	Slot   int    `json:"slot"`
	Cat    string `json:"cat"` // subsystem: experiment, core, osp, gp, ucb, flink, cluster, monitor, chaos
	Name   string `json:"name"`
	Start  int64  `json:"start"` // sim seconds
	End    int64  `json:"end"`   // sim seconds; == Start for instant events
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Tracer records nested spans keyed to the simulation clock. The zero
// value is not used directly; a nil *Tracer is the "no tracer installed"
// state, and every method is safe (and a no-op) on a nil receiver — the
// same nil-default hook pattern as cluster.Injector, so instrumented code
// carries no conditionals and fault-free overhead is one nil check.
//
// A Tracer is owned by the single-threaded control loop of one run; Begin,
// End and Event must not be called concurrently. The attached metrics
// Registry, by contrast, is safe for concurrent use (the parallel LML
// search updates counters from worker goroutines).
type Tracer struct {
	mu    sync.Mutex
	clock func() int64
	slot  int
	spans []SpanRecord
	stack []int // indices into spans of the open span chain
	reg   *Registry
}

// NewTracer returns an empty tracer on a zero clock. Install the sim
// clock with SetClock and, optionally, a metrics registry with
// SetMetrics.
func NewTracer() *Tracer { return &Tracer{} }

// SetClock installs the simulation clock source (e.g. cluster.Clock).
// A nil fn pins the clock at zero.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.clock = fn
}

// SetMetrics attaches a metrics registry so exporters can dump metrics
// alongside spans. Metrics returns it (nil on a nil tracer), letting
// emission sites write tracer-gated metrics without holding a second
// handle.
func (t *Tracer) SetMetrics(r *Registry) {
	if t == nil {
		return
	}
	t.reg = r
}

// Metrics returns the attached registry, or nil (on which every Registry
// method is itself a no-op).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// SetSlot sets the decision-slot index stamped on subsequently started
// spans and events. The experiment runner calls it at each slot boundary.
func (t *Tracer) SetSlot(slot int) {
	if t == nil {
		return
	}
	t.slot = slot
}

func (t *Tracer) now() int64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// Span is a handle on an open span. A nil *Span (from a nil tracer) is
// inert: Annotate and End are no-ops.
type Span struct {
	t   *Tracer
	idx int
}

// Begin opens a nested span under the innermost open span. End it with
// Span.End; attach late-bound attributes with Span.Annotate.
func (t *Tracer) Begin(cat, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := 0
	if n := len(t.stack); n > 0 {
		parent = t.spans[t.stack[n-1]].ID
	}
	idx := len(t.spans)
	t.spans = append(t.spans, SpanRecord{
		ID:     idx + 1,
		Parent: parent,
		Slot:   t.slot,
		Cat:    cat,
		Name:   name,
		Start:  t.now(),
		End:    -1,
		Attrs:  append([]Attr(nil), attrs...),
	})
	t.stack = append(t.stack, idx)
	return &Span{t: t, idx: idx}
}

// Event records an instant (zero-duration) span under the innermost open
// span.
func (t *Tracer) Event(cat, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := 0
	if n := len(t.stack); n > 0 {
		parent = t.spans[t.stack[n-1]].ID
	}
	now := t.now()
	t.spans = append(t.spans, SpanRecord{
		ID:     len(t.spans) + 1,
		Parent: parent,
		Slot:   t.slot,
		Cat:    cat,
		Name:   name,
		Start:  now,
		End:    now,
		Attrs:  append([]Attr(nil), attrs...),
	})
}

// Annotate appends attributes to the span (usually results computed
// between Begin and End).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	rec := &s.t.spans[s.idx]
	rec.Attrs = append(rec.Attrs, attrs...)
}

// End closes the span at the current sim clock. Any child spans left open
// (an error path returned early) are closed at the same instant, keeping
// the trace well-nested.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans[s.idx].End >= 0 {
		return // already closed (double End, or an ancestor ended first)
	}
	now := t.now()
	for n := len(t.stack); n > 0; n = len(t.stack) {
		top := t.stack[n-1]
		t.stack = t.stack[:n-1]
		if t.spans[top].End < 0 {
			t.spans[top].End = now
		}
		if top == s.idx {
			return
		}
	}
}

// Spans returns a copy of all spans recorded so far, in ID (start) order.
// Open spans are reported with End == current clock.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]SpanRecord, len(t.spans))
	for i, sp := range t.spans {
		if sp.End < 0 {
			sp.End = now
		}
		sp.Attrs = append([]Attr(nil), sp.Attrs...)
		out[i] = sp
	}
	return out
}

// AttrValue returns the value of the named attribute and whether it is
// present (the last write wins, matching Annotate semantics).
func (s SpanRecord) AttrValue(key string) (string, bool) {
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value, true
		}
	}
	return "", false
}

// PhaseDuration is one row of the time-in-phase aggregation.
type PhaseDuration struct {
	Cat     string
	Name    string
	Count   int
	Seconds int64 // summed span durations in sim seconds
}

// TimeInPhase aggregates spans by (cat, name), summing durations, sorted
// by descending total then name — the summarize table of dragstertrace.
func TimeInPhase(spans []SpanRecord) []PhaseDuration {
	type key struct{ cat, name string }
	agg := make(map[key]*PhaseDuration)
	order := make([]key, 0, 16)
	for _, sp := range spans {
		k := key{sp.Cat, sp.Name}
		row, ok := agg[k]
		if !ok {
			row = &PhaseDuration{Cat: sp.Cat, Name: sp.Name}
			agg[k] = row
			order = append(order, k)
		}
		row.Count++
		if sp.End > sp.Start {
			row.Seconds += sp.End - sp.Start
		}
	}
	out := make([]PhaseDuration, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}
