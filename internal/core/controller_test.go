package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dragster/internal/dag"
	"dragster/internal/monitor"
	"dragster/internal/osp"
	"dragster/internal/stats"
	"dragster/internal/store"
	"dragster/internal/ucb"
)

// chain builds source → map(sel 2) → shuffle(sel 1) → sink.
func chain(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, mp, sh, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(2), dag.Selectivity(1)}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newController(t testing.TB, mods ...func(*Config)) *Controller {
	t.Helper()
	cfg := Config{
		Graph:    chain(t),
		YMax:     1000,
		NoiseVar: 100,
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// capCurve is the hidden capacity model the controller must learn.
func capCurve(tasks int) float64 { return 100 * math.Pow(float64(tasks), 0.9) }

// snapshotAt fabricates a monitor snapshot for the chain running `tasks`
// under source rate `rate`, with capacities from capCurve.
func snapshotAt(slot int, rate float64, tasks []int, rng *stats.RNG) *monitor.Snapshot {
	capM := capCurve(tasks[0])
	capS := capCurve(tasks[1])
	outM := math.Min(capM, 2*rate)
	outS := math.Min(capS, outM)
	utilM := math.Min(1, outM/capM)
	utilS := math.Min(1, outS/capS)
	noise := func() float64 { return 1 + rng.Normal(0, 0.01) }
	return &monitor.Snapshot{
		Slot:        slot,
		Throughput:  outS,
		SourceRates: []float64{rate},
		Operators: []monitor.OperatorMetrics{
			{Name: "map", Tasks: tasks[0], InRate: rate, OutRate: outM, Util: utilM, CapacityObs: capM * noise()},
			{Name: "shuffle", Tasks: tasks[1], InRate: outM, OutRate: outS, Util: utilS, CapacityObs: capS * noise()},
		},
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"zero ymax", func(c *Config) { c.YMax = 0 }},
		{"zero noise", func(c *Config) { c.NoiseVar = 0 }},
		{"negative tol", func(c *Config) { c.BottleneckTol = -1 }},
		{"bad util", func(c *Config) { c.MinObserveUtil = 2 }},
		{"negative explore", func(c *Config) { c.ExplorationScale = -1 }},
		{"wrong candidates", func(c *Config) { c.Candidates = [][][]float64{{{1}}} }},
		{"negative budget", func(c *Config) { c.TaskBudget = -1 }},
		{"tiny budget", func(c *Config) { c.TaskBudget = 1 }},
	}
	for _, tc := range cases {
		cfg := Config{Graph: chain(t), YMax: 1000, NoiseVar: 100}
		tc.mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestNameReflectsMethod(t *testing.T) {
	c := newController(t)
	if c.Name() != "dragster-saddle-point" {
		t.Errorf("Name = %q", c.Name())
	}
	c2 := newController(t, func(cfg *Config) { cfg.Method = osp.GradientDescent })
	if !strings.Contains(c2.Name(), "gradient") {
		t.Errorf("Name = %q", c2.Name())
	}
}

func TestDecideValidation(t *testing.T) {
	c := newController(t)
	if _, err := c.Decide(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := c.Decide(&monitor.Snapshot{}); err == nil {
		t.Error("wrong operator count accepted")
	}
	snap := snapshotAt(0, 100, []int{1, 1}, stats.NewRNG(1))
	snap.SourceRates = nil
	if _, err := c.Decide(snap); err == nil {
		t.Error("missing source rates accepted")
	}
}

func TestDecideConvergesToDemand(t *testing.T) {
	// Closed loop against the synthetic capCurve plant: rate 300 → map
	// demand 600 → needs ~8 tasks (capCurve(8)=649); shuffle demand 600 →
	// same. The controller should settle there, not at 10/10.
	c := newController(t)
	rng := stats.NewRNG(2)
	tasks := []int{1, 1}
	for slot := 0; slot < 25; slot++ {
		snap := snapshotAt(slot, 300, tasks, rng)
		next, err := c.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	for i, n := range tasks {
		// The 10% bottleneck tolerance means capacity may legitimately sit
		// slightly under demand; require near-coverage, not full coverage.
		if capCurve(n) < 0.9*600 {
			t.Errorf("op %d settled at %d tasks (cap %.0f ≪ demand 600)", i, n, capCurve(n))
		}
		if n > 9 {
			t.Errorf("op %d over-provisioned at %d tasks", i, n)
		}
	}
}

func TestDecideScalesDownAfterLoadDrop(t *testing.T) {
	c := newController(t)
	rng := stats.NewRNG(3)
	tasks := []int{1, 1}
	for slot := 0; slot < 20; slot++ {
		snap := snapshotAt(slot, 300, tasks, rng)
		next, err := c.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	high := append([]int(nil), tasks...)
	for slot := 20; slot < 40; slot++ {
		snap := snapshotAt(slot, 80, tasks, rng) // demand 160 → ~2 tasks
		next, err := c.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	if tasks[0] >= high[0] || tasks[1] >= high[1] {
		t.Errorf("no scale down: high %v → low %v", high, tasks)
	}
	if capCurve(tasks[0]) < 160 {
		t.Errorf("scaled below demand: %v", tasks)
	}
}

func TestDecideRespectsBudget(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.TaskBudget = 8 })
	rng := stats.NewRNG(4)
	tasks := []int{1, 1}
	for slot := 0; slot < 15; slot++ {
		snap := snapshotAt(slot, 500, tasks, rng) // demand far above budget capacity
		next, err := c.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		if next[0]+next[1] > 8 {
			t.Fatalf("slot %d: budget violated: %v", slot, next)
		}
		tasks = next
	}
	// Under overload the budget should be fully used and roughly balanced
	// (a 2:1 selectivity chain wants comparable capacities).
	if tasks[0]+tasks[1] < 7 {
		t.Errorf("budget underused under overload: %v", tasks)
	}
	if tasks[0] < 2 || tasks[1] < 2 {
		t.Errorf("budget not balanced across operators: %v", tasks)
	}
}

func TestDecideDetailedDiagnostics(t *testing.T) {
	c := newController(t)
	rng := stats.NewRNG(5)
	snap := snapshotAt(0, 100, []int{1, 1}, rng)
	_, diag, err := c.DecideDetailed(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Y) != 2 {
		t.Fatalf("diag targets %v", diag.Y)
	}
	// Map demand 200 with headroom → target ≥ 200.
	if diag.Y[0] < 200 {
		t.Errorf("map target %v below demand", diag.Y[0])
	}
	if len(diag.Bottlenecks) == 0 {
		t.Error("under-provisioned start produced no bottlenecks")
	}
}

func TestDBRecordsAndWarmStart(t *testing.T) {
	db := store.New()
	c := newController(t, func(cfg *Config) { cfg.DB = db })
	rng := stats.NewRNG(6)
	tasks := []int{1, 1}
	for slot := 0; slot < 10; slot++ {
		snap := snapshotAt(slot, 300, tasks, rng)
		next, err := c.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	if db.Len() != 20 { // 2 operators × 10 slots
		t.Fatalf("db records = %d, want 20", db.Len())
	}
	// A fresh controller warm-started from the same DB should already hold
	// the observations.
	warm := newController(t, func(cfg *Config) { cfg.DB = db })
	if warm.Searcher(0).Observations() == 0 {
		t.Error("warm start loaded no observations")
	}
	// And it should converge faster: with a trained GP the first Decide
	// should directly produce a capable configuration.
	snap := snapshotAt(0, 300, []int{1, 1}, stats.NewRNG(7))
	next, err := warm.Decide(snap)
	if err != nil {
		t.Fatal(err)
	}
	if capCurve(next[0]) < 500 {
		t.Errorf("warm-started first decision too small: %v", next)
	}
}

func TestDualsAccessor(t *testing.T) {
	c := newController(t)
	d := c.Duals()
	if len(d) != 2 || d[0] != 0 || d[1] != 0 {
		t.Errorf("initial duals = %v", d)
	}
}

func TestSkipsIdleObservations(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.MinObserveUtil = 0.5 })
	rng := stats.NewRNG(8)
	snap := snapshotAt(0, 1, []int{10, 10}, rng) // nearly idle
	if _, err := c.Decide(snap); err != nil {
		t.Fatal(err)
	}
	if got := c.Searcher(0).Observations(); got != 0 {
		t.Errorf("idle observation was not skipped: %d", got)
	}
}

func TestConventionalAcquisitionConfigurable(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.Acquisition = ucb.Conventional })
	rng := stats.NewRNG(9)
	tasks := []int{1, 1}
	for slot := 0; slot < 15; slot++ {
		snap := snapshotAt(slot, 80, tasks, rng) // low demand
		next, err := c.Decide(snap)
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	// Conventional UCB chases the maximum capacity instead of tracking the
	// small target: it should over-provision relative to demand (160).
	if capCurve(tasks[0]) < 300 {
		t.Errorf("conventional UCB did not over-provision: %v", tasks)
	}
}

func TestDecideWithUnknownOperatorCountErrors(t *testing.T) {
	c := newController(t)
	snap := &monitor.Snapshot{
		SourceRates: []float64{1},
		Operators:   make([]monitor.OperatorMetrics, 3),
	}
	if _, err := c.Decide(snap); err == nil {
		t.Error("operator count mismatch accepted")
	}
	var want = errNoSnapshot
	if _, err := c.Decide(nil); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
}

func TestGPObservationBudgetCapsRetainedSet(t *testing.T) {
	// A tight budget must bound every operator's retained observations no
	// matter how many slots run — the flat-memory contract behind the
	// long-horizon scenario (experiment.LongHorizon).
	c := newController(t, func(cfg *Config) { cfg.GPObservationBudget = 5 })
	rng := stats.NewRNG(5)
	tasks := []int{1, 1}
	for slot := 0; slot < 30; slot++ {
		next, err := c.Decide(snapshotAt(slot, 300, tasks, rng))
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	for i := 0; i < 2; i++ {
		reg := c.Searcher(i).Regressor()
		if reg.Len() > 5 {
			t.Errorf("op %d retains %d observations, budget 5", i, reg.Len())
		}
		if reg.ObservationBudget() != 5 {
			t.Errorf("op %d budget = %d, want 5", i, reg.ObservationBudget())
		}
		if reg.Evictions() == 0 {
			t.Errorf("op %d never evicted across 30 slots at budget 5", i)
		}
	}
	if _, err := New(Config{Graph: chain(t), YMax: 1000, NoiseVar: 100, GPObservationBudget: -1}); err == nil {
		t.Error("negative GPObservationBudget accepted")
	}
}
