package core

import (
	"errors"
	"testing"

	"dragster/internal/telemetry"
)

var errTransient = errors.New("transient rescale fault")

// scriptedRescaler consumes one scripted error per call (nil = success)
// and records the applied targets.
type scriptedRescaler struct {
	errs  []error
	calls int
	last  []int
}

func (s *scriptedRescaler) RescaleResources(tasks, cpuMilli []int) error {
	s.calls++
	s.last = append([]int(nil), tasks...)
	if len(s.errs) == 0 {
		return nil
	}
	e := s.errs[0]
	s.errs = s.errs[1:]
	return e
}

func transientOnly(err error) bool { return errors.Is(err, errTransient) }

func newRetrier(t *testing.T, cfg RetryConfig) *RescaleRetrier {
	t.Helper()
	r, err := NewRescaleRetrier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRetrierSuccessPassthrough(t *testing.T) {
	r := newRetrier(t, RetryConfig{Retryable: transientOnly})
	job := &scriptedRescaler{}
	if err := r.Apply(job, []int{2, 3}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if job.calls != 1 || job.last[0] != 2 || job.last[1] != 3 {
		t.Errorf("apply did not pass the target through: calls=%d last=%v", job.calls, job.last)
	}
	if r.Pending() || r.LastErr() != nil {
		t.Errorf("clean success left retry state: pending=%v lastErr=%v", r.Pending(), r.LastErr())
	}
}

func TestRetrierRecoversAfterBackoff(t *testing.T) {
	cs := telemetry.NewCounters()
	r := newRetrier(t, RetryConfig{Retryable: transientOnly, Counters: cs})
	job := &scriptedRescaler{errs: []error{errTransient}}
	target := []int{4, 4}

	if err := r.Apply(job, target, nil, 0); err != nil {
		t.Fatalf("transient failure escaped: %v", err)
	}
	if !r.Pending() || !errors.Is(r.LastErr(), errTransient) {
		t.Fatalf("failure not absorbed: pending=%v lastErr=%v", r.Pending(), r.LastErr())
	}
	// Same slot: still backing off, no new attempt.
	if err := r.Apply(job, target, nil, 0); err != nil {
		t.Fatal(err)
	}
	if job.calls != 1 {
		t.Fatalf("retried during backoff: %d calls", job.calls)
	}
	// Next slot: retry succeeds.
	if err := r.Apply(job, target, nil, 1); err != nil {
		t.Fatal(err)
	}
	if job.calls != 2 || r.Pending() || r.LastErr() != nil {
		t.Errorf("recovery incomplete: calls=%d pending=%v lastErr=%v", job.calls, r.Pending(), r.LastErr())
	}
	for name, want := range map[string]int64{
		"rescale_failures":      1,
		"rescale_backoff_waits": 1,
		"rescale_retries":       1,
		"rescale_recovered":     1,
		"rescale_abandoned":     0,
	} {
		if got := cs.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestRetrierNewTargetSupersedesPending(t *testing.T) {
	r := newRetrier(t, RetryConfig{Retryable: transientOnly, BackoffSlots: 4, MaxBackoffSlots: 8})
	job := &scriptedRescaler{errs: []error{errTransient}}
	if err := r.Apply(job, []int{2, 2}, nil, 0); err != nil {
		t.Fatal(err)
	}
	// A different target at the very next slot must not wait out the old
	// backoff: it supersedes the pending one and applies immediately.
	if err := r.Apply(job, []int{3, 3}, nil, 1); err != nil {
		t.Fatal(err)
	}
	if job.calls != 2 || job.last[0] != 3 {
		t.Errorf("superseding target not applied: calls=%d last=%v", job.calls, job.last)
	}
	if r.Pending() {
		t.Error("retry state survived a successful supersede")
	}
}

func TestRetrierAbandonsAfterMaxAttempts(t *testing.T) {
	cs := telemetry.NewCounters()
	r := newRetrier(t, RetryConfig{MaxAttempts: 2, Retryable: transientOnly, Counters: cs})
	job := &scriptedRescaler{errs: []error{errTransient, errTransient}}
	target := []int{5, 5}
	if err := r.Apply(job, target, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(job, target, nil, 1); err != nil {
		t.Fatalf("abandonment must absorb the final error: %v", err)
	}
	if r.Pending() {
		t.Error("abandoned target still pending")
	}
	if !errors.Is(r.LastErr(), errTransient) {
		t.Errorf("abandonment lost the last error: %v", r.LastErr())
	}
	if got := cs.Get("rescale_abandoned"); got != 1 {
		t.Errorf("rescale_abandoned = %d, want 1", got)
	}
	// The next (fresh) target starts with a clean attempt budget.
	if err := r.Apply(job, []int{6, 6}, nil, 2); err != nil {
		t.Fatal(err)
	}
	if job.last[0] != 6 {
		t.Errorf("fresh target not applied after abandonment: %v", job.last)
	}
}

func TestRetrierBackoffGrowsAndCaps(t *testing.T) {
	r := newRetrier(t, RetryConfig{MaxAttempts: 10, BackoffSlots: 1, MaxBackoffSlots: 2, Retryable: transientOnly})
	job := &scriptedRescaler{errs: []error{errTransient, errTransient, errTransient}}
	target := []int{7, 7}
	// Failure 1 at slot 0 → backoff 1 → eligible at slot 1.
	if err := r.Apply(job, target, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Failure 2 at slot 1 → backoff 2 → eligible at slot 3.
	if err := r.Apply(job, target, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(job, target, nil, 2); err != nil {
		t.Fatal(err)
	}
	if job.calls != 2 {
		t.Fatalf("attempted during grown backoff: %d calls", job.calls)
	}
	// Failure 3 at slot 3 → backoff would be 4, capped at 2 → slot 5.
	if err := r.Apply(job, target, nil, 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(job, target, nil, 4); err != nil {
		t.Fatal(err)
	}
	if job.calls != 3 {
		t.Fatalf("attempted during capped backoff: %d calls", job.calls)
	}
	if err := r.Apply(job, target, nil, 5); err != nil {
		t.Fatal(err)
	}
	if job.calls != 4 || r.Pending() {
		t.Errorf("capped backoff retry missing: calls=%d pending=%v", job.calls, r.Pending())
	}
}

func TestRetrierNonRetryablePropagates(t *testing.T) {
	r := newRetrier(t, RetryConfig{Retryable: transientOnly})
	fatal := errors.New("bad parallelism")
	job := &scriptedRescaler{errs: []error{fatal}}
	err := r.Apply(job, []int{1, 1}, nil, 0)
	if !errors.Is(err, fatal) {
		t.Fatalf("fatal error absorbed: %v", err)
	}
	if r.Pending() {
		t.Error("fatal error left a pending target")
	}
}

func TestRetrierNilRetryableTreatsAllAsTransient(t *testing.T) {
	r := newRetrier(t, RetryConfig{})
	job := &scriptedRescaler{errs: []error{errors.New("anything")}}
	if err := r.Apply(job, []int{1, 1}, nil, 0); err != nil {
		t.Fatalf("nil Retryable did not absorb: %v", err)
	}
	if !r.Pending() {
		t.Error("absorbed failure not pending")
	}
}

func TestRetrierValidation(t *testing.T) {
	if err := (&RescaleRetrier{}).Apply(nil, []int{1}, nil, 0); err == nil {
		t.Error("nil rescaler accepted")
	}
	if _, err := NewRescaleRetrier(RetryConfig{BackoffSlots: 4, MaxBackoffSlots: 2}); err == nil {
		t.Error("MaxBackoffSlots < BackoffSlots accepted")
	}
	if _, err := NewRescaleRetrier(RetryConfig{MaxAttempts: -1}); err == nil {
		t.Error("negative MaxAttempts accepted")
	}
}

func TestRetrierCPUDimensionTracked(t *testing.T) {
	r := newRetrier(t, RetryConfig{Retryable: transientOnly})
	job := &scriptedRescaler{errs: []error{errTransient}}
	if err := r.Apply(job, []int{2, 2}, []int{500, 500}, 0); err != nil {
		t.Fatal(err)
	}
	// Same tasks, different CPU = a different target → applied immediately.
	if err := r.Apply(job, []int{2, 2}, []int{1000, 1000}, 0); err != nil {
		t.Fatal(err)
	}
	if job.calls != 2 {
		t.Errorf("CPU-only change did not supersede: %d calls", job.calls)
	}
}
