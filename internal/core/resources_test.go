package core

import (
	"math"
	"testing"

	"dragster/internal/monitor"
	"dragster/internal/stats"
	"dragster/internal/store"
)

// capCurve2D is the hidden 2-D capacity model: concave in tasks, sublinear
// in CPU relative to the 1000m reference.
func capCurve2D(tasks, cpuMilli int) float64 {
	return 100 * math.Pow(float64(tasks), 0.9) * math.Pow(float64(cpuMilli)/1000, 0.8)
}

func snapshot2D(slot int, rate float64, tasks, cpu []int, rng *stats.RNG) *monitor.Snapshot {
	capM := capCurve2D(tasks[0], cpu[0])
	capS := capCurve2D(tasks[1], cpu[1])
	outM := math.Min(capM, 2*rate)
	outS := math.Min(capS, outM)
	noise := func() float64 { return 1 + rng.Normal(0, 0.01) }
	return &monitor.Snapshot{
		Slot:        slot,
		Throughput:  outS,
		SourceRates: []float64{rate},
		Operators: []monitor.OperatorMetrics{
			{Name: "map", Tasks: tasks[0], CPUMilli: cpu[0], InRate: rate, OutRate: outM,
				Util: math.Min(1, outM/capM), CapacityObs: capM * noise()},
			{Name: "shuffle", Tasks: tasks[1], CPUMilli: cpu[1], InRate: outM, OutRate: outS,
				Util: math.Min(1, outS/capS), CapacityObs: capS * noise()},
		},
	}
}

func TestDecideResources2DConverges(t *testing.T) {
	grid, err := store.Grid2D(1, 8, 500, 2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	c := newController(t, func(cfg *Config) {
		cfg.Candidates = [][][]float64{grid, grid}
	})
	rng := stats.NewRNG(12)
	tasks := []int{1, 1}
	cpu := []int{1000, 1000}
	// Demand 400 output/s per operator (rate 200 × sel 2). Reachable e.g.
	// at (4 tasks, 1000m) ≈ 348 — not quite — or (4, 1500)=482,
	// (5, 1000)=425, (3, 2000)=465...
	for slot := 0; slot < 30; slot++ {
		snap := snapshot2D(slot, 200, tasks, cpu, rng)
		nextTasks, nextCPU, diag, err := c.DecideResources(snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(diag.Y) != 2 {
			t.Fatal("missing diagnostics")
		}
		for i := range nextCPU {
			if nextCPU[i] == 0 {
				t.Fatalf("slot %d: 2-D candidates produced no CPU for op %d", slot, i)
			}
		}
		tasks, cpu = nextTasks, nextCPU
	}
	for i := range tasks {
		got := capCurve2D(tasks[i], cpu[i])
		if got < 0.9*400 {
			t.Errorf("op %d at (%d tasks, %dm) capacity %.0f ≪ demand 400", i, tasks[i], cpu[i], got)
		}
		// The economical property: not wildly over-provisioned.
		if got > 2.2*400 {
			t.Errorf("op %d grossly over-provisioned: (%d, %dm) → %.0f", i, tasks[i], cpu[i], got)
		}
	}
}

func TestDecideResourcesOneDimensionalGivesZeroCPU(t *testing.T) {
	c := newController(t) // default 1-D task grid
	rng := stats.NewRNG(13)
	snap := snapshotAt(0, 100, []int{1, 1}, rng)
	_, cpu, _, err := c.DecideResources(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range cpu {
		if v != 0 {
			t.Errorf("1-D candidates yielded CPU %d for op %d", v, i)
		}
	}
}

func TestConfigForCPUMatching(t *testing.T) {
	grid, err := store.Grid2D(1, 4, 500, 2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	c := newController(t, func(cfg *Config) {
		cfg.Candidates = [][][]float64{grid, grid}
	})
	v := c.configFor(0, 3, 1500)
	if v[0] != 3 || v[1] != 1500 {
		t.Errorf("configFor(3, 1500) = %v", v)
	}
	// Unknown CPU: nearest candidate's CPU is preserved.
	v = c.configFor(0, 2, 0)
	if v[0] != 2 || v[1] < 500 || v[1] > 2000 {
		t.Errorf("configFor(2, unknown) = %v", v)
	}
	// nearestWithTasks keeps the non-task dims close to the reference.
	v = c.nearestWithTasks(0, 4, []float64{9, 2000})
	if v[0] != 4 || v[1] != 2000 {
		t.Errorf("nearestWithTasks = %v", v)
	}
}
