package core

import (
	"math"
	"testing"

	"dragster/internal/stats"
)

func TestNewLoadForecasterValidation(t *testing.T) {
	if _, err := newLoadForecaster(1, 0, 0.1); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := newLoadForecaster(1, 1, 0.1); err == nil {
		t.Error("alpha 1 accepted")
	}
	if _, err := newLoadForecaster(1, 0.5, 0); err == nil {
		t.Error("beta 0 accepted")
	}
	if _, err := newLoadForecaster(0, 0.5, 0.2); err == nil {
		t.Error("zero sources accepted")
	}
}

func TestForecasterTracksRamp(t *testing.T) {
	f, err := newLoadForecaster(1, 0.6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Linear ramp: rate(t) = 1000 + 100·t. After warm-up the one-step
	// forecast must beat the naive last-value predictor.
	var holtErr, naiveErr float64
	prev := 0.0
	for tt := 0; tt < 30; tt++ {
		rate := 1000 + 100*float64(tt)
		if tt >= 10 {
			pred := f.predict()[0]
			holtErr += math.Abs(pred - rate)
			naiveErr += math.Abs(prev - rate)
		}
		f.observe([]float64{rate})
		prev = rate
	}
	if holtErr >= naiveErr {
		t.Errorf("Holt error %v not below naive last-value error %v", holtErr, naiveErr)
	}
}

func TestForecasterNonNegative(t *testing.T) {
	f, err := newLoadForecaster(1, 0.6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// A crash to zero with a steep negative trend must not forecast below
	// zero (rates are non-negative by definition).
	for _, r := range []float64{1000, 600, 200, 0, 0} {
		f.observe([]float64{r})
	}
	if got := f.predict()[0]; got < 0 {
		t.Errorf("negative forecast %v", got)
	}
}

func TestForecasterColdStart(t *testing.T) {
	f, err := newLoadForecaster(2, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	f.observe([]float64{100, 50})
	pred := f.predict()
	if pred[0] != 100 || pred[1] != 50 {
		t.Errorf("cold-start prediction %v, want the first observation", pred)
	}
	// Wrong-length updates are ignored defensively.
	f.observe([]float64{1})
	if got := f.predict(); got[0] != 100 {
		t.Errorf("malformed observe mutated state: %v", got)
	}
}

func TestControllerForecastValidation(t *testing.T) {
	cfg := Config{Graph: chain(t), YMax: 1000, NoiseVar: 100, ForecastAlpha: 1.5}
	if _, err := New(cfg); err == nil {
		t.Error("ForecastAlpha ≥ 1 accepted")
	}
}

// TestForecastReducesLagUnderRamp runs the closed synthetic loop with a
// steadily climbing offered rate: the forecasting controller should keep
// capacity ahead of demand in more slots than the lagging one.
func TestForecastReducesLagUnderRamp(t *testing.T) {
	run := func(alpha float64) int {
		c := newController(t, func(cfg *Config) { cfg.ForecastAlpha = alpha })
		rng := stats.NewRNG(19)
		tasks := []int{1, 1}
		covered := 0
		for slot := 0; slot < 25; slot++ {
			rate := 100 + 15*float64(slot) // demand = 2·rate at the map
			snap := snapshotAt(slot, rate, tasks, rng)
			next, err := c.Decide(snap)
			if err != nil {
				t.Fatal(err)
			}
			tasks = next
			// Does the chosen capacity cover NEXT slot's demand?
			nextDemand := 2 * (100 + 15*float64(slot+1))
			if capCurve(tasks[0]) >= nextDemand {
				covered++
			}
		}
		return covered
	}
	lagging := run(0)
	forecasting := run(0.6)
	if forecasting <= lagging {
		t.Errorf("forecasting covered %d slots vs %d without — no improvement", forecasting, lagging)
	}
}
