// Package core assembles Dragster's two-level online optimizer
// (Algorithm 2 of the paper) into a slot-by-slot controller:
//
//  1. observe last slot's application throughput, per-operator throughput
//     and Eq. 8 capacity samples (from the Job Monitor);
//  2. update the dual variables (Eq. 15) and solve the online saddle
//     point / online gradient descent problem (Eq. 14 / Eq. 16) for the
//     target capacity vector y_t;
//  3. identify bottleneck operators (those whose target deviates from
//     their current estimated capacity);
//  4. for each bottleneck, select the next configuration with the
//     extended GP-UCB acquisition (Eq. 18) and project the joint choice
//     onto the resource budget (Eq. 9d).
//
// The controller implements the Autoscaler interface shared with the
// baselines, so the experiment harness can drive any policy uniformly.
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"dragster/internal/dag"
	"dragster/internal/gp"
	"dragster/internal/monitor"
	"dragster/internal/osp"
	"dragster/internal/stats"
	"dragster/internal/store"
	"dragster/internal/telemetry"
	"dragster/internal/ucb"
)

// Autoscaler is a per-slot scaling policy. Decide consumes the monitor
// snapshot of the slot that just finished and returns the desired task
// count per operator (dense operator-index order) for the next slot.
type Autoscaler interface {
	Name() string
	Decide(snap *monitor.Snapshot) ([]int, error)
}

// Config assembles a Dragster controller.
type Config struct {
	// Graph is the application DAG with its (known or predicted)
	// throughput functions — the Theorem 1 / Theorem 2 input.
	Graph *dag.Graph
	// Method selects the level-1 algorithm (saddle point or OGD).
	Method osp.Method
	// Candidates lists the configuration candidates per operator (dense
	// operator index). The first component of every candidate is the task
	// count. Defaults to the paper's 1..10 task grid when nil.
	Candidates [][][]float64
	// TaskBudget bounds Σ_i tasks_i (Eq. 9d). 0 disables the budget.
	TaskBudget int
	// YMax bounds target capacities; pick ≥ the largest plausible operator
	// capacity (required).
	YMax float64
	// NoiseVar is the GP observation noise σ² on Eq. 8 capacity samples
	// (required; the square of roughly NoiseSigma·capacity-scale).
	NoiseVar float64
	// Delta is Theorem 1's confidence parameter δ ∈ (1, ∞); default 2.
	Delta float64
	// Acquisition selects extended (default) or conventional GP-UCB.
	Acquisition ucb.Acquisition
	// BottleneckTol is the relative target-vs-estimate deviation above
	// which an operator is reconfigured (default 0.1).
	BottleneckTol float64
	// MinObserveUtil skips GP observations from nearly idle slots, whose
	// Eq. 8 estimate badly underestimates capacity (default 0.15).
	MinObserveUtil float64
	// ExplorationScale shrinks the GP-UCB exploration bonus (default 0.1;
	// see ucb.Config.ExplorationScale). 1 restores the raw theoretical
	// schedule.
	ExplorationScale float64
	// HyperoptEvery re-fits each operator's GP kernel hyperparameters by
	// log-marginal-likelihood grid search every HyperoptEvery observations
	// (0 disables; the defaults are well-calibrated for the built-in
	// workloads, so this mainly serves custom capacity scales).
	HyperoptEvery int
	// HyperoptWorkers bounds the worker pool each hyperparameter refit
	// uses to evaluate the LML grid in parallel (0 = automatic, capped at
	// GOMAXPROCS). The grid argmax is reduced in grid order, so any worker
	// count yields byte-identical kernels; this knob only trades refit
	// latency against CPU.
	HyperoptWorkers int
	// GPObservationBudget caps the observations each operator's GP
	// retains (0 = unlimited). With a budget, per-slot cost and memory
	// stay flat over unbounded horizons — the month-long deployments the
	// ROADMAP targets — at the price of an approximate (retained-set)
	// posterior; see DESIGN.md "Bounded-memory posterior".
	GPObservationBudget int
	// GPEviction picks which observation a full budget drops (default
	// gp.EvictLowestInformation; gp.EvictOldest is the sliding window).
	GPEviction gp.EvictionPolicy
	// RNG supplies posterior draws when Acquisition is ucb.Thompson
	// (ignored otherwise).
	RNG *stats.RNG
	// ForecastAlpha enables Holt load forecasting with the given level
	// smoothing factor (0 disables): level-1 targets are computed against
	// the one-slot-ahead rate forecast instead of last slot's observation,
	// removing the systematic lag under drifting load. The trend factor
	// defaults to ForecastAlpha/2.
	ForecastAlpha float64
	// DB, when set, receives one record per operator per slot, and its
	// history is replayed into the GPs at construction (warm start).
	DB *store.DB
	// Counters, when set, receives fault-handling telemetry
	// (core_stale_snapshot_skips, core_rejected_capacity_obs). The
	// experiment runner shares one registry between the controller and the
	// chaos engine so a run's whole fault story lives in one snapshot.
	Counters *telemetry.Counters
	// OSP overrides the default level-1 configuration (Method and YMax
	// from this Config still take precedence when set there).
	OSP *osp.Config
}

// Controller is the Dragster optimization engine.
type Controller struct {
	cfg        Config
	g          *dag.Graph
	level1     *osp.Optimizer
	searchers  []*ucb.Searcher
	forecaster *loadForecaster // nil when forecasting is off
	lastTasks  []int
	lastCPU    []int // last observed per-pod CPU (0 = unknown/1-D configs)
	slot       int
	// rejectedSamples counts throughput-learner observations rejected as
	// invalid (non-positive or non-finite rates); a high count means the
	// monitor is feeding the Theorem-2 regression garbage.
	rejectedSamples int
	// Stale-metric guard: a snapshot whose slot does not advance past the
	// last decided one is a repeat (metrics staleness) and is skipped
	// wholesale rather than re-fed into the GPs and dual updates.
	seenSnap     bool
	lastSnapSlot int
	staleSkips   int

	// tracer is the nil-safe observability hook; see internal/telemetry.
	tracer *telemetry.Tracer
}

// SetTracer installs (or, with nil, removes) the observability tracer,
// propagating it to every per-operator searcher (labelled by operator
// name). Each DecideConfigs pass becomes one "decide" span with child
// spans for the level-1 step and the budget projection; GP observe/refit
// and UCB select events nest inside it automatically.
func (c *Controller) SetTracer(tr *telemetry.Tracer) {
	c.tracer = tr
	for i, s := range c.searchers {
		s.SetTracer(tr, c.g.OperatorName(i))
	}
}

// New validates cfg and builds the controller, warm-starting from the
// history database when one is supplied.
func New(cfg Config) (*Controller, error) {
	if cfg.Graph == nil {
		return nil, errors.New("core: nil graph")
	}
	m := cfg.Graph.NumOperators()
	if cfg.YMax <= 0 {
		return nil, errors.New("core: YMax must be positive")
	}
	if cfg.NoiseVar <= 0 {
		return nil, errors.New("core: NoiseVar must be positive")
	}
	if cfg.BottleneckTol == 0 {
		cfg.BottleneckTol = 0.1
	}
	if cfg.BottleneckTol < 0 {
		return nil, errors.New("core: negative BottleneckTol")
	}
	if cfg.MinObserveUtil == 0 {
		cfg.MinObserveUtil = 0.15
	}
	if cfg.MinObserveUtil < 0 || cfg.MinObserveUtil >= 1 {
		return nil, errors.New("core: MinObserveUtil outside [0, 1)")
	}
	if cfg.ExplorationScale == 0 {
		cfg.ExplorationScale = 0.1
	}
	if cfg.ExplorationScale < 0 {
		return nil, errors.New("core: negative ExplorationScale")
	}
	if cfg.HyperoptEvery < 0 {
		return nil, errors.New("core: negative HyperoptEvery")
	}
	if cfg.GPObservationBudget < 0 {
		return nil, errors.New("core: negative GPObservationBudget")
	}
	if cfg.ForecastAlpha < 0 || cfg.ForecastAlpha >= 1 {
		return nil, errors.New("core: ForecastAlpha outside [0, 1)")
	}
	if cfg.Candidates == nil {
		grid, err := store.TaskGrid(1, 10)
		if err != nil {
			return nil, err
		}
		cfg.Candidates = make([][][]float64, m)
		for i := range cfg.Candidates {
			cfg.Candidates[i] = grid
		}
	}
	if len(cfg.Candidates) != m {
		return nil, fmt.Errorf("core: got candidate lists for %d operators, want %d", len(cfg.Candidates), m)
	}
	if cfg.TaskBudget < 0 {
		return nil, errors.New("core: negative TaskBudget")
	}
	if cfg.TaskBudget > 0 && cfg.TaskBudget < m {
		return nil, fmt.Errorf("core: budget %d cannot host %d operators", cfg.TaskBudget, m)
	}

	ospCfg := osp.Config{Method: cfg.Method, YMax: cfg.YMax}
	if cfg.OSP != nil {
		ospCfg = *cfg.OSP
		ospCfg.Method = cfg.Method
		ospCfg.YMax = cfg.YMax
	}
	level1, err := osp.New(cfg.Graph, ospCfg)
	if err != nil {
		return nil, err
	}

	c := &Controller{
		cfg:       cfg,
		g:         cfg.Graph,
		level1:    level1,
		searchers: make([]*ucb.Searcher, m),
		lastTasks: make([]int, m),
		lastCPU:   make([]int, m),
	}
	capScale := cfg.YMax // kernel variance in capacity units²
	for i := 0; i < m; i++ {
		s, err := ucb.NewSearcher(ucb.Config{
			NoiseVar:          cfg.NoiseVar,
			Candidates:        cfg.Candidates[i],
			Delta:             cfg.Delta,
			Acquisition:       cfg.Acquisition,
			Kernel:            capacityKernel(cfg.Candidates[i], capScale),
			ExplorationScale:  cfg.ExplorationScale,
			RefitEvery:        cfg.HyperoptEvery,
			LMLWorkers:        cfg.HyperoptWorkers,
			RNG:               cfg.RNG,
			ObservationBudget: cfg.GPObservationBudget,
			Eviction:          cfg.GPEviction,
		})
		if err != nil {
			return nil, fmt.Errorf("core: operator %d searcher: %w", i, err)
		}
		c.searchers[i] = s
		c.lastTasks[i] = int(math.Round(cfg.Candidates[i][0][0]))
	}
	if cfg.ForecastAlpha > 0 {
		f, err := newLoadForecaster(cfg.Graph.NumSources(), cfg.ForecastAlpha, cfg.ForecastAlpha/2)
		if err != nil {
			return nil, err
		}
		c.forecaster = f
	}
	if cfg.DB != nil {
		if err := c.warmStart(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// capacityKernel builds a kernel whose per-dimension length scales span
// ~25% of each candidate axis and whose variance matches the capacity
// scale, so prior uncertainty is meaningful in tuples/s units and a
// multi-dimensional configuration space (tasks × CPU) generalizes along
// every axis.
func capacityKernel(cands [][]float64, capScale float64) gp.Kernel {
	dim := len(cands[0])
	scales := make([]float64, dim)
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range cands {
			if c[d] < lo {
				lo = c[d]
			}
			if c[d] > hi {
				hi = c[d]
			}
		}
		scales[d] = math.Max(0.25*(hi-lo), 0.5)
	}
	variance := (capScale / 3) * (capScale / 3)
	if dim == 1 {
		k, err := gp.NewSquaredExponential(scales[0], variance)
		if err != nil {
			// Parameters above are positive by construction; unreachable.
			panic(err)
		}
		return k
	}
	k, err := gp.NewARDSquaredExponential(scales, variance)
	if err != nil {
		panic(err) // unreachable, as above
	}
	return k
}

// warmStart replays DB history into the per-operator GPs.
func (c *Controller) warmStart() error {
	for i := 0; i < c.g.NumOperators(); i++ {
		name := c.g.OperatorName(i)
		for _, r := range c.cfg.DB.History(name) {
			if r.CapacityObs <= 0 {
				continue
			}
			if err := c.searchers[i].Observe(r.Config, r.CapacityObs); err != nil {
				return fmt.Errorf("core: warm start operator %s: %w", name, err)
			}
		}
	}
	return nil
}

// Name implements Autoscaler.
func (c *Controller) Name() string {
	return "dragster-" + c.cfg.Method.String()
}

// Searcher exposes the per-operator GP-UCB searcher (diagnostics,
// information-gain accounting in the regret experiments).
func (c *Controller) Searcher(i int) *ucb.Searcher { return c.searchers[i] }

// Duals returns the level-1 dual variables.
func (c *Controller) Duals() []float64 { return c.level1.Duals() }

// TaskBudget returns the current Σ-tasks budget (0 = unbounded).
func (c *Controller) TaskBudget() int { return c.cfg.TaskBudget }

// SetTaskBudget re-partitions this controller's share of a shared
// cluster budget: subsequent decisions project onto Σ_i tasks_i ≤ budget
// (0 disables the projection). Reserved for the fleet arbiter
// (internal/fleet) — uncoordinated per-job budget edits would break the
// fleet-wide Σ_jobs Σ_i tasks ≤ B invariant, and dragsterlint's fleethook
// analyzer enforces that restriction.
func (c *Controller) SetTaskBudget(budget int) error {
	if budget < 0 {
		return errors.New("core: negative TaskBudget")
	}
	if budget > 0 && budget < c.g.NumOperators() {
		return fmt.Errorf("core: budget %d cannot host %d operators", budget, c.g.NumOperators())
	}
	c.cfg.TaskBudget = budget
	return nil
}

// RejectedSamples returns how many throughput-learner observations were
// rejected as invalid so far; nonzero values indicate degraded Theorem-2
// model fitting.
func (c *Controller) RejectedSamples() int { return c.rejectedSamples }

// StaleSkips returns how many optimizer rounds were skipped because the
// snapshot's slot had already been decided (stale metrics).
func (c *Controller) StaleSkips() int { return c.staleSkips }

// isFiniteObservation reports whether an Eq. 8 sample is usable: finite
// capacity and utilization. (Non-positive capacity is filtered separately
// — it is a valid "operator idle" signal, not garbage.)
func isFiniteObservation(capacityObs, util float64) bool {
	return !math.IsNaN(capacityObs) && !math.IsInf(capacityObs, 0) &&
		!math.IsNaN(util) && !math.IsInf(util, 0)
}

// LastTargets is set by Decide; see Decide.
type LastTargets struct {
	Y           []float64 // level-1 target capacities
	Bottlenecks []int     // operator indices reconfigured this slot
	Beta        float64   // UCB weight used (last bottleneck)
}

var errNoSnapshot = errors.New("core: nil snapshot")

// Decide implements Autoscaler: one pass of Algorithm 2.
func (c *Controller) Decide(snap *monitor.Snapshot) ([]int, error) {
	tasks, _, err := c.DecideDetailed(snap)
	return tasks, err
}

// DecideDetailed is Decide plus diagnostics (targets, bottleneck set).
func (c *Controller) DecideDetailed(snap *monitor.Snapshot) ([]int, *LastTargets, error) {
	cfgs, diag, err := c.DecideConfigs(snap)
	if err != nil {
		return nil, nil, err
	}
	tasks := make([]int, len(cfgs))
	for i, v := range cfgs {
		tasks[i] = int(math.Round(v[0]))
	}
	return tasks, diag, nil
}

// DecideResources is DecideDetailed for two-dimensional candidate spaces:
// it additionally returns the per-pod CPU millicores of the selected
// configurations (0 for operators with 1-D candidates).
func (c *Controller) DecideResources(snap *monitor.Snapshot) (tasks []int, cpuMilli []int, diag *LastTargets, err error) {
	cfgs, diag, err := c.DecideConfigs(snap)
	if err != nil {
		return nil, nil, nil, err
	}
	tasks = make([]int, len(cfgs))
	cpuMilli = make([]int, len(cfgs))
	for i, v := range cfgs {
		tasks[i] = int(math.Round(v[0]))
		if len(v) > 1 {
			cpuMilli[i] = int(math.Round(v[1]))
		}
	}
	return tasks, cpuMilli, diag, nil
}

// DecideConfigs runs one Algorithm 2 pass and returns the full selected
// configuration vector per operator (first component = task count; extra
// components, e.g. CPU millicores, preserved from the candidate space).
func (c *Controller) DecideConfigs(snap *monitor.Snapshot) ([][]float64, *LastTargets, error) {
	if snap == nil {
		return nil, nil, errNoSnapshot
	}
	m := c.g.NumOperators()
	if len(snap.Operators) != m {
		return nil, nil, fmt.Errorf("core: snapshot has %d operators, want %d", len(snap.Operators), m)
	}
	if len(snap.SourceRates) != c.g.NumSources() {
		return nil, nil, fmt.Errorf("core: snapshot has %d source rates, want %d", len(snap.SourceRates), c.g.NumSources())
	}
	sp := c.tracer.Begin("core", "decide", telemetry.Int("snap_slot", snap.Slot))
	defer sp.End()
	if c.seenSnap && snap.Slot <= c.lastSnapSlot {
		// Stale metrics: this slot was already decided. Skip the round —
		// observing the same noisy samples twice would bias the GPs and
		// double-count dual violations — and hold the current configuration.
		c.staleSkips++
		sp.Annotate(telemetry.Str("outcome", "stale_skip"))
		c.tracer.Metrics().Inc("core_stale_skips")
		if c.cfg.Counters != nil {
			c.cfg.Counters.Inc("core_stale_snapshot_skips")
		}
		chosen := make([][]float64, m)
		for i := range chosen {
			chosen[i] = c.configFor(i, c.lastTasks[i], c.lastCPU[i])
		}
		return chosen, &LastTargets{}, nil
	}
	c.seenSnap, c.lastSnapSlot = true, snap.Slot
	c.slot++

	// (1) Feed Eq. 8 capacity samples into the GPs and the history DB.
	for i, om := range snap.Operators {
		cfgVec := c.configFor(i, om.Tasks, om.CPUMilli)
		if !isFiniteObservation(om.CapacityObs, om.Util) {
			// Garbage from a misbehaving metrics path (NaN/Inf capacity or
			// utilization) must never reach the GP or the store.
			if c.cfg.Counters != nil {
				c.cfg.Counters.Inc("core_rejected_capacity_obs")
			}
			c.lastTasks[i] = om.Tasks
			c.lastCPU[i] = om.CPUMilli
			continue
		}
		if om.Util >= c.cfg.MinObserveUtil && om.CapacityObs > 0 {
			if err := c.searchers[i].Observe(cfgVec, om.CapacityObs); err != nil {
				return nil, nil, err
			}
		}
		if c.cfg.DB != nil {
			if err := c.cfg.DB.Append(store.Record{
				Slot:        snap.Slot,
				Operator:    om.Name,
				Config:      cfgVec,
				Throughput:  snap.Throughput,
				CapacityObs: om.CapacityObs,
				Util:        om.Util,
			}); err != nil {
				return nil, nil, err
			}
		}
		c.lastTasks[i] = om.Tasks
		c.lastCPU[i] = om.CPUMilli
	}

	// (1b) Theorem 2: fit any learned throughput functions. The regression
	// input is the *consumed* rate, not the arrival rate: the emitted
	// output is h(consumed) regardless of capacity truncation or backlog
	// draining, so every slot is an unbiased sample (exactly for linear h,
	// approximately for concave forms).
	ops := c.g.Operators()
	for i, om := range snap.Operators {
		if om.ConsumedRate <= 0 {
			continue
		}
		id := ops[i]
		for _, s := range c.g.Succs(id) {
			key := dag.EdgeKey{From: id, To: s}
			if learner, ok := c.g.H(key).(dag.ThroughputLearner); ok {
				// Per-edge output approximated by the α split of the
				// aggregate; the learner rejects invalid samples, which we
				// count rather than silently drop.
				if err := learner.ObserveRates(om.ConsumedRate, om.OutRate*c.g.Alpha(key)); err != nil {
					c.rejectedSamples++
				}
			}
		}
	}

	// (2) Dual update from realized violations l_i = demand_i − c_i, with
	// demand computed by pushing the observed offered load through the
	// (known/predicted) throughput functions at the observed capacities.
	capObs := make([]float64, m)
	for i, om := range snap.Operators {
		if math.IsNaN(om.CapacityObs) || math.IsInf(om.CapacityObs, 0) {
			continue // rejected above; treat as zero observed capacity
		}
		capObs[i] = math.Max(om.CapacityObs, 0)
	}
	rep, err := c.g.Evaluate(snap.SourceRates, capObs)
	if err != nil {
		return nil, nil, err
	}
	viol := make([]float64, m)
	for i := range viol {
		viol[i] = rep.Demand[i] - capObs[i]
	}
	ospSpan := c.tracer.Begin("osp", "step", telemetry.Str("method", c.cfg.Method.String()))
	if err := c.level1.ObserveViolations(viol); err != nil {
		ospSpan.End()
		return nil, nil, err
	}

	// (3) Level 1: target capacities from last slot's objective — or from
	// the one-slot-ahead forecast when forecasting is enabled.
	targetRates := snap.SourceRates
	if c.forecaster != nil {
		c.forecaster.observe(snap.SourceRates)
		targetRates = c.forecaster.predict()
	}
	y, err := c.level1.Step(targetRates)
	if err != nil {
		ospSpan.End()
		return nil, nil, err
	}
	ospSpan.Annotate(telemetry.Str("y", fmtFloats(y)))
	ospSpan.End()
	c.tracer.Metrics().Inc("osp_steps")

	// (4) Bottlenecks: operators whose current estimated capacity deviates
	// from the target. The estimate prefers the GP posterior at the current
	// configuration and falls back to the raw observation.
	est := make([]float64, m)
	for i := range est {
		mu, _, err := c.searchers[i].Regressor().Posterior(c.configFor(i, c.lastTasks[i], c.lastCPU[i]))
		if err == nil {
			est[i] = mu
		} else {
			est[i] = capObs[i]
		}
	}
	bottlenecks, err := osp.Bottlenecks(y, est, c.cfg.BottleneckTol)
	if err != nil {
		return nil, nil, err
	}
	c.tracer.Event("core", "bottlenecks", telemetry.Int("count", len(bottlenecks)))

	// (5) Level 2: extended GP-UCB per bottleneck operator.
	chosen := make([][]float64, m)
	for i := range chosen {
		chosen[i] = c.configFor(i, c.lastTasks[i], c.lastCPU[i])
	}
	diag := &LastTargets{Y: y, Bottlenecks: bottlenecks}
	for _, i := range bottlenecks {
		x, _, beta, err := c.searchers[i].Select(y[i])
		if errors.Is(err, ucb.ErrNoData) {
			continue // cold start: keep the current configuration
		}
		if err != nil {
			return nil, nil, err
		}
		chosen[i] = x
		diag.Beta = beta
	}

	// (6) Budget projection Π_X (Eq. 9d): first trim to feasibility, then
	// rebalance tasks across operators by hill-climbing the DAG-predicted
	// throughput at the GP posterior means — the "balance the capacity
	// among Map and Shuffle" behaviour of §6.2 that Dhalion lacks.
	if c.cfg.TaskBudget > 0 {
		projSpan := c.tracer.Begin("core", "project", telemetry.Int("budget", c.cfg.TaskBudget))
		desired := make([]int, m)
		for i, v := range chosen {
			desired[i] = int(math.Round(v[0]))
		}
		loss := func(op, from int) float64 { return c.taskLoss(op, from, y[op]) }
		desired, err = ucb.ProjectTasks(desired, c.cfg.TaskBudget, 1, loss)
		if err != nil {
			projSpan.End()
			return nil, nil, err
		}
		desired = c.rebalanceUnderBudget(desired, targetRates)
		for i, n := range desired {
			chosen[i] = c.nearestWithTasks(i, n, chosen[i])
		}
		projSpan.Annotate(telemetry.Str("tasks", fmt.Sprint(desired)))
		projSpan.End()
	}
	c.tracer.Metrics().Inc("core_decides")
	return chosen, diag, nil
}

// fmtFloats renders a float slice with the canonical shortest formatting
// used by telemetry attributes.
func fmtFloats(vs []float64) string {
	var b []byte
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	b = append(b, ']')
	return string(b)
}

// rebalanceUnderBudget hill-climbs single-task moves between operators
// while the DAG model predicts a throughput improvement, holding the
// total at or below the budget. Prediction uses optimistic (UCB)
// capacities so unexplored operators still attract tasks; when any
// operator's GP is still empty the step is skipped (cold start).
func (c *Controller) rebalanceUnderBudget(tasks []int, rates []float64) []int {
	m := len(tasks)
	predicted := func(ts []int) (float64, bool) {
		caps := make([]float64, m)
		for i, n := range ts {
			opt, err := c.searchers[i].OptimisticAt(c.configFor(i, n, c.lastCPU[i]))
			if err != nil {
				return 0, false
			}
			caps[i] = math.Max(opt, 0)
		}
		th, err := c.g.Throughput(rates, caps)
		if err != nil {
			return 0, false
		}
		return th, true
	}
	cur, ok := predicted(tasks)
	if !ok {
		return tasks
	}
	out := append([]int(nil), tasks...)
	for improved := true; improved; {
		improved = false
		for from := 0; from < m; from++ {
			for to := 0; to < m; to++ {
				if from == to || out[from] <= 1 || out[to] >= c.maxTasksOf(to) {
					continue
				}
				out[from]--
				out[to]++
				if th, ok := predicted(out); ok && th > cur*(1+1e-6) {
					cur = th
					improved = true
				} else {
					out[from]++
					out[to]--
				}
			}
		}
	}
	return out
}

func (c *Controller) maxTasksOf(op int) int {
	maxN := 1
	for _, cand := range c.cfg.Candidates[op] {
		if n := int(math.Round(cand[0])); n > maxN {
			maxN = n
		}
	}
	return maxN
}

// taskLoss estimates how much removing one task from operator op (at
// `from` tasks) increases its shortfall against target: the projection
// trims tasks where the GP says capacity is least needed.
func (c *Controller) taskLoss(op, from int, target float64) float64 {
	muFrom, _, errA := c.searchers[op].Regressor().Posterior(c.configFor(op, from, c.lastCPU[op]))
	muTo, _, errB := c.searchers[op].Regressor().Posterior(c.configFor(op, from-1, c.lastCPU[op]))
	if errA != nil || errB != nil {
		// No data yet: assume linear capacity in tasks so trimming larger
		// allocations first is neutral.
		return 1
	}
	shortfall := func(mu float64) float64 { return math.Max(0, target-mu) }
	// Primary term: growth in shortfall; secondary: raw capacity loss.
	return (shortfall(muTo)-shortfall(muFrom))*1000 + math.Max(0, muFrom-muTo)
}

// configFor maps an observed (tasks, cpuMilli) allocation onto the
// operator's candidate space: the nearest candidate by task count (and by
// CPU for ≥2-dimensional candidates), with the first component forced to
// the observed task count. cpuMilli 0 means unknown.
func (c *Controller) configFor(op, tasks, cpuMilli int) []float64 {
	cands := c.cfg.Candidates[op]
	dist := func(cand []float64) float64 {
		d := math.Abs(cand[0] - float64(tasks))
		if len(cand) > 1 && cpuMilli > 0 {
			// Normalize the CPU axis so one task step ≈ one 500m CPU step.
			d += math.Abs(cand[1]-float64(cpuMilli)) / 500
		}
		return d
	}
	best := cands[0]
	bestD := dist(cands[0])
	for _, cand := range cands[1:] {
		if d := dist(cand); d < bestD {
			best, bestD = cand, d
		}
	}
	out := append([]float64(nil), best...)
	out[0] = float64(tasks)
	if len(out) > 1 && cpuMilli > 0 {
		out[1] = float64(cpuMilli)
	}
	return out
}

// nearestWithTasks returns the candidate whose task count equals tasks and
// whose remaining dimensions are closest to `like`; when no candidate has
// that exact task count the nearest-by-task candidate wins.
func (c *Controller) nearestWithTasks(op, tasks int, like []float64) []float64 {
	cands := c.cfg.Candidates[op]
	best := cands[0]
	bestScore := math.Inf(1)
	for _, cand := range cands {
		score := 1000 * math.Abs(cand[0]-float64(tasks))
		for d := 1; d < len(cand) && d < len(like); d++ {
			score += math.Abs(cand[d] - like[d])
		}
		if score < bestScore {
			best, bestScore = cand, score
		}
	}
	return append([]float64(nil), best...)
}
