package core

import (
	"errors"
	"math"
)

// loadForecaster is a Holt (double-exponential) smoother over the offered
// source rates. The paper's online model only learns f_t one slot later
// (§4.2.1); under gradually drifting load (the §1 motivation) targeting
// last slot's rates systematically lags by one slot. The forecaster
// extrapolates level + trend one slot ahead, so the level-1 targets stand
// where the load is going rather than where it was.
type loadForecaster struct {
	alpha, beta float64
	level       []float64
	trend       []float64
	n           int
}

// newLoadForecaster validates the smoothing parameters. alpha ∈ (0, 1);
// beta ∈ (0, 1) (conventionally smaller than alpha).
func newLoadForecaster(nSources int, alpha, beta float64) (*loadForecaster, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, errors.New("core: forecast alpha outside (0, 1)")
	}
	if beta <= 0 || beta >= 1 {
		return nil, errors.New("core: forecast beta outside (0, 1)")
	}
	if nSources < 1 {
		return nil, errors.New("core: forecaster needs at least one source")
	}
	return &loadForecaster{
		alpha: alpha,
		beta:  beta,
		level: make([]float64, nSources),
		trend: make([]float64, nSources),
	}, nil
}

// observe folds in one slot of observed rates.
func (f *loadForecaster) observe(rates []float64) {
	if len(rates) != len(f.level) {
		return // defensive; callers validate snapshot shapes upstream
	}
	if f.n == 0 {
		copy(f.level, rates)
		f.n++
		return
	}
	for i, r := range rates {
		prevLevel := f.level[i]
		f.level[i] = f.alpha*r + (1-f.alpha)*(prevLevel+f.trend[i])
		f.trend[i] = f.beta*(f.level[i]-prevLevel) + (1-f.beta)*f.trend[i]
	}
	f.n++
}

// predict extrapolates one slot ahead (level + trend, floored at zero).
// Before two observations it returns the last observation unchanged.
func (f *loadForecaster) predict() []float64 {
	out := make([]float64, len(f.level))
	for i := range out {
		out[i] = math.Max(0, f.level[i]+f.trend[i])
	}
	return out
}
