package core

import (
	"errors"
	"fmt"

	"dragster/internal/telemetry"
)

// Rescaler is the substrate surface the retrier drives (flink.Job and
// storm.Topology both satisfy it).
type Rescaler interface {
	RescaleResources(tasks []int, cpuMilli []int) error
}

// RetryConfig tunes a RescaleRetrier.
type RetryConfig struct {
	// MaxAttempts bounds how often one desired configuration is attempted
	// before it is abandoned (default 4). The controller re-decides every
	// slot, so abandoning a target only means waiting for the next one.
	MaxAttempts int
	// BackoffSlots is the backoff after the first failure, in decision
	// slots; it doubles per consecutive failure (default 1).
	BackoffSlots int
	// MaxBackoffSlots caps the exponential backoff (default 8).
	MaxBackoffSlots int
	// Retryable classifies rescale errors. Errors for which it returns
	// false are propagated to the caller as fatal instead of retried; nil
	// treats every error as transient.
	Retryable func(error) bool
	// Counters, when set, receives rescale_failures / rescale_retries /
	// rescale_recovered / rescale_abandoned / rescale_backoff_waits.
	Counters *telemetry.Counters
}

// RescaleRetrier applies desired configurations to a substrate with
// bounded retry and exponential backoff measured in decision slots — the
// controller keeps optimizing through savepoint failures and rescale
// timeouts instead of crashing the run on the first transient error.
// Deterministic: its state is a pure function of the Apply call sequence.
type RescaleRetrier struct {
	cfg RetryConfig

	pendTasks []int
	pendCPU   []int
	attempts  int
	nextSlot  int
	lastErr   error
}

// NewRescaleRetrier validates cfg and returns a retrier.
func NewRescaleRetrier(cfg RetryConfig) (*RescaleRetrier, error) {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffSlots == 0 {
		cfg.BackoffSlots = 1
	}
	if cfg.MaxBackoffSlots == 0 {
		cfg.MaxBackoffSlots = 8
	}
	if cfg.MaxAttempts < 1 || cfg.BackoffSlots < 1 || cfg.MaxBackoffSlots < cfg.BackoffSlots {
		return nil, fmt.Errorf("core: invalid retry config %+v", cfg)
	}
	return &RescaleRetrier{cfg: cfg}, nil
}

// LastErr returns the most recent rescale error absorbed into retry
// state, or nil after a success.
func (r *RescaleRetrier) LastErr() error { return r.lastErr }

// Pending reports whether a desired configuration is still waiting to be
// applied (a failure is being backed off).
func (r *RescaleRetrier) Pending() bool { return r.pendTasks != nil }

// Apply attempts to drive the substrate to the desired configuration at
// the given decision slot. Transient failures (per Retryable) are
// absorbed: the target is re-attempted on a later Apply call once the
// backoff expires, up to MaxAttempts, after which the target is
// abandoned. A changed desired configuration always supersedes the
// pending one and resets the attempt budget. Only non-retryable errors
// are returned.
func (r *RescaleRetrier) Apply(job Rescaler, tasks, cpuMilli []int, slot int) error {
	if job == nil {
		return errors.New("core: nil rescaler")
	}
	if !intsEqual(tasks, r.pendTasks) || !intsEqual(cpuMilli, r.pendCPU) {
		// New target from the controller: supersede the pending one.
		r.pendTasks = append([]int(nil), tasks...)
		if cpuMilli != nil {
			r.pendCPU = append([]int(nil), cpuMilli...)
		} else {
			r.pendCPU = nil
		}
		r.attempts = 0
		r.nextSlot = 0
	}
	if slot < r.nextSlot {
		r.count("rescale_backoff_waits")
		return nil
	}
	if r.attempts > 0 {
		r.count("rescale_retries")
	}
	err := job.RescaleResources(r.pendTasks, r.pendCPU)
	if err == nil {
		if r.attempts > 0 {
			r.count("rescale_recovered")
		}
		r.reset()
		return nil
	}
	if r.cfg.Retryable != nil && !r.cfg.Retryable(err) {
		r.reset()
		r.lastErr = err
		return err
	}
	r.lastErr = err
	r.attempts++
	r.count("rescale_failures")
	if r.attempts >= r.cfg.MaxAttempts {
		r.count("rescale_abandoned")
		r.reset()
		r.lastErr = err
		return nil
	}
	backoff := r.cfg.BackoffSlots << (r.attempts - 1)
	if backoff > r.cfg.MaxBackoffSlots {
		backoff = r.cfg.MaxBackoffSlots
	}
	r.nextSlot = slot + backoff
	return nil
}

func (r *RescaleRetrier) reset() {
	r.pendTasks, r.pendCPU = nil, nil
	r.attempts, r.nextSlot = 0, 0
	r.lastErr = nil
}

func (r *RescaleRetrier) count(name string) {
	if r.cfg.Counters != nil {
		r.cfg.Counters.Inc(name)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
