package core

import (
	"math"
	"testing"

	"dragster/internal/stats"
	"dragster/internal/telemetry"
)

// TestStaleSnapshotSkipsRound feeds the controller the same slot twice:
// the repeat must hold the current configuration without re-observing the
// (already-seen) samples or advancing the optimizer.
func TestStaleSnapshotSkipsRound(t *testing.T) {
	cs := telemetry.NewCounters()
	c := newController(t, func(cfg *Config) { cfg.Counters = cs })
	rng := stats.NewRNG(3)

	if _, err := c.Decide(snapshotAt(0, 500, []int{2, 2}, rng)); err != nil {
		t.Fatal(err)
	}
	obs := c.Searcher(0).Observations()

	got, err := c.Decide(snapshotAt(0, 500, []int{2, 2}, rng))
	if err != nil {
		t.Fatalf("stale snapshot errored instead of skipping: %v", err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Errorf("stale round decision = %v, want the running config [2 2]", got)
	}
	if c.StaleSkips() != 1 {
		t.Errorf("StaleSkips = %d, want 1", c.StaleSkips())
	}
	if cv := cs.Get("core_stale_snapshot_skips"); cv != 1 {
		t.Errorf("core_stale_snapshot_skips = %d, want 1", cv)
	}
	if c.Searcher(0).Observations() != obs {
		t.Errorf("stale snapshot fed the GP: %d observations, had %d", c.Searcher(0).Observations(), obs)
	}

	// An older slot is just as stale as a repeat.
	if _, err := c.Decide(snapshotAt(0, 500, []int{2, 2}, rng)); err != nil {
		t.Fatal(err)
	}
	if c.StaleSkips() != 2 {
		t.Errorf("StaleSkips after regression = %d, want 2", c.StaleSkips())
	}

	// A fresh slot resumes normal decisions.
	if _, err := c.Decide(snapshotAt(1, 500, []int{2, 2}, rng)); err != nil {
		t.Fatal(err)
	}
	if c.Searcher(0).Observations() != obs+1 {
		t.Errorf("fresh slot not observed: %d, want %d", c.Searcher(0).Observations(), obs+1)
	}
}

// TestNonFiniteObservationRejected ensures NaN/Inf metrics never reach
// the GPs: they are counted, the operator's running config is still
// tracked, and the round proceeds on the remaining operators.
func TestNonFiniteObservationRejected(t *testing.T) {
	cs := telemetry.NewCounters()
	c := newController(t, func(cfg *Config) { cfg.Counters = cs })
	rng := stats.NewRNG(3)

	snap := snapshotAt(0, 500, []int{2, 2}, rng)
	snap.Operators[0].CapacityObs = math.NaN()
	if _, err := c.Decide(snap); err != nil {
		t.Fatalf("NaN capacity crashed the round: %v", err)
	}
	if got := c.Searcher(0).Observations(); got != 0 {
		t.Errorf("NaN capacity reached the GP: %d observations", got)
	}
	if got := c.Searcher(1).Observations(); got != 1 {
		t.Errorf("healthy operator not observed: %d", got)
	}
	if cv := cs.Get("core_rejected_capacity_obs"); cv != 1 {
		t.Errorf("core_rejected_capacity_obs = %d, want 1", cv)
	}

	snap2 := snapshotAt(1, 500, []int{2, 2}, rng)
	snap2.Operators[1].Util = math.Inf(1)
	if _, err := c.Decide(snap2); err != nil {
		t.Fatalf("Inf utilization crashed the round: %v", err)
	}
	if got := c.Searcher(1).Observations(); got != 1 {
		t.Errorf("Inf utilization reached the GP: %d observations", got)
	}
	if cv := cs.Get("core_rejected_capacity_obs"); cv != 2 {
		t.Errorf("core_rejected_capacity_obs = %d, want 2", cv)
	}
}
