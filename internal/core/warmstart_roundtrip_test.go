package core

import (
	"bytes"
	"reflect"
	"testing"

	"dragster/internal/stats"
	"dragster/internal/store"
)

// TestWarmStartSurvivesStoreRoundTrip is the crash-recovery contract of
// the history database: a controller rebuilt from a store that was
// serialized with Snapshot and read back with Restore must reproduce the
// same next decision as one rebuilt from the original store. The GPs are
// replayed from history on construction, so byte-faithful persistence is
// exactly what makes a restart transparent to the optimizer.
func TestWarmStartSurvivesStoreRoundTrip(t *testing.T) {
	// Populate a history DB with a live closed-loop run.
	db := store.New()
	live := newController(t, func(cfg *Config) { cfg.DB = db })
	rng := stats.NewRNG(42)
	tasks := []int{1, 1}
	for slot := 0; slot < 8; slot++ {
		next, err := live.Decide(snapshotAt(slot, 300, tasks, rng))
		if err != nil {
			t.Fatal(err)
		}
		tasks = next
	}
	if db.Len() == 0 {
		t.Fatal("live run appended no history")
	}

	// Round-trip the store through its wire format.
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := store.New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != db.Len() {
		t.Fatalf("restored %d records, want %d", restored.Len(), db.Len())
	}

	// Two fresh controllers, identical but for which store seeded them.
	probe := snapshotAt(8, 300, tasks, stats.NewRNG(7))
	var decisions [][]int
	var targets []float64
	for _, seedDB := range []*store.DB{db, restored} {
		c := newController(t, func(cfg *Config) {
			cfg.DB = seedDB
			cfg.RNG = stats.NewRNG(99)
		})
		next, diag, err := c.DecideDetailed(probe)
		if err != nil {
			t.Fatal(err)
		}
		decisions = append(decisions, next)
		targets = append(targets, diag.Y...)
	}
	if !reflect.DeepEqual(decisions[0], decisions[1]) {
		t.Errorf("next decision diverged after round trip: %v vs %v", decisions[0], decisions[1])
	}
	if n := len(targets) / 2; !reflect.DeepEqual(targets[:n], targets[n:]) {
		t.Errorf("level-1 targets diverged after round trip: %v vs %v", targets[:n], targets[n:])
	}
}
