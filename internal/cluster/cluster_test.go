package cluster

import (
	"math"
	"strings"
	"testing"
)

func newTestCluster(t testing.TB, nodes int) *Cluster {
	t.Helper()
	c := New()
	if err := c.AddNodes("node", nodes, ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestResourceSpecValidate(t *testing.T) {
	if err := (ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (ResourceSpec{CPUMilli: 0, MemoryMB: 1}).Validate(); err == nil {
		t.Error("zero CPU accepted")
	}
	if err := (ResourceSpec{CPUMilli: 1, MemoryMB: -1}).Validate(); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	c := New()
	spec := ResourceSpec{CPUMilli: 1000, MemoryMB: 1024}
	if err := c.AddNode("a", spec); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("a", spec); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestCreateScaleDeployment(t *testing.T) {
	c := newTestCluster(t, 2)
	spec := ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}
	if err := c.CreateDeployment("tm", spec, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm"); got != 3 {
		t.Fatalf("RunningPods = %d, want 3", got)
	}
	if err := c.Scale("tm", 5); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm"); got != 5 {
		t.Fatalf("after scale up RunningPods = %d", got)
	}
	if err := c.Scale("tm", 2); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm"); got != 2 {
		t.Fatalf("after scale down RunningPods = %d", got)
	}
	if err := c.Scale("missing", 1); err == nil {
		t.Error("scaling unknown deployment accepted")
	}
	if err := c.Scale("tm", -1); err == nil {
		t.Error("negative replicas accepted")
	}
}

func TestSchedulingCapacityLimit(t *testing.T) {
	c := newTestCluster(t, 1) // 4000 milli total
	spec := ResourceSpec{CPUMilli: 1000, MemoryMB: 1024}
	if err := c.CreateDeployment("tm", spec, 6); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm"); got != 4 {
		t.Errorf("RunningPods = %d, want 4 (node capacity)", got)
	}
	if got := c.PendingPods("tm"); got != 2 {
		t.Errorf("PendingPods = %d, want 2", got)
	}
	// Free capacity by scaling down; pending pods should then schedule on
	// the next tick.
	if err := c.Scale("tm", 4); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm") + c.PendingPods("tm"); got != 4 {
		t.Errorf("pods after trim = %d, want 4", got)
	}
}

func TestBestFitPacking(t *testing.T) {
	c := New()
	if err := c.AddNode("big", ResourceSpec{CPUMilli: 8000, MemoryMB: 16384}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("small", ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}); err != nil {
		t.Fatal(err)
	}
	// One 1-core pod should best-fit onto the small node.
	if err := c.CreateDeployment("d", ResourceSpec{CPUMilli: 1000, MemoryMB: 1024}, 1); err != nil {
		t.Fatal(err)
	}
	pods := c.Pods()
	if len(pods) != 1 || pods[0].NodeName != "small" {
		t.Errorf("best-fit placed pod on %q, want small", pods[0].NodeName)
	}
}

func TestResizeRollsPods(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 500, MemoryMB: 512}, 2); err != nil {
		t.Fatal(err)
	}
	before := c.Pods()
	if err := c.Resize("tm", ResourceSpec{CPUMilli: 1500, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	after := c.Pods()
	if len(after) != 2 {
		t.Fatalf("pods after resize = %d", len(after))
	}
	for _, p := range after {
		if p.Spec.CPUMilli != 1500 {
			t.Errorf("pod %s kept old spec", p.Name)
		}
		for _, old := range before {
			if p.Name == old.Name {
				t.Errorf("pod %s survived rolling resize", p.Name)
			}
		}
	}
}

func TestDeleteDeployment(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 500, MemoryMB: 512}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteDeployment("tm"); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Pods()); got != 0 {
		t.Errorf("pods after delete = %d", got)
	}
	if err := c.DeleteDeployment("tm"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestCostAccrual(t *testing.T) {
	c := New(WithPricePerCoreHour(1.0))
	if err := c.AddNodes("n", 2, ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 2000, MemoryMB: 1024}, 2); err != nil {
		t.Fatal(err)
	}
	c.Tick(3600) // 4 cores for 1 hour at $1/core-hour
	if got := c.Cost(); math.Abs(got-4) > 1e-9 {
		t.Errorf("Cost = %v, want 4", got)
	}
	if c.Clock() != 3600 {
		t.Errorf("Clock = %d", c.Clock())
	}
	if c.PricePerCoreHour() != 1.0 {
		t.Errorf("price = %v", c.PricePerCoreHour())
	}
}

func TestTickNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Tick did not panic")
		}
	}()
	New().Tick(-1)
}

func TestMetricsServer(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 1000, MemoryMB: 512}, 2); err != nil {
		t.Fatal(err)
	}
	pods := c.Pods()
	if err := c.ReportCPUUsage(pods[0].Name, 800); err != nil {
		t.Fatal(err)
	}
	if err := c.ReportCPUUsage(pods[1].Name, 400); err != nil {
		t.Fatal(err)
	}
	util, ok := c.DeploymentUtilization("tm")
	if !ok || math.Abs(util-0.6) > 1e-9 {
		t.Errorf("utilization = %v ok=%v, want 0.6", util, ok)
	}
	// Usage is clamped to the limit and floored at zero.
	if err := c.ReportCPUUsage(pods[0].Name, 5000); err != nil {
		t.Fatal(err)
	}
	if err := c.ReportCPUUsage(pods[1].Name, -5); err != nil {
		t.Fatal(err)
	}
	ms := c.PodMetrics()
	if ms[0].CPUMilli != 1000 || ms[1].CPUMilli != 0 {
		t.Errorf("clamping failed: %+v", ms)
	}
	if err := c.ReportCPUUsage("nope", 1); err != ErrUnknownPod {
		t.Errorf("err = %v, want ErrUnknownPod", err)
	}
	if _, ok := c.DeploymentUtilization("missing"); ok {
		t.Error("utilization of missing deployment reported ok")
	}
}

func TestPodPhaseString(t *testing.T) {
	if PodPending.String() != "Pending" || PodRunning.String() != "Running" || PodTerminated.String() != "Terminated" {
		t.Error("phase strings wrong")
	}
	if !strings.Contains(PodPhase(9).String(), "9") {
		t.Error("unknown phase string")
	}
}

func TestHPAValidation(t *testing.T) {
	if _, err := NewHPA("", 1, 2, 0.5); err == nil {
		t.Error("empty deployment accepted")
	}
	if _, err := NewHPA("d", 0, 2, 0.5); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewHPA("d", 3, 2, 0.5); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewHPA("d", 1, 2, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
}

func TestHPAScalesUpOnHighUtilization(t *testing.T) {
	c := newTestCluster(t, 4)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 1000, MemoryMB: 512}, 2); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Pods() {
		if err := c.ReportCPUUsage(p.Name, 950); err != nil {
			t.Fatal(err)
		}
	}
	h, err := NewHPA("tm", 1, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	desired, acted, err := h.Reconcile(c)
	if err != nil {
		t.Fatal(err)
	}
	if !acted || desired != 4 { // ceil(2 * 0.95/0.5) = 4
		t.Errorf("HPA desired = %d acted=%v, want 4/true", desired, acted)
	}
	if got := c.RunningPods("tm"); got != 4 {
		t.Errorf("RunningPods = %d", got)
	}
}

func TestHPAToleranceSuppressesChurn(t *testing.T) {
	c := newTestCluster(t, 4)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 1000, MemoryMB: 512}, 2); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Pods() {
		if err := c.ReportCPUUsage(p.Name, 520); err != nil { // util 0.52 vs target 0.5
			t.Fatal(err)
		}
	}
	h, err := NewHPA("tm", 1, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, acted, err := h.Reconcile(c); err != nil || acted {
		t.Errorf("HPA acted within tolerance (err=%v)", err)
	}
}

func TestHPAEnsuresMinimumWhenNothingRuns(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 500, MemoryMB: 512}, 0); err != nil {
		t.Fatal(err)
	}
	h, err := NewHPA("tm", 2, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	desired, acted, err := h.Reconcile(c)
	if err != nil || !acted || desired != 2 {
		t.Errorf("HPA min bootstrap: desired=%d acted=%v err=%v", desired, acted, err)
	}
}

func TestVPARecommendAndReconcile(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 1000, MemoryMB: 512}, 2); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Pods() {
		if err := c.ReportCPUUsage(p.Name, 900); err != nil {
			t.Fatal(err)
		}
	}
	v, err := NewVPA("tm", 1.5, 100, 4000)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := v.Recommend(c)
	if !ok || rec != 1350 {
		t.Errorf("Recommend = %d ok=%v, want 1350", rec, ok)
	}
	acted, err := v.Reconcile(c)
	if err != nil || !acted {
		t.Fatalf("Reconcile acted=%v err=%v", acted, err)
	}
	for _, p := range c.Pods() {
		if p.Spec.CPUMilli != 1350 {
			t.Errorf("pod spec = %d, want 1350", p.Spec.CPUMilli)
		}
	}
}

func TestVPAValidation(t *testing.T) {
	if _, err := NewVPA("", 1.2, 1, 2); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewVPA("d", 0.9, 1, 2); err == nil {
		t.Error("headroom < 1 accepted")
	}
	if _, err := NewVPA("d", 1.2, 5, 2); err == nil {
		t.Error("max < min accepted")
	}
}

func TestVPANoPodsNoAction(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 500, MemoryMB: 256}, 0); err != nil {
		t.Fatal(err)
	}
	v, err := NewVPA("tm", 1.2, 100, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.Recommend(c); ok {
		t.Error("recommendation without pods")
	}
	if acted, err := v.Reconcile(c); err != nil || acted {
		t.Errorf("Reconcile without pods acted=%v err=%v", acted, err)
	}
}
