package cluster

import "testing"

func TestRemoveNodeEvictsAndReschedules(t *testing.T) {
	c := New()
	if err := c.AddNodes("n", 3, ResourceSpec{CPUMilli: 2000, MemoryMB: 4096}); err != nil {
		t.Fatal(err)
	}
	// 4 pods × 1 core fit on 3 × 2-core nodes with room to spare.
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 1000, MemoryMB: 512}, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm"); got != 4 {
		t.Fatalf("RunningPods = %d", got)
	}
	// Find a node actually hosting pods and kill it.
	victim := ""
	for _, p := range c.Pods() {
		if p.NodeName != "" {
			victim = p.NodeName
			break
		}
	}
	if err := c.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 2 {
		t.Errorf("Nodes after failure = %v", c.Nodes())
	}
	// Remaining capacity is 4 cores for 4 pods: everything reschedules.
	if got := c.RunningPods("tm"); got != 4 {
		t.Errorf("RunningPods after failover = %d, want 4", got)
	}
	for _, p := range c.Pods() {
		if p.NodeName == victim {
			t.Errorf("pod %s still placed on dead node", p.Name)
		}
	}
}

func TestRemoveNodeDegradesWhenCapacityShort(t *testing.T) {
	c := New()
	if err := c.AddNodes("n", 2, ResourceSpec{CPUMilli: 2000, MemoryMB: 4096}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDeployment("tm", ResourceSpec{CPUMilli: 1000, MemoryMB: 512}, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("tm"); got != 4 {
		t.Fatalf("RunningPods = %d", got)
	}
	if err := c.RemoveNode("n-0"); err != nil {
		t.Fatal(err)
	}
	// Only 2 cores left: 2 run, 2 pend.
	if got := c.RunningPods("tm"); got != 2 {
		t.Errorf("RunningPods after failure = %d, want 2", got)
	}
	if got := c.PendingPods("tm"); got != 2 {
		t.Errorf("PendingPods after failure = %d, want 2", got)
	}
	// Capacity returns: pending pods schedule on the next tick.
	if err := c.AddNode("replacement", ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	c.Tick(1)
	if got := c.RunningPods("tm"); got != 4 {
		t.Errorf("RunningPods after replacement = %d, want 4", got)
	}
}

func TestRemoveNodeUnknown(t *testing.T) {
	c := New()
	if err := c.RemoveNode("ghost"); err == nil {
		t.Error("unknown node removal accepted")
	}
}
