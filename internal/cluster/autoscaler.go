package cluster

import (
	"fmt"
	"math"
)

// HPA is a Horizontal Pod Autoscaler analogue: it drives a deployment's
// replica count toward a target mean CPU utilization using the standard
// Kubernetes formula desired = ceil(current · observed/target).
//
// Dragster itself sets replica counts directly (its GP-UCB choice), but the
// HPA is part of the substrate surface and is used by tests and by the
// Dhalion baseline's scale-down rule.
type HPA struct {
	Deployment  string
	MinReplicas int
	MaxReplicas int
	TargetUtil  float64 // e.g. 0.7
	// Tolerance suppresses churn: no action while |observed/target − 1| is
	// below it (Kubernetes defaults to 0.1).
	Tolerance float64
}

// NewHPA validates the parameters and returns an HPA.
func NewHPA(deployment string, minReplicas, maxReplicas int, targetUtil float64) (*HPA, error) {
	if deployment == "" {
		return nil, fmt.Errorf("cluster: HPA needs a deployment name")
	}
	if minReplicas < 1 || maxReplicas < minReplicas {
		return nil, fmt.Errorf("cluster: HPA replica bounds [%d, %d] invalid", minReplicas, maxReplicas)
	}
	if targetUtil <= 0 || targetUtil > 1 {
		return nil, fmt.Errorf("cluster: HPA target utilization %v outside (0, 1]", targetUtil)
	}
	return &HPA{
		Deployment:  deployment,
		MinReplicas: minReplicas,
		MaxReplicas: maxReplicas,
		TargetUtil:  targetUtil,
		Tolerance:   0.1,
	}, nil
}

// Reconcile computes and applies the desired replica count from current
// metrics. It returns the resulting desired replicas and whether a scaling
// action was taken.
func (h *HPA) Reconcile(c *Cluster) (int, bool, error) {
	current := c.RunningPods(h.Deployment)
	util, ok := c.DeploymentUtilization(h.Deployment)
	if !ok || current == 0 {
		// Nothing running: ensure the minimum.
		if err := c.Scale(h.Deployment, h.MinReplicas); err != nil {
			return 0, false, err
		}
		return h.MinReplicas, true, nil
	}
	ratio := util / h.TargetUtil
	if math.Abs(ratio-1) <= h.Tolerance {
		return current, false, nil
	}
	desired := int(math.Ceil(float64(current) * ratio))
	if desired < h.MinReplicas {
		desired = h.MinReplicas
	}
	if desired > h.MaxReplicas {
		desired = h.MaxReplicas
	}
	if desired == current {
		return current, false, nil
	}
	if err := c.Scale(h.Deployment, desired); err != nil {
		return 0, false, err
	}
	return desired, true, nil
}

// VPA is a Vertical Pod Autoscaler analogue: it recommends a pod CPU size
// from observed usage with headroom and applies it via Resize.
type VPA struct {
	Deployment string
	// Headroom multiplies observed usage to leave burst room (e.g. 1.2).
	Headroom float64
	// MinCPUMilli and MaxCPUMilli bound the recommendation.
	MinCPUMilli, MaxCPUMilli int
}

// NewVPA validates the parameters and returns a VPA.
func NewVPA(deployment string, headroom float64, minCPU, maxCPU int) (*VPA, error) {
	if deployment == "" {
		return nil, fmt.Errorf("cluster: VPA needs a deployment name")
	}
	if headroom < 1 {
		return nil, fmt.Errorf("cluster: VPA headroom %v must be ≥ 1", headroom)
	}
	if minCPU <= 0 || maxCPU < minCPU {
		return nil, fmt.Errorf("cluster: VPA CPU bounds [%d, %d] invalid", minCPU, maxCPU)
	}
	return &VPA{Deployment: deployment, Headroom: headroom, MinCPUMilli: minCPU, MaxCPUMilli: maxCPU}, nil
}

// Recommend returns the CPU millicore recommendation from current metrics,
// or ok=false when no pods are running.
func (v *VPA) Recommend(c *Cluster) (int, bool) {
	var maxUsage int
	found := false
	for _, m := range c.PodMetrics() {
		if m.Deployment == v.Deployment {
			found = true
			if m.CPUMilli > maxUsage {
				maxUsage = m.CPUMilli
			}
		}
	}
	if !found {
		return 0, false
	}
	rec := int(math.Ceil(float64(maxUsage) * v.Headroom))
	if rec < v.MinCPUMilli {
		rec = v.MinCPUMilli
	}
	if rec > v.MaxCPUMilli {
		rec = v.MaxCPUMilli
	}
	return rec, true
}

// Reconcile applies the recommendation when it differs from the current
// template by more than 10%, resizing the deployment (rolling restart).
func (v *VPA) Reconcile(c *Cluster) (bool, error) {
	rec, ok := v.Recommend(c)
	if !ok {
		return false, nil
	}
	d, exists := c.deployments[v.Deployment]
	if !exists {
		return false, fmt.Errorf("cluster: unknown deployment %q", v.Deployment)
	}
	cur := d.Spec.CPUMilli
	if math.Abs(float64(rec-cur))/float64(cur) <= 0.1 {
		return false, nil
	}
	spec := d.Spec
	spec.CPUMilli = rec
	if err := c.Resize(v.Deployment, spec); err != nil {
		return false, err
	}
	return true, nil
}
