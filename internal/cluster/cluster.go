// Package cluster simulates the Kubernetes substrate Dragster runs on: a
// set of nodes with allocatable CPU/memory, deployments of pods, a best-fit
// scheduler, a metrics server, and a cost meter. It models exactly the
// surface the paper's implementation touches — replica scaling (HPA),
// resource resizing (VPA), pod CPU metrics, and dollar cost — without
// pretending to be a full orchestrator.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"dragster/internal/telemetry"
)

// ResourceSpec is a pod resource request.
type ResourceSpec struct {
	CPUMilli int // millicores
	MemoryMB int
}

// Validate reports whether the spec is usable.
func (r ResourceSpec) Validate() error {
	if r.CPUMilli <= 0 || r.MemoryMB <= 0 {
		return fmt.Errorf("cluster: resource spec must be positive, got %+v", r)
	}
	return nil
}

// PodPhase is a pod lifecycle phase.
type PodPhase int

// Pod phases: Pending pods are awaiting scheduling; Running pods consume
// node resources and accrue cost; Terminated pods are kept briefly for
// observability and then garbage-collected.
const (
	PodPending PodPhase = iota
	PodRunning
	PodTerminated
)

// String implements fmt.Stringer.
func (p PodPhase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodRunning:
		return "Running"
	case PodTerminated:
		return "Terminated"
	default:
		return fmt.Sprintf("PodPhase(%d)", int(p))
	}
}

// Pod is one scheduled unit. In the Flink layer a Running pod provides one
// TaskManager slot.
type Pod struct {
	Name       string
	Deployment string
	Spec       ResourceSpec
	Phase      PodPhase
	NodeName   string // empty while pending
	CreatedAt  int64  // cluster clock, seconds
	StartedAt  int64  // 0 until running

	cpuUsageMilli int // reported by the workload, read by the metrics server
}

// Deployment manages a replica set of identical pods.
type Deployment struct {
	Name     string
	Spec     ResourceSpec
	Replicas int // desired
}

// node is a worker machine.
type node struct {
	name        string
	allocatable ResourceSpec
	usedCPU     int
	usedMem     int
}

// Injector is the cluster-side fault-injection hook. A chaos engine
// installs one via SetInjector; with none installed every hook site is a
// no-op, so fault-free runs execute the exact pre-hook code path.
//
// Implementations must be deterministic functions of their own seeded
// state and the observable cluster state: the hooks are called at fixed
// points of the simulation, so a deterministic injector yields a
// deterministic fault trace.
type Injector interface {
	// HoldScheduling reports whether the scheduler must skip placing
	// pending pods at the given cluster clock (a scheduler delay spike).
	// Pods stay Pending until a pass where this returns false.
	HoldScheduling(clock int64) bool
	// AfterTick runs after each Tick advance (including Tick(0)) so the
	// injector can mutate the cluster — kill or heal nodes, OOM-kill pods
	// — on its own schedule. It must not call c.Tick (re-entrance).
	AfterTick(c *Cluster, clock int64)
}

// Cluster is the simulated control plane. It is not safe for concurrent
// use; the experiment loop drives it from one goroutine, mirroring a
// single-threaded controller.
type Cluster struct {
	nodes       map[string]*node
	nodeOrder   []string
	deployments map[string]*Deployment
	pods        map[string]*Pod
	podOrder    []string

	clock       int64 // seconds
	podSeq      int
	pricePerCPU float64 // dollars per core·hour
	cost        float64 // accrued dollars
	injector    Injector
	tracer      *telemetry.Tracer

	// metricsBuf backs PodMetrics and podsBuf backs PodsView: the monitor
	// scrapes every pod once per slot and the substrates walk the pod list
	// once per tick, so the response rows are reused instead of allocated
	// per call.
	metricsBuf []PodMetric
	podsBuf    []*Pod
}

// SetInjector installs (or, with nil, removes) the fault-injection hook.
func (c *Cluster) SetInjector(in Injector) { c.injector = in }

// SetTracer installs (or, with nil, removes) the observability tracer.
// The cluster emits one "place" event per pod placement — the scheduler
// decisions that determine effective parallelism. All tracer methods are
// no-ops on a nil tracer, so untraced runs execute the pre-hook path.
func (c *Cluster) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

// Option configures a Cluster.
type Option func(*Cluster)

// WithPricePerCoreHour sets the dollar price of one CPU core for one hour
// (default 0.08, roughly a small cloud VM core).
func WithPricePerCoreHour(p float64) Option {
	return func(c *Cluster) { c.pricePerCPU = p }
}

// New returns an empty cluster.
func New(opts ...Option) *Cluster {
	c := &Cluster{
		nodes:       make(map[string]*node),
		deployments: make(map[string]*Deployment),
		pods:        make(map[string]*Pod),
		pricePerCPU: 0.08,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// AddNode registers a worker node.
func (c *Cluster) AddNode(name string, allocatable ResourceSpec) error {
	if err := allocatable.Validate(); err != nil {
		return err
	}
	if _, ok := c.nodes[name]; ok {
		return fmt.Errorf("cluster: node %q already exists", name)
	}
	c.nodes[name] = &node{name: name, allocatable: allocatable}
	c.nodeOrder = append(c.nodeOrder, name)
	return nil
}

// AddNodes registers count identical nodes named prefix-0..count-1.
func (c *Cluster) AddNodes(prefix string, count int, allocatable ResourceSpec) error {
	for i := 0; i < count; i++ {
		if err := c.AddNode(fmt.Sprintf("%s-%d", prefix, i), allocatable); err != nil {
			return err
		}
	}
	return nil
}

// RemoveNode simulates a node failure: the node leaves the cluster and
// every pod running on it is recreated as Pending, to be rescheduled onto
// the remaining nodes at the next scheduling pass (possibly staying
// Pending if capacity is short — exactly the degraded-parallelism signal
// the autoscalers must cope with).
func (c *Cluster) RemoveNode(name string) error {
	if _, ok := c.nodes[name]; !ok {
		return fmt.Errorf("cluster: unknown node %q", name)
	}
	delete(c.nodes, name)
	for i, nn := range c.nodeOrder {
		if nn == name {
			c.nodeOrder = append(c.nodeOrder[:i], c.nodeOrder[i+1:]...)
			break
		}
	}
	// Evict: mark the victims pending and clear their placement. The
	// deployment's desired count is unchanged, so reconcile/schedule will
	// try to place them elsewhere.
	for _, podName := range c.podOrder {
		p := c.pods[podName]
		if p == nil || p.NodeName != name {
			continue
		}
		p.Phase = PodPending
		p.NodeName = ""
		p.StartedAt = 0
		p.cpuUsageMilli = 0
	}
	c.schedule()
	return nil
}

// KillPod simulates an OOM-kill (or any abrupt single-pod death): the pod
// is terminated and its deployment reconciled, so a fresh replacement pod
// is created Pending and scheduled when capacity (and the scheduler)
// allow. Returns ErrUnknownPod for missing pods.
func (c *Cluster) KillPod(name string) error {
	p, ok := c.pods[name]
	if !ok {
		return ErrUnknownPod
	}
	dep := p.Deployment
	c.terminatePod(p)
	if _, ok := c.deployments[dep]; ok {
		c.reconcile(dep)
	}
	return nil
}

// Nodes returns the live node names in registration order.
func (c *Cluster) Nodes() []string {
	return append([]string(nil), c.nodeOrder...)
}

// NodeAllocatable returns a node's allocatable resources.
func (c *Cluster) NodeAllocatable(name string) (ResourceSpec, bool) {
	n, ok := c.nodes[name]
	if !ok {
		return ResourceSpec{}, false
	}
	return n.allocatable, true
}

// CreateDeployment declares a deployment with the given pod template and
// desired replica count, then reconciles.
func (c *Cluster) CreateDeployment(name string, spec ResourceSpec, replicas int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if replicas < 0 {
		return fmt.Errorf("cluster: negative replicas %d", replicas)
	}
	if _, ok := c.deployments[name]; ok {
		return fmt.Errorf("cluster: deployment %q already exists", name)
	}
	c.deployments[name] = &Deployment{Name: name, Spec: spec, Replicas: replicas}
	c.reconcile(name)
	return nil
}

// Scale sets the desired replica count of a deployment (the HPA surface)
// and reconciles immediately.
func (c *Cluster) Scale(deployment string, replicas int) error {
	d, ok := c.deployments[deployment]
	if !ok {
		return fmt.Errorf("cluster: unknown deployment %q", deployment)
	}
	if replicas < 0 {
		return fmt.Errorf("cluster: negative replicas %d", replicas)
	}
	d.Replicas = replicas
	c.reconcile(deployment)
	return nil
}

// Resize changes the pod template of a deployment (the VPA surface) and
// performs a rolling replacement of all pods.
func (c *Cluster) Resize(deployment string, spec ResourceSpec) error {
	d, ok := c.deployments[deployment]
	if !ok {
		return fmt.Errorf("cluster: unknown deployment %q", deployment)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	d.Spec = spec
	// Rolling replacement: terminate existing pods, let reconcile recreate.
	for _, p := range c.deploymentPods(deployment) {
		c.terminatePod(p)
	}
	c.reconcile(deployment)
	return nil
}

// DeleteDeployment removes the deployment and terminates its pods.
func (c *Cluster) DeleteDeployment(deployment string) error {
	if _, ok := c.deployments[deployment]; !ok {
		return fmt.Errorf("cluster: unknown deployment %q", deployment)
	}
	for _, p := range c.deploymentPods(deployment) {
		c.terminatePod(p)
	}
	delete(c.deployments, deployment)
	return nil
}

// reconcile drives the pod set of a deployment towards its desired state
// and schedules pending pods.
func (c *Cluster) reconcile(deployment string) {
	d := c.deployments[deployment]
	pods := c.deploymentPods(deployment)
	live := pods[:0]
	for _, p := range pods {
		if p.Phase != PodTerminated {
			live = append(live, p)
		}
	}
	for len(live) > d.Replicas {
		// Scale down newest-first so long-lived pods keep their slots.
		victim := live[len(live)-1]
		c.terminatePod(victim)
		live = live[:len(live)-1]
	}
	for len(live) < d.Replicas {
		c.podSeq++
		p := &Pod{
			Name:       fmt.Sprintf("%s-%d", deployment, c.podSeq),
			Deployment: deployment,
			Spec:       d.Spec,
			Phase:      PodPending,
			CreatedAt:  c.clock,
		}
		c.pods[p.Name] = p
		c.podOrder = append(c.podOrder, p.Name)
		live = append(live, p)
	}
	c.schedule()
}

// schedule assigns pending pods to nodes with a best-fit policy (the node
// whose remaining CPU after placement is smallest), mirroring the default
// kube-scheduler's bin-packing tendency under LeastAllocated inversion.
func (c *Cluster) schedule() {
	if c.injector != nil && c.injector.HoldScheduling(c.clock) {
		return // delay spike: pending pods wait for a later pass
	}
	for _, name := range c.podOrder {
		p := c.pods[name]
		if p == nil || p.Phase != PodPending {
			continue
		}
		var best *node
		bestLeft := -1
		for _, nn := range c.nodeOrder {
			n := c.nodes[nn]
			leftCPU := n.allocatable.CPUMilli - n.usedCPU - p.Spec.CPUMilli
			leftMem := n.allocatable.MemoryMB - n.usedMem - p.Spec.MemoryMB
			if leftCPU < 0 || leftMem < 0 {
				continue
			}
			if best == nil || leftCPU < bestLeft {
				best, bestLeft = n, leftCPU
			}
		}
		if best == nil {
			continue // stays pending
		}
		best.usedCPU += p.Spec.CPUMilli
		best.usedMem += p.Spec.MemoryMB
		p.NodeName = best.name
		p.Phase = PodRunning
		p.StartedAt = c.clock
		c.tracer.Event("cluster", "place",
			telemetry.Str("pod", p.Name),
			telemetry.Str("node", best.name),
			telemetry.Int("cpu_milli", p.Spec.CPUMilli))
		c.tracer.Metrics().Inc("cluster_pods_placed")
	}
}

func (c *Cluster) terminatePod(p *Pod) {
	if p.Phase == PodRunning {
		n := c.nodes[p.NodeName]
		n.usedCPU -= p.Spec.CPUMilli
		n.usedMem -= p.Spec.MemoryMB
	}
	p.Phase = PodTerminated
	p.cpuUsageMilli = 0
	delete(c.pods, p.Name)
}

func (c *Cluster) deploymentPods(deployment string) []*Pod {
	var out []*Pod
	for _, name := range c.podOrder {
		if p := c.pods[name]; p != nil && p.Deployment == deployment {
			out = append(out, p)
		}
	}
	return out
}

// RunningPods returns the number of Running pods in a deployment — the
// effective parallelism the Flink layer sees.
func (c *Cluster) RunningPods(deployment string) int {
	n := 0
	for _, p := range c.deploymentPods(deployment) {
		if p.Phase == PodRunning {
			n++
		}
	}
	return n
}

// PendingPods returns the number of unschedulable pods in a deployment.
func (c *Cluster) PendingPods(deployment string) int {
	n := 0
	for _, p := range c.deploymentPods(deployment) {
		if p.Phase == PodPending {
			n++
		}
	}
	return n
}

// Pods returns a snapshot (copies) of all live pods, ordered by creation.
func (c *Cluster) Pods() []Pod {
	out := make([]Pod, 0, len(c.pods))
	for _, name := range c.podOrder {
		if p := c.pods[name]; p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// PodsView returns pointers to all live pods, ordered by creation,
// without copying. The slice aliases a reused scratch buffer (the same
// contract as PodMetrics): it is read-only and only valid until the next
// PodsView call or any cluster mutation. The per-tick usage-reporting
// loop in the stream substrates uses it to avoid copying every pod once
// per simulated second.
//
//lint:hotpath
func (c *Cluster) PodsView() []*Pod {
	out := c.podsBuf[:0]
	for _, name := range c.podOrder {
		if p := c.pods[name]; p != nil {
			out = append(out, p)
		}
	}
	c.podsBuf = out
	return out
}

// DeploymentSpec returns a deployment's current pod template.
func (c *Cluster) DeploymentSpec(name string) (ResourceSpec, bool) {
	d, ok := c.deployments[name]
	if !ok {
		return ResourceSpec{}, false
	}
	return d.Spec, true
}

// Deployments returns the deployment names in sorted order.
func (c *Cluster) Deployments() []string {
	out := make([]string, 0, len(c.deployments))
	for name := range c.deployments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalRunningCPUMilli returns the CPU currently reserved by running pods.
func (c *Cluster) TotalRunningCPUMilli() int {
	var s int
	for _, p := range c.pods {
		if p.Phase == PodRunning {
			s += p.Spec.CPUMilli
		}
	}
	return s
}

// Tick advances the cluster clock by the given seconds, accruing cost for
// every running pod and retrying scheduling of pending pods.
func (c *Cluster) Tick(seconds int64) {
	if seconds < 0 {
		panic("cluster: negative tick")
	}
	c.clock += seconds
	coreSeconds := float64(c.TotalRunningCPUMilli()) / 1000 * float64(seconds)
	c.cost += coreSeconds / 3600 * c.pricePerCPU
	c.schedule()
	if c.injector != nil {
		c.injector.AfterTick(c, c.clock)
	}
}

// Clock returns the cluster time in seconds since start.
func (c *Cluster) Clock() int64 { return c.clock }

// Cost returns the dollars accrued so far.
func (c *Cluster) Cost() float64 { return c.cost }

// PricePerCoreHour returns the configured price.
func (c *Cluster) PricePerCoreHour() float64 { return c.pricePerCPU }

// ErrUnknownPod is returned by metrics operations on missing pods.
var ErrUnknownPod = errors.New("cluster: unknown pod")

// ReportCPUUsage lets the workload layer report a pod's current CPU usage
// in millicores; the metrics server exposes it via PodMetrics.
func (c *Cluster) ReportCPUUsage(podName string, milli int) error {
	p, ok := c.pods[podName]
	if !ok {
		return ErrUnknownPod
	}
	if milli < 0 {
		milli = 0
	}
	if milli > p.Spec.CPUMilli {
		milli = p.Spec.CPUMilli
	}
	p.cpuUsageMilli = milli
	return nil
}

// PodMetric is one row of the metrics-server response.
type PodMetric struct {
	Pod        string
	Deployment string
	CPUMilli   int // usage
	CPULimit   int // spec
}

// PodMetrics returns usage for every running pod (the Kubernetes
// Metrics Server surface the Job Monitor scrapes). The returned slice
// aliases a reused scratch buffer and is only valid until the next
// PodMetrics call; copy it to retain rows.
func (c *Cluster) PodMetrics() []PodMetric {
	out := c.metricsBuf[:0]
	for _, name := range c.podOrder {
		p := c.pods[name]
		if p == nil || p.Phase != PodRunning {
			continue
		}
		out = append(out, PodMetric{
			Pod:        p.Name,
			Deployment: p.Deployment,
			CPUMilli:   p.cpuUsageMilli,
			CPULimit:   p.Spec.CPUMilli,
		})
	}
	c.metricsBuf = out
	return out
}

// DeploymentUtilization returns the mean CPU utilization (usage/limit) of
// a deployment's running pods, or 0 with ok=false when none run.
func (c *Cluster) DeploymentUtilization(deployment string) (float64, bool) {
	var sum float64
	n := 0
	for _, m := range c.PodMetrics() {
		if m.Deployment == deployment {
			sum += float64(m.CPUMilli) / float64(m.CPULimit)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
