package cluster

import (
	"errors"
	"testing"
)

func chaosTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c := New()
	if err := c.AddNodes("n", 2, ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDeployment("w", ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}, 3); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKillPodRecreatesReplacement(t *testing.T) {
	c := chaosTestCluster(t)
	pods := c.Pods()
	victim := ""
	for _, p := range pods {
		if p.Deployment == "w" && p.Phase == PodRunning {
			victim = p.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no running pod to kill")
	}
	if err := c.KillPod(victim); err != nil {
		t.Fatal(err)
	}
	// Reconcile recreated a fresh pod and the scheduler placed it.
	if got := c.RunningPods("w"); got != 3 {
		t.Errorf("running pods after OOM-kill = %d, want 3", got)
	}
	for _, p := range c.Pods() {
		if p.Name == victim {
			t.Errorf("victim %s still alive", victim)
		}
	}
}

func TestKillPodUnknown(t *testing.T) {
	c := chaosTestCluster(t)
	if err := c.KillPod("no-such-pod"); !errors.Is(err, ErrUnknownPod) {
		t.Errorf("KillPod on missing pod = %v, want ErrUnknownPod", err)
	}
}

// recordingInjector holds scheduling while hold is set and records every
// AfterTick clock.
type recordingInjector struct {
	hold   bool
	clocks []int64
}

func (r *recordingInjector) HoldScheduling(clock int64) bool { return r.hold }
func (r *recordingInjector) AfterTick(c *Cluster, clock int64) {
	r.clocks = append(r.clocks, clock)
}

func TestInjectorHoldsScheduling(t *testing.T) {
	c := New()
	if err := c.AddNode("n-0", ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	in := &recordingInjector{hold: true}
	c.SetInjector(in)
	if err := c.CreateDeployment("w", ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingPods("w"); got != 2 {
		t.Fatalf("pods scheduled during hold: %d pending, want 2", got)
	}
	c.Tick(10)
	if got := c.PendingPods("w"); got != 2 {
		t.Fatalf("pods scheduled during held tick: %d pending, want 2", got)
	}
	in.hold = false
	c.Tick(0)
	if got := c.RunningPods("w"); got != 2 {
		t.Errorf("pods not scheduled after hold lifted: %d running, want 2", got)
	}
}

func TestInjectorAfterTickObservesClock(t *testing.T) {
	c := New()
	in := &recordingInjector{}
	c.SetInjector(in)
	c.Tick(5)
	c.Tick(0)
	c.Tick(7)
	want := []int64{5, 5, 12}
	if len(in.clocks) != len(want) {
		t.Fatalf("AfterTick fired %d times, want %d", len(in.clocks), len(want))
	}
	for i := range want {
		if in.clocks[i] != want[i] {
			t.Errorf("AfterTick clock[%d] = %d, want %d", i, in.clocks[i], want[i])
		}
	}
}

func TestSetInjectorNilRestoresCleanPath(t *testing.T) {
	c := New()
	if err := c.AddNode("n-0", ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	in := &recordingInjector{hold: true}
	c.SetInjector(in)
	c.SetInjector(nil)
	if err := c.CreateDeployment("w", ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningPods("w"); got != 1 {
		t.Errorf("removed injector still holds scheduling: %d running", got)
	}
}

func TestNodeAllocatable(t *testing.T) {
	c := chaosTestCluster(t)
	spec, ok := c.NodeAllocatable("n-0")
	if !ok || spec.CPUMilli != 4000 || spec.MemoryMB != 8192 {
		t.Errorf("NodeAllocatable = %+v ok=%v", spec, ok)
	}
	if _, ok := c.NodeAllocatable("ghost"); ok {
		t.Error("NodeAllocatable found a ghost node")
	}
}
