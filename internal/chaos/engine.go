package chaos

import (
	"errors"
	"fmt"

	"dragster/internal/cluster"
	"dragster/internal/flink"
	"dragster/internal/monitor"
	"dragster/internal/stats"
	"dragster/internal/telemetry"
)

// ErrInjected marks every error the engine injects. Control layers use
// errors.Is(err, ErrInjected) to classify a failure as transient chaos
// (retry) versus a genuine bug (propagate).
var ErrInjected = errors.New("chaos: injected fault")

// TraceEntry is one line of the deterministic fault trace.
type TraceEntry struct {
	Slot   int
	Clock  int64 // cluster seconds when the fault fired
	Kind   Kind
	Detail string
}

// String implements fmt.Stringer.
func (t TraceEntry) String() string {
	return fmt.Sprintf("slot=%d clock=%d %s %s", t.Slot, t.Clock, t.Kind, t.Detail)
}

// armedRescale is a pending savepoint-failure / rescale-timeout burst.
type armedRescale struct {
	kind      Kind
	remaining int
}

// crashRecord remembers a crashed node so a later heal can restore its
// capacity.
type crashRecord struct {
	name string
	spec cluster.ResourceSpec
}

// defaultHealSpec is used when a heal has no outstanding crash to mirror
// (matches the experiment harness's standard worker node).
var defaultHealSpec = cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}

// Engine replays a Spec against a simulated deployment. It implements
// cluster.Injector, flink.ChaosHooks, and monitor.Interceptor; Install
// wires it into all three. The harness calls BeginSlot(slot) at every
// decision-slot boundary before the slot runs.
//
// Determinism: all randomness flows through one seeded stats.RNG that is
// consumed only when a fault actually fires, so a fixed (Spec, seed) pair
// against the same seeded simulation yields an identical fault trace and
// identical counters on every replay.
type Engine struct {
	spec     *Spec
	bySlot   map[int][]Event
	blackout map[int]bool // slots inside a MetricsBlackout window
	stale    map[int]bool // slots inside a MetricsStale window
	rng      *stats.RNG
	counters *telemetry.Counters

	k8s *cluster.Cluster

	currentSlot    int
	slotStartClock int64
	timed          []Event // direct events of the current slot with Second > 0

	armed     []armedRescale
	slowQueue []int // extra restore seconds, FIFO
	holdUntil int64 // scheduler delay: hold while clock < holdUntil

	crashes  []crashRecord // un-healed crashes, FIFO
	healSeq  int
	lastGood *telemetry.SlotReport // last pre-window report, for stale replays

	trace  []TraceEntry
	tracer *telemetry.Tracer
}

// SetTracer installs (or, with nil, removes) the observability tracer.
// Every fault-trace entry is mirrored as a "chaos" span event named after
// the fault kind, so run traces interleave fault delivery with the
// optimizer and substrate spans it perturbs.
func (e *Engine) SetTracer(tr *telemetry.Tracer) { e.tracer = tr }

// NewEngine validates the spec and returns an engine seeded with the
// given seed. counters may be nil, in which case the engine keeps a
// private registry (exposed via Counters).
func NewEngine(spec *Spec, seed int64, counters *telemetry.Counters) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if counters == nil {
		counters = telemetry.NewCounters()
	}
	e := &Engine{
		spec:     spec,
		bySlot:   eventsBySlot(spec),
		blackout: make(map[int]bool),
		stale:    make(map[int]bool),
		rng:      stats.NewRNG(seed),
		counters: counters,
	}
	for _, ev := range spec.Events {
		switch ev.Kind {
		case MetricsBlackout:
			for s := ev.Slot; s < ev.Slot+ev.slotsOrDefault(); s++ {
				e.blackout[s] = true
			}
		case MetricsStale:
			for s := ev.Slot; s < ev.Slot+ev.slotsOrDefault(); s++ {
				e.stale[s] = true
			}
		}
	}
	return e, nil
}

// Install wires the engine into the substrate. k8s is required; job and
// mon may be nil when that layer is absent (e.g. a Storm topology, which
// has no rescale hook surface).
func (e *Engine) Install(k8s *cluster.Cluster, job *flink.Job, mon *monitor.Monitor) error {
	if k8s == nil {
		return errors.New("chaos: Install needs a cluster")
	}
	e.k8s = k8s
	k8s.SetInjector(e)
	if job != nil {
		job.SetChaosHooks(e)
	}
	if mon != nil {
		mon.SetInterceptor(e)
	}
	return nil
}

// Spec returns the scenario being replayed.
func (e *Engine) Spec() *Spec { return e.spec }

// Counters returns the fault-accounting registry.
func (e *Engine) Counters() *telemetry.Counters { return e.counters }

// Trace returns a copy of the fault trace so far.
func (e *Engine) Trace() []TraceEntry {
	return append([]TraceEntry(nil), e.trace...)
}

func (e *Engine) clockNow() int64 {
	if e.k8s == nil {
		return 0
	}
	return e.k8s.Clock()
}

func (e *Engine) record(kind Kind, detail string) {
	e.trace = append(e.trace, TraceEntry{
		Slot:   e.currentSlot,
		Clock:  e.clockNow(),
		Kind:   kind,
		Detail: detail,
	})
	e.tracer.Event("chaos", kind.String(),
		telemetry.Int("slot", e.currentSlot),
		telemetry.Str("detail", detail))
	e.tracer.Metrics().Inc("chaos_trace_entries")
}

func (e *Engine) skip(kind Kind, why string) {
	e.counters.Inc("chaos_skipped")
	e.record(kind, "skipped: "+why)
}

// BeginSlot must be called at each decision-slot boundary, before the
// slot's workload runs. It fires the slot's boundary faults, arms its
// call-triggered faults, and queues its mid-slot (Second > 0) faults for
// AfterTick.
func (e *Engine) BeginSlot(slot int) {
	e.currentSlot = slot
	e.slotStartClock = e.clockNow()
	e.timed = e.timed[:0]
	mutated := false
	for _, ev := range e.bySlot[slot] {
		switch ev.Kind {
		case NodeCrash, NodeHeal, PodOOM:
			if ev.Second > 0 {
				e.timed = append(e.timed, ev)
				continue
			}
			e.fireDirect(ev)
			mutated = true
		case SavepointFail, RescaleTimeout:
			n := ev.countOrDefault()
			e.armed = append(e.armed, armedRescale{kind: ev.Kind, remaining: n})
			e.record(ev.Kind, fmt.Sprintf("armed count=%d", n))
		case SlowRestore:
			e.slowQueue = append(e.slowQueue, ev.Seconds)
			e.record(SlowRestore, fmt.Sprintf("armed extra=%ds", ev.Seconds))
		case SchedulerDelay:
			e.holdUntil = e.slotStartClock + int64(ev.Seconds)
			e.counters.Inc("chaos_scheduler_delays")
			e.record(SchedulerDelay, fmt.Sprintf("hold %ds", ev.Seconds))
		case MetricsBlackout, MetricsStale:
			e.record(ev.Kind, fmt.Sprintf("window opens, %d slots", ev.slotsOrDefault()))
		}
	}
	if mutated && e.k8s != nil {
		// Zero-length tick: runs a scheduling pass so evicted/replacement
		// pods are placed (capacity permitting) before the slot's workload.
		e.k8s.Tick(0)
	}
}

// fireDirect executes a boundary or mid-slot cluster mutation.
func (e *Engine) fireDirect(ev Event) {
	if e.k8s == nil {
		e.skip(ev.Kind, "no cluster installed")
		return
	}
	switch ev.Kind {
	case NodeCrash:
		nodes := e.k8s.Nodes()
		if len(nodes) <= 1 {
			e.skip(NodeCrash, "cluster down to its last node")
			return
		}
		victim := nodes[len(nodes)-1]
		if ev.Victim == VictimSeeded {
			victim = nodes[e.rng.Intn(len(nodes))]
		}
		spec, _ := e.k8s.NodeAllocatable(victim)
		if err := e.k8s.RemoveNode(victim); err != nil {
			e.skip(NodeCrash, err.Error())
			return
		}
		e.crashes = append(e.crashes, crashRecord{name: victim, spec: spec})
		e.counters.Inc("chaos_node_crashes")
		e.record(NodeCrash, "node "+victim)
	case NodeHeal:
		spec := defaultHealSpec
		detail := "fresh node"
		if len(e.crashes) > 0 {
			cr := e.crashes[0]
			e.crashes = e.crashes[1:]
			spec = cr.spec
			detail = "replacing " + cr.name
		}
		e.healSeq++
		name := fmt.Sprintf("chaos-node-%d", e.healSeq)
		if err := e.k8s.AddNode(name, spec); err != nil {
			e.skip(NodeHeal, err.Error())
			return
		}
		e.counters.Inc("chaos_node_heals")
		e.record(NodeHeal, "node "+name+", "+detail)
	case PodOOM:
		var running []string
		for _, p := range e.k8s.Pods() {
			if p.Phase == cluster.PodRunning {
				running = append(running, p.Name)
			}
		}
		if len(running) == 0 {
			e.skip(PodOOM, "no running pods")
			return
		}
		victim := running[e.rng.Intn(len(running))]
		if err := e.k8s.KillPod(victim); err != nil {
			e.skip(PodOOM, err.Error())
			return
		}
		e.counters.Inc("chaos_pod_ooms")
		e.record(PodOOM, "pod "+victim)
	}
}

// HoldScheduling implements cluster.Injector.
func (e *Engine) HoldScheduling(clock int64) bool {
	return clock < e.holdUntil
}

// AfterTick implements cluster.Injector: it fires the current slot's
// mid-slot faults once the cluster clock reaches their second offset.
// Replacement pods created here are placed by the next tick's scheduling
// pass (a one-second restart lag), never by re-entering Tick.
func (e *Engine) AfterTick(_ *cluster.Cluster, clock int64) {
	if len(e.timed) == 0 {
		return
	}
	rest := e.timed[:0]
	for _, ev := range e.timed {
		if e.slotStartClock+int64(ev.Second) <= clock {
			e.fireDirect(ev)
			continue
		}
		rest = append(rest, ev)
	}
	e.timed = rest
}

// InterceptRescale implements flink.ChaosHooks: armed savepoint failures
// and rescale timeouts consume the next rescale attempts.
func (e *Engine) InterceptRescale(job string, slot int) error {
	if len(e.armed) == 0 {
		return nil
	}
	a := &e.armed[0]
	kind := a.kind
	a.remaining--
	if a.remaining <= 0 {
		e.armed = e.armed[1:]
	}
	var what string
	switch kind {
	case RescaleTimeout:
		e.counters.Inc("chaos_rescale_timeouts")
		what = "rescale timed out"
	default:
		e.counters.Inc("chaos_savepoint_failures")
		what = "savepoint failed"
	}
	e.record(kind, fmt.Sprintf("job %s, flink slot %d", job, slot))
	return fmt.Errorf("chaos: %s for job %s: %w", what, job, ErrInjected)
}

// ExtraRestoreSeconds implements flink.ChaosHooks: a successful rescale
// consumes any armed slow-restore penalty.
func (e *Engine) ExtraRestoreSeconds(job string, slot int) int {
	if len(e.slowQueue) == 0 {
		return 0
	}
	extra := e.slowQueue[0]
	e.slowQueue = e.slowQueue[1:]
	e.counters.Inc("chaos_slow_restores")
	e.record(SlowRestore, fmt.Sprintf("job %s, flink slot %d, +%ds", job, slot, extra))
	return extra
}

// InterceptReport implements monitor.Interceptor. During a blackout the
// metrics server is unreachable: the monitor gets an error wrapping both
// monitor.ErrNoSample and ErrInjected. During a stale window it re-serves
// the last pre-window report; the monitor's freshness guard then rejects
// it, so the control loop sees "no sample" either way and must skip the
// optimizer round rather than learn from a repeated measurement.
func (e *Engine) InterceptReport(rep *telemetry.SlotReport) (*telemetry.SlotReport, error) {
	switch {
	case e.blackout[e.currentSlot]:
		e.counters.Inc("chaos_metrics_blackouts")
		e.record(MetricsBlackout, "report dropped")
		return nil, fmt.Errorf("chaos: metrics server unreachable at slot %d: %w",
			e.currentSlot, errors.Join(monitor.ErrNoSample, ErrInjected))
	case e.stale[e.currentSlot]:
		e.counters.Inc("chaos_metrics_stale")
		if e.lastGood == nil {
			e.record(MetricsStale, "no prior report, dropped")
			return nil, fmt.Errorf("chaos: metrics server has no fresh data at slot %d: %w",
				e.currentSlot, errors.Join(monitor.ErrNoSample, ErrInjected))
		}
		e.record(MetricsStale, fmt.Sprintf("re-served report of slot %d", e.lastGood.Slot))
		return e.lastGood, nil
	default:
		e.lastGood = rep
		return rep, nil
	}
}

// Compile-time checks that the engine satisfies every hook surface.
var (
	_ cluster.Injector    = (*Engine)(nil)
	_ flink.ChaosHooks    = (*Engine)(nil)
	_ monitor.Interceptor = (*Engine)(nil)
)
