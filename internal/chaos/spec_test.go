package chaos_test

import (
	"strings"
	"testing"

	"dragster/internal/chaos"
)

func TestSpecDSLBuildsEvents(t *testing.T) {
	s := chaos.NewSpec("demo").
		CrashNode(2).AtSecond(30).
		HealNode(4).
		OOMKillPod(5).
		FailSavepoints(6, 3).
		TimeoutRescales(7, 2).
		SlowRestore(8, 45).
		BlackoutMetrics(9, 2).
		StaleMetrics(11, 1).
		DelayScheduler(12, 20)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 9 {
		t.Fatalf("got %d events, want 9", len(s.Events))
	}
	if s.Events[0].Kind != chaos.NodeCrash || s.Events[0].Second != 30 {
		t.Errorf("AtSecond not applied: %+v", s.Events[0])
	}
	if s.Events[3].Count != 3 {
		t.Errorf("FailSavepoints count = %d, want 3", s.Events[3].Count)
	}
	if got := s.MaxSlot(); got != 12 {
		t.Errorf("MaxSlot = %d, want 12", got)
	}
}

func TestSpecMaxSlotCountsWindows(t *testing.T) {
	s := chaos.NewSpec("w").BlackoutMetrics(5, 4)
	if got := s.MaxSlot(); got != 8 {
		t.Errorf("MaxSlot = %d, want 8 (window 5..8)", got)
	}
	if got := chaos.NewSpec("empty").MaxSlot(); got != -1 {
		t.Errorf("empty MaxSlot = %d, want -1", got)
	}
}

func TestSpecFlapNodeExpansion(t *testing.T) {
	s := chaos.NewSpec("flap").FlapNode(6, 2, 3)
	if len(s.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(s.Events))
	}
	wantSlots := []int{6, 8, 10, 12, 14, 16}
	for i, e := range s.Events {
		if e.Slot != wantSlots[i] {
			t.Errorf("event %d at slot %d, want %d", i, e.Slot, wantSlots[i])
		}
		wantKind := chaos.NodeCrash
		if i%2 == 1 {
			wantKind = chaos.NodeHeal
		}
		if e.Kind != wantKind {
			t.Errorf("event %d kind %v, want %v", i, e.Kind, wantKind)
		}
	}
}

func TestSpecValidateRejectsBadSchedules(t *testing.T) {
	cases := []*chaos.Spec{
		nil,
		chaos.NewSpec(""),
		chaos.NewSpec("neg").CrashNode(-1),
		chaos.NewSpec("negwin").BlackoutMetrics(1, -2),
		chaos.NewSpec("negcount").FailSavepoints(1, -1),
		chaos.NewSpec("negsec").SlowRestore(1, -5),
		{Name: "badkind", Events: []chaos.Event{{Kind: chaos.Kind(99)}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestAtSecondPanicsOnEmptySpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AtSecond on empty spec did not panic")
		}
	}()
	chaos.NewSpec("x").AtSecond(5)
}

func TestNamedScenarios(t *testing.T) {
	names := chaos.Names()
	want := []string{"metrics-blackout", "node-flap", "rescale-timeout", "savepoint-storm"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		s, err := chaos.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("scenario %s has Name %q", name, s.Name)
		}
		// Fresh copy every call: mutating one must not leak into the next.
		s.CrashNode(99)
		again, err := chaos.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Events) == len(s.Events) {
			t.Errorf("scenario %s is aliased between ByName calls", name)
		}
	}
	if _, err := chaos.ByName("no-such-storm"); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario lookup: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []chaos.Kind{
		chaos.NodeCrash, chaos.NodeHeal, chaos.PodOOM, chaos.SavepointFail,
		chaos.RescaleTimeout, chaos.SlowRestore, chaos.MetricsBlackout,
		chaos.MetricsStale, chaos.SchedulerDelay,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
}
