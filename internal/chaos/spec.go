// Package chaos implements a deterministic, seed-driven fault-injection
// engine for the Dragster simulation stack. A Spec schedules faults on
// the simulation clock (decision slots, with optional second offsets
// inside a slot); an Engine replays the spec through the injection hooks
// of internal/cluster, internal/flink, and internal/monitor, records a
// fault trace, and accounts every fault in a telemetry.Counters registry.
//
// Determinism contract: with a fixed Spec and seed, two replays against
// the same seeded simulation produce the same fault trace and the same
// counters. With no engine installed, every hook site in the substrate
// packages is a no-op, so fault-free runs are byte-identical to runs of
// the pre-chaos code.
package chaos

import (
	"errors"
	"fmt"
)

// Kind enumerates the fault taxonomy.
type Kind int

// Fault kinds. Direct faults (NodeCrash, NodeHeal, PodOOM) mutate the
// cluster when their scheduled time arrives; armed faults (SavepointFail,
// RescaleTimeout, SlowRestore) trigger on the next matching substrate
// call; windowed faults (MetricsBlackout, MetricsStale, SchedulerDelay)
// hold for a duration.
const (
	NodeCrash Kind = iota
	NodeHeal
	PodOOM
	SavepointFail
	RescaleTimeout
	SlowRestore
	MetricsBlackout
	MetricsStale
	SchedulerDelay
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case NodeHeal:
		return "node-heal"
	case PodOOM:
		return "pod-oom"
	case SavepointFail:
		return "savepoint-fail"
	case RescaleTimeout:
		return "rescale-timeout"
	case SlowRestore:
		return "slow-restore"
	case MetricsBlackout:
		return "metrics-blackout"
	case MetricsStale:
		return "metrics-stale"
	case SchedulerDelay:
		return "scheduler-delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Victim selects how a NodeCrash / PodOOM target is chosen.
type Victim int

const (
	// VictimSeeded picks the target uniformly with the engine's seeded RNG.
	VictimSeeded Victim = iota
	// VictimLast picks the most recently registered node — the legacy
	// FailNodeAtSlot behaviour, where the newest node carries only worker
	// pods in practice.
	VictimLast
)

// Event is one scheduled fault.
type Event struct {
	// Slot is the decision slot (0-based) at which the fault fires or its
	// window opens.
	Slot int
	// Second offsets direct faults into the slot: 0 fires at the slot
	// boundary (before the slot's first tick), s > 0 fires once the
	// cluster clock has advanced s seconds into the slot. Ignored for
	// armed and windowed faults.
	Second int
	Kind   Kind
	// Slots is the window length for MetricsBlackout / MetricsStale
	// (default 1).
	Slots int
	// Count is the number of consecutive rescale attempts to fail for
	// SavepointFail / RescaleTimeout (default 1).
	Count int
	// Seconds is the extra pause for SlowRestore, or the hold window for
	// SchedulerDelay.
	Seconds int
	// Victim selects the NodeCrash / PodOOM target policy.
	Victim Victim
}

// Spec is a named, ordered fault schedule — the scenario DSL's product.
// Build one with NewSpec and the fluent methods, or look up a named
// scenario with ByName.
type Spec struct {
	Name   string
	Events []Event
}

// NewSpec returns an empty scenario.
func NewSpec(name string) *Spec { return &Spec{Name: name} }

func (s *Spec) add(e Event) *Spec {
	s.Events = append(s.Events, e)
	return s
}

// CrashNode schedules a seeded-victim node crash at the given slot.
func (s *Spec) CrashNode(slot int) *Spec {
	return s.add(Event{Slot: slot, Kind: NodeCrash, Victim: VictimSeeded})
}

// CrashLastNode schedules a crash of the most recently registered node.
func (s *Spec) CrashLastNode(slot int) *Spec {
	return s.add(Event{Slot: slot, Kind: NodeCrash, Victim: VictimLast})
}

// HealNode schedules a replacement node at the given slot. The
// replacement reuses the allocatable resources of the oldest un-healed
// crash (or a 4-core default when none is outstanding).
func (s *Spec) HealNode(slot int) *Spec {
	return s.add(Event{Slot: slot, Kind: NodeHeal})
}

// FlapNode schedules `cycles` crash/heal pairs starting at startSlot,
// with periodSlots slots between a crash and its heal (and between a heal
// and the next crash) — the node-flapping pattern.
func (s *Spec) FlapNode(startSlot, periodSlots, cycles int) *Spec {
	for c := 0; c < cycles; c++ {
		base := startSlot + 2*periodSlots*c
		s.CrashNode(base)
		s.HealNode(base + periodSlots)
	}
	return s
}

// OOMKillPod schedules a seeded-victim pod OOM-kill at the given slot.
func (s *Spec) OOMKillPod(slot int) *Spec {
	return s.add(Event{Slot: slot, Kind: PodOOM, Victim: VictimSeeded})
}

// FailSavepoints arms `count` consecutive savepoint failures from the
// given slot: the next `count` rescale attempts abort with an injected
// error and the job keeps its previous configuration.
func (s *Spec) FailSavepoints(slot, count int) *Spec {
	return s.add(Event{Slot: slot, Kind: SavepointFail, Count: count})
}

// TimeoutRescales arms `count` consecutive rescale timeouts from the
// given slot.
func (s *Spec) TimeoutRescales(slot, count int) *Spec {
	return s.add(Event{Slot: slot, Kind: RescaleTimeout, Count: count})
}

// SlowRestore arms one slow savepoint restore: the next successful
// rescale pauses for extraSeconds longer than the configured cost.
func (s *Spec) SlowRestore(slot, extraSeconds int) *Spec {
	return s.add(Event{Slot: slot, Kind: SlowRestore, Seconds: extraSeconds})
}

// BlackoutMetrics makes the metrics server unreachable for `slots` slots
// starting at the given slot: Collect returns an error wrapping
// monitor.ErrNoSample instead of data.
func (s *Spec) BlackoutMetrics(slot, slots int) *Spec {
	return s.add(Event{Slot: slot, Kind: MetricsBlackout, Slots: slots})
}

// StaleMetrics makes the metrics server re-serve the last pre-window
// report for `slots` slots starting at the given slot.
func (s *Spec) StaleMetrics(slot, slots int) *Spec {
	return s.add(Event{Slot: slot, Kind: MetricsStale, Slots: slots})
}

// DelayScheduler holds pod scheduling for `seconds` of cluster time
// starting at the given slot's boundary: pending pods stay pending.
func (s *Spec) DelayScheduler(slot, seconds int) *Spec {
	return s.add(Event{Slot: slot, Kind: SchedulerDelay, Seconds: seconds})
}

// AtSecond offsets the most recently added event `sec` seconds into its
// slot (direct faults only). It panics when no event has been added.
func (s *Spec) AtSecond(sec int) *Spec {
	if len(s.Events) == 0 {
		panic("chaos: AtSecond before any event")
	}
	s.Events[len(s.Events)-1].Second = sec
	return s
}

// Validate checks the schedule for impossible entries.
func (s *Spec) Validate() error {
	if s == nil {
		return errors.New("chaos: nil spec")
	}
	if s.Name == "" {
		return errors.New("chaos: spec needs a name")
	}
	for i, e := range s.Events {
		if e.Slot < 0 || e.Second < 0 {
			return fmt.Errorf("chaos: event %d (%s) has negative schedule (slot %d, second %d)", i, e.Kind, e.Slot, e.Second)
		}
		switch e.Kind {
		case MetricsBlackout, MetricsStale:
			if e.Slots < 0 {
				return fmt.Errorf("chaos: event %d (%s) has negative window", i, e.Kind)
			}
		case SavepointFail, RescaleTimeout:
			if e.Count < 0 {
				return fmt.Errorf("chaos: event %d (%s) has negative count", i, e.Kind)
			}
		case SlowRestore, SchedulerDelay:
			if e.Seconds < 0 {
				return fmt.Errorf("chaos: event %d (%s) has negative seconds", i, e.Kind)
			}
		case NodeCrash, NodeHeal, PodOOM:
			// Schedule fields already checked.
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// MaxSlot returns the highest slot any event touches (window ends
// included), or -1 for an empty spec — a sizing aid for test harnesses.
func (s *Spec) MaxSlot() int {
	maxSlot := -1
	for _, e := range s.Events {
		end := e.Slot
		if e.Kind == MetricsBlackout || e.Kind == MetricsStale {
			end = e.Slot + e.slotsOrDefault() - 1
		}
		if end > maxSlot {
			maxSlot = end
		}
	}
	return maxSlot
}

func (e Event) slotsOrDefault() int {
	if e.Slots <= 0 {
		return 1
	}
	return e.Slots
}

func (e Event) countOrDefault() int {
	if e.Count <= 0 {
		return 1
	}
	return e.Count
}

// eventsBySlot groups a validated spec's events by slot, preserving
// declaration order within a slot.
func eventsBySlot(s *Spec) map[int][]Event {
	out := make(map[int][]Event)
	for _, e := range s.Events {
		out[e.Slot] = append(out[e.Slot], e)
	}
	return out
}
