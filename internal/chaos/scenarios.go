package chaos

import (
	"fmt"
	"sort"
)

// The named scenarios exercised by the golden chaos suite. Each factory
// returns a fresh Spec so callers can extend it without aliasing.
var scenarios = map[string]func() *Spec{
	// node-flap: a worker node crashes and is replaced three times in a
	// row, two slots apart — the controller must ride out repeated
	// capacity loss and re-converge after each heal.
	"node-flap": func() *Spec {
		return NewSpec("node-flap").FlapNode(6, 2, 3)
	},
	// savepoint-storm: a burst of savepoint failures, then a painfully
	// slow restore, then a second burst — rescales keep aborting and the
	// one that succeeds costs a minute of extra downtime.
	"savepoint-storm": func() *Spec {
		return NewSpec("savepoint-storm").
			FailSavepoints(5, 3).
			SlowRestore(10, 60).
			FailSavepoints(12, 2)
	},
	// metrics-blackout: the metrics server disappears for three slots,
	// recovers, then serves stale repeats for two more — the controller
	// must skip those optimizer rounds instead of learning from garbage.
	"metrics-blackout": func() *Spec {
		return NewSpec("metrics-blackout").
			BlackoutMetrics(6, 3).
			StaleMetrics(12, 2)
	},
	// rescale-timeout: two bursts of rescale timeouts — the bounded-retry
	// path must back off, recover, and never wedge the control loop.
	"rescale-timeout": func() *Spec {
		return NewSpec("rescale-timeout").
			TimeoutRescales(5, 2).
			TimeoutRescales(11, 3)
	},
}

// Names returns the named scenarios in sorted order.
func Names() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName returns a fresh copy of a named scenario.
func ByName(name string) (*Spec, error) {
	f, ok := scenarios[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
	}
	return f(), nil
}
