package chaos_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dragster/internal/chaos"
	"dragster/internal/cluster"
	"dragster/internal/monitor"
	"dragster/internal/telemetry"
)

// testCluster builds a 3-node cluster running a 4-pod worker deployment.
func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	k8s := cluster.New()
	if err := k8s.AddNodes("n", 3, cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	if err := k8s.CreateDeployment("worker", cluster.ResourceSpec{CPUMilli: 1000, MemoryMB: 2048}, 4); err != nil {
		t.Fatal(err)
	}
	return k8s
}

func newEngine(t *testing.T, spec *chaos.Spec, k8s *cluster.Cluster) *chaos.Engine {
	t.Helper()
	e, err := chaos.NewEngine(spec, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k8s != nil {
		if err := e.Install(k8s, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func counterValue(cs *telemetry.Counters, name string) int64 {
	return cs.Get(name)
}

func TestEngineCrashAndHeal(t *testing.T) {
	k8s := testCluster(t)
	e := newEngine(t, chaos.NewSpec("ch").CrashLastNode(0).HealNode(1), k8s)

	e.BeginSlot(0)
	if got := len(k8s.Nodes()); got != 2 {
		t.Fatalf("after crash: %d nodes, want 2", got)
	}
	e.BeginSlot(1)
	nodes := k8s.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("after heal: %d nodes, want 3", len(nodes))
	}
	spec, ok := k8s.NodeAllocatable(nodes[len(nodes)-1])
	if !ok || spec.CPUMilli != 4000 {
		t.Errorf("healed node allocatable = %+v, want the crashed node's 4000m", spec)
	}
	cs := e.Counters()
	if counterValue(cs, "chaos_node_crashes") != 1 || counterValue(cs, "chaos_node_heals") != 1 {
		t.Errorf("counters = %v", cs.Snapshot())
	}
	if tr := e.Trace(); len(tr) != 2 || tr[0].Kind != chaos.NodeCrash || tr[1].Kind != chaos.NodeHeal {
		t.Errorf("trace = %v", e.Trace())
	}
	// All evicted pods reschedule onto the replacement capacity.
	if k8s.PendingPods("worker") != 0 {
		t.Errorf("%d pods still pending after heal", k8s.PendingPods("worker"))
	}
}

func TestEngineNeverKillsLastNode(t *testing.T) {
	k8s := cluster.New()
	if err := k8s.AddNode("only", cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, chaos.NewSpec("last").CrashNode(0), k8s)
	e.BeginSlot(0)
	if got := len(k8s.Nodes()); got != 1 {
		t.Fatalf("last node was killed")
	}
	if counterValue(e.Counters(), "chaos_skipped") != 1 {
		t.Errorf("skip not counted: %v", e.Counters().Snapshot())
	}
}

func TestEnginePodOOMRecreatesPod(t *testing.T) {
	k8s := testCluster(t)
	before := k8s.RunningPods("worker")
	e := newEngine(t, chaos.NewSpec("oom").OOMKillPod(0), k8s)
	e.BeginSlot(0)
	if got := k8s.RunningPods("worker"); got != before {
		t.Errorf("after OOM + reconcile: %d running pods, want %d", got, before)
	}
	if counterValue(e.Counters(), "chaos_pod_ooms") != 1 {
		t.Errorf("counters = %v", e.Counters().Snapshot())
	}
	// The replacement is a fresh pod, not the old one resurrected.
	names := make(map[string]bool)
	for _, p := range k8s.Pods() {
		names[p.Name] = true
	}
	tr := e.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace = %v", tr)
	}
	victim := strings.TrimPrefix(tr[0].Detail, "pod ")
	if names[victim] {
		t.Errorf("victim %s still alive", victim)
	}
}

func TestEngineMidSlotEventFiresOnSchedule(t *testing.T) {
	k8s := testCluster(t)
	e := newEngine(t, chaos.NewSpec("mid").CrashLastNode(0).AtSecond(30), k8s)
	e.BeginSlot(0)
	if got := len(k8s.Nodes()); got != 3 {
		t.Fatalf("mid-slot crash fired at the boundary")
	}
	k8s.Tick(29)
	if got := len(k8s.Nodes()); got != 3 {
		t.Fatalf("mid-slot crash fired at clock 29, want 30")
	}
	k8s.Tick(1)
	if got := len(k8s.Nodes()); got != 2 {
		t.Fatalf("mid-slot crash did not fire at clock 30")
	}
	// Fires once, not on every later tick.
	k8s.Tick(10)
	if got := len(k8s.Nodes()); got != 2 {
		t.Fatalf("crash re-fired: %d nodes", got)
	}
}

func TestEngineSchedulerDelayHoldsPendingPods(t *testing.T) {
	k8s := testCluster(t)
	e := newEngine(t, chaos.NewSpec("hold").DelayScheduler(0, 30), k8s)
	e.BeginSlot(0)
	if err := k8s.Scale("worker", 6); err != nil {
		t.Fatal(err)
	}
	if got := k8s.PendingPods("worker"); got != 2 {
		t.Fatalf("scale-up placed pods during the hold: %d pending, want 2", got)
	}
	k8s.Tick(29)
	if got := k8s.PendingPods("worker"); got != 2 {
		t.Fatalf("pods placed at clock 29: %d pending, want 2", got)
	}
	k8s.Tick(1)
	if got := k8s.PendingPods("worker"); got != 0 {
		t.Fatalf("hold did not lift at clock 30: %d pending", got)
	}
}

func TestEngineInterceptRescaleConsumesArmedBursts(t *testing.T) {
	e := newEngine(t, chaos.NewSpec("sp").FailSavepoints(0, 2).TimeoutRescales(1, 1), nil)
	e.BeginSlot(0)
	for i := 0; i < 2; i++ {
		err := e.InterceptRescale("job", i)
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := e.InterceptRescale("job", 2); err != nil {
		t.Fatalf("burst exhausted but still failing: %v", err)
	}
	e.BeginSlot(1)
	if err := e.InterceptRescale("job", 3); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("timeout burst not armed: %v", err)
	}
	cs := e.Counters()
	if counterValue(cs, "chaos_savepoint_failures") != 2 || counterValue(cs, "chaos_rescale_timeouts") != 1 {
		t.Errorf("counters = %v", cs.Snapshot())
	}
}

func TestEngineExtraRestoreSecondsConsumedOnce(t *testing.T) {
	e := newEngine(t, chaos.NewSpec("slow").SlowRestore(0, 45), nil)
	e.BeginSlot(0)
	if got := e.ExtraRestoreSeconds("job", 0); got != 45 {
		t.Fatalf("first rescale extra = %d, want 45", got)
	}
	if got := e.ExtraRestoreSeconds("job", 1); got != 0 {
		t.Fatalf("second rescale extra = %d, want 0", got)
	}
	if counterValue(e.Counters(), "chaos_slow_restores") != 1 {
		t.Errorf("counters = %v", e.Counters().Snapshot())
	}
}

func TestEngineInterceptReportBlackoutAndStale(t *testing.T) {
	e := newEngine(t, chaos.NewSpec("win").BlackoutMetrics(1, 1).StaleMetrics(3, 1), nil)
	repA := &telemetry.SlotReport{Slot: 0}
	repB := &telemetry.SlotReport{Slot: 2}

	e.BeginSlot(0)
	if got, err := e.InterceptReport(repA); err != nil || got != repA {
		t.Fatalf("clean slot intercepted: %v %v", got, err)
	}
	e.BeginSlot(1)
	if _, err := e.InterceptReport(&telemetry.SlotReport{Slot: 1}); !errors.Is(err, monitor.ErrNoSample) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("blackout error = %v, want ErrNoSample and ErrInjected", err)
	}
	e.BeginSlot(2)
	if got, err := e.InterceptReport(repB); err != nil || got != repB {
		t.Fatalf("post-blackout slot intercepted: %v %v", got, err)
	}
	e.BeginSlot(3)
	got, err := e.InterceptReport(&telemetry.SlotReport{Slot: 3})
	if err != nil || got != repB {
		t.Fatalf("stale window served %v (%v), want the slot-2 report", got, err)
	}
	cs := e.Counters()
	if counterValue(cs, "chaos_metrics_blackouts") != 1 || counterValue(cs, "chaos_metrics_stale") != 1 {
		t.Errorf("counters = %v", cs.Snapshot())
	}
}

func TestEngineStaleWindowBeforeAnySampleIsBlackout(t *testing.T) {
	e := newEngine(t, chaos.NewSpec("coldstale").StaleMetrics(0, 1), nil)
	e.BeginSlot(0)
	if _, err := e.InterceptReport(&telemetry.SlotReport{Slot: 0}); !errors.Is(err, monitor.ErrNoSample) {
		t.Fatalf("cold stale window err = %v, want ErrNoSample", err)
	}
}

// TestEngineDeterministicReplay drives two engines with the same spec and
// seed over identically-built clusters and requires identical traces and
// counters — the core chaos guarantee.
func TestEngineDeterministicReplay(t *testing.T) {
	spec := func() *chaos.Spec {
		return chaos.NewSpec("det").
			CrashNode(0).
			OOMKillPod(1).
			HealNode(2).
			CrashNode(3).AtSecond(17).
			FailSavepoints(4, 2)
	}
	run := func() ([]chaos.TraceEntry, []telemetry.Counter) {
		k8s := testCluster(t)
		e := newEngine(t, spec(), k8s)
		for slot := 0; slot < 6; slot++ {
			e.BeginSlot(slot)
			k8s.Tick(60)
			_ = e.InterceptRescale("job", slot)
		}
		return e.Trace(), e.Counters().Snapshot()
	}
	tr1, cs1 := run()
	tr2, cs2 := run()
	if !reflect.DeepEqual(tr1, tr2) {
		t.Errorf("traces diverge:\n%v\n%v", tr1, tr2)
	}
	if !reflect.DeepEqual(cs1, cs2) {
		t.Errorf("counters diverge:\n%v\n%v", cs1, cs2)
	}
	if len(tr1) == 0 {
		t.Error("empty trace")
	}
}

func TestEngineInstallRequiresCluster(t *testing.T) {
	e := newEngine(t, chaos.NewSpec("x").CrashNode(0), nil)
	if err := e.Install(nil, nil, nil); err == nil {
		t.Error("Install accepted a nil cluster")
	}
}

func TestNewEngineRejectsInvalidSpec(t *testing.T) {
	if _, err := chaos.NewEngine(chaos.NewSpec("bad").CrashNode(-3), 1, nil); err == nil {
		t.Error("invalid spec accepted")
	}
}
