package chaos_test

// Golden chaos suite: replays every named scenario through the full
// experiment stack (cluster, Flink session, monitor, Dragster controller)
// and asserts the three contract properties:
//
//  1. Determinism — same (Spec, seed) ⇒ identical fault trace, identical
//     fault counters, identical per-slot throughput trace.
//  2. Liveness — the run completes without error or panic and the
//     controller re-converges to the near-optimal configuration.
//  3. Bounded damage — cumulative regret stays within a pinned envelope
//     of the fault-free run.

import (
	"reflect"
	"sync"
	"testing"

	"dragster/internal/chaos"
	"dragster/internal/experiment"
	"dragster/internal/telemetry"
	"dragster/internal/workload"
)

const (
	goldenSlots    = 24
	goldenSlotSecs = 60
	goldenSeed     = 8
)

type goldenRun struct {
	res     *experiment.Result
	trace   []chaos.TraceEntry
	counts  []telemetry.Counter
	skipped int
}

// runGolden executes one scenario to completion through the step-wise
// Runner so the fault trace is observable.
func runGolden(t *testing.T, cs *chaos.Spec) *goldenRun {
	t.Helper()
	spec, err := workload.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		t.Fatal(err)
	}
	r, err := experiment.NewRunner(experiment.Scenario{
		Spec:        spec,
		Rates:       rates,
		Slots:       goldenSlots,
		SlotSeconds: goldenSlotSecs,
		Seed:        goldenSeed,
		Chaos:       cs,
	}, experiment.DragsterSaddle())
	if err != nil {
		t.Fatal(err)
	}
	for !r.Done() {
		if _, err := r.Step(); err != nil {
			t.Fatalf("step failed: %v", err)
		}
	}
	return &goldenRun{
		res:     r.Result(),
		trace:   r.ChaosTrace(),
		counts:  r.FaultCounters().Snapshot(),
		skipped: r.SkippedRounds(),
	}
}

// regretFrac is the cumulative regret of a run against its phase-0
// optimum, normalized by the total optimal tuple count — the fraction of
// achievable work lost.
func regretFrac(res *experiment.Result) float64 {
	opt := res.OptimaByPhase[0]
	var lost float64
	for _, tr := range res.Trace {
		if d := opt.Throughput - tr.MeasuredThroughput; d > 0 {
			lost += d * float64(res.SlotSecs)
		}
	}
	return lost / (opt.Throughput * float64(res.SlotSecs) * float64(res.Slots))
}

var (
	baselineOnce sync.Once
	baselineRun  *goldenRun
)

// faultFreeBaseline runs the scenario-free reference once per test binary.
func faultFreeBaseline(t *testing.T) *goldenRun {
	baselineOnce.Do(func() {
		baselineRun = runGolden(t, nil)
	})
	if baselineRun == nil {
		t.Fatal("baseline run failed in an earlier test")
	}
	return baselineRun
}

// goldenEnvelope pins, per scenario, the maximum extra regret fraction
// over the fault-free baseline and the fault counters that must fire.
// The pinned extras carry ~2× headroom over the measured values (node-flap
// measures ≈0.073 extra; the rescale-fault scenarios measure slightly
// negative extras because aborted exploration rescales skip savepoint
// pauses).
var goldenEnvelope = map[string]struct {
	maxExtraRegret float64
	wantCounters   map[string]int64
	wantSkipped    int
}{
	"node-flap": {
		maxExtraRegret: 0.15,
		wantCounters:   map[string]int64{"chaos_node_crashes": 3, "chaos_node_heals": 3},
	},
	"savepoint-storm": {
		maxExtraRegret: 0.10,
		wantCounters:   map[string]int64{"chaos_savepoint_failures": 4, "rescale_failures": 4},
	},
	"metrics-blackout": {
		maxExtraRegret: 0.10,
		wantCounters:   map[string]int64{"chaos_metrics_blackouts": 3, "chaos_metrics_stale": 2},
		wantSkipped:    5,
	},
	"rescale-timeout": {
		maxExtraRegret: 0.10,
		wantCounters:   map[string]int64{"chaos_rescale_timeouts": 4, "rescale_failures": 4},
	},
}

func TestGoldenScenarios(t *testing.T) {
	if len(goldenEnvelope) != len(chaos.Names()) {
		t.Fatalf("envelope covers %d scenarios, registry has %v", len(goldenEnvelope), chaos.Names())
	}
	base := faultFreeBaseline(t)
	baseFrac := regretFrac(base.res)
	if len(base.trace) != 0 || len(base.counts) != 0 {
		t.Fatalf("fault-free baseline injected faults: trace=%v counters=%v", base.trace, base.counts)
	}

	for _, name := range chaos.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			env := goldenEnvelope[name]
			spec, err := chaos.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if spec.MaxSlot() >= goldenSlots-4 {
				t.Fatalf("scenario %s ends at slot %d; leave ≥4 recovery slots of %d", name, spec.MaxSlot(), goldenSlots)
			}
			run1 := runGolden(t, spec)
			spec2, err := chaos.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			run2 := runGolden(t, spec2)

			// 1. Deterministic replay, fault trace and simulation alike.
			if !reflect.DeepEqual(run1.trace, run2.trace) {
				t.Errorf("fault traces diverge between replays:\n%v\n%v", run1.trace, run2.trace)
			}
			if !reflect.DeepEqual(run1.counts, run2.counts) {
				t.Errorf("fault counters diverge between replays:\n%v\n%v", run1.counts, run2.counts)
			}
			if !reflect.DeepEqual(run1.res.Trace, run2.res.Trace) {
				t.Errorf("slot traces diverge between replays")
			}
			if len(run1.trace) == 0 {
				t.Fatalf("scenario injected no faults")
			}

			// 2. The controller survives and re-converges.
			final := run1.res.Trace[len(run1.res.Trace)-1]
			opt := run1.res.OptimaByPhase[0]
			if final.SteadyThroughput < experiment.NearOptimalFraction*opt.Throughput {
				t.Errorf("no recovery: final steady %v < %v×optimal %v",
					final.SteadyThroughput, experiment.NearOptimalFraction, opt.Throughput)
			}

			// 3. Regret envelope over the fault-free baseline.
			frac := regretFrac(run1.res)
			if extra := frac - baseFrac; extra > env.maxExtraRegret {
				t.Errorf("regret envelope exceeded: chaos %0.4f, baseline %0.4f, extra %0.4f > %0.4f",
					frac, baseFrac, extra, env.maxExtraRegret)
			}

			// Fault accounting matches the pinned golden values.
			got := make(map[string]int64, len(run1.counts))
			for _, c := range run1.counts {
				got[c.Name] = c.Value
			}
			for cname, want := range env.wantCounters {
				if got[cname] != want {
					t.Errorf("counter %s = %d, want %d (all: %v)", cname, got[cname], want, run1.counts)
				}
			}
			if run1.skipped != env.wantSkipped {
				t.Errorf("skipped rounds = %d, want %d", run1.skipped, env.wantSkipped)
			}
			if run1.res.SkippedRounds != run1.skipped {
				t.Errorf("Result.SkippedRounds = %d, runner says %d", run1.res.SkippedRounds, run1.skipped)
			}
		})
	}
}

// TestChaosSeedChangesVictims checks that the seed actually steers seeded
// victim selection: the engine must not be secretly deterministic in a
// way that ignores its seed. Two seeds are allowed to pick the same
// victims by chance for one event, so the probe uses several.
func TestChaosSeedChangesVictims(t *testing.T) {
	spec, err := workload.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		t.Fatal(err)
	}
	traceFor := func(chaosSeed int64) []chaos.TraceEntry {
		r, err := experiment.NewRunner(experiment.Scenario{
			Spec:        spec,
			Rates:       rates,
			Slots:       10,
			SlotSeconds: 60,
			Seed:        goldenSeed,
			ChaosSeed:   chaosSeed,
			Chaos: chaos.NewSpec("victims").
				OOMKillPod(2).OOMKillPod(3).OOMKillPod(4).OOMKillPod(5),
		}, experiment.DragsterSaddle())
		if err != nil {
			t.Fatal(err)
		}
		for !r.Done() {
			if _, err := r.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return r.ChaosTrace()
	}
	a, b := traceFor(1001), traceFor(2002)
	if reflect.DeepEqual(a, b) {
		t.Errorf("different chaos seeds picked identical victims across 4 OOM kills:\n%v", a)
	}
}
