// Package dag models a stream-processing application as a directed acyclic
// graph of sources, operators and a sink (§4.1 of the Dragster paper). It
// provides the throughput functions h_{i,j} of Eq. 2, evaluation of the
// application throughput f_t(y) under capacity truncation (Eq. 4), and its
// gradient ∂f/∂y_i via reverse-mode autodiff — the quantity Dragster uses to
// identify bottleneck operators.
package dag

import (
	"fmt"
	"math"

	"dragster/internal/autodiff"
)

// ThroughputFunc is the input→output throughput mapping h_{i,j} of an edge
// (Eq. 3). Implementations must be increasing and concave in each input,
// per the paper's modelling assumption, and must implement both a plain
// float evaluation and a taped evaluation so gradients can flow.
type ThroughputFunc interface {
	// Eval maps the input throughput vector (ordered like the operator's
	// predecessor list) to the emitted throughput on this edge.
	Eval(inputs []float64) float64
	// EvalAD is Eval recorded on an autodiff tape.
	EvalAD(t *autodiff.Tape, inputs []autodiff.Value) autodiff.Value
	// Name identifies the functional form for logs and persistence.
	Name() string
}

// Linear is Eq. 2a: h(e) = k · e (inner product with a constant rate
// vector). With a single input it reduces to a selectivity factor.
type Linear struct {
	K []float64
}

// NewLinear validates the rate vector and returns the function. Every
// component must be non-negative to preserve monotonicity.
func NewLinear(k ...float64) (Linear, error) {
	if len(k) == 0 {
		return Linear{}, fmt.Errorf("dag: Linear needs at least one rate")
	}
	for _, v := range k {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Linear{}, fmt.Errorf("dag: Linear rate %v is not a non-negative finite number", v)
		}
	}
	return Linear{K: append([]float64(nil), k...)}, nil
}

// Eval implements ThroughputFunc.
func (l Linear) Eval(in []float64) float64 {
	l.check(len(in))
	var s float64
	for i, v := range in {
		s += l.K[i] * v
	}
	return s
}

// EvalAD implements ThroughputFunc.
func (l Linear) EvalAD(_ *autodiff.Tape, in []autodiff.Value) autodiff.Value {
	l.check(len(in))
	return autodiff.Dot(l.K, in)
}

// Name implements ThroughputFunc.
func (l Linear) Name() string { return "linear" }

func (l Linear) check(n int) {
	if n != len(l.K) {
		panic(fmt.Sprintf("dag: Linear expects %d inputs, got %d", len(l.K), n))
	}
}

// MinRate is Eq. 2b: h(e) = min(k ∘ e) — the output follows the bottleneck
// predecessor. This is the natural form for join-like operators that need
// one tuple from each input.
type MinRate struct {
	K []float64
}

// NewMinRate validates the weight vector and returns the function.
func NewMinRate(k ...float64) (MinRate, error) {
	if len(k) == 0 {
		return MinRate{}, fmt.Errorf("dag: MinRate needs at least one weight")
	}
	for _, v := range k {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return MinRate{}, fmt.Errorf("dag: MinRate weight %v is not a non-negative finite number", v)
		}
	}
	return MinRate{K: append([]float64(nil), k...)}, nil
}

// Eval implements ThroughputFunc.
func (m MinRate) Eval(in []float64) float64 {
	m.check(len(in))
	out := math.Inf(1)
	for i, v := range in {
		if w := m.K[i] * v; w < out {
			out = w
		}
	}
	return out
}

// EvalAD implements ThroughputFunc.
func (m MinRate) EvalAD(_ *autodiff.Tape, in []autodiff.Value) autodiff.Value {
	m.check(len(in))
	out := in[0].Scale(m.K[0])
	for i := 1; i < len(in); i++ {
		out = out.Min(in[i].Scale(m.K[i]))
	}
	return out
}

// Name implements ThroughputFunc.
func (m MinRate) Name() string { return "min-rate" }

func (m MinRate) check(n int) {
	if n != len(m.K) {
		panic(fmt.Sprintf("dag: MinRate expects %d inputs, got %d", len(m.K), n))
	}
}

// Tanh is Eq. 2c: h(e) = k1 · tanh(k · e), a saturating concave mapping a
// user can fit online when the operator logic is unknown.
type Tanh struct {
	K1 float64
	K  []float64
}

// NewTanh validates the parameters and returns the function.
func NewTanh(k1 float64, k ...float64) (Tanh, error) {
	if k1 <= 0 || math.IsNaN(k1) || math.IsInf(k1, 0) {
		return Tanh{}, fmt.Errorf("dag: Tanh amplitude %v must be a positive finite number", k1)
	}
	if len(k) == 0 {
		return Tanh{}, fmt.Errorf("dag: Tanh needs at least one rate")
	}
	for _, v := range k {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Tanh{}, fmt.Errorf("dag: Tanh rate %v is not a non-negative finite number", v)
		}
	}
	return Tanh{K1: k1, K: append([]float64(nil), k...)}, nil
}

// Eval implements ThroughputFunc.
func (t Tanh) Eval(in []float64) float64 {
	t.check(len(in))
	var s float64
	for i, v := range in {
		s += t.K[i] * v
	}
	return t.K1 * math.Tanh(s)
}

// EvalAD implements ThroughputFunc.
func (t Tanh) EvalAD(_ *autodiff.Tape, in []autodiff.Value) autodiff.Value {
	t.check(len(in))
	return autodiff.Dot(t.K, in).Tanh().Scale(t.K1)
}

// Name implements ThroughputFunc.
func (t Tanh) Name() string { return "tanh" }

func (t Tanh) check(n int) {
	if n != len(t.K) {
		panic(fmt.Sprintf("dag: Tanh expects %d inputs, got %d", len(t.K), n))
	}
}

// Selectivity returns the one-input Linear h(e) = s·e, the most common case
// (a map/filter/flatMap stage emitting s output tuples per input tuple).
// It panics if s is negative or non-finite, since that is always a
// programming error in workload construction.
func Selectivity(s float64) Linear {
	l, err := NewLinear(s)
	if err != nil {
		panic(err)
	}
	return l
}
