package dag

import (
	"fmt"
	"math"
	"sync"

	"dragster/internal/autodiff"
)

// ThroughputLearner is implemented by throughput functions whose
// parameters are fitted online from observed rates. This is the Theorem 2
// setting of the paper: the user does not know the operator logic, starts
// from a guessed functional form, and "learns its parameters via
// regression in an online manner"; Theorem 2 shows the regret order is
// preserved once the prediction error decays.
type ThroughputLearner interface {
	// ObserveRates feeds one unsaturated steady-state sample: the
	// operator's aggregate input rate and the resulting output rate on
	// this edge. Callers must skip saturated slots (where the output is
	// capacity-truncated rather than h-determined).
	ObserveRates(in, out float64) error
	// PredictionGap reports a relative uncertainty estimate for the
	// current fit in [0, 1] (1 = prior only, → 0 as data accumulates) —
	// the o(1/√T) hand-off condition of Eq. 31 in spirit.
	PredictionGap() float64
}

// LearnedLinear is a single-input linear throughput function h(e) = k·e
// whose selectivity k is estimated online by regularized least squares:
//
//	k̂ = (λ·k₀ + Σ inᵢ·outᵢ) / (λ + Σ inᵢ²)
//
// with k₀ the prior guess and λ a small ridge weight keeping early
// estimates near the prior. It is safe for concurrent use (the graph is
// shared between evaluation and the controller's learning hook).
type LearnedLinear struct {
	mu    sync.RWMutex
	prior float64
	ridge float64
	sxx   float64
	sxy   float64
	n     int
}

// NewLearnedLinear returns a learner with the given prior selectivity
// guess (> 0).
func NewLearnedLinear(prior float64) (*LearnedLinear, error) {
	if prior <= 0 || math.IsNaN(prior) || math.IsInf(prior, 0) {
		return nil, fmt.Errorf("dag: LearnedLinear prior %v must be positive and finite", prior)
	}
	return &LearnedLinear{prior: prior, ridge: 1}, nil
}

// K returns the current selectivity estimate.
func (l *LearnedLinear) K() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.k()
}

func (l *LearnedLinear) k() float64 {
	return (l.ridge*l.prior + l.sxy) / (l.ridge + l.sxx)
}

// Samples returns the number of observations folded in.
func (l *LearnedLinear) Samples() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.n
}

// ObserveRates implements ThroughputLearner. Inputs are normalized before
// accumulation so the ridge weight is meaningful across workload scales.
func (l *LearnedLinear) ObserveRates(in, out float64) error {
	if in <= 0 || out < 0 || math.IsNaN(in) || math.IsNaN(out) || math.IsInf(in, 0) || math.IsInf(out, 0) {
		return fmt.Errorf("dag: invalid rate sample (in=%v, out=%v)", in, out)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Normalize each sample to unit input so every slot carries equal
	// weight regardless of absolute rate: contributes (1, out/in).
	r := out / in
	l.sxx++
	l.sxy += r
	l.n++
	return nil
}

// PredictionGap implements ThroughputLearner: 1/(1+n), which decays
// faster than the o(1/√T) Theorem 2 requires.
func (l *LearnedLinear) PredictionGap() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return 1 / (1 + float64(l.n))
}

// Eval implements ThroughputFunc.
func (l *LearnedLinear) Eval(in []float64) float64 {
	if len(in) != 1 {
		panic(fmt.Sprintf("dag: LearnedLinear expects 1 input, got %d", len(in)))
	}
	return l.K() * in[0]
}

// EvalAD implements ThroughputFunc.
func (l *LearnedLinear) EvalAD(_ *autodiff.Tape, in []autodiff.Value) autodiff.Value {
	if len(in) != 1 {
		panic(fmt.Sprintf("dag: LearnedLinear expects 1 input, got %d", len(in)))
	}
	return in[0].Scale(l.K())
}

// Name implements ThroughputFunc.
func (l *LearnedLinear) Name() string { return "learned-linear" }
