package dag

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// buildChain constructs source → map → shuffle → sink with the given
// selectivities, the WordCount shape used across the evaluation.
func buildChain(t testing.TB, selMap, selShuffle float64) *Graph {
	t.Helper()
	b := NewBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	if err := b.Chain([]NodeID{src, mp, sh, snk}, []ThroughputFunc{nil, Selectivity(selMap), Selectivity(selShuffle)}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildChainBasics(t *testing.T) {
	g := buildChain(t, 2, 1)
	if g.NumOperators() != 2 || g.NumSources() != 1 {
		t.Fatalf("N=%d M=%d", g.NumSources(), g.NumOperators())
	}
	if g.OperatorName(0) != "map" || g.OperatorName(1) != "shuffle" {
		t.Errorf("operator order: %v, %v", g.OperatorName(0), g.OperatorName(1))
	}
	ops := g.Operators()
	if g.OperatorIndex(ops[1]) != 1 {
		t.Errorf("OperatorIndex mismatch")
	}
	if g.OperatorIndex(g.Sources()[0]) != -1 {
		t.Error("source must not have an operator index")
	}
	if g.KindOf(g.Sinks()[0]) != Sink {
		t.Error("sink kind wrong")
	}
	if Kind(42).String() == "" || Source.String() != "source" {
		t.Error("Kind.String broken")
	}
}

func TestEvaluateUncapped(t *testing.T) {
	g := buildChain(t, 2, 1)
	// rate 100, huge capacities: map doubles to 200, shuffle passes 200.
	rep, err := g.Evaluate([]float64{100}, []float64{1e9, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput != 200 {
		t.Errorf("Throughput = %v, want 200", rep.Throughput)
	}
	if rep.Inflow[0] != 100 || rep.Inflow[1] != 200 {
		t.Errorf("Inflow = %v", rep.Inflow)
	}
	if rep.Demand[0] != 200 || rep.Demand[1] != 200 {
		t.Errorf("Demand = %v", rep.Demand)
	}
	if rep.Output[0] != 200 || rep.Output[1] != 200 {
		t.Errorf("Output = %v", rep.Output)
	}
}

func TestEvaluateCapacityTruncation(t *testing.T) {
	g := buildChain(t, 2, 1)
	// Map capacity 150 < demand 200: throughput capped at 150 downstream.
	rep, err := g.Evaluate([]float64{100}, []float64{150, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput != 150 {
		t.Errorf("Throughput = %v, want 150", rep.Throughput)
	}
	// Soft constraint l_0 = Demand − y = 200 − 150 = 50 > 0 (violated).
	if got := rep.Demand[0] - 150; got != 50 {
		t.Errorf("l_map = %v, want 50", got)
	}
	// Shuffle sees only 150 in, demands 150 out.
	if rep.Demand[1] != 150 {
		t.Errorf("shuffle demand = %v, want 150", rep.Demand[1])
	}
}

func TestEvaluateFanOutSplit(t *testing.T) {
	// source splits 0.6/0.4 to two operators which merge at a sink.
	b := NewBuilder()
	src := b.Source("s")
	a := b.Operator("a")
	c := b.Operator("c")
	snk := b.Sink("k")
	b.Edge(src, a, nil, 0.6)
	b.Edge(src, c, nil, 0.4)
	b.Edge(a, snk, Selectivity(1), 1)
	b.Edge(c, snk, Selectivity(1), 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Evaluate([]float64{100}, []float64{1e9, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput != 100 {
		t.Errorf("fan-out throughput = %v, want 100", rep.Throughput)
	}
	if rep.Inflow[g.OperatorIndex(a)] != 60 || rep.Inflow[g.OperatorIndex(c)] != 40 {
		t.Errorf("split inflows = %v", rep.Inflow)
	}
}

func TestEvaluateJoinMinRate(t *testing.T) {
	// Two sources joined: output limited by the slower scaled input.
	b := NewBuilder()
	s1 := b.Source("s1")
	s2 := b.Source("s2")
	j := b.Operator("join")
	snk := b.Sink("k")
	b.Edge(s1, j, nil, 1)
	b.Edge(s2, j, nil, 1)
	mr, err := NewMinRate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Edge(j, snk, mr, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	th, err := g.Throughput([]float64{100, 30}, []float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	if th != 30 {
		t.Errorf("join throughput = %v, want 30", th)
	}
}

func TestAlphaCapacitySplitting(t *testing.T) {
	// One operator fanning out 0.5/0.5 to two sinks with limited capacity:
	// each edge gets at most α·y.
	b := NewBuilder()
	src := b.Source("s")
	op := b.Operator("op")
	k1 := b.Sink("k1")
	k2 := b.Sink("k2")
	b.Edge(src, op, nil, 1)
	b.Edge(op, k1, Selectivity(1), 0.5)
	b.Edge(op, k2, Selectivity(1), 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Evaluate([]float64{100}, []float64{80})
	if err != nil {
		t.Fatal(err)
	}
	// Each edge: min(0.5·80, 100) = 40 → total 80.
	if rep.Throughput != 80 {
		t.Errorf("split-capacity throughput = %v, want 80", rep.Throughput)
	}
}

func TestBuildValidationErrors(t *testing.T) {
	mk := func(f func(b *Builder)) error {
		b := NewBuilder()
		f(b)
		_, err := b.Build()
		return err
	}
	cases := []struct {
		name string
		f    func(b *Builder)
		want string
	}{
		{"empty", func(b *Builder) {}, "empty"},
		{"no sink", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			b.Edge(s, o, nil, 1)
			b.Edge(o, s, Selectivity(1), 1)
		}, "incoming"},
		{"source with h", func(b *Builder) {
			s := b.Source("s")
			k := b.Sink("k")
			b.Edge(s, k, Selectivity(1), 1)
		}, "must not carry"},
		{"operator without h", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			k := b.Sink("k")
			b.Edge(s, o, nil, 1)
			b.Edge(o, k, nil, 1)
		}, "needs a throughput function"},
		{"bad alpha sum", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			k := b.Sink("k")
			b.Edge(s, o, nil, 0.7)
			b.Edge(o, k, Selectivity(1), 1)
		}, "sum to"},
		{"negative alpha", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			k := b.Sink("k")
			b.Edge(s, o, nil, -1)
			b.Edge(o, k, Selectivity(1), 1)
		}, "invalid splitting weight"},
		{"dangling operator", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			b.Operator("lost")
			k := b.Sink("k")
			b.Edge(s, o, nil, 1)
			b.Edge(o, k, Selectivity(1), 1)
		}, "no predecessors"},
		{"isolated source", func(b *Builder) {
			b.Source("s")
			s2 := b.Source("s2")
			o := b.Operator("o")
			k := b.Sink("k")
			b.Edge(s2, o, nil, 1)
			b.Edge(o, k, Selectivity(1), 1)
		}, "no successors"},
		{"duplicate edge", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			k := b.Sink("k")
			b.Edge(s, o, nil, 0.5)
			b.Edge(s, o, nil, 0.5)
			b.Edge(o, k, Selectivity(1), 1)
		}, "duplicate"},
		{"unknown node", func(b *Builder) {
			s := b.Source("s")
			b.Edge(s, NodeID(99), nil, 1)
		}, "unknown node"},
		{"h dimension mismatch", func(b *Builder) {
			s := b.Source("s")
			o := b.Operator("o")
			k := b.Sink("k")
			b.Edge(s, o, nil, 1)
			two, _ := NewLinear(1, 1) // expects 2 inputs, operator has 1
			b.Edge(o, k, two, 1)
		}, "probe failed"},
	}
	for _, c := range cases {
		err := mk(c.f)
		if err == nil {
			t.Errorf("%s: Build succeeded, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder()
	s := b.Source("s")
	o1 := b.Operator("o1")
	o2 := b.Operator("o2")
	k := b.Sink("k")
	b.Edge(s, o1, nil, 1)
	b.Edge(o1, o2, Selectivity(1), 0.5)
	b.Edge(o2, o1, Selectivity(1), 0.5)
	b.Edge(o1, k, Selectivity(1), 0.5)
	b.Edge(o2, k, Selectivity(1), 0.5)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestEvaluateArgValidation(t *testing.T) {
	g := buildChain(t, 1, 1)
	if _, err := g.Evaluate([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("wrong rate count accepted")
	}
	if _, err := g.Evaluate([]float64{1}, []float64{1}); err == nil {
		t.Error("wrong capacity count accepted")
	}
	if _, err := g.Evaluate([]float64{-1}, []float64{1, 1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := g.Evaluate([]float64{1}, []float64{math.NaN(), 1}); err == nil {
		t.Error("NaN capacity accepted")
	}
}

func TestGradientIdentifiesBottleneck(t *testing.T) {
	g := buildChain(t, 2, 1)
	// Map is saturated (capacity 150 < demand 200); shuffle has slack.
	val, grad, err := g.Gradient([]float64{100}, []float64{150, 400})
	if err != nil {
		t.Fatal(err)
	}
	if val != 150 {
		t.Errorf("Gradient value = %v, want 150", val)
	}
	if grad[0] <= 0 {
		t.Errorf("∂f/∂y_map = %v, want positive (bottleneck)", grad[0])
	}
	if grad[1] != 0 {
		t.Errorf("∂f/∂y_shuffle = %v, want 0 (slack)", grad[1])
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	g := buildChain(t, 1.7, 0.9)
	rates := []float64{120}
	y := []float64{160, 130}
	_, grad, err := g.Gradient(rates, y)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for i := range y {
		yp := append([]float64(nil), y...)
		ym := append([]float64(nil), y...)
		yp[i] += h
		ym[i] -= h
		fp, err := g.Throughput(rates, yp)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := g.Throughput(rates, ym)
		if err != nil {
			t.Fatal(err)
		}
		want := (fp - fm) / (2 * h)
		if math.Abs(grad[i]-want) > 1e-6 {
			t.Errorf("grad[%d] = %v, want %v", i, grad[i], want)
		}
	}
}

// TestThroughputMonotoneConcaveProperty verifies the two structural facts
// Theorem 1 leans on: f is non-decreasing in every capacity and concave
// along capacity rays.
func TestThroughputMonotoneConcaveProperty(t *testing.T) {
	g := buildChain(t, 2, 1)
	rates := []float64{100}
	f := func(a, bRaw uint16) bool {
		y1 := 1 + float64(a%500)
		y2 := 1 + float64(bRaw%500)
		base, err := g.Throughput(rates, []float64{y1, y2})
		if err != nil {
			return false
		}
		up, err := g.Throughput(rates, []float64{y1 + 10, y2})
		if err != nil {
			return false
		}
		if up < base-1e-9 { // monotone in y1
			return false
		}
		// concavity along the diagonal: f(mid) ≥ (f(lo)+f(hi))/2
		lo, err := g.Throughput(rates, []float64{y1, y2})
		if err != nil {
			return false
		}
		hi, err := g.Throughput(rates, []float64{y1 + 100, y2 + 100})
		if err != nil {
			return false
		}
		mid, err := g.Throughput(rates, []float64{y1 + 50, y2 + 50})
		if err != nil {
			return false
		}
		return mid >= (lo+hi)/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTanhThroughputFunc(t *testing.T) {
	b := NewBuilder()
	s := b.Source("s")
	o := b.Operator("o")
	k := b.Sink("k")
	b.Edge(s, o, nil, 1)
	th, err := NewTanh(500, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b.Edge(o, k, th, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// tanh saturates: doubling the rate far past the knee barely helps.
	f1, err := g.Throughput([]float64{300}, []float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := g.Throughput([]float64{600}, []float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	if f2-f1 > 20 {
		t.Errorf("tanh did not saturate: f(300)=%v f(600)=%v", f1, f2)
	}
	if f1 >= 500 {
		t.Errorf("tanh exceeded amplitude: %v", f1)
	}
}

func TestThroughputFuncValidation(t *testing.T) {
	if _, err := NewLinear(); err == nil {
		t.Error("empty Linear accepted")
	}
	if _, err := NewLinear(-1); err == nil {
		t.Error("negative Linear rate accepted")
	}
	if _, err := NewMinRate(); err == nil {
		t.Error("empty MinRate accepted")
	}
	if _, err := NewMinRate(math.NaN()); err == nil {
		t.Error("NaN MinRate accepted")
	}
	if _, err := NewTanh(0, 1); err == nil {
		t.Error("zero Tanh amplitude accepted")
	}
	if _, err := NewTanh(1); err == nil {
		t.Error("Tanh without rates accepted")
	}
	for _, fn := range []ThroughputFunc{Selectivity(1), mustMinRate(t, 1), mustTanh(t, 1, 1)} {
		if fn.Name() == "" {
			t.Errorf("%T has empty name", fn)
		}
	}
}

func mustMinRate(t *testing.T, k ...float64) MinRate {
	t.Helper()
	m, err := NewMinRate(k...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustTanh(t *testing.T, k1 float64, k ...float64) Tanh {
	t.Helper()
	th, err := NewTanh(k1, k...)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestSelectivityPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Selectivity(-1) did not panic")
		}
	}()
	Selectivity(-1)
}

func TestGraphAccessorsCopy(t *testing.T) {
	g := buildChain(t, 1, 1)
	ops := g.Operators()
	ops[0] = NodeID(999)
	if g.Operators()[0] == NodeID(999) {
		t.Error("Operators leaked internal slice")
	}
	preds := g.Preds(g.Sinks()[0])
	preds[0] = NodeID(999)
	if g.Preds(g.Sinks()[0])[0] == NodeID(999) {
		t.Error("Preds leaked internal slice")
	}
}

func BenchmarkEvaluateChain(b *testing.B) {
	g := buildChain(b, 2, 1)
	rates := []float64{100}
	y := []float64{150, 300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Evaluate(rates, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradientChain(b *testing.B) {
	g := buildChain(b, 2, 1)
	rates := []float64{100}
	y := []float64{150, 300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Gradient(rates, y); err != nil {
			b.Fatal(err)
		}
	}
}
