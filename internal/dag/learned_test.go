package dag

import (
	"math"
	"sync"
	"testing"
)

func TestNewLearnedLinearValidation(t *testing.T) {
	for _, prior := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLearnedLinear(prior); err == nil {
			t.Errorf("prior %v accepted", prior)
		}
	}
}

func TestLearnedLinearStartsAtPrior(t *testing.T) {
	l, err := NewLearnedLinear(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 1.5 {
		t.Errorf("initial K = %v, want prior 1.5", l.K())
	}
	if l.Samples() != 0 {
		t.Errorf("Samples = %d", l.Samples())
	}
	if l.PredictionGap() != 1 {
		t.Errorf("initial PredictionGap = %v, want 1", l.PredictionGap())
	}
	if got := l.Eval([]float64{10}); got != 15 {
		t.Errorf("Eval = %v, want 15", got)
	}
}

func TestLearnedLinearConvergesToTruth(t *testing.T) {
	l, err := NewLearnedLinear(0.5)
	if err != nil {
		t.Fatal(err)
	}
	const trueK = 2.0
	for i := 0; i < 50; i++ {
		in := 100.0 + float64(i)
		if err := l.ObserveRates(in, trueK*in); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(l.K()-trueK) > 0.05 {
		t.Errorf("K = %v, want ≈%v", l.K(), trueK)
	}
	if l.PredictionGap() > 0.02 {
		t.Errorf("PredictionGap = %v, want decayed", l.PredictionGap())
	}
	if l.Samples() != 50 {
		t.Errorf("Samples = %d", l.Samples())
	}
}

func TestLearnedLinearGapDecaysFasterThanSqrtT(t *testing.T) {
	// The Theorem 2 condition: prediction error o(1/√T).
	l, err := NewLearnedLinear(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := l.ObserveRates(1, 2); err != nil {
			t.Fatal(err)
		}
		if g := l.PredictionGap(); g > 1/math.Sqrt(float64(i)) {
			t.Fatalf("gap %v at n=%d above 1/√n", g, i)
		}
	}
}

func TestLearnedLinearRejectsBadSamples(t *testing.T) {
	l, err := NewLearnedLinear(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range [][2]float64{{0, 1}, {-1, 1}, {1, -1}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if err := l.ObserveRates(s[0], s[1]); err == nil {
			t.Errorf("sample %v accepted", s)
		}
	}
	if l.Samples() != 0 {
		t.Errorf("bad samples were counted: %d", l.Samples())
	}
}

func TestLearnedLinearInGraph(t *testing.T) {
	l, err := NewLearnedLinear(1)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	src := b.Source("s")
	op := b.Operator("op")
	snk := b.Sink("k")
	b.Edge(src, op, nil, 1)
	b.Edge(op, snk, l, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	th, err := g.Throughput([]float64{100}, []float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	if th != 100 {
		t.Errorf("throughput with prior k=1: %v", th)
	}
	// Learning updates flow through subsequent evaluations (the graph
	// holds the pointer).
	for i := 0; i < 20; i++ {
		if err := l.ObserveRates(100, 300); err != nil {
			t.Fatal(err)
		}
	}
	th, err = g.Throughput([]float64{100}, []float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	if th < 280 {
		t.Errorf("throughput after learning k≈3: %v", th)
	}
	// Gradient path exercises EvalAD with the learned k.
	_, grad, err := g.Gradient([]float64{100}, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if grad[0] <= 0 {
		t.Errorf("gradient with learned h = %v", grad[0])
	}
	if l.Name() != "learned-linear" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLearnedLinearConcurrentSafety(t *testing.T) {
	l, err := NewLearnedLinear(1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = l.ObserveRates(1, 2)
				_ = l.K()
				_ = l.Eval([]float64{1})
			}
		}()
	}
	wg.Wait()
	if math.Abs(l.K()-2) > 0.01 {
		t.Errorf("K after concurrent updates = %v", l.K())
	}
}

func TestLearnedLinearPanicsOnWrongArity(t *testing.T) {
	l, err := NewLearnedLinear(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("two-input Eval did not panic")
		}
	}()
	l.Eval([]float64{1, 2})
}
