// Package dagtest provides a random layered-DAG generator shared by the
// property-based tests of the dag, streamsim and experiment packages.
// Test-only: keep out of production code paths.
package dagtest

import (
	"fmt"

	"dragster/internal/dag"
	"dragster/internal/stats"
)

// RandomLayeredGraph builds a random layered DAG: 1–2 sources, 1–3 layers
// of 1–3 operators, one sink. Every node feeds and is fed by the adjacent
// layers; splitting weights are normalized; edge functions are random
// multi-input linear forms with rates in [0.3, 2.0] — increasing and
// concave, per the paper's assumptions.
func RandomLayeredGraph(rng *stats.RNG) (*dag.Graph, error) {
	b := dag.NewBuilder()

	nSources := 1 + rng.Intn(2)
	nLayers := 1 + rng.Intn(3)

	kinds := map[dag.NodeID]dag.Kind{}
	var layers [][]dag.NodeID
	var srcs []dag.NodeID
	for i := 0; i < nSources; i++ {
		id := b.Source(fmt.Sprintf("src-%d", i))
		kinds[id] = dag.Source
		srcs = append(srcs, id)
	}
	layers = append(layers, srcs)
	for l := 0; l < nLayers; l++ {
		width := 1 + rng.Intn(3)
		var layer []dag.NodeID
		for i := 0; i < width; i++ {
			id := b.Operator(fmt.Sprintf("op-%d-%d", l, i))
			kinds[id] = dag.Operator
			layer = append(layer, id)
		}
		layers = append(layers, layer)
	}
	sink := b.Sink("sink")
	kinds[sink] = dag.Sink
	layers = append(layers, []dag.NodeID{sink})

	type edge struct{ from, to dag.NodeID }
	var edges []edge
	addEdge := func(from, to dag.NodeID) {
		for _, e := range edges {
			if e.from == from && e.to == to {
				return
			}
		}
		edges = append(edges, edge{from, to})
	}
	for k := 0; k+1 < len(layers); k++ {
		cur, next := layers[k], layers[k+1]
		for i, from := range cur {
			addEdge(from, next[i%len(next)])
		}
		for i, to := range next {
			addEdge(cur[i%len(cur)], to)
		}
		if rng.Float64() < 0.5 {
			addEdge(cur[rng.Intn(len(cur))], next[rng.Intn(len(next))])
		}
	}
	inCount := map[dag.NodeID]int{}
	outCount := map[dag.NodeID]int{}
	for _, e := range edges {
		inCount[e.to]++
		outCount[e.from]++
	}
	for _, e := range edges {
		alpha := 1.0 / float64(outCount[e.from])
		var h dag.ThroughputFunc
		if kinds[e.from] == dag.Operator {
			ks := make([]float64, inCount[e.from])
			for i := range ks {
				ks[i] = 0.3 + 1.7*rng.Float64()
			}
			lin, err := dag.NewLinear(ks...)
			if err != nil {
				return nil, err
			}
			h = lin
		}
		b.Edge(e.from, e.to, h, alpha)
	}
	return b.Build()
}
