package dag_test

import (
	"math"
	"testing"

	"dragster/internal/dag"
	"dragster/internal/dag/dagtest"
	"dragster/internal/stats"
)

// randomLayeredGraph delegates to the shared dagtest generator.
func randomLayeredGraph(t testing.TB, rng *stats.RNG) *dag.Graph {
	t.Helper()
	g, err := dagtest.RandomLayeredGraph(rng)
	if err != nil {
		t.Fatalf("random graph invalid: %v", err)
	}
	return g
}

func TestRandomGraphsEvaluateCleanly(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 60; trial++ {
		g := randomLayeredGraph(t, rng)
		rates := make([]float64, g.NumSources())
		for i := range rates {
			rates[i] = rng.Uniform(10, 1000)
		}
		y := make([]float64, g.NumOperators())
		for i := range y {
			y[i] = rng.Uniform(1, 5000)
		}
		rep, err := g.Evaluate(rates, y)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.Throughput < 0 || math.IsNaN(rep.Throughput) || math.IsInf(rep.Throughput, 0) {
			t.Fatalf("trial %d: throughput %v", trial, rep.Throughput)
		}
		for i := range y {
			if rep.Output[i] > y[i]+1e-9 {
				t.Fatalf("trial %d: operator %d emitted %v above capacity %v", trial, i, rep.Output[i], y[i])
			}
			if rep.Output[i] > rep.Demand[i]+1e-9 {
				t.Fatalf("trial %d: operator %d emitted %v above demand %v", trial, i, rep.Output[i], rep.Demand[i])
			}
		}
	}
}

func TestRandomGraphsMonotoneInCapacity(t *testing.T) {
	rng := stats.NewRNG(32)
	for trial := 0; trial < 40; trial++ {
		g := randomLayeredGraph(t, rng)
		rates := make([]float64, g.NumSources())
		for i := range rates {
			rates[i] = rng.Uniform(10, 1000)
		}
		y := make([]float64, g.NumOperators())
		for i := range y {
			y[i] = rng.Uniform(1, 2000)
		}
		base, err := g.Throughput(rates, y)
		if err != nil {
			t.Fatal(err)
		}
		// Raising any single capacity must never decrease throughput.
		for i := range y {
			up := append([]float64(nil), y...)
			up[i] *= 1.5
			f, err := g.Throughput(rates, up)
			if err != nil {
				t.Fatal(err)
			}
			if f < base-1e-9 {
				t.Fatalf("trial %d: raising y[%d] decreased throughput %v → %v", trial, i, base, f)
			}
		}
	}
}

func TestRandomGraphsConcaveAlongRays(t *testing.T) {
	rng := stats.NewRNG(33)
	for trial := 0; trial < 40; trial++ {
		g := randomLayeredGraph(t, rng)
		rates := make([]float64, g.NumSources())
		for i := range rates {
			rates[i] = rng.Uniform(10, 1000)
		}
		lo := make([]float64, g.NumOperators())
		hi := make([]float64, g.NumOperators())
		mid := make([]float64, g.NumOperators())
		for i := range lo {
			lo[i] = rng.Uniform(1, 1000)
			hi[i] = lo[i] + rng.Uniform(1, 2000)
			mid[i] = (lo[i] + hi[i]) / 2
		}
		fLo, err := g.Throughput(rates, lo)
		if err != nil {
			t.Fatal(err)
		}
		fHi, err := g.Throughput(rates, hi)
		if err != nil {
			t.Fatal(err)
		}
		fMid, err := g.Throughput(rates, mid)
		if err != nil {
			t.Fatal(err)
		}
		if fMid < (fLo+fHi)/2-1e-6 {
			t.Fatalf("trial %d: f not concave along ray: f(mid)=%v < avg(%v, %v)", trial, fMid, fLo, fHi)
		}
	}
}

func TestRandomGraphsGradientNonNegativeAndConsistent(t *testing.T) {
	rng := stats.NewRNG(34)
	for trial := 0; trial < 40; trial++ {
		g := randomLayeredGraph(t, rng)
		rates := make([]float64, g.NumSources())
		for i := range rates {
			rates[i] = rng.Uniform(10, 1000)
		}
		y := make([]float64, g.NumOperators())
		for i := range y {
			y[i] = rng.Uniform(1, 2000)
		}
		val, grad, err := g.Gradient(rates, y)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := g.Throughput(rates, y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(val-direct) > 1e-9*(1+direct) {
			t.Fatalf("trial %d: Gradient value %v differs from Evaluate %v", trial, val, direct)
		}
		for i, gi := range grad {
			if gi < 0 {
				t.Fatalf("trial %d: negative subgradient %v for y[%d] of a monotone function", trial, gi, i)
			}
			if math.IsNaN(gi) || math.IsInf(gi, 0) {
				t.Fatalf("trial %d: non-finite gradient %v", trial, gi)
			}
		}
	}
}

func TestRandomGraphsLagrangianReducesToThroughputAtZeroDuals(t *testing.T) {
	rng := stats.NewRNG(35)
	for trial := 0; trial < 20; trial++ {
		g := randomLayeredGraph(t, rng)
		rates := make([]float64, g.NumSources())
		for i := range rates {
			rates[i] = rng.Uniform(10, 1000)
		}
		y := make([]float64, g.NumOperators())
		lambda := make([]float64, g.NumOperators())
		for i := range y {
			y[i] = rng.Uniform(1, 2000)
		}
		l, _, err := g.LagrangianGradient(rates, y, lambda)
		if err != nil {
			t.Fatal(err)
		}
		f, err := g.Throughput(rates, y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l-f) > 1e-9*(1+f) {
			t.Fatalf("trial %d: L(y, 0) = %v ≠ f(y) = %v", trial, l, f)
		}
	}
}
