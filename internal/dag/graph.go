package dag

import (
	"errors"
	"fmt"
	"math"

	"dragster/internal/autodiff"
)

// Kind classifies a node in the data stream graph.
type Kind int

// Node kinds. A Source reads from an external queue and emits tuples, an
// Operator consumes and transforms tuples under a service-capacity limit,
// and a Sink absorbs results (its inflow is the application throughput).
const (
	Source Kind = iota
	Operator
	Sink
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Source:
		return "source"
	case Operator:
		return "operator"
	case Sink:
		return "sink"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeID identifies a node within one Graph.
type NodeID int

// EdgeKey identifies a directed edge.
type EdgeKey struct {
	From, To NodeID
}

// Graph is a validated, immutable stream-application DAG. Build one with a
// Builder. All query methods are safe for concurrent use.
type Graph struct {
	names []string
	kinds []Kind

	preds [][]NodeID // ordered; defines the input-vector order for h
	succs [][]NodeID

	edgeH     map[EdgeKey]ThroughputFunc
	edgeAlpha map[EdgeKey]float64

	topo      []NodeID
	sources   []NodeID
	operators []NodeID
	sinks     []NodeID
	opIndex   map[NodeID]int // NodeID -> dense operator index
	srcIndex  map[NodeID]int
}

// Builder accumulates nodes and edges for a Graph.
type Builder struct {
	names []string
	kinds []Kind
	edges []builderEdge
}

type builderEdge struct {
	from, to NodeID
	h        ThroughputFunc
	alpha    float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) addNode(name string, k Kind) NodeID {
	b.names = append(b.names, name)
	b.kinds = append(b.kinds, k)
	return NodeID(len(b.names) - 1)
}

// Source declares a source node and returns its ID.
func (b *Builder) Source(name string) NodeID { return b.addNode(name, Source) }

// Operator declares an operator node and returns its ID.
func (b *Builder) Operator(name string) NodeID { return b.addNode(name, Operator) }

// Sink declares a sink node and returns its ID. Multiple sinks are allowed;
// the application throughput is the sum of their inflows (the paper's
// virtual-sink construction).
func (b *Builder) Sink(name string) NodeID { return b.addNode(name, Sink) }

// Edge declares a directed edge from → to. For edges leaving an operator,
// h is the throughput function h_{from,to} and must be non-nil; for edges
// leaving a source, h must be nil (a source emits its offered rate
// directly). alpha is the capacity-splitting weight α_{from,to}; the
// weights leaving each node must sum to 1 (checked at Build).
func (b *Builder) Edge(from, to NodeID, h ThroughputFunc, alpha float64) {
	b.edges = append(b.edges, builderEdge{from: from, to: to, h: h, alpha: alpha})
}

// Chain is a convenience for linear pipelines: it connects each consecutive
// pair with alpha = 1 and the supplied throughput functions (hs[i] connects
// nodes[i] → nodes[i+1]; use nil for the source's outgoing edge).
func (b *Builder) Chain(nodes []NodeID, hs []ThroughputFunc) error {
	if len(hs) != len(nodes)-1 {
		return fmt.Errorf("dag: Chain needs %d throughput functions for %d nodes, got %d", len(nodes)-1, len(nodes), len(hs))
	}
	for i := 0; i+1 < len(nodes); i++ {
		b.Edge(nodes[i], nodes[i+1], hs[i], 1)
	}
	return nil
}

// Build validates the accumulated topology and returns an immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.names)
	if n == 0 {
		return nil, errors.New("dag: empty graph")
	}
	g := &Graph{
		names:     append([]string(nil), b.names...),
		kinds:     append([]Kind(nil), b.kinds...),
		preds:     make([][]NodeID, n),
		succs:     make([][]NodeID, n),
		edgeH:     make(map[EdgeKey]ThroughputFunc, len(b.edges)),
		edgeAlpha: make(map[EdgeKey]float64, len(b.edges)),
		opIndex:   make(map[NodeID]int),
		srcIndex:  make(map[NodeID]int),
	}
	for _, e := range b.edges {
		if e.from < 0 || int(e.from) >= n || e.to < 0 || int(e.to) >= n {
			return nil, fmt.Errorf("dag: edge (%d→%d) references unknown node", e.from, e.to)
		}
		key := EdgeKey{From: e.from, To: e.to}
		if _, dup := g.edgeAlpha[key]; dup {
			return nil, fmt.Errorf("dag: duplicate edge %s→%s", g.names[e.from], g.names[e.to])
		}
		if g.kinds[e.from] == Sink {
			return nil, fmt.Errorf("dag: sink %q cannot have outgoing edges", g.names[e.from])
		}
		if g.kinds[e.to] == Source {
			return nil, fmt.Errorf("dag: source %q cannot have incoming edges", g.names[e.to])
		}
		switch g.kinds[e.from] {
		case Source:
			if e.h != nil {
				return nil, fmt.Errorf("dag: edge %s→%s leaves a source and must not carry a throughput function", g.names[e.from], g.names[e.to])
			}
		case Operator:
			if e.h == nil {
				return nil, fmt.Errorf("dag: edge %s→%s leaves an operator and needs a throughput function", g.names[e.from], g.names[e.to])
			}
		}
		if e.alpha < 0 || math.IsNaN(e.alpha) || math.IsInf(e.alpha, 0) {
			return nil, fmt.Errorf("dag: edge %s→%s has invalid splitting weight %v", g.names[e.from], g.names[e.to], e.alpha)
		}
		g.preds[e.to] = append(g.preds[e.to], e.from)
		g.succs[e.from] = append(g.succs[e.from], e.to)
		g.edgeH[key] = e.h
		g.edgeAlpha[key] = e.alpha
	}

	for id := 0; id < n; id++ {
		nid := NodeID(id)
		switch g.kinds[id] {
		case Source:
			if len(g.succs[id]) == 0 {
				return nil, fmt.Errorf("dag: source %q has no successors", g.names[id])
			}
			g.srcIndex[nid] = len(g.sources)
			g.sources = append(g.sources, nid)
		case Operator:
			if len(g.preds[id]) == 0 {
				return nil, fmt.Errorf("dag: operator %q has no predecessors", g.names[id])
			}
			if len(g.succs[id]) == 0 {
				return nil, fmt.Errorf("dag: operator %q has no successors", g.names[id])
			}
			g.opIndex[nid] = len(g.operators)
			g.operators = append(g.operators, nid)
		case Sink:
			if len(g.preds[id]) == 0 {
				return nil, fmt.Errorf("dag: sink %q has no predecessors", g.names[id])
			}
			g.sinks = append(g.sinks, nid)
		}
		if len(g.succs[id]) > 0 {
			var sum float64
			for _, s := range g.succs[id] {
				sum += g.edgeAlpha[EdgeKey{From: nid, To: s}]
			}
			if math.Abs(sum-1) > 1e-9 {
				return nil, fmt.Errorf("dag: splitting weights leaving %q sum to %v, want 1", g.names[id], sum)
			}
		}
	}
	if len(g.sinks) == 0 {
		return nil, errors.New("dag: graph has no sink")
	}
	if len(g.sources) == 0 {
		return nil, errors.New("dag: graph has no source")
	}

	topo, err := g.topoSort()
	if err != nil {
		return nil, err
	}
	g.topo = topo

	if err := g.probe(); err != nil {
		return nil, err
	}
	return g, nil
}

// topoSort runs Kahn's algorithm, returning an order or a cycle error.
func (g *Graph) topoSort() ([]NodeID, error) {
	n := len(g.names)
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = len(g.preds[id])
	}
	var queue []NodeID
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, NodeID(id))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range g.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("dag: graph contains a cycle")
	}
	return order, nil
}

// probe runs a dummy evaluation to surface throughput-function dimension
// mismatches at build time instead of first use.
func (g *Graph) probe() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dag: throughput function probe failed: %v", r)
		}
	}()
	rates := make([]float64, len(g.sources))
	for i := range rates {
		rates[i] = 1
	}
	y := make([]float64, len(g.operators))
	for i := range y {
		y[i] = 1
	}
	_, err = g.Evaluate(rates, y)
	return err
}

// NumOperators returns M, the number of operators.
func (g *Graph) NumOperators() int { return len(g.operators) }

// NumSources returns N, the number of sources.
func (g *Graph) NumSources() int { return len(g.sources) }

// Operators returns the operator node IDs in dense-index order.
func (g *Graph) Operators() []NodeID { return append([]NodeID(nil), g.operators...) }

// Sources returns the source node IDs in dense-index order.
func (g *Graph) Sources() []NodeID { return append([]NodeID(nil), g.sources...) }

// Sinks returns the sink node IDs.
func (g *Graph) Sinks() []NodeID { return append([]NodeID(nil), g.sinks...) }

// Name returns the node's name.
func (g *Graph) Name(id NodeID) string { return g.names[id] }

// KindOf returns the node's kind.
func (g *Graph) KindOf(id NodeID) Kind { return g.kinds[id] }

// OperatorIndex returns the dense index of an operator node (the position
// of its capacity in capacity vectors), or -1 if id is not an operator.
func (g *Graph) OperatorIndex(id NodeID) int {
	if i, ok := g.opIndex[id]; ok {
		return i
	}
	return -1
}

// OperatorName returns the name of the operator with dense index i.
func (g *Graph) OperatorName(i int) string { return g.names[g.operators[i]] }

// Preds returns the ordered predecessor list of a node.
func (g *Graph) Preds(id NodeID) []NodeID { return append([]NodeID(nil), g.preds[id]...) }

// Succs returns the ordered successor list of a node.
func (g *Graph) Succs(id NodeID) []NodeID { return append([]NodeID(nil), g.succs[id]...) }

// Alpha returns the capacity-splitting weight of edge e.
func (g *Graph) Alpha(e EdgeKey) float64 { return g.edgeAlpha[e] }

// H returns the throughput function of edge e (nil for source edges).
func (g *Graph) H(e EdgeKey) ThroughputFunc { return g.edgeH[e] }

// FlowReport is the result of one steady-state evaluation of the DAG.
type FlowReport struct {
	// Throughput is f(y): the total inflow into sinks (tuples/s).
	Throughput float64
	// EdgeFlows maps each edge to its carried throughput.
	EdgeFlows map[EdgeKey]float64
	// Inflow[i] is the total throughput arriving at operator index i.
	Inflow []float64
	// Demand[i] is Σ_{j∈S_i} h_{i,j}(e_i): the output the operator would
	// emit with unlimited capacity. l_i = Demand[i] − y[i] is the
	// soft-constraint of Eq. 11.
	Demand []float64
	// Output[i] is the actual (capacity-truncated) total emitted.
	Output []float64
}

func (g *Graph) checkEvalArgs(rates, y []float64) error {
	if len(rates) != len(g.sources) {
		return fmt.Errorf("dag: got %d source rates, want %d", len(rates), len(g.sources))
	}
	if len(y) != len(g.operators) {
		return fmt.Errorf("dag: got %d capacities, want %d", len(y), len(g.operators))
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("dag: source rate[%d] = %v invalid", i, r)
		}
	}
	for i, c := range y {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("dag: capacity y[%d] = %v invalid", i, c)
		}
	}
	return nil
}

// Evaluate computes the steady-state flows for given source rates (by
// source index) and operator capacities y (by operator index), applying
// the truncation of Eq. 4 along one topological pass.
func (g *Graph) Evaluate(rates, y []float64) (*FlowReport, error) {
	if err := g.checkEvalArgs(rates, y); err != nil {
		return nil, err
	}
	rep := &FlowReport{
		EdgeFlows: make(map[EdgeKey]float64, len(g.edgeAlpha)),
		Inflow:    make([]float64, len(g.operators)),
		Demand:    make([]float64, len(g.operators)),
		Output:    make([]float64, len(g.operators)),
	}
	for _, id := range g.topo {
		switch g.kinds[id] {
		case Source:
			rate := rates[g.srcIndex[id]]
			for _, s := range g.succs[id] {
				key := EdgeKey{From: id, To: s}
				rep.EdgeFlows[key] = g.edgeAlpha[key] * rate
			}
		case Operator:
			oi := g.opIndex[id]
			in := make([]float64, len(g.preds[id]))
			for k, p := range g.preds[id] {
				in[k] = rep.EdgeFlows[EdgeKey{From: p, To: id}]
				rep.Inflow[oi] += in[k]
			}
			for _, s := range g.succs[id] {
				key := EdgeKey{From: id, To: s}
				want := g.edgeH[key].Eval(in)
				rep.Demand[oi] += want
				flow := math.Min(g.edgeAlpha[key]*y[oi], want)
				rep.EdgeFlows[key] = flow
				rep.Output[oi] += flow
			}
		case Sink:
			for _, p := range g.preds[id] {
				rep.Throughput += rep.EdgeFlows[EdgeKey{From: p, To: id}]
			}
		}
	}
	return rep, nil
}

// Throughput is shorthand for Evaluate(...).Throughput.
func (g *Graph) Throughput(rates, y []float64) (float64, error) {
	rep, err := g.Evaluate(rates, y)
	if err != nil {
		return 0, err
	}
	return rep.Throughput, nil
}

// evalTape records the topological evaluation on an autodiff tape and
// returns the taped application throughput f plus the per-operator demand
// Σ_{j∈S_i} h_{i,j}(e_i) (the unconstrained desired output used by the
// soft-constraints of Eq. 11).
func (g *Graph) evalTape(t *autodiff.Tape, rates []float64, vars []autodiff.Value) (f autodiff.Value, demand []autodiff.Value) {
	flows := make(map[EdgeKey]autodiff.Value, len(g.edgeAlpha))
	demand = make([]autodiff.Value, len(g.operators))
	total := t.Const(0)
	for _, id := range g.topo {
		switch g.kinds[id] {
		case Source:
			rate := rates[g.srcIndex[id]]
			for _, s := range g.succs[id] {
				key := EdgeKey{From: id, To: s}
				flows[key] = t.Const(g.edgeAlpha[key] * rate)
			}
		case Operator:
			oi := g.opIndex[id]
			in := make([]autodiff.Value, len(g.preds[id]))
			for k, p := range g.preds[id] {
				in[k] = flows[EdgeKey{From: p, To: id}]
			}
			dem := t.Const(0)
			for _, s := range g.succs[id] {
				key := EdgeKey{From: id, To: s}
				want := g.edgeH[key].EvalAD(t, in)
				dem = dem.Add(want)
				flows[key] = vars[oi].Scale(g.edgeAlpha[key]).Min(want)
			}
			demand[oi] = dem
		case Sink:
			for _, p := range g.preds[id] {
				total = total.Add(flows[EdgeKey{From: p, To: id}])
			}
		}
	}
	return total, demand
}

// Gradient returns f(y) and ∂f/∂y_i for every operator, computed by taping
// the topological evaluation with reverse-mode autodiff (the substitute
// for the paper's PyTorch-autograd bottleneck identification).
func (g *Graph) Gradient(rates, y []float64) (float64, []float64, error) {
	if err := g.checkEvalArgs(rates, y); err != nil {
		return 0, nil, err
	}
	val, grad := autodiff.Gradient(y, func(t *autodiff.Tape, vars []autodiff.Value) autodiff.Value {
		f, _ := g.evalTape(t, rates, vars)
		return f
	})
	return val, grad, nil
}

// LagrangianGradient returns the per-slot Lagrangian of Eq. 13,
//
//	L(y, λ) = f(y) − Σ_i λ_i · (demand_i(y) − y_i),
//
// and its gradient with respect to y. The online saddle point and online
// gradient descent algorithms maximize this over y.
func (g *Graph) LagrangianGradient(rates, y, lambda []float64) (float64, []float64, error) {
	if err := g.checkEvalArgs(rates, y); err != nil {
		return 0, nil, err
	}
	if len(lambda) != len(g.operators) {
		return 0, nil, fmt.Errorf("dag: got %d multipliers, want %d", len(lambda), len(g.operators))
	}
	for i, l := range lambda {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return 0, nil, fmt.Errorf("dag: multiplier λ[%d] = %v invalid", i, l)
		}
	}
	val, grad := autodiff.Gradient(y, func(t *autodiff.Tape, vars []autodiff.Value) autodiff.Value {
		f, demand := g.evalTape(t, rates, vars)
		out := f
		for i, dem := range demand {
			if lambda[i] == 0 {
				continue
			}
			// −λ_i·(demand_i − y_i)
			out = out.Sub(dem.Sub(vars[i]).Scale(lambda[i]))
		}
		return out
	})
	return val, grad, nil
}
