package dag

import (
	"errors"
	"fmt"
	"math"

	"dragster/internal/autodiff"
)

// Kind classifies a node in the data stream graph.
type Kind int

// Node kinds. A Source reads from an external queue and emits tuples, an
// Operator consumes and transforms tuples under a service-capacity limit,
// and a Sink absorbs results (its inflow is the application throughput).
const (
	Source Kind = iota
	Operator
	Sink
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Source:
		return "source"
	case Operator:
		return "operator"
	case Sink:
		return "sink"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeID identifies a node within one Graph.
type NodeID int

// EdgeKey identifies a directed edge.
type EdgeKey struct {
	From, To NodeID
}

// Graph is a validated, immutable stream-application DAG. Build one with a
// Builder. All query methods are safe for concurrent use.
type Graph struct {
	names []string
	kinds []Kind

	preds [][]NodeID // ordered; defines the input-vector order for h
	succs [][]NodeID

	edgeH     map[EdgeKey]ThroughputFunc
	edgeAlpha map[EdgeKey]float64

	// Flat edge index, built once at Build so per-tick consumers
	// (streamsim, Evaluate) touch dense arrays instead of the maps above:
	// edge IDs are assigned walking nodes in ID order and each node's
	// successor list in declaration order.
	edges      []EdgeKey        // edge ID -> key
	alphaByID  []float64        // edge ID -> α
	hByID      []ThroughputFunc // edge ID -> h (nil for source edges)
	predEdges  [][]int32        // node -> incoming edge IDs, preds order
	succEdges  [][]int32        // node -> outgoing edge IDs, succs order
	maxInEdges int              // max len(preds) over all nodes

	topo      []NodeID
	sources   []NodeID
	operators []NodeID
	sinks     []NodeID
	opIndex   map[NodeID]int // NodeID -> dense operator index
	srcIndex  map[NodeID]int
}

// Builder accumulates nodes and edges for a Graph.
type Builder struct {
	names []string
	kinds []Kind
	edges []builderEdge
}

type builderEdge struct {
	from, to NodeID
	h        ThroughputFunc
	alpha    float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) addNode(name string, k Kind) NodeID {
	b.names = append(b.names, name)
	b.kinds = append(b.kinds, k)
	return NodeID(len(b.names) - 1)
}

// Source declares a source node and returns its ID.
func (b *Builder) Source(name string) NodeID { return b.addNode(name, Source) }

// Operator declares an operator node and returns its ID.
func (b *Builder) Operator(name string) NodeID { return b.addNode(name, Operator) }

// Sink declares a sink node and returns its ID. Multiple sinks are allowed;
// the application throughput is the sum of their inflows (the paper's
// virtual-sink construction).
func (b *Builder) Sink(name string) NodeID { return b.addNode(name, Sink) }

// Edge declares a directed edge from → to. For edges leaving an operator,
// h is the throughput function h_{from,to} and must be non-nil; for edges
// leaving a source, h must be nil (a source emits its offered rate
// directly). alpha is the capacity-splitting weight α_{from,to}; the
// weights leaving each node must sum to 1 (checked at Build).
func (b *Builder) Edge(from, to NodeID, h ThroughputFunc, alpha float64) {
	b.edges = append(b.edges, builderEdge{from: from, to: to, h: h, alpha: alpha})
}

// Chain is a convenience for linear pipelines: it connects each consecutive
// pair with alpha = 1 and the supplied throughput functions (hs[i] connects
// nodes[i] → nodes[i+1]; use nil for the source's outgoing edge).
func (b *Builder) Chain(nodes []NodeID, hs []ThroughputFunc) error {
	if len(hs) != len(nodes)-1 {
		return fmt.Errorf("dag: Chain needs %d throughput functions for %d nodes, got %d", len(nodes)-1, len(nodes), len(hs))
	}
	for i := 0; i+1 < len(nodes); i++ {
		b.Edge(nodes[i], nodes[i+1], hs[i], 1)
	}
	return nil
}

// Build validates the accumulated topology and returns an immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.names)
	if n == 0 {
		return nil, errors.New("dag: empty graph")
	}
	g := &Graph{
		names:     append([]string(nil), b.names...),
		kinds:     append([]Kind(nil), b.kinds...),
		preds:     make([][]NodeID, n),
		succs:     make([][]NodeID, n),
		edgeH:     make(map[EdgeKey]ThroughputFunc, len(b.edges)),
		edgeAlpha: make(map[EdgeKey]float64, len(b.edges)),
		opIndex:   make(map[NodeID]int),
		srcIndex:  make(map[NodeID]int),
	}
	for _, e := range b.edges {
		if e.from < 0 || int(e.from) >= n || e.to < 0 || int(e.to) >= n {
			return nil, fmt.Errorf("dag: edge (%d→%d) references unknown node", e.from, e.to)
		}
		key := EdgeKey{From: e.from, To: e.to}
		if _, dup := g.edgeAlpha[key]; dup {
			return nil, fmt.Errorf("dag: duplicate edge %s→%s", g.names[e.from], g.names[e.to])
		}
		if g.kinds[e.from] == Sink {
			return nil, fmt.Errorf("dag: sink %q cannot have outgoing edges", g.names[e.from])
		}
		if g.kinds[e.to] == Source {
			return nil, fmt.Errorf("dag: source %q cannot have incoming edges", g.names[e.to])
		}
		switch g.kinds[e.from] {
		case Source:
			if e.h != nil {
				return nil, fmt.Errorf("dag: edge %s→%s leaves a source and must not carry a throughput function", g.names[e.from], g.names[e.to])
			}
		case Operator:
			if e.h == nil {
				return nil, fmt.Errorf("dag: edge %s→%s leaves an operator and needs a throughput function", g.names[e.from], g.names[e.to])
			}
		}
		if e.alpha < 0 || math.IsNaN(e.alpha) || math.IsInf(e.alpha, 0) {
			return nil, fmt.Errorf("dag: edge %s→%s has invalid splitting weight %v", g.names[e.from], g.names[e.to], e.alpha)
		}
		g.preds[e.to] = append(g.preds[e.to], e.from)
		g.succs[e.from] = append(g.succs[e.from], e.to)
		g.edgeH[key] = e.h
		g.edgeAlpha[key] = e.alpha
	}

	for id := 0; id < n; id++ {
		nid := NodeID(id)
		switch g.kinds[id] {
		case Source:
			if len(g.succs[id]) == 0 {
				return nil, fmt.Errorf("dag: source %q has no successors", g.names[id])
			}
			g.srcIndex[nid] = len(g.sources)
			g.sources = append(g.sources, nid)
		case Operator:
			if len(g.preds[id]) == 0 {
				return nil, fmt.Errorf("dag: operator %q has no predecessors", g.names[id])
			}
			if len(g.succs[id]) == 0 {
				return nil, fmt.Errorf("dag: operator %q has no successors", g.names[id])
			}
			g.opIndex[nid] = len(g.operators)
			g.operators = append(g.operators, nid)
		case Sink:
			if len(g.preds[id]) == 0 {
				return nil, fmt.Errorf("dag: sink %q has no predecessors", g.names[id])
			}
			g.sinks = append(g.sinks, nid)
		}
		if len(g.succs[id]) > 0 {
			var sum float64
			for _, s := range g.succs[id] {
				sum += g.edgeAlpha[EdgeKey{From: nid, To: s}]
			}
			if math.Abs(sum-1) > 1e-9 {
				return nil, fmt.Errorf("dag: splitting weights leaving %q sum to %v, want 1", g.names[id], sum)
			}
		}
	}
	if len(g.sinks) == 0 {
		return nil, errors.New("dag: graph has no sink")
	}
	if len(g.sources) == 0 {
		return nil, errors.New("dag: graph has no source")
	}

	topo, err := g.topoSort()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	g.buildEdgeIndex()

	if err := g.probe(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildEdgeIndex assigns each edge a dense ID and materializes the flat
// per-node adjacency arrays the hot paths iterate. Called once from Build;
// the maps stay authoritative for key-based queries (Alpha, H).
func (g *Graph) buildEdgeIndex() {
	n := len(g.names)
	ids := make(map[EdgeKey]int32, len(g.edgeAlpha))
	g.succEdges = make([][]int32, n)
	g.predEdges = make([][]int32, n)
	for id := 0; id < n; id++ {
		from := NodeID(id)
		for _, to := range g.succs[id] {
			key := EdgeKey{From: from, To: to}
			ei := int32(len(g.edges))
			ids[key] = ei
			g.edges = append(g.edges, key)
			g.alphaByID = append(g.alphaByID, g.edgeAlpha[key])
			g.hByID = append(g.hByID, g.edgeH[key])
			g.succEdges[id] = append(g.succEdges[id], ei)
		}
	}
	for id := 0; id < n; id++ {
		to := NodeID(id)
		for _, from := range g.preds[id] {
			g.predEdges[id] = append(g.predEdges[id], ids[EdgeKey{From: from, To: to}])
		}
		if len(g.preds[id]) > g.maxInEdges {
			g.maxInEdges = len(g.preds[id])
		}
	}
}

// topoSort runs Kahn's algorithm, returning an order or a cycle error.
func (g *Graph) topoSort() ([]NodeID, error) {
	n := len(g.names)
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = len(g.preds[id])
	}
	var queue []NodeID
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, NodeID(id))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range g.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("dag: graph contains a cycle")
	}
	return order, nil
}

// probe runs a dummy evaluation to surface throughput-function dimension
// mismatches at build time instead of first use.
func (g *Graph) probe() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dag: throughput function probe failed: %v", r)
		}
	}()
	rates := make([]float64, len(g.sources))
	for i := range rates {
		rates[i] = 1
	}
	y := make([]float64, len(g.operators))
	for i := range y {
		y[i] = 1
	}
	_, err = g.Evaluate(rates, y)
	return err
}

// NumOperators returns M, the number of operators.
func (g *Graph) NumOperators() int { return len(g.operators) }

// NumSources returns N, the number of sources.
func (g *Graph) NumSources() int { return len(g.sources) }

// Operators returns the operator node IDs in dense-index order.
func (g *Graph) Operators() []NodeID { return append([]NodeID(nil), g.operators...) }

// Sources returns the source node IDs in dense-index order.
func (g *Graph) Sources() []NodeID { return append([]NodeID(nil), g.sources...) }

// Sinks returns the sink node IDs.
func (g *Graph) Sinks() []NodeID { return append([]NodeID(nil), g.sinks...) }

// Name returns the node's name.
func (g *Graph) Name(id NodeID) string { return g.names[id] }

// KindOf returns the node's kind.
func (g *Graph) KindOf(id NodeID) Kind { return g.kinds[id] }

// OperatorIndex returns the dense index of an operator node (the position
// of its capacity in capacity vectors), or -1 if id is not an operator.
func (g *Graph) OperatorIndex(id NodeID) int {
	if i, ok := g.opIndex[id]; ok {
		return i
	}
	return -1
}

// OperatorName returns the name of the operator with dense index i.
func (g *Graph) OperatorName(i int) string { return g.names[g.operators[i]] }

// Preds returns the ordered predecessor list of a node.
func (g *Graph) Preds(id NodeID) []NodeID { return append([]NodeID(nil), g.preds[id]...) }

// Succs returns the ordered successor list of a node.
func (g *Graph) Succs(id NodeID) []NodeID { return append([]NodeID(nil), g.succs[id]...) }

// PredsView returns the ordered predecessor list of a node without
// copying. The slice aliases the Graph's internal storage and must be
// treated as read-only; it is valid for the Graph's lifetime.
func (g *Graph) PredsView(id NodeID) []NodeID { return g.preds[id] }

// SuccsView returns the ordered successor list of a node without copying,
// under the same read-only aliasing contract as PredsView.
func (g *Graph) SuccsView(id NodeID) []NodeID { return g.succs[id] }

// NumEdges returns the number of edges (the size of the dense edge-ID
// space used by EdgeByID, PredEdgeIDs and SuccEdgeIDs).
func (g *Graph) NumEdges() int { return len(g.edges) }

// EdgeByID returns the key of the edge with the given dense ID.
func (g *Graph) EdgeByID(id int32) EdgeKey { return g.edges[id] }

// AlphaByID returns the splitting weight of the edge with the given ID.
func (g *Graph) AlphaByID(id int32) float64 { return g.alphaByID[id] }

// HByID returns the throughput function of the edge with the given ID
// (nil for source edges).
func (g *Graph) HByID(id int32) ThroughputFunc { return g.hByID[id] }

// PredEdgeIDs returns a node's incoming edge IDs in predecessor order.
// Read-only view; aliases Graph storage.
func (g *Graph) PredEdgeIDs(id NodeID) []int32 { return g.predEdges[id] }

// SuccEdgeIDs returns a node's outgoing edge IDs in successor order.
// Read-only view; aliases Graph storage.
func (g *Graph) SuccEdgeIDs(id NodeID) []int32 { return g.succEdges[id] }

// Alpha returns the capacity-splitting weight of edge e.
func (g *Graph) Alpha(e EdgeKey) float64 { return g.edgeAlpha[e] }

// H returns the throughput function of edge e (nil for source edges).
func (g *Graph) H(e EdgeKey) ThroughputFunc { return g.edgeH[e] }

// FlowReport is the result of one steady-state evaluation of the DAG.
// A report may be reused across evaluations via EvaluateInto, which
// recycles its slices instead of allocating fresh ones.
type FlowReport struct {
	// Throughput is f(y): the total inflow into sinks (tuples/s).
	Throughput float64
	// Inflow[i] is the total throughput arriving at operator index i.
	Inflow []float64
	// Demand[i] is Σ_{j∈S_i} h_{i,j}(e_i): the output the operator would
	// emit with unlimited capacity. l_i = Demand[i] − y[i] is the
	// soft-constraint of Eq. 11.
	Demand []float64
	// Output[i] is the actual (capacity-truncated) total emitted.
	Output []float64

	// flows[edgeID] is the per-edge carried throughput and inBuf the
	// per-operator input working vector — internal scratch kept on the
	// report so EvaluateInto runs allocation-free once warmed.
	flows []float64
	inBuf []float64
}

func (g *Graph) checkEvalArgs(rates, y []float64) error {
	if len(rates) != len(g.sources) {
		return fmt.Errorf("dag: got %d source rates, want %d", len(rates), len(g.sources))
	}
	if len(y) != len(g.operators) {
		return fmt.Errorf("dag: got %d capacities, want %d", len(y), len(g.operators))
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("dag: source rate[%d] = %v invalid", i, r)
		}
	}
	for i, c := range y {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("dag: capacity y[%d] = %v invalid", i, c)
		}
	}
	return nil
}

// Evaluate computes the steady-state flows for given source rates (by
// source index) and operator capacities y (by operator index), applying
// the truncation of Eq. 4 along one topological pass.
func (g *Graph) Evaluate(rates, y []float64) (*FlowReport, error) {
	rep := &FlowReport{}
	if err := g.EvaluateInto(rep, rates, y); err != nil {
		return nil, err
	}
	return rep, nil
}

// EvaluateInto is Evaluate with caller-owned storage: rep's slices are
// grown once and reused, so repeated evaluations (the per-slot violation
// accounting, grid sweeps, brute-force optimum search) run allocation-free
// after the first call. rep must not be shared between goroutines.
//
//lint:hotpath
func (g *Graph) EvaluateInto(rep *FlowReport, rates, y []float64) error {
	if err := g.checkEvalArgs(rates, y); err != nil {
		return err
	}
	m := len(g.operators)
	if cap(rep.Inflow) < m {
		rep.Inflow = make([]float64, m)
		rep.Demand = make([]float64, m)
		rep.Output = make([]float64, m)
	}
	rep.Inflow = rep.Inflow[:m]
	rep.Demand = rep.Demand[:m]
	rep.Output = rep.Output[:m]
	clear(rep.Inflow)
	clear(rep.Demand)
	clear(rep.Output)
	if cap(rep.flows) < len(g.edges) {
		rep.flows = make([]float64, len(g.edges))
	}
	flows := rep.flows[:len(g.edges)]
	clear(flows)
	if cap(rep.inBuf) < g.maxInEdges {
		rep.inBuf = make([]float64, g.maxInEdges)
	}
	rep.Throughput = 0
	for _, id := range g.topo {
		switch g.kinds[id] {
		case Source:
			rate := rates[g.srcIndex[id]]
			for _, ei := range g.succEdges[id] {
				flows[ei] = g.alphaByID[ei] * rate
			}
		case Operator:
			oi := g.opIndex[id]
			in := rep.inBuf[:len(g.predEdges[id])]
			for k, ei := range g.predEdges[id] {
				in[k] = flows[ei]
				rep.Inflow[oi] += in[k]
			}
			for _, ei := range g.succEdges[id] {
				want := g.hByID[ei].Eval(in)
				rep.Demand[oi] += want
				flow := math.Min(g.alphaByID[ei]*y[oi], want)
				flows[ei] = flow
				rep.Output[oi] += flow
			}
		case Sink:
			for _, ei := range g.predEdges[id] {
				rep.Throughput += flows[ei]
			}
		}
	}
	return nil
}

// Throughput is shorthand for Evaluate(...).Throughput.
func (g *Graph) Throughput(rates, y []float64) (float64, error) {
	rep, err := g.Evaluate(rates, y)
	if err != nil {
		return 0, err
	}
	return rep.Throughput, nil
}

// evalTape records the topological evaluation on an autodiff tape and
// returns the taped application throughput f plus the per-operator demand
// Σ_{j∈S_i} h_{i,j}(e_i) (the unconstrained desired output used by the
// soft-constraints of Eq. 11).
func (g *Graph) evalTape(t *autodiff.Tape, rates []float64, vars []autodiff.Value) (f autodiff.Value, demand []autodiff.Value) {
	flows := make([]autodiff.Value, len(g.edges))
	inBuf := make([]autodiff.Value, g.maxInEdges)
	demand = make([]autodiff.Value, len(g.operators))
	total := t.Const(0)
	for _, id := range g.topo {
		switch g.kinds[id] {
		case Source:
			rate := rates[g.srcIndex[id]]
			for _, ei := range g.succEdges[id] {
				flows[ei] = t.Const(g.alphaByID[ei] * rate)
			}
		case Operator:
			oi := g.opIndex[id]
			in := inBuf[:len(g.predEdges[id])]
			for k, ei := range g.predEdges[id] {
				in[k] = flows[ei]
			}
			dem := t.Const(0)
			for _, ei := range g.succEdges[id] {
				want := g.hByID[ei].EvalAD(t, in)
				dem = dem.Add(want)
				flows[ei] = vars[oi].Scale(g.alphaByID[ei]).Min(want)
			}
			demand[oi] = dem
		case Sink:
			for _, ei := range g.predEdges[id] {
				total = total.Add(flows[ei])
			}
		}
	}
	return total, demand
}

// Gradient returns f(y) and ∂f/∂y_i for every operator, computed by taping
// the topological evaluation with reverse-mode autodiff (the substitute
// for the paper's PyTorch-autograd bottleneck identification).
func (g *Graph) Gradient(rates, y []float64) (float64, []float64, error) {
	if err := g.checkEvalArgs(rates, y); err != nil {
		return 0, nil, err
	}
	val, grad := autodiff.Gradient(y, func(t *autodiff.Tape, vars []autodiff.Value) autodiff.Value {
		f, _ := g.evalTape(t, rates, vars)
		return f
	})
	return val, grad, nil
}

// LagrangianGradient returns the per-slot Lagrangian of Eq. 13,
//
//	L(y, λ) = f(y) − Σ_i λ_i · (demand_i(y) − y_i),
//
// and its gradient with respect to y. The online saddle point and online
// gradient descent algorithms maximize this over y.
func (g *Graph) LagrangianGradient(rates, y, lambda []float64) (float64, []float64, error) {
	if err := g.checkEvalArgs(rates, y); err != nil {
		return 0, nil, err
	}
	if len(lambda) != len(g.operators) {
		return 0, nil, fmt.Errorf("dag: got %d multipliers, want %d", len(lambda), len(g.operators))
	}
	for i, l := range lambda {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return 0, nil, fmt.Errorf("dag: multiplier λ[%d] = %v invalid", i, l)
		}
	}
	val, grad := autodiff.Gradient(y, func(t *autodiff.Tape, vars []autodiff.Value) autodiff.Value {
		f, demand := g.evalTape(t, rates, vars)
		out := f
		for i, dem := range demand {
			if lambda[i] == 0 {
				continue
			}
			// −λ_i·(demand_i − y_i)
			out = out.Sub(dem.Sub(vars[i]).Scale(lambda[i]))
		}
		return out
	})
	return val, grad, nil
}
