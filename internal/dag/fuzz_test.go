package dag

import (
	"math"
	"testing"
)

// FuzzGraphBuild drives Builder with arbitrary node kinds and edge lists.
// Build must never panic: every malformed topology (cycles, dangling
// operators, bad splitting weights, arity-mismatched throughput
// functions) has to surface as an error. When Build succeeds, the graph
// must satisfy its structural invariants and evaluate cleanly.
func FuzzGraphBuild(f *testing.F) {
	// A valid chain source → op → sink, a cycle, and a fan-out.
	f.Add([]byte{3, 0, 1, 2, 0, 1, 1, 2})
	f.Add([]byte{2, 1, 1, 0, 1, 1, 0})
	f.Add([]byte{4, 0, 1, 1, 2, 0, 1, 1, 2, 1, 3, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("not enough bytes")
		}
		n := 1 + int(data[0])%8 // 1..8 nodes
		data = data[1:]
		if len(data) < n {
			t.Skip("not enough bytes")
		}
		b := &Builder{}
		kinds := make([]Kind, n)
		for i := 0; i < n; i++ {
			kinds[i] = Kind(int(data[i]) % 3)
			switch kinds[i] {
			case Source:
				b.Source("src")
			case Operator:
				b.Operator("op")
			case Sink:
				b.Sink("sink")
			}
		}
		data = data[n:]
		for len(data) >= 2 {
			from := NodeID(int(data[0]) % n)
			to := NodeID(int(data[1]) % n)
			var h ThroughputFunc
			if kinds[from] == Operator {
				h = Selectivity(0.5)
			}
			b.Edge(from, to, h, 1.0)
			data = data[2:]
		}

		g, err := b.Build()
		if err != nil {
			return // rejected input: the error is the contract
		}

		if got := g.NumOperators(); got != len(g.Operators()) {
			t.Fatalf("NumOperators = %d, Operators() has %d", got, len(g.Operators()))
		}
		if got := g.NumSources(); got != len(g.Sources()) {
			t.Fatalf("NumSources = %d, Sources() has %d", got, len(g.Sources()))
		}
		for i, id := range g.Operators() {
			if g.KindOf(id) != Operator {
				t.Fatalf("operator list holds node %d of kind %v", id, g.KindOf(id))
			}
			if g.OperatorIndex(id) != i {
				t.Fatalf("OperatorIndex(%d) = %d, want %d", id, g.OperatorIndex(id), i)
			}
			if g.OperatorName(i) != g.Name(id) {
				t.Fatalf("OperatorName(%d) = %q, Name = %q", i, g.OperatorName(i), g.Name(id))
			}
			if len(g.Preds(id)) == 0 || len(g.Succs(id)) == 0 {
				t.Fatalf("operator %d dangling: preds=%v succs=%v", id, g.Preds(id), g.Succs(id))
			}
		}
		for _, id := range g.Sources() {
			if len(g.Preds(id)) != 0 {
				t.Fatalf("source %d has predecessors %v", id, g.Preds(id))
			}
		}
		for _, id := range g.Sinks() {
			if len(g.Succs(id)) != 0 {
				t.Fatalf("sink %d has successors %v", id, g.Succs(id))
			}
		}

		rates := make([]float64, g.NumSources())
		for i := range rates {
			rates[i] = 100
		}
		y := make([]float64, g.NumOperators())
		for i := range y {
			y[i] = 1
		}
		tp, err := g.Throughput(rates, y)
		if err != nil {
			t.Fatalf("Throughput on built graph: %v", err)
		}
		if math.IsNaN(tp) || math.IsInf(tp, 0) || tp < 0 {
			t.Fatalf("Throughput = %v, want finite and non-negative", tp)
		}
	})
}
