// Package mathx provides small numeric helpers shared across the Dragster
// code base: clamping, tolerant comparison, compensated summation and
// arg-extrema over float slices.
//
// Everything here is allocation-free and safe for concurrent use.
package mathx

import "math"

// DefaultTol is the tolerance used by Approx when callers have no better
// problem-specific scale.
const DefaultTol = 1e-9

// Clamp limits v to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ClampInt limits v to the closed interval [lo, hi]. It panics if lo > hi.
func ClampInt(v, lo, hi int) int {
	if lo > hi {
		panic("mathx: ClampInt with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Approx reports whether a and b are equal within an absolute-or-relative
// tolerance tol. NaNs are never approximately equal to anything.
func Approx(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Sum returns the compensated (Kahan) sum of xs. It is more accurate than a
// naive loop when xs mixes magnitudes, which happens routinely when
// accumulating per-tick tuple counts over thousand-slot experiments.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// ArgMax returns the index of the largest element of xs, breaking ties in
// favour of the smallest index. It returns -1 for an empty slice. NaN
// elements are skipped; if every element is NaN the result is -1.
func ArgMax(xs []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if best == -1 || x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of xs, breaking ties in
// favour of the smallest index. It returns -1 for an empty slice, skipping
// NaNs as ArgMax does.
func ArgMin(xs []float64) int {
	best := -1
	bestV := math.Inf(1)
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if best == -1 || x < bestV {
			best, bestV = i, x
		}
	}
	return best
}

// MaxOf returns the largest of xs, or -Inf when xs is empty.
func MaxOf(xs ...float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MinOf returns the smallest of xs, or +Inf when xs is empty.
func MinOf(xs ...float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of xs, guarding against overflow by
// scaling with the largest magnitude.
func Norm2(xs []float64) float64 {
	var maxAbs float64
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) {
		return maxAbs
	}
	var s float64
	for _, x := range xs {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Lerp linearly interpolates between a and b: Lerp(a, b, 0) == a and
// Lerp(a, b, 1) == b. t is not clamped.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
