package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0, 0, 0, 0},
		{math.Inf(1), 0, 10, 10},
		{math.Inf(-1), 0, 10, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(0, 1, 0) did not panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(5, 1, 10); got != 5 {
		t.Errorf("ClampInt(5,1,10) = %d", got)
	}
	if got := ClampInt(-5, 1, 10); got != 1 {
		t.Errorf("ClampInt(-5,1,10) = %d", got)
	}
	if got := ClampInt(50, 1, 10); got != 10 {
		t.Errorf("ClampInt(50,1,10) = %d", got)
	}
}

func TestClampPropertyInRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		got := Clamp(v, -3, 7)
		return got >= -3 && got <= 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApprox(t *testing.T) {
	if !Approx(1, 1+1e-12, 1e-9) {
		t.Error("near-identical values should be approx equal")
	}
	if Approx(1, 1.1, 1e-9) {
		t.Error("distant values should not be approx equal")
	}
	if Approx(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must not be approx equal to NaN")
	}
	if !Approx(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance should accept 1e12 vs 1e12+1")
	}
	if !Approx(0, 0, 0) {
		t.Error("exact equality must hold at zero tolerance")
	}
}

func TestSumMatchesNaiveOnSmallInput(t *testing.T) {
	xs := []float64{1, 2, 3, 4.5, -2.5}
	if got := Sum(xs); got != 8 {
		t.Errorf("Sum = %v, want 8", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumCompensation(t *testing.T) {
	// 1 followed by many tiny values that a naive float64 loop drops.
	xs := make([]float64, 1+1e4)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e4*1e-16
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("compensated Sum = %.20f, want %.20f", got, want)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
	if got := ArgMax([]float64{2, 2, 2}); got != 0 {
		t.Errorf("ArgMax tie = %d, want 0", got)
	}
	if got := ArgMax([]float64{math.NaN(), 1}); got != 1 {
		t.Errorf("ArgMax with NaN = %d, want 1", got)
	}
	if got := ArgMax([]float64{math.NaN()}); got != -1 {
		t.Errorf("ArgMax(all NaN) = %d, want -1", got)
	}
}

func TestArgMin(t *testing.T) {
	if got := ArgMin([]float64{4, -1, 3}); got != 1 {
		t.Errorf("ArgMin = %d, want 1", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d, want -1", got)
	}
	if got := ArgMin([]float64{math.NaN(), 7, 7}); got != 1 {
		t.Errorf("ArgMin NaN/tie = %d, want 1", got)
	}
}

func TestMaxOfMinOf(t *testing.T) {
	if got := MaxOf(1, 9, -3); got != 9 {
		t.Errorf("MaxOf = %v", got)
	}
	if got := MinOf(1, 9, -3); got != -3 {
		t.Errorf("MinOf = %v", got)
	}
	if got := MaxOf(); !math.IsInf(got, -1) {
		t.Errorf("MaxOf() = %v, want -Inf", got)
	}
	if got := MinOf(); !math.IsInf(got, 1) {
		t.Errorf("MinOf() = %v, want +Inf", got)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !Approx(got, 5, 1e-12) {
		t.Errorf("Norm2(3,4) = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
	// Overflow guard: naive sum-of-squares would be +Inf here.
	if got := Norm2([]float64{1e200, 1e200}); math.IsInf(got, 0) {
		t.Errorf("Norm2 overflowed: %v", got)
	}
}

func TestNorm2PropertyNonNegativeAndScale(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		n := Norm2([]float64{a, b, c})
		if n < 0 {
			return false
		}
		// |x| scaling: Norm2(2x) == 2*Norm2(x) up to fp error.
		n2 := Norm2([]float64{2 * a, 2 * b, 2 * c})
		return Approx(n2, 2*n, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 10, 0); got != 2 {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(2, 10, 1); got != 10 {
		t.Errorf("Lerp t=1 = %v", got)
	}
	if got := Lerp(2, 10, 0.5); got != 6 {
		t.Errorf("Lerp t=0.5 = %v", got)
	}
}
