package workload

import (
	"testing"

	"dragster/internal/dag"
)

func TestAllSpecsValidate(t *testing.T) {
	specs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("got %d specs, want 6", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		names[s.Name] = true
		// High load strictly above low load on every source.
		for i := range s.HighRates {
			if s.HighRates[i] <= s.LowRates[i] {
				t.Errorf("%s: high rate %v not above low %v", s.Name, s.HighRates[i], s.LowRates[i])
			}
		}
	}
}

func TestOperatorCountsMatchPaper(t *testing.T) {
	wants := map[string]int{
		"group": 1, "asyncio": 1, "join": 1,
		"window": 2, "wordcount": 2, "yahoo": 6,
	}
	for name, want := range wants {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Graph.NumOperators(); got != want {
			t.Errorf("%s: %d operators, want %d", name, got, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestHighRateOptimumInterior checks the calibration property Fig. 4
// relies on: at the high rate every operator's required capacity is
// reachable within the task grid, and at least one operator needs more
// than one task (the search problem is not trivial).
func TestHighRateOptimumInterior(t *testing.T) {
	specs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		maxCaps := make([]float64, s.Graph.NumOperators())
		oneCaps := make([]float64, s.Graph.NumOperators())
		for i, m := range s.Models {
			maxCaps[i] = m.Capacity(s.MaxTasks)
			oneCaps[i] = m.Capacity(1)
			if maxCaps[i] > s.YMax {
				t.Errorf("%s op %d: max capacity %v exceeds YMax %v", s.Name, i, maxCaps[i], s.YMax)
			}
		}
		full, err := s.Graph.Throughput(s.HighRates, maxCaps)
		if err != nil {
			t.Fatal(err)
		}
		tiny, err := s.Graph.Throughput(s.HighRates, oneCaps)
		if err != nil {
			t.Fatal(err)
		}
		if tiny >= 0.9*full {
			t.Errorf("%s: single-task config already near-optimal (%.0f vs %.0f) — search is trivial", s.Name, tiny, full)
		}
		rep, err := s.Graph.Evaluate(s.HighRates, maxCaps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range maxCaps {
			if rep.Demand[i] > maxCaps[i] {
				t.Errorf("%s op %d (%s): demand %.0f unreachable (max cap %.0f)",
					s.Name, i, s.Graph.OperatorName(i), rep.Demand[i], maxCaps[i])
			}
		}
	}
}

func TestYahooFilterSelectivity(t *testing.T) {
	s, err := Yahoo()
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, 6)
	for i, m := range s.Models {
		caps[i] = m.Capacity(s.MaxTasks)
	}
	th, err := s.Graph.Throughput(s.HighRates, caps)
	if err != nil {
		t.Fatal(err)
	}
	// Sink sees 0.4 × source (filter drops irrelevant events).
	want := 0.4 * s.HighRates[0]
	if th < 0.95*want || th > 1.05*want {
		t.Errorf("yahoo throughput %v, want ≈%v", th, want)
	}
}

func TestJoinLimitedBySlowSource(t *testing.T) {
	s, err := Join()
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{s.Models[0].Capacity(s.MaxTasks)}
	th, err := s.Graph.Throughput(s.HighRates, caps)
	if err != nil {
		t.Fatal(err)
	}
	slow := s.HighRates[1]
	if th > slow {
		t.Errorf("join throughput %v above slow side %v", th, slow)
	}
}

func TestConstantProfile(t *testing.T) {
	f, err := Constant([]float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	r := f(3, 100)
	if r[0] != 5 || r[1] != 6 {
		t.Errorf("Constant = %v", r)
	}
	if _, err := Constant(nil); err == nil {
		t.Error("empty rates accepted")
	}
}

func TestCycleProfile(t *testing.T) {
	f, err := Cycle(10, []float64{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if f(0, 0)[0] != 1 || f(9, 0)[0] != 1 {
		t.Error("first phase wrong")
	}
	if f(10, 0)[0] != 2 || f(19, 59)[0] != 2 {
		t.Error("second phase wrong")
	}
	if f(20, 0)[0] != 1 {
		t.Error("cycle did not wrap")
	}
	if _, err := Cycle(0, []float64{1}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Cycle(5); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := Cycle(5, []float64{}); err == nil {
		t.Error("empty phase accepted")
	}
}

func TestStepAtProfile(t *testing.T) {
	f, err := StepAt(30, []float64{10}, []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	if f(29, 599)[0] != 10 || f(30, 0)[0] != 20 {
		t.Error("step boundary wrong")
	}
	if _, err := StepAt(-1, []float64{1}, []float64{2}); err == nil {
		t.Error("negative change slot accepted")
	}
}

func TestPhaseBoundaries(t *testing.T) {
	f, err := Cycle(5, []float64{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	got := PhaseBoundaries(f, 14)
	want := []int{0, 5, 10}
	if len(got) != len(want) {
		t.Fatalf("PhaseBoundaries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PhaseBoundaries = %v, want %v", got, want)
		}
	}
	c, err := Constant([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := PhaseBoundaries(c, 10); len(got) != 1 || got[0] != 0 {
		t.Errorf("constant boundaries = %v", got)
	}
}

func TestSpecValidateCatchesCorruption(t *testing.T) {
	s, err := WordCount()
	if err != nil {
		t.Fatal(err)
	}
	s.Models = s.Models[:1]
	if err := s.Validate(); err == nil {
		t.Error("model count mismatch accepted")
	}
	s2, err := WordCount()
	if err != nil {
		t.Fatal(err)
	}
	s2.HighRates = []float64{1, 2}
	if err := s2.Validate(); err == nil {
		t.Error("rate count mismatch accepted")
	}
	s3 := &Spec{Name: "x"}
	if err := s3.Validate(); err == nil {
		t.Error("nil graph accepted")
	}
	s4, err := WordCount()
	if err != nil {
		t.Fatal(err)
	}
	s4.MaxTasks = 0
	if err := s4.Validate(); err == nil {
		t.Error("zero MaxTasks accepted")
	}
}

func TestGraphShapes(t *testing.T) {
	wc, err := WordCount()
	if err != nil {
		t.Fatal(err)
	}
	if wc.Graph.KindOf(wc.Graph.Sources()[0]) != dag.Source {
		t.Error("wordcount source kind wrong")
	}
	if wc.Graph.OperatorName(0) != "map" || wc.Graph.OperatorName(1) != "shuffle" {
		t.Errorf("wordcount operator names: %s, %s", wc.Graph.OperatorName(0), wc.Graph.OperatorName(1))
	}
	jn, err := Join()
	if err != nil {
		t.Fatal(err)
	}
	if jn.Graph.NumSources() != 2 {
		t.Errorf("join sources = %d", jn.Graph.NumSources())
	}
}
