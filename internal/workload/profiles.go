package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Typed trace-validation errors. Callers branch on these with errors.Is;
// the wrapped message carries the row/field detail.
var (
	// ErrTraceEmpty reports a trace with no rows (or rows with no
	// sources) — nothing to replay.
	ErrTraceEmpty = errors.New("workload: empty trace")
	// ErrTraceRagged reports rows that disagree on the source count.
	ErrTraceRagged = errors.New("workload: ragged trace")
	// ErrTraceBadValue reports a rate that is not a finite non-negative
	// number (NaN, ±Inf, negative, or unparseable).
	ErrTraceBadValue = errors.New("workload: bad trace value")
)

// Sinusoid models the gradual diurnal drift the paper's introduction
// motivates: rates oscillate around base with the given amplitude and
// period (in slots). amplitude must leave rates non-negative.
func Sinusoid(base, amplitude []float64, periodSlots int) (RateFunc, error) {
	if len(base) == 0 || len(base) != len(amplitude) {
		return nil, errors.New("workload: Sinusoid needs matching non-empty base and amplitude")
	}
	if periodSlots < 2 {
		return nil, fmt.Errorf("workload: Sinusoid period %d must be ≥ 2 slots", periodSlots)
	}
	for i := range base {
		if base[i] < 0 || amplitude[i] < 0 || amplitude[i] > base[i] {
			return nil, fmt.Errorf("workload: Sinusoid source %d: base %v amplitude %v invalid", i, base[i], amplitude[i])
		}
	}
	b := append([]float64(nil), base...)
	a := append([]float64(nil), amplitude...)
	return func(slot, sec int) []float64 {
		// Continuous phase across the slot so drift is truly gradual.
		phase := 2 * math.Pi * (float64(slot) + float64(sec)/86400) / float64(periodSlots)
		out := make([]float64, len(b))
		for i := range out {
			out[i] = b[i] + a[i]*math.Sin(phase)
		}
		return out
	}, nil
}

// Trace replays an explicit per-slot rate schedule, clamping to the last
// entry when the run outlives the trace. Each row must cover every
// source. Validation failures wrap ErrTraceEmpty / ErrTraceRagged /
// ErrTraceBadValue.
func Trace(rows [][]float64) (RateFunc, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrTraceEmpty)
	}
	n := len(rows[0])
	if n == 0 {
		return nil, fmt.Errorf("%w: rows carry no sources", ErrTraceEmpty)
	}
	cp := make([][]float64, len(rows))
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("%w: row %d has %d rates, want %d", ErrTraceRagged, i, len(r), n)
		}
		for j, v := range r {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: row %d rate %d = %v", ErrTraceBadValue, i, j, v)
			}
		}
		cp[i] = append([]float64(nil), r...)
	}
	return func(slot, _ int) []float64 {
		if slot >= len(cp) {
			return cp[len(cp)-1]
		}
		if slot < 0 {
			return cp[0]
		}
		return cp[slot]
	}, nil
}

// LoadTraceCSV parses a rate trace with one row per slot and one column
// per source (plain numbers, no header). Lines starting with '#' are
// skipped. Malformed input wraps the same typed errors as Trace:
// ErrTraceRagged for rows that disagree on the column count,
// ErrTraceBadValue for fields that do not parse to a finite non-negative
// number, ErrTraceEmpty when nothing remains.
func LoadTraceCSV(r io.Reader) (RateFunc, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	var rows [][]float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, csv.ErrFieldCount) {
				return nil, fmt.Errorf("%w: %v", ErrTraceRagged, err)
			}
			return nil, fmt.Errorf("workload: reading trace CSV: %w", err)
		}
		row := make([]float64, len(rec))
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: field %q: %v", ErrTraceBadValue, f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return Trace(rows)
}

// Scale composes a base profile with a time-varying multiplier — the
// trace-replay building block: a diurnal (or replayed-CSV) base shaped by
// an event multiplier like FlashCrowdMultiplier or
// BlackFridayMultiplier.
func Scale(base RateFunc, mult func(slot, sec int) float64) (RateFunc, error) {
	if base == nil || mult == nil {
		return nil, errors.New("workload: Scale needs a base profile and a multiplier")
	}
	return func(slot, sec int) []float64 {
		rates := base(slot, sec)
		m := mult(slot, sec)
		out := make([]float64, len(rates))
		for i, r := range rates {
			out[i] = r * m
		}
		return out
	}, nil
}

// FlashCrowdMultiplier models an unanticipated traffic spike: load jumps
// straight to peak× at startSlot (the "flash"), holds for holdSlots, and
// decays linearly back to 1× over decaySlots. holdSlots=1, decaySlots=0
// is a single-slot spike.
func FlashCrowdMultiplier(startSlot, holdSlots, decaySlots int, peak float64) (func(slot, sec int) float64, error) {
	if startSlot < 0 || holdSlots < 1 || decaySlots < 0 {
		return nil, fmt.Errorf("workload: flash crowd start %d hold %d decay %d invalid", startSlot, holdSlots, decaySlots)
	}
	if peak < 1 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return nil, fmt.Errorf("workload: flash crowd peak %v must be a finite multiplier ≥ 1", peak)
	}
	return func(slot, _ int) float64 {
		t := slot - startSlot
		switch {
		case t < 0:
			return 1
		case t < holdSlots:
			return peak
		case t < holdSlots+decaySlots:
			return peak - (peak-1)*float64(t-holdSlots+1)/float64(decaySlots+1)
		default:
			return 1
		}
	}, nil
}

// FlashCrowd applies FlashCrowdMultiplier to a base profile.
func FlashCrowd(base RateFunc, startSlot, holdSlots, decaySlots int, peak float64) (RateFunc, error) {
	m, err := FlashCrowdMultiplier(startSlot, holdSlots, decaySlots, peak)
	if err != nil {
		return nil, err
	}
	return Scale(base, m)
}

// BlackFridayMultiplier models an anticipated sales event: load builds
// smoothly (smoothstep) to peak× over buildSlots, plateaus for saleSlots,
// then winds down symmetrically over decaySlots.
func BlackFridayMultiplier(startSlot, buildSlots, saleSlots, decaySlots int, peak float64) (func(slot, sec int) float64, error) {
	if startSlot < 0 || buildSlots < 0 || saleSlots < 1 || decaySlots < 0 {
		return nil, fmt.Errorf("workload: black friday start %d build %d sale %d decay %d invalid", startSlot, buildSlots, saleSlots, decaySlots)
	}
	if peak < 1 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return nil, fmt.Errorf("workload: black friday peak %v must be a finite multiplier ≥ 1", peak)
	}
	smooth := func(u float64) float64 { return u * u * (3 - 2*u) }
	return func(slot, _ int) float64 {
		t := slot - startSlot
		switch {
		case t < 0:
			return 1
		case t < buildSlots:
			return 1 + (peak-1)*smooth(float64(t+1)/float64(buildSlots+1))
		case t < buildSlots+saleSlots:
			return peak
		case t < buildSlots+saleSlots+decaySlots:
			return 1 + (peak-1)*smooth(1-float64(t-buildSlots-saleSlots+1)/float64(decaySlots+1))
		default:
			return 1
		}
	}, nil
}

// BlackFriday applies BlackFridayMultiplier to a base profile.
func BlackFriday(base RateFunc, startSlot, buildSlots, saleSlots, decaySlots int, peak float64) (RateFunc, error) {
	m, err := BlackFridayMultiplier(startSlot, buildSlots, saleSlots, decaySlots, peak)
	if err != nil {
		return nil, err
	}
	return Scale(base, m)
}
