package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Sinusoid models the gradual diurnal drift the paper's introduction
// motivates: rates oscillate around base with the given amplitude and
// period (in slots). amplitude must leave rates non-negative.
func Sinusoid(base, amplitude []float64, periodSlots int) (RateFunc, error) {
	if len(base) == 0 || len(base) != len(amplitude) {
		return nil, errors.New("workload: Sinusoid needs matching non-empty base and amplitude")
	}
	if periodSlots < 2 {
		return nil, fmt.Errorf("workload: Sinusoid period %d must be ≥ 2 slots", periodSlots)
	}
	for i := range base {
		if base[i] < 0 || amplitude[i] < 0 || amplitude[i] > base[i] {
			return nil, fmt.Errorf("workload: Sinusoid source %d: base %v amplitude %v invalid", i, base[i], amplitude[i])
		}
	}
	b := append([]float64(nil), base...)
	a := append([]float64(nil), amplitude...)
	return func(slot, sec int) []float64 {
		// Continuous phase across the slot so drift is truly gradual.
		phase := 2 * math.Pi * (float64(slot) + float64(sec)/86400) / float64(periodSlots)
		out := make([]float64, len(b))
		for i := range out {
			out[i] = b[i] + a[i]*math.Sin(phase)
		}
		return out
	}, nil
}

// Trace replays an explicit per-slot rate schedule, clamping to the last
// entry when the run outlives the trace. Each row must cover every
// source.
func Trace(rows [][]float64) (RateFunc, error) {
	if len(rows) == 0 {
		return nil, errors.New("workload: empty trace")
	}
	n := len(rows[0])
	if n == 0 {
		return nil, errors.New("workload: trace rows must be non-empty")
	}
	cp := make([][]float64, len(rows))
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("workload: trace row %d has %d rates, want %d", i, len(r), n)
		}
		for j, v := range r {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("workload: trace row %d rate %d = %v invalid", i, j, v)
			}
		}
		cp[i] = append([]float64(nil), r...)
	}
	return func(slot, _ int) []float64 {
		if slot >= len(cp) {
			return cp[len(cp)-1]
		}
		if slot < 0 {
			return cp[0]
		}
		return cp[slot]
	}, nil
}

// LoadTraceCSV parses a rate trace with one row per slot and one column
// per source (plain numbers, no header). Lines starting with '#' are
// skipped.
func LoadTraceCSV(r io.Reader) (RateFunc, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	var rows [][]float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading trace CSV: %w", err)
		}
		row := make([]float64, len(rec))
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace CSV field %q: %w", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return Trace(rows)
}
