package workload

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzLoadTraceCSV pins the hardening contract: arbitrary input either
// parses into a RateFunc that returns only finite non-negative rates, or
// fails with one of the typed trace errors — never a panic, never a
// profile that smuggles NaN/Inf/negative rates into the simulator.
func FuzzLoadTraceCSV(f *testing.F) {
	f.Add("50000, 20000\n60000, 25000\n")
	f.Add("# comment\n1,2\n")
	f.Add("1,2\n3\n")
	f.Add("NaN\n")
	f.Add("-1\n")
	f.Add("1e309\n")
	f.Add("")
	f.Add("\"quoted\n")
	f.Add("0x1p-2,0\n")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := LoadTraceCSV(strings.NewReader(src))
		if err != nil {
			if errors.Is(err, ErrTraceEmpty) || errors.Is(err, ErrTraceRagged) || errors.Is(err, ErrTraceBadValue) {
				return
			}
			// CSV-syntax failures (bare quotes etc.) keep their own error.
			if strings.Contains(err.Error(), "trace CSV") {
				return
			}
			t.Fatalf("untyped error: %v", err)
		}
		for _, slot := range []int{-1, 0, 1, 100, 1 << 20} {
			for _, v := range fn(slot, 0) {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("slot %d produced invalid rate %v from %q", slot, v, src)
				}
			}
		}
	})
}
