// Package workload builds the benchmark applications of the paper's
// evaluation (§6.1): five Nexmark-derived workloads (Group, AsyncIO, Join,
// Window, WordCount) and the six-operator Yahoo streaming benchmark, each
// with its DAG, exact throughput functions, capacity-splitting weights and
// hidden ground-truth capacity curves, plus the offered-load profiles the
// experiments replay (constant, recurring steps, one-time step).
//
// Rates are calibrated so the optimal configuration is interior to the
// 1..10 task grid at the high rate — the property that makes the search
// problem non-trivial in Fig. 4.
package workload

import (
	"errors"
	"fmt"

	"dragster/internal/dag"
	"dragster/internal/streamsim"
)

// Spec bundles everything an experiment needs to run one application.
type Spec struct {
	// Name identifies the workload in tables ("wordcount", "yahoo", ...).
	Name string
	// Graph is the application DAG with exact throughput functions (the
	// paper provides these to all policies).
	Graph *dag.Graph
	// Models are the hidden ground-truth capacity curves per operator.
	// Only the simulator sees them.
	Models []streamsim.CapacityModel
	// HighRates and LowRates are the two offered-load levels of §6.1.
	HighRates, LowRates []float64
	// MaxTasks is the per-operator parallelism grid bound (paper: 10).
	MaxTasks int
	// YMax is a level-1 capacity box bound ≥ the largest reachable
	// operator capacity.
	YMax float64
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("workload %s: nil graph", s.Name)
	}
	if len(s.Models) != s.Graph.NumOperators() {
		return fmt.Errorf("workload %s: %d models for %d operators", s.Name, len(s.Models), s.Graph.NumOperators())
	}
	if len(s.HighRates) != s.Graph.NumSources() || len(s.LowRates) != s.Graph.NumSources() {
		return fmt.Errorf("workload %s: rate vectors must match %d sources", s.Name, s.Graph.NumSources())
	}
	if s.MaxTasks < 1 || s.YMax <= 0 {
		return fmt.Errorf("workload %s: MaxTasks=%d YMax=%v invalid", s.Name, s.MaxTasks, s.YMax)
	}
	return nil
}

func mustPower(perTask, gamma, ripple float64) streamsim.PowerCurve {
	c, err := streamsim.NewPowerCurve(perTask, gamma, ripple)
	if err != nil {
		panic(err) // workload constants are validated at test time
	}
	return c
}

// WordCount is the two-operator pipeline of Fig. 4:
// source → map (flatMap, selectivity 2) → shuffle (count) → sink.
// At the high rate (50 k tuples/s) the unbudgeted optimum sits near
// (map=9, shuffle=7) on the 10×10 grid.
func WordCount() (*Spec, error) {
	b := dag.NewBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, mp, sh, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(2), dag.Selectivity(1)}); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name:  "wordcount",
		Graph: g,
		Models: []streamsim.CapacityModel{
			mustPower(16000, 0.85, 0.03), // map
			mustPower(18000, 0.90, 0.03), // shuffle
		},
		HighRates: []float64{50000},
		LowRates:  []float64{20000},
		MaxTasks:  10,
		YMax:      150000,
	}
	return s, s.Validate()
}

// WordCount2D is the WordCount pipeline with resource-aware capacity
// curves: capacity scales with both the task count and the per-pod CPU
// allocation (exponent 0.8 relative to the 1000m reference). Used by the
// vertical-scaling experiments, where the configuration space is the
// paper's full vector (executors × CPU).
func WordCount2D() (*Spec, error) {
	s, err := WordCount()
	if err != nil {
		return nil, err
	}
	s.Name = "wordcount2d"
	for i, m := range s.Models {
		scaled, err := streamsim.NewCPUScaledCurve(m, 1000, 0.8)
		if err != nil {
			return nil, err
		}
		s.Models[i] = scaled
	}
	// 2000m pods nearly double a pod's capacity, so the effective YMax
	// grows accordingly.
	s.YMax *= 2
	return s, s.Validate()
}

// Group is a single-operator aggregation: source → group → sink.
func Group() (*Spec, error) {
	b := dag.NewBuilder()
	src := b.Source("source")
	gr := b.Operator("group")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, gr, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(1)}); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name:      "group",
		Graph:     g,
		Models:    []streamsim.CapacityModel{mustPower(11000, 0.8, 0.04)},
		HighRates: []float64{45000},
		LowRates:  []float64{18000},
		MaxTasks:  10,
		YMax:      100000,
	}
	return s, s.Validate()
}

// AsyncIO models an operator calling an external service: capacity
// saturates at the service's ceiling regardless of parallelism.
func AsyncIO() (*Spec, error) {
	b := dag.NewBuilder()
	src := b.Source("source")
	async := b.Operator("asyncio")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, async, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(1)}); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	sat, err := streamsim.NewSaturatingCurve(mustPower(9000, 0.95, 0.02), 70000)
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name:      "asyncio",
		Graph:     g,
		Models:    []streamsim.CapacityModel{sat},
		HighRates: []float64{40000},
		LowRates:  []float64{15000},
		MaxTasks:  10,
		YMax:      100000,
	}
	return s, s.Validate()
}

// Join consumes two sources and emits at the rate of the slower side
// (Eq. 2b with unit weights).
func Join() (*Spec, error) {
	b := dag.NewBuilder()
	s1 := b.Source("bids")
	s2 := b.Source("auctions")
	jn := b.Operator("join")
	snk := b.Sink("sink")
	b.Edge(s1, jn, nil, 1)
	b.Edge(s2, jn, nil, 1)
	mr, err := dag.NewMinRate(1, 1)
	if err != nil {
		return nil, err
	}
	b.Edge(jn, snk, mr, 1)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name:      "join",
		Graph:     g,
		Models:    []streamsim.CapacityModel{mustPower(8500, 0.85, 0.03)},
		HighRates: []float64{40000, 35000},
		LowRates:  []float64{16000, 14000},
		MaxTasks:  10,
		YMax:      100000,
	}
	return s, s.Validate()
}

// Window is a two-operator pipeline: source → window-assign → aggregate →
// sink.
func Window() (*Spec, error) {
	b := dag.NewBuilder()
	src := b.Source("source")
	wa := b.Operator("window-assign")
	agg := b.Operator("aggregate")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, wa, agg, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(1), dag.Selectivity(1)}); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name:  "window",
		Graph: g,
		Models: []streamsim.CapacityModel{
			mustPower(12000, 0.88, 0.03),
			mustPower(10000, 0.82, 0.04),
		},
		HighRates: []float64{42000},
		LowRates:  []float64{17000},
		MaxTasks:  10,
		YMax:      120000,
	}
	return s, s.Validate()
}

// Yahoo is the six-operator advertising pipeline of Fig. 3:
// kafka → deserialize → filter (selectivity 0.4) → project → redis-join →
// window-count → writer → redis sink. The redis-join capacity saturates
// (external store), which is what makes its configuration subtle.
func Yahoo() (*Spec, error) {
	b := dag.NewBuilder()
	src := b.Source("kafka")
	de := b.Operator("deserialize")
	fl := b.Operator("filter")
	pr := b.Operator("project")
	jn := b.Operator("redis-join")
	wc := b.Operator("window-count")
	wr := b.Operator("writer")
	snk := b.Sink("redis")
	hs := []dag.ThroughputFunc{
		nil,
		dag.Selectivity(1),   // deserialize → filter
		dag.Selectivity(0.4), // filter → project (irrelevant events dropped)
		dag.Selectivity(1),   // project → join
		dag.Selectivity(1),   // join → window
		dag.Selectivity(1),   // window → writer
		dag.Selectivity(1),   // writer → sink
	}
	if err := b.Chain([]dag.NodeID{src, de, fl, pr, jn, wc, wr, snk}, hs); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	joinCurve, err := streamsim.NewSaturatingCurve(mustPower(52000, 0.9, 0.02), 280000)
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Name:  "yahoo",
		Graph: g,
		Models: []streamsim.CapacityModel{
			mustPower(90000, 0.85, 0.02), // deserialize (needs ~500k at high)
			mustPower(42000, 0.88, 0.03), // filter (output 0.4×input)
			mustPower(46000, 0.86, 0.03), // project
			joinCurve,                    // redis-join
			mustPower(45000, 0.84, 0.04), // window-count
			mustPower(48000, 0.88, 0.02), // writer
		},
		HighRates: []float64{500000},
		LowRates:  []float64{250000},
		MaxTasks:  10,
		YMax:      800000,
	}
	return s, s.Validate()
}

// All returns every workload spec. With the two source-rate levels of each
// spec this covers the paper's "11 applications" sweep (the twelfth
// combination, Yahoo-low, the paper folds into §6.5).
func All() ([]*Spec, error) {
	builders := []func() (*Spec, error){Group, AsyncIO, Join, Window, WordCount, Yahoo}
	out := make([]*Spec, 0, len(builders))
	for _, f := range builders {
		s, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ByName returns the named workload spec.
func ByName(name string) (*Spec, error) {
	all, err := All()
	if err != nil {
		return nil, err
	}
	for _, s := range all {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// RateFunc returns the offered source rates at a (slot, second) position.
type RateFunc func(slot, sec int) []float64

// Constant returns a profile with fixed rates.
func Constant(rates []float64) (RateFunc, error) {
	if len(rates) == 0 {
		return nil, errors.New("workload: empty rate vector")
	}
	cp := append([]float64(nil), rates...)
	return func(int, int) []float64 { return cp }, nil
}

// Cycle alternates between phases every periodSlots slots, starting with
// phases[0] (the Fig. 6 recurring high/low pattern).
func Cycle(periodSlots int, phases ...[]float64) (RateFunc, error) {
	if periodSlots < 1 || len(phases) == 0 {
		return nil, errors.New("workload: Cycle needs a positive period and at least one phase")
	}
	cp := make([][]float64, len(phases))
	for i, p := range phases {
		if len(p) == 0 {
			return nil, fmt.Errorf("workload: phase %d empty", i)
		}
		cp[i] = append([]float64(nil), p...)
	}
	return func(slot, _ int) []float64 {
		return cp[(slot/periodSlots)%len(cp)]
	}, nil
}

// StepAt switches from before to after at changeSlot (the Fig. 7 one-time
// scale-up).
func StepAt(changeSlot int, before, after []float64) (RateFunc, error) {
	if changeSlot < 0 || len(before) == 0 || len(after) == 0 {
		return nil, errors.New("workload: invalid StepAt parameters")
	}
	b := append([]float64(nil), before...)
	a := append([]float64(nil), after...)
	return func(slot, _ int) []float64 {
		if slot < changeSlot {
			return b
		}
		return a
	}, nil
}

// PhaseBoundaries returns the slots (within [0, slots)) at which a profile
// changes its rate vector, always including slot 0 — the phase starts the
// convergence analysis uses.
func PhaseBoundaries(f RateFunc, slots int) []int {
	var out []int
	var prev []float64
	for s := 0; s < slots; s++ {
		cur := f(s, 0)
		if prev == nil || !equalRates(prev, cur) {
			out = append(out, s)
		}
		prev = cur
	}
	return out
}

func equalRates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
