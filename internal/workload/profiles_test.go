package workload

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSinusoidValidation(t *testing.T) {
	if _, err := Sinusoid(nil, nil, 10); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := Sinusoid([]float64{10}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Sinusoid([]float64{10}, []float64{11}, 10); err == nil {
		t.Error("amplitude above base accepted (negative rates)")
	}
	if _, err := Sinusoid([]float64{10}, []float64{1}, 1); err == nil {
		t.Error("degenerate period accepted")
	}
}

func TestSinusoidShape(t *testing.T) {
	f, err := Sinusoid([]float64{100}, []float64{50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(0, 0)[0]; math.Abs(got-100) > 1e-9 {
		t.Errorf("phase 0 rate = %v, want 100", got)
	}
	if got := f(2, 0)[0]; math.Abs(got-150) > 1e-9 { // quarter period: peak
		t.Errorf("peak rate = %v, want 150", got)
	}
	if got := f(6, 0)[0]; math.Abs(got-50) > 1e-9 { // three quarters: trough
		t.Errorf("trough rate = %v, want 50", got)
	}
	// Periodicity and non-negativity over several cycles.
	for slot := 0; slot < 64; slot++ {
		v := f(slot, 0)[0]
		if v < 0 {
			t.Fatalf("negative rate %v at slot %d", v, slot)
		}
		if w := f(slot+8, 0)[0]; math.Abs(v-w) > 1e-9 {
			t.Fatalf("not periodic: slot %d %v vs %v", slot, v, w)
		}
	}
}

func TestTrace(t *testing.T) {
	f, err := Trace([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f(0, 5); got[0] != 10 || got[1] != 20 {
		t.Errorf("row 0 = %v", got)
	}
	if got := f(1, 0); got[0] != 30 {
		t.Errorf("row 1 = %v", got)
	}
	// Clamping beyond the trace end and below zero.
	if got := f(99, 0); got[1] != 40 {
		t.Errorf("clamped row = %v", got)
	}
	if got := f(-1, 0); got[0] != 10 {
		t.Errorf("negative slot row = %v", got)
	}
	if _, err := Trace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Trace([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged trace accepted")
	}
	if _, err := Trace([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN trace accepted")
	}
}

func TestLoadTraceCSV(t *testing.T) {
	src := `# slot traces: two sources
50000, 20000
60000, 25000
40000, 15000
`
	f, err := LoadTraceCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := f(1, 0); got[0] != 60000 || got[1] != 25000 {
		t.Errorf("row 1 = %v", got)
	}
	if _, err := LoadTraceCSV(strings.NewReader("abc,1")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	if _, err := LoadTraceCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestTraceTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		rows [][]float64
		want error
	}{
		{"no rows", nil, ErrTraceEmpty},
		{"empty rows", [][]float64{{}, {}}, ErrTraceEmpty},
		{"ragged", [][]float64{{1}, {1, 2}}, ErrTraceRagged},
		{"nan", [][]float64{{math.NaN()}}, ErrTraceBadValue},
		{"negative", [][]float64{{-5}}, ErrTraceBadValue},
		{"inf", [][]float64{{math.Inf(1)}}, ErrTraceBadValue},
	}
	for _, c := range cases {
		if _, err := Trace(c.rows); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestLoadTraceCSVTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"empty", "", ErrTraceEmpty},
		{"comments only", "# nothing here\n", ErrTraceEmpty},
		{"ragged", "1,2\n3\n", ErrTraceRagged},
		{"non-numeric", "abc,1\n", ErrTraceBadValue},
		{"nan", "NaN,1\n", ErrTraceBadValue},
		{"negative", "-4,1\n", ErrTraceBadValue},
		{"inf", "Inf,1\n", ErrTraceBadValue},
	}
	for _, c := range cases {
		if _, err := LoadTraceCSV(strings.NewReader(c.src)); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestScale(t *testing.T) {
	base, err := Constant([]float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Scale(base, func(slot, _ int) float64 { return float64(slot + 1) })
	if err != nil {
		t.Fatal(err)
	}
	if got := f(2, 0); got[0] != 300 || got[1] != 600 {
		t.Errorf("scaled rates = %v, want [300 600]", got)
	}
	if _, err := Scale(nil, nil); err == nil {
		t.Error("nil base accepted")
	}
}

func TestFlashCrowdShape(t *testing.T) {
	base, err := Constant([]float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FlashCrowd(base, 10, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(9, 0)[0]; got != 1000 {
		t.Errorf("pre-spike rate = %v", got)
	}
	if got := f(10, 0)[0]; got != 3000 {
		t.Errorf("spike onset = %v, want 3000 (flash, no ramp)", got)
	}
	if got := f(11, 0)[0]; got != 3000 {
		t.Errorf("hold = %v, want 3000", got)
	}
	// Linear decay strictly between peak and base, then back to base.
	for slot := 12; slot < 14; slot++ {
		got := f(slot, 0)[0]
		if got <= 1000 || got >= 3000 {
			t.Errorf("decay slot %d rate = %v outside (1000, 3000)", slot, got)
		}
		if prev := f(slot-1, 0)[0]; got >= prev {
			t.Errorf("decay slot %d rate %v did not fall from %v", slot, got, prev)
		}
	}
	if got := f(14, 0)[0]; got != 1000 {
		t.Errorf("post-decay rate = %v, want 1000", got)
	}

	for _, bad := range []func() (RateFunc, error){
		func() (RateFunc, error) { return FlashCrowd(base, -1, 1, 0, 2) },
		func() (RateFunc, error) { return FlashCrowd(base, 0, 0, 0, 2) },
		func() (RateFunc, error) { return FlashCrowd(base, 0, 1, -1, 2) },
		func() (RateFunc, error) { return FlashCrowd(base, 0, 1, 0, 0.5) },
		func() (RateFunc, error) { return FlashCrowd(base, 0, 1, 0, math.NaN()) },
	} {
		if _, err := bad(); err == nil {
			t.Error("invalid flash-crowd config accepted")
		}
	}
}

func TestBlackFridayShape(t *testing.T) {
	base, err := Constant([]float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	f, err := BlackFriday(base, 5, 4, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(4, 0)[0]; got != 1000 {
		t.Errorf("pre-event rate = %v", got)
	}
	// Smooth build: strictly increasing, never exceeding the plateau.
	prev := 1000.0
	for slot := 5; slot < 9; slot++ {
		got := f(slot, 0)[0]
		if got <= prev || got > 5000 {
			t.Errorf("build slot %d rate = %v (prev %v)", slot, got, prev)
		}
		prev = got
	}
	for slot := 9; slot < 12; slot++ {
		if got := f(slot, 0)[0]; got != 5000 {
			t.Errorf("plateau slot %d rate = %v, want 5000", slot, got)
		}
	}
	// Wind-down: strictly decreasing back to base.
	prev = 5000
	for slot := 12; slot < 16; slot++ {
		got := f(slot, 0)[0]
		if got >= prev || got < 1000 {
			t.Errorf("decay slot %d rate = %v (prev %v)", slot, got, prev)
		}
		prev = got
	}
	if got := f(16, 0)[0]; got != 1000 {
		t.Errorf("post-event rate = %v, want 1000", got)
	}

	if _, err := BlackFriday(base, 0, 0, 0, 0, 2); err == nil {
		t.Error("zero-length sale accepted")
	}
	if _, err := BlackFriday(base, 0, 1, 1, 1, math.Inf(1)); err == nil {
		t.Error("infinite peak accepted")
	}
}

func TestPhaseBoundariesEdges(t *testing.T) {
	base, err := Constant([]float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-length horizon: no phases at all.
	if got := PhaseBoundaries(base, 0); got != nil {
		t.Errorf("zero-slot boundaries = %v, want nil", got)
	}
	// Single-slot spike: base → spike → base is three phases after the
	// mandatory slot-0 start.
	f, err := FlashCrowd(base, 3, 1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := PhaseBoundaries(f, 8)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("spike boundaries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spike boundaries = %v, want %v", got, want)
		}
	}
	// Horizon ending inside the spike: the return-to-base boundary is
	// out of range and must not be reported.
	got = PhaseBoundaries(f, 4)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("truncated boundaries = %v, want [0 3]", got)
	}
}
