package workload

import (
	"math"
	"strings"
	"testing"
)

func TestSinusoidValidation(t *testing.T) {
	if _, err := Sinusoid(nil, nil, 10); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := Sinusoid([]float64{10}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Sinusoid([]float64{10}, []float64{11}, 10); err == nil {
		t.Error("amplitude above base accepted (negative rates)")
	}
	if _, err := Sinusoid([]float64{10}, []float64{1}, 1); err == nil {
		t.Error("degenerate period accepted")
	}
}

func TestSinusoidShape(t *testing.T) {
	f, err := Sinusoid([]float64{100}, []float64{50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(0, 0)[0]; math.Abs(got-100) > 1e-9 {
		t.Errorf("phase 0 rate = %v, want 100", got)
	}
	if got := f(2, 0)[0]; math.Abs(got-150) > 1e-9 { // quarter period: peak
		t.Errorf("peak rate = %v, want 150", got)
	}
	if got := f(6, 0)[0]; math.Abs(got-50) > 1e-9 { // three quarters: trough
		t.Errorf("trough rate = %v, want 50", got)
	}
	// Periodicity and non-negativity over several cycles.
	for slot := 0; slot < 64; slot++ {
		v := f(slot, 0)[0]
		if v < 0 {
			t.Fatalf("negative rate %v at slot %d", v, slot)
		}
		if w := f(slot+8, 0)[0]; math.Abs(v-w) > 1e-9 {
			t.Fatalf("not periodic: slot %d %v vs %v", slot, v, w)
		}
	}
}

func TestTrace(t *testing.T) {
	f, err := Trace([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f(0, 5); got[0] != 10 || got[1] != 20 {
		t.Errorf("row 0 = %v", got)
	}
	if got := f(1, 0); got[0] != 30 {
		t.Errorf("row 1 = %v", got)
	}
	// Clamping beyond the trace end and below zero.
	if got := f(99, 0); got[1] != 40 {
		t.Errorf("clamped row = %v", got)
	}
	if got := f(-1, 0); got[0] != 10 {
		t.Errorf("negative slot row = %v", got)
	}
	if _, err := Trace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Trace([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged trace accepted")
	}
	if _, err := Trace([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN trace accepted")
	}
}

func TestLoadTraceCSV(t *testing.T) {
	src := `# slot traces: two sources
50000, 20000
60000, 25000
40000, 15000
`
	f, err := LoadTraceCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := f(1, 0); got[0] != 60000 || got[1] != 25000 {
		t.Errorf("row 1 = %v", got)
	}
	if _, err := LoadTraceCSV(strings.NewReader("abc,1")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	if _, err := LoadTraceCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
}
