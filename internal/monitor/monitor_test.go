package monitor

import (
	"math"
	"net/http/httptest"
	"testing"

	"dragster/internal/cluster"
	"dragster/internal/dag"
	"dragster/internal/flink"
	"dragster/internal/streamsim"
)

func buildJob(t testing.TB, perTask float64, initial []int) (*flink.SessionCluster, *flink.Job) {
	t.Helper()
	b := dag.NewBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, mp, sh, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(2), dag.Selectivity(1)}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lin, err := streamsim.NewLinearCurve(perTask)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamsim.New(streamsim.Config{Graph: g, Models: []streamsim.CapacityModel{lin, lin}})
	if err != nil {
		t.Fatal(err)
	}
	k8s := cluster.New()
	if err := k8s.AddNodes("n", 8, cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	s, err := flink.NewSession(k8s, flink.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.SubmitJob("wc", g, eng, initial)
	if err != nil {
		t.Fatal(err)
	}
	return s, j
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(DirectSource{}, Config{UtilSaturation: 2}); err == nil {
		t.Error("bad saturation accepted")
	}
	if _, err := New(DirectSource{}, Config{BacklogSeconds: -1}); err == nil {
		t.Error("negative backlog threshold accepted")
	}
}

func TestDirectSourceErrors(t *testing.T) {
	if _, err := (DirectSource{}).Fetch(); err == nil {
		t.Error("nil job accepted")
	}
	_, j := buildJob(t, 150, []int{1, 1})
	if _, err := (DirectSource{Job: j}).Fetch(); err == nil {
		t.Error("pre-slot fetch succeeded")
	}
}

func TestCollectCapacityEstimate(t *testing.T) {
	_, j := buildJob(t, 150, []int{2, 3})
	if _, err := j.RunSlot(60, func(int) []float64 { return []float64{100} }); err != nil {
		t.Fatal(err)
	}
	m, err := New(DirectSource{Job: j}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Operators) != 2 {
		t.Fatalf("operators = %d", len(snap.Operators))
	}
	// map: 2 tasks × 150 = 300 true capacity; Eq. 8 should recover it.
	mp := snap.Operators[0]
	if mp.Name != "map" || mp.Tasks != 2 {
		t.Errorf("map metrics = %+v", mp)
	}
	if math.Abs(mp.CapacityObs-300) > 15 {
		t.Errorf("CapacityObs = %v, want ≈300", mp.CapacityObs)
	}
	if mp.Backpressured {
		t.Error("uncongested operator flagged backpressured")
	}
	if snap.Throughput < 190 {
		t.Errorf("snapshot throughput = %v", snap.Throughput)
	}
}

func TestCollectBackpressureSignal(t *testing.T) {
	// Capacity 50/task, demand 200 output/s at 1 task → heavy backlog.
	_, j := buildJob(t, 50, []int{1, 1})
	for k := 0; k < 3; k++ {
		if _, err := j.RunSlot(60, func(int) []float64 { return []float64{100} }); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(DirectSource{Job: j}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Operators[0].Backpressured {
		t.Errorf("overloaded map not flagged: %+v", snap.Operators[0])
	}
}

func TestMinUtilFloorsCapacityEstimate(t *testing.T) {
	// Nearly idle operator: tiny offered load with huge capacity would
	// produce a wild estimate if util were used raw; MinUtil caps it.
	_, j := buildJob(t, 100000, []int{1, 1})
	if _, err := j.RunSlot(30, func(int) []float64 { return []float64{1} }); err != nil {
		t.Fatal(err)
	}
	m, err := New(DirectSource{Job: j}, Config{MinUtil: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// OutRate ≈ 2/s, estimate capped at 2/0.05 = 40.
	if snap.Operators[0].CapacityObs > 45 {
		t.Errorf("capacity estimate %v not floored", snap.Operators[0].CapacityObs)
	}
}

func TestHTTPSource(t *testing.T) {
	s, j := buildJob(t, 150, []int{2, 2})
	if _, err := j.RunSlot(30, func(int) []float64 { return []float64{100} }); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(flink.NewRESTHandler(s))
	defer srv.Close()

	m, err := New(HTTPSource{BaseURL: srv.URL, JobName: "wc"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Operators) != 2 || snap.Operators[1].Name != "shuffle" {
		t.Errorf("HTTP snapshot operators = %+v", snap.Operators)
	}

	// Unknown job → error surfaced.
	bad, err := New(HTTPSource{BaseURL: srv.URL, JobName: "missing"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Collect(); err == nil {
		t.Error("missing job fetch succeeded")
	}
	// Unreachable server → transport error surfaced.
	gone, err := New(HTTPSource{BaseURL: "http://127.0.0.1:1", JobName: "wc"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gone.Collect(); err == nil {
		t.Error("unreachable server fetch succeeded")
	}
}
