package monitor

import (
	"errors"
	"testing"

	"dragster/internal/telemetry"
)

// fakeSource serves whatever report it currently holds.
type fakeSource struct{ rep *telemetry.SlotReport }

func (f *fakeSource) Fetch() (*telemetry.SlotReport, error) {
	if f.rep == nil {
		return nil, errors.New("fake: no report")
	}
	return f.rep, nil
}

func report(slot int) *telemetry.SlotReport {
	return &telemetry.SlotReport{
		Slot:        slot,
		Throughput:  100,
		SourceRates: []float64{100},
		Vertices: []telemetry.VertexStats{
			{Name: "map", RunningTasks: 1, InRate: 100, OutRate: 100, Util: 0.5},
		},
	}
}

// TestCollectRejectsStaleRepeat is the regression test for the silent
// re-serve bug: a source that keeps returning the slot-N report must not
// yield a second snapshot for slot N.
func TestCollectRejectsStaleRepeat(t *testing.T) {
	src := &fakeSource{rep: report(0)}
	m, err := New(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Collect(); err != nil {
		t.Fatalf("first collect: %v", err)
	}
	if _, err := m.Collect(); !errors.Is(err, ErrNoSample) {
		t.Fatalf("stale repeat yielded err = %v, want ErrNoSample", err)
	}
	// A fresh slot unblocks collection.
	src.rep = report(1)
	snap, err := m.Collect()
	if err != nil {
		t.Fatalf("fresh report rejected: %v", err)
	}
	if snap.Slot != 1 {
		t.Errorf("snapshot slot = %d, want 1", snap.Slot)
	}
	// An older slot than the last collected one is also stale.
	src.rep = report(0)
	if _, err := m.Collect(); !errors.Is(err, ErrNoSample) {
		t.Errorf("regressed slot accepted: %v", err)
	}
}

// funcInterceptor adapts a function to the Interceptor interface.
type funcInterceptor func(*telemetry.SlotReport) (*telemetry.SlotReport, error)

func (f funcInterceptor) InterceptReport(rep *telemetry.SlotReport) (*telemetry.SlotReport, error) {
	return f(rep)
}

func TestInterceptorErrorPropagates(t *testing.T) {
	m, err := New(&fakeSource{rep: report(0)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("blackout")
	m.SetInterceptor(funcInterceptor(func(*telemetry.SlotReport) (*telemetry.SlotReport, error) {
		return nil, boom
	}))
	if _, err := m.Collect(); !errors.Is(err, boom) {
		t.Errorf("interceptor error swallowed: %v", err)
	}
}

func TestInterceptorNilReportBecomesNoSample(t *testing.T) {
	m, err := New(&fakeSource{rep: report(0)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetInterceptor(funcInterceptor(func(*telemetry.SlotReport) (*telemetry.SlotReport, error) {
		return nil, nil
	}))
	if _, err := m.Collect(); !errors.Is(err, ErrNoSample) {
		t.Errorf("nil intercepted report yielded %v, want ErrNoSample", err)
	}
}

func TestInterceptorCanSubstituteReport(t *testing.T) {
	m, err := New(&fakeSource{rep: report(3)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	swapped := report(7)
	m.SetInterceptor(funcInterceptor(func(*telemetry.SlotReport) (*telemetry.SlotReport, error) {
		return swapped, nil
	}))
	snap, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Slot != 7 {
		t.Errorf("snapshot slot = %d, want the substituted report's 7", snap.Slot)
	}
}

func TestSetInterceptorNilRestoresCleanPath(t *testing.T) {
	src := &fakeSource{rep: report(0)}
	m, err := New(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetInterceptor(funcInterceptor(func(*telemetry.SlotReport) (*telemetry.SlotReport, error) {
		return nil, errors.New("should not run")
	}))
	m.SetInterceptor(nil)
	if _, err := m.Collect(); err != nil {
		t.Errorf("collect with removed interceptor failed: %v", err)
	}
}
