// Package monitor implements the Job Monitor component of Dragster: it
// collects per-slot metrics from the Flink JobManager (directly or via the
// monitoring REST API) and the Kubernetes metrics server, and derives the
// observed service capacity of every operator per Eq. 8 of the paper:
//
//	c_i(t) = Σ_{j∈S_i} e_j^i / cpu_i(x_i(t))
//
// along with a backpressure signal used by the Dhalion baseline.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dragster/internal/telemetry"
)

// OperatorMetrics is the per-operator view of one decision slot.
type OperatorMetrics struct {
	Name         string
	Tasks        int     // running tasks during the slot
	CPUMilli     int     // per-pod CPU template (0 when unknown)
	InRate       float64 // tuples/s arriving
	OutRate      float64 // tuples/s emitted
	ConsumedRate float64 // tuples/s drained from input buffers
	Util         float64 // mean CPU utilization in (0, 1]
	Backlog      float64 // buffered tuples at slot end
	// CapacityObs is the Eq. 8 estimate OutRate/Util — a noisy sample of
	// the true service capacity y_i(x_i).
	CapacityObs float64
	// Backpressured is set when the operator cannot keep up: its backlog
	// exceeds the threshold worth of input or its CPU is saturated.
	Backpressured bool
}

// Snapshot is the cross-operator view of one slot.
type Snapshot struct {
	Slot            int
	Throughput      float64 // mean application (sink) tuples/s
	ProcessedTuples float64
	DroppedTuples   float64
	PausedSeconds   int
	Cost            float64   // cumulative dollars
	SourceRates     []float64 // mean offered tuples/s per source
	AvgLatencySec   float64   // Little's-law end-to-end latency, slot mean
	MaxLatencySec   float64
	Operators       []OperatorMetrics
}

// Source supplies raw slot reports. flink.Job and storm.Topology satisfy
// the direct case via DirectSource; HTTPSource scrapes the REST API.
type Source interface {
	Fetch() (*telemetry.SlotReport, error)
}

// ReportingJob is any stream-engine runtime exposing its latest slot
// report (flink.Job, storm.Topology).
type ReportingJob interface {
	LastReport() *telemetry.SlotReport
}

// DirectSource reads the latest report straight off the job (in-process
// deployment, the common case in experiments).
type DirectSource struct {
	Job ReportingJob
}

// Fetch implements Source.
func (d DirectSource) Fetch() (*telemetry.SlotReport, error) {
	if d.Job == nil {
		return nil, errors.New("monitor: nil job")
	}
	rep := d.Job.LastReport()
	if rep == nil {
		return nil, errors.New("monitor: no slot report yet")
	}
	return rep, nil
}

// HTTPSource scrapes the Flink monitoring REST API.
type HTTPSource struct {
	BaseURL string // e.g. http://jobmanager:8081
	JobName string
	Client  *http.Client // nil → http.DefaultClient
}

// Fetch implements Source.
func (h HTTPSource) Fetch() (*telemetry.SlotReport, error) {
	c := h.Client
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Get(h.BaseURL + "/jobs/" + h.JobName)
	if err != nil {
		return nil, fmt.Errorf("monitor: fetching job report: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("monitor: job report status %d", resp.StatusCode)
	}
	var rep telemetry.SlotReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("monitor: decoding job report: %w", err)
	}
	return &rep, nil
}

// Config tunes backpressure detection.
type Config struct {
	// BacklogSeconds flags backpressure when the end-of-slot backlog
	// exceeds this many seconds of the operator's input rate (default 2).
	BacklogSeconds float64
	// UtilSaturation flags backpressure at or above this mean CPU
	// utilization (default 0.95).
	UtilSaturation float64
	// MinUtil floors the utilization used in the Eq. 8 division so a
	// near-idle observation does not produce an absurd capacity estimate
	// (default 0.05).
	MinUtil float64
}

func (c *Config) setDefaults() {
	if c.BacklogSeconds == 0 {
		c.BacklogSeconds = 2
	}
	if c.UtilSaturation == 0 {
		c.UtilSaturation = 0.95
	}
	if c.MinUtil == 0 {
		c.MinUtil = 0.05
	}
}

// ErrNoSample reports that the metrics pipeline has no fresh sample for
// the current slot — the metrics server is blacked out, or the fetched
// report is a stale repeat of one already collected. Callers must treat
// it as "no observation this slot" (skip the optimizer round), never as a
// zero or repeated measurement.
var ErrNoSample = errors.New("monitor: no fresh sample")

// Interceptor sits between the Source and the Monitor. A chaos engine
// installs one via SetInterceptor to model metrics-server dropouts
// (return an error wrapping ErrNoSample) or staleness (return a previous
// report); with none installed the fetch path is unchanged.
type Interceptor interface {
	// InterceptReport receives the freshly fetched report and returns the
	// report the Monitor should see, or an error.
	InterceptReport(rep *telemetry.SlotReport) (*telemetry.SlotReport, error)
}

// Monitor converts raw slot reports into snapshots.
type Monitor struct {
	src Source
	cfg Config

	interceptor Interceptor
	tracer      *telemetry.Tracer
	collected   bool
	lastSlot    int

	// snapBuf is the snapshot returned by Collect, reused call to call
	// (see Collect's aliasing contract).
	snapBuf Snapshot
}

// New returns a Monitor over the given source.
func New(src Source, cfg Config) (*Monitor, error) {
	if src == nil {
		return nil, errors.New("monitor: nil source")
	}
	cfg.setDefaults()
	if cfg.BacklogSeconds < 0 || cfg.UtilSaturation <= 0 || cfg.UtilSaturation > 1 || cfg.MinUtil <= 0 {
		return nil, fmt.Errorf("monitor: invalid config %+v", cfg)
	}
	return &Monitor{src: src, cfg: cfg}, nil
}

// SetInterceptor installs (or, with nil, removes) the fetch interceptor.
func (m *Monitor) SetInterceptor(ic Interceptor) { m.interceptor = ic }

// SetTracer installs (or, with nil, removes) the observability tracer.
// Each Collect emits one "collect" event recording its outcome: "fresh",
// "stale", or "error" (fetch or interceptor failure).
func (m *Monitor) SetTracer(tr *telemetry.Tracer) { m.tracer = tr }

// Collect fetches the latest slot report and derives operator metrics.
// A report whose slot does not advance past the last collected one is a
// stale repeat — the job produced no new data since the previous Collect —
// and yields an error wrapping ErrNoSample instead of silently re-serving
// old measurements.
//
// The returned snapshot aliases monitor-owned storage that is overwritten
// by the next successful Collect — the same read-only borrowing contract
// as streamsim's TickStats.Ops and cluster's PodMetrics. Callers that
// keep it past the next Collect must copy it first.
func (m *Monitor) Collect() (*Snapshot, error) {
	rep, err := m.src.Fetch()
	if err != nil {
		m.tracer.Event("monitor", "collect", telemetry.Str("outcome", "error"))
		m.tracer.Metrics().Inc("monitor_collect_errors")
		return nil, err
	}
	if m.interceptor != nil {
		rep, err = m.interceptor.InterceptReport(rep)
		if err != nil {
			m.tracer.Event("monitor", "collect", telemetry.Str("outcome", "error"))
			m.tracer.Metrics().Inc("monitor_collect_errors")
			return nil, err
		}
		if rep == nil {
			m.tracer.Event("monitor", "collect", telemetry.Str("outcome", "error"))
			m.tracer.Metrics().Inc("monitor_collect_errors")
			return nil, fmt.Errorf("monitor: interceptor returned nil report: %w", ErrNoSample)
		}
	}
	if m.collected && rep.Slot <= m.lastSlot {
		m.tracer.Event("monitor", "collect",
			telemetry.Str("outcome", "stale"),
			telemetry.Int("slot", rep.Slot))
		m.tracer.Metrics().Inc("monitor_collect_stale")
		return nil, fmt.Errorf("monitor: slot %d already collected, report is stale: %w", rep.Slot, ErrNoSample)
	}
	m.collected = true
	m.lastSlot = rep.Slot
	snap := &m.snapBuf
	if cap(snap.SourceRates) < len(rep.SourceRates) {
		snap.SourceRates = make([]float64, len(rep.SourceRates))
	}
	if cap(snap.Operators) < len(rep.Vertices) {
		snap.Operators = make([]OperatorMetrics, len(rep.Vertices))
	}
	*snap = Snapshot{
		Slot:            rep.Slot,
		Throughput:      rep.Throughput,
		ProcessedTuples: rep.ProcessedTuples,
		DroppedTuples:   rep.DroppedTuples,
		PausedSeconds:   rep.PausedSeconds,
		Cost:            rep.CostSoFar,
		SourceRates:     snap.SourceRates[:len(rep.SourceRates)],
		AvgLatencySec:   rep.AvgLatencySec,
		MaxLatencySec:   rep.MaxLatencySec,
		Operators:       snap.Operators[:len(rep.Vertices)],
	}
	copy(snap.SourceRates, rep.SourceRates)
	for i, v := range rep.Vertices {
		util := v.Util
		if util < m.cfg.MinUtil {
			util = m.cfg.MinUtil
		}
		om := OperatorMetrics{
			Name:         v.Name,
			Tasks:        v.RunningTasks,
			CPUMilli:     v.CPUMilli,
			InRate:       v.InRate,
			OutRate:      v.OutRate,
			ConsumedRate: v.ConsumedRate,
			Util:         v.Util,
			Backlog:      v.Backlog,
			CapacityObs:  v.OutRate / util,
		}
		om.Backpressured = v.Util >= m.cfg.UtilSaturation ||
			(v.InRate > 0 && v.Backlog > m.cfg.BacklogSeconds*v.InRate)
		snap.Operators[i] = om
	}
	m.tracer.Event("monitor", "collect",
		telemetry.Str("outcome", "fresh"),
		telemetry.Int("slot", snap.Slot),
		telemetry.Float("throughput", snap.Throughput))
	m.tracer.Metrics().Inc("monitor_collect_fresh")
	return snap, nil
}
