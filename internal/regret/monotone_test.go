package regret

import (
	"math"
	"testing"
)

// TestRegretMonotoneUnderConstantReward is the satellite invariant of the
// observability PR: when every slot pays the same achieved reward against
// a fixed optimum, the per-slot regret increment is a nonnegative
// constant, so the cumulative series must be non-decreasing and exactly
// linear, and its running average must be flat.
func TestRegretMonotoneUnderConstantReward(t *testing.T) {
	cases := []struct {
		name               string
		optimal, achieved  float64
		violations         []float64
		slots              int
		wantSlope, wantFit float64
	}{
		{"positive-gap", 100, 80, []float64{5, 0}, 16, 20, 5},
		{"zero-gap", 100, 100, []float64{0, 0}, 16, 0, 0},
		{"negative-gap-overachieves", 100, 110, nil, 16, -10, 0},
		{"single-operator", 50, 45, []float64{2}, 12, 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAccountant()
			for s := 0; s < tc.slots; s++ {
				if err := a.Record(tc.optimal, tc.achieved, tc.violations); err != nil {
					t.Fatal(err)
				}
			}
			if a.T() != tc.slots {
				t.Fatalf("T() = %d, want %d", a.T(), tc.slots)
			}
			ser := a.RegretSeries()
			for s := 1; s < len(ser); s++ {
				if tc.wantSlope >= 0 && ser[s] < ser[s-1]-1e-12 {
					t.Fatalf("cumulative regret decreased at slot %d: %g → %g", s, ser[s-1], ser[s])
				}
				inc := ser[s] - ser[s-1]
				if math.Abs(inc-tc.wantSlope) > 1e-9 {
					t.Fatalf("slot %d increment %g, want constant %g", s, inc, tc.wantSlope)
				}
			}
			// Constant reward ⇒ flat running average equal to the slope.
			for s, avg := range AverageSeries(ser) {
				if math.Abs(avg-tc.wantSlope) > 1e-9 {
					t.Fatalf("average regret at slot %d = %g, want %g", s, avg, tc.wantSlope)
				}
			}
			fitSer := a.FitSeries()
			for s := 1; s < len(fitSer); s++ {
				inc := fitSer[s] - fitSer[s-1]
				if math.Abs(inc-tc.wantFit) > 1e-9 {
					t.Fatalf("slot %d fit increment %g, want %g", s, inc, tc.wantFit)
				}
			}
			if math.Abs(a.Regret()-float64(tc.slots)*tc.wantSlope) > 1e-9 {
				t.Errorf("Regret() = %g, want %g", a.Regret(), float64(tc.slots)*tc.wantSlope)
			}
		})
	}
}

// TestSublinearityRatioConstantReward: constant per-slot regret is the
// canonical *linear* growth, so the ratio must sit at ≈1 — the detector
// must not report sublinearity for it.
func TestSublinearityRatioConstantReward(t *testing.T) {
	a := NewAccountant()
	for s := 0; s < 32; s++ {
		if err := a.Record(10, 7, nil); err != nil {
			t.Fatal(err)
		}
	}
	ratio, err := SublinearityRatio(a.RegretSeries())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-1) > 1e-9 {
		t.Errorf("linear-growth ratio = %g, want 1", ratio)
	}
}

// TestFitMonotoneUnderNonnegativeViolations: with l_i ≥ 0 every slot the
// cumulative fit can never decrease, whatever the regret does.
func TestFitMonotoneUnderNonnegativeViolations(t *testing.T) {
	a := NewAccountant()
	viols := [][]float64{{0, 0}, {3, 1}, {0, 0.5}, {7, 0}, {0, 0}}
	for s, v := range viols {
		// Alternate over/under-achieving to decouple fit from regret.
		achieved := 100.0
		if s%2 == 0 {
			achieved = 120
		}
		if err := a.Record(100, achieved, v); err != nil {
			t.Fatal(err)
		}
	}
	ser := a.FitSeries()
	for s := 1; s < len(ser); s++ {
		if ser[s] < ser[s-1]-1e-12 {
			t.Fatalf("cumulative fit decreased at slot %d: %g → %g", s, ser[s-1], ser[s])
		}
	}
	if want := 11.5; math.Abs(a.Fit()-want) > 1e-9 {
		t.Errorf("Fit() = %g, want %g", a.Fit(), want)
	}
}
