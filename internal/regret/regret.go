// Package regret implements the performance accounting of §4.2.4 and §5.2:
// the dynamic regret of Eq. 10, the dynamic fit of Eq. 12, and the
// Theorem 1 upper bounds they are compared against in the regret
// experiment.
package regret

import (
	"errors"
	"math"

	"dragster/internal/gp"
	"dragster/internal/ucb"
)

// Accountant accumulates regret and fit over an experiment.
type Accountant struct {
	regret, fit float64
	regretSer   []float64 // cumulative after each slot
	fitSer      []float64
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant { return &Accountant{} }

// Record folds in one slot: optimal and achieved objective values (Eq. 10
// uses f_t(y*_t) − f_t(y_t)) and the per-operator soft-constraint values
// l_i (Eq. 11; positive = violated).
func (a *Accountant) Record(optimal, achieved float64, violations []float64) error {
	if math.IsNaN(optimal) || math.IsNaN(achieved) {
		return errors.New("regret: NaN objective value")
	}
	a.regret += optimal - achieved
	for _, l := range violations {
		if math.IsNaN(l) {
			return errors.New("regret: NaN violation")
		}
		a.fit += l
	}
	a.regretSer = append(a.regretSer, a.regret)
	a.fitSer = append(a.fitSer, a.fit)
	return nil
}

// T returns the number of recorded slots.
func (a *Accountant) T() int { return len(a.regretSer) }

// Regret returns cumulative dynamic regret Reg_T.
func (a *Accountant) Regret() float64 { return a.regret }

// Fit returns cumulative dynamic fit Fit_T.
func (a *Accountant) Fit() float64 { return a.fit }

// RegretSeries returns the cumulative regret after each slot.
func (a *Accountant) RegretSeries() []float64 {
	return append([]float64(nil), a.regretSer...)
}

// FitSeries returns the cumulative fit after each slot.
func (a *Accountant) FitSeries() []float64 {
	return append([]float64(nil), a.fitSer...)
}

// AverageSeries converts a cumulative series into per-slot averages
// (series[t]/(t+1)); a sub-linear cumulative series has a vanishing
// average, which is what the regret experiment reports.
func AverageSeries(cumulative []float64) []float64 {
	out := make([]float64, len(cumulative))
	for i, v := range cumulative {
		out[i] = v / float64(i+1)
	}
	return out
}

// SublinearityRatio compares the average of the last quarter of an
// averaged series to the average of the second quarter. Ratios well below
// 1 indicate the cumulative quantity grows sub-linearly (its running
// average decays); ratios ≈ 1 indicate linear growth.
func SublinearityRatio(cumulative []float64) (float64, error) {
	if len(cumulative) < 8 {
		return 0, errors.New("regret: need at least 8 slots")
	}
	avg := AverageSeries(cumulative)
	q := len(avg) / 4
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	early := mean(avg[q : 2*q])
	late := mean(avg[3*q:])
	if math.Abs(early) < 1e-12 {
		return 0, nil
	}
	return late / early, nil
}

// BoundParams collects the problem constants of Theorem 1.
type BoundParams struct {
	T           int     // horizon (slots)
	M           int     // number of operators
	D           int     // configuration dimension d
	NCandidates int     // |X|, candidate-set size per operator
	H           float64 // upper bound of the throughput functions
	G           float64 // gradient bound of f_t
	Epsilon     float64 // Slater slack ε
	SigmaNoise  float64 // observation noise σ
	Delta       float64 // confidence δ ∈ (1, ∞)
	VStar       float64 // accumulated optimum variation V(y*_t)
}

// gpTerm is the shared M·sqrt(8·T·β_T·Γ_T / log(1+σ⁻²)) term.
func gpTerm(p BoundParams) float64 {
	beta := ucb.Beta(p.T, p.NCandidates, p.Delta)
	gamma := gp.SEInformationGainBound(p.T, p.D)
	return float64(p.M) * math.Sqrt(8*float64(p.T)*beta*gamma/math.Log(1+1/(p.SigmaNoise*p.SigmaNoise)))
}

// FitBound evaluates the Fit_T bound of Eq. 19.
func FitBound(p BoundParams) float64 {
	t := float64(p.T)
	m := float64(p.M)
	return math.Pow(m, 2.0/3)*p.H*(1+p.H/(2*p.Epsilon)) +
		p.H*math.Sqrt(t)/p.Epsilon +
		gpTerm(p)
}

// RegretBound evaluates the Reg_T bound of Eq. 20, given the realized (or
// bounded) Fit_T.
func RegretBound(p BoundParams, fitT float64) float64 {
	t := float64(p.T)
	m := float64(p.M)
	return math.Sqrt(t)*(p.G*p.G/2+p.VStar) +
		p.H*(m+(2+m*p.H)/(2*p.Epsilon))*fitT +
		p.G*gpTerm(p)
}
