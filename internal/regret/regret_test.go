package regret

import (
	"math"
	"testing"
)

func TestAccountantBasics(t *testing.T) {
	a := NewAccountant()
	if a.T() != 0 || a.Regret() != 0 || a.Fit() != 0 {
		t.Error("fresh accountant not zero")
	}
	if err := a.Record(100, 80, []float64{5, -2}); err != nil {
		t.Fatal(err)
	}
	if err := a.Record(100, 95, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if a.T() != 2 {
		t.Errorf("T = %d", a.T())
	}
	if a.Regret() != 25 {
		t.Errorf("Regret = %v, want 25", a.Regret())
	}
	if a.Fit() != 4 {
		t.Errorf("Fit = %v, want 4", a.Fit())
	}
	rs := a.RegretSeries()
	if rs[0] != 20 || rs[1] != 25 {
		t.Errorf("RegretSeries = %v", rs)
	}
	fs := a.FitSeries()
	if fs[0] != 3 || fs[1] != 4 {
		t.Errorf("FitSeries = %v", fs)
	}
	// Series are copies.
	rs[0] = 999
	if a.RegretSeries()[0] == 999 {
		t.Error("RegretSeries leaked internal storage")
	}
}

func TestRecordRejectsNaN(t *testing.T) {
	a := NewAccountant()
	if err := a.Record(math.NaN(), 1, nil); err == nil {
		t.Error("NaN optimal accepted")
	}
	if err := a.Record(1, 1, []float64{math.NaN()}); err == nil {
		t.Error("NaN violation accepted")
	}
}

func TestAverageSeries(t *testing.T) {
	avg := AverageSeries([]float64{10, 30, 30})
	want := []float64{10, 15, 10}
	for i := range want {
		if avg[i] != want[i] {
			t.Errorf("AverageSeries = %v, want %v", avg, want)
		}
	}
	if len(AverageSeries(nil)) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestSublinearityRatio(t *testing.T) {
	// Sub-linear (√t) growth: ratio clearly below 1.
	var sqrtSeries []float64
	for i := 1; i <= 64; i++ {
		sqrtSeries = append(sqrtSeries, math.Sqrt(float64(i)))
	}
	r, err := SublinearityRatio(sqrtSeries)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0.85 {
		t.Errorf("sqrt series ratio = %v, want < 0.85", r)
	}
	// Linear growth: ratio ≈ 1.
	var linSeries []float64
	for i := 1; i <= 64; i++ {
		linSeries = append(linSeries, float64(3*i))
	}
	r, err = SublinearityRatio(linSeries)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 || r > 1.05 {
		t.Errorf("linear series ratio = %v, want ≈1", r)
	}
	if _, err := SublinearityRatio([]float64{1, 2}); err == nil {
		t.Error("short series accepted")
	}
	// Zero early average returns 0 rather than dividing by zero.
	zero := make([]float64, 16)
	r, err = SublinearityRatio(zero)
	if err != nil || r != 0 {
		t.Errorf("zero series ratio = %v err=%v", r, err)
	}
}

func defaultParams(tt int) BoundParams {
	return BoundParams{
		T: tt, M: 2, D: 1, NCandidates: 10,
		H: 200000, G: 1, Epsilon: 5000, SigmaNoise: 1500, Delta: 2,
		VStar: 1e5,
	}
}

func TestBoundsGrowSublinearly(t *testing.T) {
	// The Theorem 1 envelopes must grow slower than T: bound(4T)/bound(T)
	// well under 4.
	fit1 := FitBound(defaultParams(250))
	fit4 := FitBound(defaultParams(1000))
	if fit1 <= 0 || fit4 <= 0 {
		t.Fatalf("non-positive bounds: %v %v", fit1, fit4)
	}
	if ratio := fit4 / fit1; ratio >= 4 {
		t.Errorf("FitBound ratio = %v, want < 4 (sub-linear)", ratio)
	}
	reg1 := RegretBound(defaultParams(250), fit1)
	reg4 := RegretBound(defaultParams(1000), fit4)
	if reg1 <= 0 || reg4 <= 0 {
		t.Fatalf("non-positive regret bounds: %v %v", reg1, reg4)
	}
	if ratio := reg4 / reg1; ratio >= 4 {
		t.Errorf("RegretBound ratio = %v, want < 4", ratio)
	}
}

func TestBoundsMonotoneInHorizonAndOperators(t *testing.T) {
	p := defaultParams(100)
	pBig := p
	pBig.T = 400
	if FitBound(pBig) <= FitBound(p) {
		t.Error("FitBound must grow with T")
	}
	pMoreOps := p
	pMoreOps.M = 6
	if FitBound(pMoreOps) <= FitBound(p) {
		t.Error("FitBound must grow with M")
	}
}
