// Package shard partitions fleet tenants across per-shard controller
// pools. A shard is a deterministic ownership domain: every job name
// hashes to exactly one shard, each shard runs its tenants' decide
// steps on its own bounded worker pool, and results land in
// caller-owned, per-tenant slots so the reduction that follows is in
// global admission order regardless of how many shards (or workers)
// executed the work. Shard count and worker count are therefore pure
// throughput knobs: they may change which goroutine computes a result,
// never which result is computed or the order it commits.
package shard

import (
	"errors"
	"hash/fnv"
	"sync"
)

// Owner returns the shard that owns the given job name, in [0, shards).
// Ownership is a stable FNV-1a hash of the name, so it does not change
// when tenants arrive or depart (consistent ownership is what makes
// per-shard metrics meaningful across a run).
func Owner(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// Pool dispatches per-tenant work across per-shard worker sets.
type Pool struct {
	shards  int
	workers int // per shard; 0 = one per member
}

// NewPool validates the shape. workersPerShard 0 means one worker per
// member of the shard (fully parallel within the shard's membership).
func NewPool(shards, workersPerShard int) (*Pool, error) {
	if shards < 1 {
		return nil, errors.New("shard: shards must be ≥ 1")
	}
	if workersPerShard < 0 {
		return nil, errors.New("shard: negative workers")
	}
	return &Pool{shards: shards, workers: workersPerShard}, nil
}

// Shards returns the configured shard count.
func (p *Pool) Shards() int { return p.shards }

// Partition splits n tenant indices into per-shard member lists using
// the owner function (typically Owner over the tenant's name). Within a
// shard, members keep their global order, so a strided worker walk is
// deterministic per shard.
func (p *Pool) Partition(n int, owner func(i int) int) [][]int {
	members := make([][]int, p.shards)
	for i := 0; i < n; i++ {
		s := owner(i)
		if s < 0 || s >= p.shards {
			s = 0
		}
		members[s] = append(members[s], i)
	}
	return members
}

// Dispatch runs fn(i) for every member index of every shard, each shard
// on its own strided worker set, and joins all workers before
// returning. fn must confine its writes to per-index slots; Dispatch
// guarantees fn is called exactly once per member, from exactly one
// goroutine, with no ordering promise — ordering is the caller's
// sequential reduction.
//
// serial forces the whole dispatch onto the calling goroutine in global
// index order (the traced-run mode: span emission is single-threaded by
// contract).
func (p *Pool) Dispatch(members [][]int, serial bool, fn func(i int)) {
	if serial || p.maxWorkers(members) <= 1 {
		p.dispatchSerial(members, fn)
		return
	}
	var wg sync.WaitGroup
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		w := p.workersFor(len(m))
		if w <= 1 {
			wg.Add(1)
			go func(m []int) {
				defer wg.Done()
				for _, i := range m {
					fn(i)
				}
			}(m)
			continue
		}
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func(m []int, k, w int) {
				defer wg.Done()
				for j := k; j < len(m); j += w {
					fn(m[j])
				}
			}(m, k, w)
		}
	}
	wg.Wait()
}

// dispatchSerial visits every member in ascending global index order —
// the exact order a one-shard, one-worker pool would use.
func (p *Pool) dispatchSerial(members [][]int, fn func(i int)) {
	// Merge the per-shard lists back into global order: each list is
	// already ascending, so a repeated minimum scan over the heads is
	// deterministic and allocation-light for small shard counts.
	heads := make([]int, len(members))
	for {
		best, bestIdx := -1, -1
		for s, m := range members {
			if heads[s] >= len(m) {
				continue
			}
			if bestIdx < 0 || m[heads[s]] < best {
				best, bestIdx = m[heads[s]], s
			}
		}
		if bestIdx < 0 {
			return
		}
		heads[bestIdx]++
		fn(best)
	}
}

// workersFor bounds the worker count for a shard with n members.
func (p *Pool) workersFor(n int) int {
	w := p.workers
	if w == 0 || w > n {
		w = n
	}
	return w
}

// maxWorkers reports the widest parallelism any shard would use, to
// decide whether spawning goroutines is worth it at all.
func (p *Pool) maxWorkers(members [][]int) int {
	max := 0
	nonEmpty := 0
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		nonEmpty++
		if w := p.workersFor(len(m)); w > max {
			max = w
		}
	}
	if nonEmpty > 1 {
		// Multiple shards run concurrently even at one worker each.
		return 2
	}
	return max
}
