package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestOwnerStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("job-%03d", i)
			a := Owner(name, shards)
			b := Owner(name, shards)
			if a != b {
				t.Fatalf("Owner(%q, %d) unstable: %d then %d", name, shards, a, b)
			}
			if a < 0 || a >= shards {
				t.Fatalf("Owner(%q, %d) = %d out of range", name, shards, a)
			}
		}
	}
	if Owner("anything", 1) != 0 {
		t.Fatal("single shard must own everything")
	}
}

func TestOwnerSpreadsLoad(t *testing.T) {
	const shards, jobs = 16, 1000
	counts := make([]int, shards)
	for i := 0; i < jobs; i++ {
		counts[Owner(fmt.Sprintf("job-%04d", i), shards)]++
	}
	for s, c := range counts {
		// A uniform split is 62.5; allow generous skew but no dead or
		// pathologically hot shard.
		if c == 0 {
			t.Fatalf("shard %d owns no jobs", s)
		}
		if c > jobs/shards*3 {
			t.Fatalf("shard %d owns %d of %d jobs", s, c, jobs)
		}
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 1); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewPool(1, -1); err == nil {
		t.Fatal("negative workers accepted")
	}
	p, err := NewPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d", p.Shards())
	}
}

func TestPartitionPreservesOrderWithinShard(t *testing.T) {
	p, err := NewPool(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := p.Partition(10, func(i int) int { return i % 3 })
	seen := 0
	for s, m := range members {
		prev := -1
		for _, i := range m {
			if i <= prev {
				t.Fatalf("shard %d members out of order: %v", s, m)
			}
			if i%3 != s {
				t.Fatalf("index %d landed on shard %d", i, s)
			}
			prev = i
			seen++
		}
	}
	if seen != 10 {
		t.Fatalf("partition covered %d of 10 indices", seen)
	}
	// Out-of-range owners fall back to shard 0 rather than panicking.
	m := p.Partition(2, func(i int) int { return 99 })
	if len(m[0]) != 2 {
		t.Fatalf("out-of-range owner not clamped: %v", m)
	}
}

// TestDispatchExactlyOnce: every index runs exactly once at any
// shard/worker shape, serial or parallel.
func TestDispatchExactlyOnce(t *testing.T) {
	const n = 97
	for _, tc := range []struct {
		shards, workers int
		serial          bool
	}{
		{1, 1, false}, {1, 0, false}, {4, 2, false}, {16, 0, false},
		{4, 3, true}, {16, 2, true}, {3, 1, false},
	} {
		p, err := NewPool(tc.shards, tc.workers)
		if err != nil {
			t.Fatal(err)
		}
		owner := func(i int) int { return Owner(fmt.Sprintf("j%d", i), tc.shards) }
		counts := make([]int32, n)
		p.Dispatch(p.Partition(n, owner), tc.serial, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("shards=%d workers=%d serial=%v: index %d ran %d times",
					tc.shards, tc.workers, tc.serial, i, c)
			}
		}
	}
}

// TestDispatchSerialOrder: serial dispatch must visit indices in global
// ascending order even though membership is interleaved across shards.
func TestDispatchSerialOrder(t *testing.T) {
	p, err := NewPool(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	owner := func(i int) int { return (i * 7) % 5 }
	p.Dispatch(p.Partition(40, owner), true, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial dispatch order broken at %d: %v", i, got[:i+1])
		}
	}
}

// TestDispatchResultsIndependentOfShape: a computation reduced in index
// order gives identical results at every pool shape — the property the
// fleet's byte-identical traces rest on.
func TestDispatchResultsIndependentOfShape(t *testing.T) {
	const n = 64
	run := func(shards, workers int, serial bool) []int64 {
		p, err := NewPool(shards, workers)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, n)
		owner := func(i int) int { return Owner(fmt.Sprintf("t-%d", i), shards) }
		p.Dispatch(p.Partition(n, owner), serial, func(i int) {
			v := int64(i)
			for k := 0; k < 1000; k++ {
				v = v*6364136223846793005 + 1442695040888963407
			}
			out[i] = v
		})
		return out
	}
	want := run(1, 1, true)
	for _, tc := range []struct {
		shards, workers int
		serial          bool
	}{{1, 0, false}, {4, 2, false}, {16, 0, false}, {16, 3, true}} {
		got := run(tc.shards, tc.workers, tc.serial)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d workers=%d serial=%v: slot %d diverged",
					tc.shards, tc.workers, tc.serial, i)
			}
		}
	}
}

// TestDispatchParallelismIsReal: with 4 shards × 1 worker, at least two
// goroutines must be in flight simultaneously (shards run concurrently).
func TestDispatchParallelismIsReal(t *testing.T) {
	p, err := NewPool(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inFlight, peak := 0, 0
	gate := make(chan struct{})
	members := [][]int{{0}, {1}, {2}, {3}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Dispatch(members, false, func(i int) {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			<-gate
			mu.Lock()
			inFlight--
			mu.Unlock()
		})
	}()
	// All four workers park on the gate; release them together.
	for {
		mu.Lock()
		p := peak
		mu.Unlock()
		if p >= 2 {
			break
		}
	}
	close(gate)
	<-done
	if peak < 2 {
		t.Fatalf("peak concurrency %d, want ≥ 2", peak)
	}
}
