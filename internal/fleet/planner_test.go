package fleet

import (
	"bytes"
	"testing"

	"dragster/internal/fleet/event"
	"dragster/internal/workload"
)

// plannedConfig is the capacity-planning fleet scenario: a planned
// tenant from round 0, a cold-floor tenant alongside it, and a planned
// late arrival — the shapes the admission wiring must journal and replay
// identically.
func plannedConfig(t *testing.T) Config {
	t.Helper()
	wc := mustSpec(t, workload.WordCount)
	gr := mustSpec(t, workload.Group)
	wc2 := mustSpec(t, workload.WordCount)
	return Config{
		Jobs: []JobSpec{
			{Name: "planned", Workload: wc, Rates: constRates(t, wc.LowRates), PlanOnAdmit: true},
			{Name: "cold", Workload: gr, Rates: constRates(t, gr.LowRates)},
			{Name: "late", Workload: wc2, Rates: constRates(t, wc2.LowRates), ArriveSlot: 3,
				PlanOnAdmit: true, TargetRates: wc2.LowRates},
		},
		Slots:           8,
		SlotSeconds:     120,
		Seed:            11,
		TotalTaskBudget: 30,
	}
}

// plannedDynamicSpec is the dynamic planned tenant the scenario submits
// mid-run (exercising plan journaling on the inbox path).
func plannedDynamicSpec(t *testing.T) JobSpec {
	t.Helper()
	wc := mustSpec(t, workload.WordCount)
	return JobSpec{Name: "dyn", Workload: wc, Rates: constRates(t, wc.LowRates), PlanOnAdmit: true}
}

func runPlannedScenario(t *testing.T, shards, workers int) *Manager {
	t.Helper()
	cfg := plannedConfig(t)
	cfg.Shards = shards
	cfg.DecideWorkers = workers
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	for !m.Done() {
		if m.Round() == 2 {
			if err := m.Submit(plannedDynamicSpec(t)); err != nil {
				t.Fatalf("submit dyn: %v", err)
			}
		}
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", m.Round(), err)
		}
	}
	return m
}

// TestFleetPlannedAdmission pins the admission semantics: planned
// tenants are granted the plan's total tasks, start at the plan's
// configuration, seed their GPs from the probe records, and the plan is
// journaled as one TypePlan event per planned tenant before its admit.
func TestFleetPlannedAdmission(t *testing.T) {
	m := runPlannedScenario(t, 1, 1)

	plans := map[string]event.Event{}
	admits := map[string]event.Event{}
	for _, e := range m.Events() {
		switch e.Type {
		case event.TypePlan:
			if _, dup := plans[e.Job]; dup {
				t.Errorf("job %s planned twice", e.Job)
			}
			plans[e.Job] = e
			if _, admitted := admits[e.Job]; admitted {
				t.Errorf("job %s planned after admission", e.Job)
			}
		case event.TypeAdmit:
			admits[e.Job] = e
		}
	}
	for _, name := range []string{"planned", "late", "dyn"} {
		pe, ok := plans[name]
		if !ok {
			t.Fatalf("no TypePlan event for %s", name)
		}
		p := m.PlanFor(name)
		if p == nil {
			t.Fatalf("PlanFor(%s) = nil after planned admission", name)
		}
		if len(pe.Args) != len(p.Tasks) {
			t.Fatalf("%s: plan event carries %d floors, plan has %d", name, len(pe.Args), len(p.Tasks))
		}
		total := int64(0)
		for i, a := range pe.Args {
			if a != int64(p.Tasks[i]) {
				t.Errorf("%s: plan event floor %d = %d, plan %d", name, i, a, p.Tasks[i])
			}
			total += a
		}
		ae, ok := admits[name]
		if !ok {
			t.Fatalf("planned job %s never admitted", name)
		}
		if ae.Args[0] != total {
			t.Errorf("%s: admitted with grant %d, plan total %d", name, ae.Args[0], total)
		}
	}
	if _, ok := plans["cold"]; ok {
		t.Error("cold-floor tenant has a TypePlan event")
	}
	if m.PlanFor("cold") != nil {
		t.Error("PlanFor(cold) returned a plan")
	}
	if m.PlanFor("nosuch") != nil {
		t.Error("PlanFor(nosuch) returned a plan")
	}

	for _, jr := range m.Result().Jobs {
		planned := jr.Name != "cold"
		if jr.Planned != planned {
			t.Errorf("job %s: Planned = %v", jr.Name, jr.Planned)
		}
		if planned && (jr.PlanProbes == 0 || jr.PlanDigest == "") {
			t.Errorf("job %s: planned result missing probe count/digest", jr.Name)
		}
	}
}

// TestFleetPlannedTraceByteIdenticalAcrossShards extends the headline
// determinism invariant to planner-admitted tenants: fixed seed →
// byte-identical event trace (TypePlan events included) at any
// shard/worker shape.
func TestFleetPlannedTraceByteIdenticalAcrossShards(t *testing.T) {
	base := runPlannedScenario(t, 1, 1)
	baseTrace := base.TraceBytes()
	baseFP := resultFingerprint(t, base.Result())
	for _, tc := range []struct {
		shards, workers int
	}{
		{1, 4}, {4, 2}, {16, 0},
	} {
		m := runPlannedScenario(t, tc.shards, tc.workers)
		if !bytes.Equal(m.TraceBytes(), baseTrace) {
			t.Fatalf("shards=%d workers=%d: trace diverged:\n%s",
				tc.shards, tc.workers, firstTraceDiff(m.TraceText(), base.TraceText()))
		}
		if fp := resultFingerprint(t, m.Result()); fp != baseFP {
			t.Fatalf("shards=%d workers=%d: result fingerprint diverged", tc.shards, tc.workers)
		}
	}
}

// TestFleetPlannedFailover runs the checkpoint/failover harness over the
// planned scenario: a replica resumed mid-run on a different shard count
// must rebuild the same plans (digest-verified by Resume) and finish
// with a byte-identical trace.
func TestFleetPlannedFailover(t *testing.T) {
	const cut = 5
	ref := runPlannedScenario(t, 4, 2)
	refTrace := ref.TraceBytes()

	cfg := plannedConfig(t)
	cfg.Shards = 4
	primary, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	for primary.Round() < cut {
		if primary.Round() == 2 {
			if err := primary.Submit(plannedDynamicSpec(t)); err != nil {
				t.Fatalf("submit dyn: %v", err)
			}
		}
		if err := primary.Step(); err != nil {
			t.Fatalf("primary step %d: %v", primary.Round(), err)
		}
	}
	var buf bytes.Buffer
	if err := primary.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	repCfg := plannedConfig(t)
	repCfg.Shards = 16
	specs := map[string]JobSpec{"dyn": plannedDynamicSpec(t)}
	rep, err := ResumeReader(repCfg, bytes.NewReader(buf.Bytes()), specs)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got, want := rep.PlanFor("planned"), primary.PlanFor("planned"); got == nil || want == nil || got.Digest() != want.Digest() {
		t.Fatal("replica's rebuilt plan digest diverged from the primary's")
	}
	if _, err := rep.Run(); err != nil {
		t.Fatalf("replica run: %v", err)
	}
	if !bytes.Equal(rep.TraceBytes(), refTrace) {
		t.Fatalf("replica trace diverged from uninterrupted run:\n%s",
			firstTraceDiff(rep.TraceText(), ref.TraceText()))
	}
}

// TestFleetPlannedWarmStart: the planned tenant's controller starts from
// the probe curve, so its first decision must not be the cold floor.
func TestFleetPlannedWarmStart(t *testing.T) {
	m := runPlannedScenario(t, 1, 1)
	for _, jr := range m.Result().Jobs {
		if jr.Name != "planned" {
			continue
		}
		if len(jr.Rounds) == 0 {
			t.Fatal("planned tenant ran no rounds")
		}
		first := jr.Rounds[0]
		p := m.PlanFor("planned")
		if first.Budget != p.TotalTasks {
			t.Errorf("first round budget %d, plan granted %d", first.Budget, p.TotalTasks)
		}
		// No cold start: the very first round already sustains (near) the
		// plan's target throughput instead of the floor's trickle.
		if first.Steady < 0.9*p.TargetThroughput {
			t.Errorf("first round steady %.0f < 90%% of plan target %.0f (cold start?)",
				first.Steady, p.TargetThroughput)
		}
		return
	}
	t.Fatal("planned tenant missing from results")
}
