package fleet

import (
	"fmt"
	"testing"

	"dragster/internal/workload"
)

// benchmarkFleetRound measures one fleet round (simulate every tenant's
// slot, collect, decide concurrently, apply, record) at the given tenant
// count. Manager construction happens outside the timer; each b.N
// iteration is exactly one Step.
func benchmarkFleetRound(b *testing.B, jobs int) {
	b.Helper()
	specs := make([]JobSpec, jobs)
	for i := range specs {
		spec, err := workload.WordCount()
		if err != nil {
			b.Fatal(err)
		}
		rates, err := workload.Constant(spec.LowRates)
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = JobSpec{Name: fmt.Sprintf("job-%03d", i), Workload: spec, Rates: rates}
	}
	m, err := New(Config{
		Jobs:            specs,
		Slots:           b.N,
		SlotSeconds:     30,
		Seed:            3,
		TotalTaskBudget: 4 * jobs,
		MaxQueue:        jobs,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetRound10Jobs(b *testing.B)  { benchmarkFleetRound(b, 10) }
func BenchmarkFleetRound100Jobs(b *testing.B) { benchmarkFleetRound(b, 100) }
