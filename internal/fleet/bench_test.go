package fleet

import (
	"fmt"
	"testing"

	"dragster/internal/workload"
)

// benchmarkFleetRound measures one steady-state fleet round (simulate
// every tenant's slot, collect, decide across the shard pools, apply,
// record) at the given tenant and shard count. Manager construction and
// the first round — which admits every tenant and builds its stack —
// happen outside the timer; each b.N iteration is exactly one Step.
func benchmarkFleetRound(b *testing.B, jobs, shards int) {
	b.Helper()
	specs := make([]JobSpec, jobs)
	for i := range specs {
		spec, err := workload.WordCount()
		if err != nil {
			b.Fatal(err)
		}
		rates, err := workload.Constant(spec.LowRates)
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = JobSpec{Name: fmt.Sprintf("job-%04d", i), Workload: spec, Rates: rates}
	}
	m, err := New(Config{
		Jobs:            specs,
		Slots:           b.N + 1,
		SlotSeconds:     30,
		Seed:            3,
		TotalTaskBudget: 4 * jobs,
		MaxQueue:        jobs,
		Shards:          shards,
		// Cross-job GP seeding grows the shared archive every round (all
		// tenants here share one workload kind), which makes per-round
		// cost a function of b.N; disable it so the timer sees the
		// control plane at a b.N-independent steady state.
		DisableWarmStart: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Admission round: every tenant arrives, is admitted, and builds its
	// controller stack. Steady-state rounds are what the benchmark pins.
	if err := m.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetRound10Jobs(b *testing.B)   { benchmarkFleetRound(b, 10, 1) }
func BenchmarkFleetRound100Jobs(b *testing.B)  { benchmarkFleetRound(b, 100, 1) }
func BenchmarkFleetRound1000Jobs(b *testing.B) { benchmarkFleetRound(b, 1000, 1) }

func BenchmarkFleetRound1000Jobs16Shards(b *testing.B) {
	benchmarkFleetRound(b, 1000, 16)
}
