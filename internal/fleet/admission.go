package fleet

import (
	"fmt"

	"dragster/internal/cluster"
	"dragster/internal/fleet/event"
	"dragster/internal/planner"
	"dragster/internal/telemetry"
)

// Admission control: a submitted job waits in a FIFO queue until the
// fleet can grant it its admission allocation — max(one task per
// operator, its requested initial configuration). Admissibility needs
// two things to hold simultaneously:
//
//  1. budget feasibility: the floors of every running job plus the
//     newcomer's grant fit inside the global Σ-tasks budget (running
//     jobs above their floor are shrunk by the rebalance that follows
//     every admission, so floors are the binding commitment);
//  2. capacity feasibility: the cluster has enough unreserved CPU and
//     memory to place the grant's TaskManager pods.
//
// The queue is head-of-line blocking: if the front job does not fit,
// nothing behind it is considered this round — later (smaller) jobs must
// not starve an earlier tenant indefinitely.

// grant is the Σ-tasks allocation a cold-floor job receives at
// admission.
func grant(spec *JobSpec) int {
	g := spec.floor()
	if spec.InitialTasks != nil {
		if s := sum(spec.InitialTasks); s > g {
			g = s
		}
	}
	return g
}

// grantFor is the Σ-tasks allocation a job receives at admission: the
// capacity plan's total when one was built, the cold floor otherwise.
func (m *Manager) grantFor(js *jobState) int {
	g := grant(&js.spec)
	if js.plan != nil {
		if t := js.plan.TotalTasks; t > g {
			g = t
		}
		if mu := js.spec.maxUseful(); g > mu {
			g = mu
		}
	}
	return g
}

// ensurePlan builds and journals the capacity plan for a PlanOnAdmit
// tenant the first time it reaches the head of the admission queue. The
// plan is memoized on the jobState, so blocked rounds neither re-probe
// nor re-journal, and it is built from a seed derived deterministically
// from the fleet seed and the tenant's submission index — replay and
// failover rebuild the identical plan (the checkpoint pins its digest).
func (m *Manager) ensurePlan(js *jobState) error {
	if !js.spec.PlanOnAdmit || js.plan != nil {
		return nil
	}
	p, err := planner.Build(planner.Config{
		Spec:             js.spec.Workload,
		TargetRates:      m.planTargetRates(js),
		Seed:             m.cfg.Seed + int64(js.idx+1)*999983,
		NoiseSigma:       m.cfg.NoiseSigma,
		UtilNoiseSigma:   m.cfg.UtilNoiseSigma,
		PricePerCoreHour: m.cfg.PricePerCoreHour,
		TaskCPUMilli:     m.session.Options().TaskManagerSpec.CPUMilli,
	})
	if err != nil {
		return fmt.Errorf("fleet: planning job %s: %w", js.spec.Name, err)
	}
	js.plan = p
	args := make([]int64, len(p.Tasks))
	for i, n := range p.Tasks {
		args[i] = int64(n)
	}
	m.emit(event.TypePlan, js.spec.Name,
		fmt.Sprintf("digest=%s probes=%d feasible=%v", p.DigestHex(), len(p.Probes), p.Feasible), args...)
	m.tracer.Event("fleet", "plan",
		telemetry.Str("job", js.spec.Name), telemetry.Int("total_tasks", p.TotalTasks),
		telemetry.Int("probes", len(p.Probes)))
	m.reg.Inc("fleet_jobs_planned")
	m.cfg.Counters.Inc("fleet_jobs_planned")
	return nil
}

// planTargetRates is the sustained load a plan must cover: the spec's
// explicit target, or the profile's per-source peak over the horizon.
func (m *Manager) planTargetRates(js *jobState) []float64 {
	if js.spec.TargetRates != nil {
		return append([]float64(nil), js.spec.TargetRates...)
	}
	out := make([]float64, js.spec.Workload.Graph.NumSources())
	for s := 0; s < m.cfg.Slots; s++ {
		for i, r := range js.spec.Rates(s, 0) {
			if i < len(out) && r > out[i] {
				out[i] = r
			}
		}
	}
	return out
}

// admitQueued admits as many queued jobs as fit, in FIFO order, and
// reports whether fleet membership changed.
func (m *Manager) admitQueued(r int) (changed bool, err error) {
	for len(m.queue) > 0 {
		js := m.queue[0]
		if err := m.ensurePlan(js); err != nil {
			return changed, err
		}
		g := m.grantFor(js)
		if why, ok := m.admissible(js, g); !ok {
			m.tracer.Event("fleet", "admission_wait",
				telemetry.Str("job", js.spec.Name), telemetry.Str("reason", why))
			break // head-of-line blocking
		}
		m.queue = m.queue[1:]
		js.budget = g
		if err := m.buildStack(js, r); err != nil {
			return changed, fmt.Errorf("fleet: admitting job %s: %w", js.spec.Name, err)
		}
		js.status = StatusRunning
		m.running = append(m.running, js)
		m.emit(event.TypeAdmit, js.spec.Name, "", int64(g))
		m.res.Admissions = append(m.res.Admissions, AdmissionEvent{Round: r, Job: js.spec.Name, Outcome: "admitted"})
		m.tracer.Event("fleet", "admit", telemetry.Str("job", js.spec.Name), telemetry.Int("grant", g))
		m.reg.Inc("fleet_jobs_admitted")
		m.cfg.Counters.Inc("fleet_jobs_admitted")
		changed = true
	}
	return changed, nil
}

// admissible checks budget and capacity feasibility for a grant of g
// tasks. Returns a human-readable reason when the answer is no.
func (m *Manager) admissible(js *jobState, g int) (string, bool) {
	committed := 0
	for _, r := range m.running {
		committed += r.spec.floor()
	}
	if committed+g > m.cfg.TotalTaskBudget {
		return fmt.Sprintf("budget: floors %d + grant %d > total %d", committed, g, m.cfg.TotalTaskBudget), false
	}
	free := m.freeCapacity()
	tm := m.session.Options().TaskManagerSpec
	need := cluster.ResourceSpec{CPUMilli: g * tm.CPUMilli, MemoryMB: g * tm.MemoryMB}
	if need.CPUMilli > free.CPUMilli || need.MemoryMB > free.MemoryMB {
		return fmt.Sprintf("capacity: need %dm/%dMB, free %dm/%dMB",
			need.CPUMilli, need.MemoryMB, free.CPUMilli, free.MemoryMB), false
	}
	return "", true
}

// freeCapacity is the cluster's total allocatable minus everything
// reserved by live (running or pending) pods.
func (m *Manager) freeCapacity() cluster.ResourceSpec {
	var free cluster.ResourceSpec
	for _, n := range m.k8s.Nodes() {
		if spec, ok := m.k8s.NodeAllocatable(n); ok {
			free.CPUMilli += spec.CPUMilli
			free.MemoryMB += spec.MemoryMB
		}
	}
	for _, p := range m.k8s.Pods() {
		if p.Phase != cluster.PodTerminated {
			free.CPUMilli -= p.Spec.CPUMilli
			free.MemoryMB -= p.Spec.MemoryMB
		}
	}
	return free
}
