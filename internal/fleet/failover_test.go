package fleet

import (
	"bytes"
	"testing"
)

// checkpointCut is the round at which the failover tests kill the
// primary. scenarioInputs posts a kill at this round, so the checkpoint
// carries a pending (undelivered) input — the repost path is exercised,
// not just the replay of committed history.
const checkpointCut = 6

// runPrimaryToCheckpoint drives the event scenario until checkpointCut
// rounds have completed, posts that round's inputs (left pending), and
// returns the serialized checkpoint.
func runPrimaryToCheckpoint(t *testing.T, shards int) []byte {
	t.Helper()
	cfg := threeJobConfig(t)
	cfg.Shards = shards
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	for m.Round() < checkpointCut {
		scenarioInputs(t, m, m.Round())
		if err := m.Step(); err != nil {
			t.Fatalf("primary step %d: %v", m.Round(), err)
		}
	}
	scenarioInputs(t, m, checkpointCut)
	var buf bytes.Buffer
	if err := m.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestFleetFailoverTraceByteIdentical is the failover half of the
// headline invariant: a replica resumed from a mid-run checkpoint — on a
// different shard count than the primary — finishes the run with an
// event trace and result byte-identical to an uninterrupted run.
func TestFleetFailoverTraceByteIdentical(t *testing.T) {
	ref := runEventScenario(t, 4, 2)
	refTrace := ref.TraceBytes()
	refFP := resultFingerprint(t, ref.Result())

	ckBytes := runPrimaryToCheckpoint(t, 4)

	repCfg := threeJobConfig(t)
	repCfg.Shards = 16
	specs := map[string]JobSpec{"delta": deltaSpec(t)}
	rep, err := ResumeReader(repCfg, bytes.NewReader(ckBytes), specs)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep.Round() != checkpointCut {
		t.Fatalf("replica resumed at round %d, want %d", rep.Round(), checkpointCut)
	}
	if _, err := rep.Run(); err != nil {
		t.Fatalf("replica run: %v", err)
	}
	if !bytes.Equal(rep.TraceBytes(), refTrace) {
		t.Fatalf("replica trace diverged from uninterrupted run:\n%s",
			firstTraceDiff(rep.TraceText(), ref.TraceText()))
	}
	if fp := resultFingerprint(t, rep.Result()); fp != refFP {
		t.Fatalf("replica result fingerprint diverged from uninterrupted run")
	}
}

// TestFleetCheckpointDeterministic: the checkpoint bytes themselves are
// a pure function of manager state.
func TestFleetCheckpointDeterministic(t *testing.T) {
	a := runPrimaryToCheckpoint(t, 1)
	b := runPrimaryToCheckpoint(t, 4)
	// Shard count is recorded in the meta section, so normalize it by
	// checkpointing two same-shard runs instead of comparing across.
	c := runPrimaryToCheckpoint(t, 1)
	if !bytes.Equal(a, c) {
		t.Fatal("two identical runs produced different checkpoints")
	}
	if len(b) == 0 {
		t.Fatal("empty checkpoint")
	}
}

// TestFleetResumeRejectsDivergence: every verifiable section of the
// checkpoint is actually verified — a replica with the wrong config, a
// missing dynamic spec, or a tampered section must be refused, never
// silently forked.
func TestFleetResumeRejectsDivergence(t *testing.T) {
	ckBytes := runPrimaryToCheckpoint(t, 1)
	specs := map[string]JobSpec{"delta": deltaSpec(t)}

	t.Run("wrong seed", func(t *testing.T) {
		cfg := threeJobConfig(t)
		cfg.Seed = 99
		if _, err := ResumeReader(cfg, bytes.NewReader(ckBytes), specs); err == nil {
			t.Fatal("resume with a different seed accepted")
		}
	})
	t.Run("wrong budget", func(t *testing.T) {
		cfg := threeJobConfig(t)
		cfg.TotalTaskBudget = 12
		if _, err := ResumeReader(cfg, bytes.NewReader(ckBytes), specs); err == nil {
			t.Fatal("resume with a different budget accepted")
		}
	})
	t.Run("missing dynamic spec", func(t *testing.T) {
		if _, err := ResumeReader(threeJobConfig(t), bytes.NewReader(ckBytes), nil); err == nil {
			t.Fatal("resume without the dynamic job's spec accepted")
		}
	})
	t.Run("tampered trace hash", func(t *testing.T) {
		m, err := New(threeJobConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		for m.Round() < 3 {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
		ck, err := m.BuildCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := ck.Put("core", coreCheckpoint{TraceLen: m.log.Len(), TraceHash: 12345, InboxNextSeq: m.inbox.NextSeq()}); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(threeJobConfig(t), ck, nil); err == nil {
			t.Fatal("tampered trace hash accepted")
		}
	})
	t.Run("tampered arbiter budget", func(t *testing.T) {
		m, err := New(threeJobConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		for m.Round() < 3 {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
		ck, err := m.BuildCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		var jobs []jobCheckpoint
		if err := ck.Get("arbiter", &jobs); err != nil {
			t.Fatal(err)
		}
		jobs[0].Budget += 5
		if err := ck.Put("arbiter", jobs); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(threeJobConfig(t), ck, nil); err == nil {
			t.Fatal("tampered arbiter budget accepted")
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		if _, err := ResumeReader(threeJobConfig(t), bytes.NewReader([]byte(`{"kind":"gp","version":1}`)), nil); err == nil {
			t.Fatal("foreign checkpoint kind accepted")
		}
	})
}
