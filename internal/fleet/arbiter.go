package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"dragster/internal/fleet/event"
	"dragster/internal/telemetry"
)

// Arbitration selects the budget re-partitioning rule.
type Arbitration int

const (
	// DualPrice partitions the surplus budget by each job's OSP shadow
	// price: a job whose long-term buffer constraint is binding carries a
	// positive dual λ, meaning one more unit of capacity would reduce its
	// backlog — so it outbids satisfied (λ≈0) jobs for the surplus.
	// Satisfied jobs are simultaneously ratcheted down toward their actual
	// usage, which clamps GP-UCB exploration excursions they would
	// otherwise take for free.
	DualPrice Arbitration = iota
	// EqualSplit is the static baseline: every running job gets an equal
	// share of the budget regardless of need.
	EqualSplit
)

// String implements fmt.Stringer.
func (a Arbitration) String() string {
	switch a {
	case DualPrice:
		return "dual-price"
	case EqualSplit:
		return "equal-split"
	default:
		return fmt.Sprintf("Arbitration(%d)", int(a))
	}
}

// minSurplusPrice is the dual price below which a job is considered
// satisfied and gets no surplus budget. Unclaimed surplus stays
// unallocated — idle slack costs nothing, whereas handing it to a
// satisfied tenant funds GP-UCB exploration excursions the fleet pays
// for in real dollars. This is where the dual-price arbiter's cost
// advantage over equal-split comes from.
const minSurplusPrice = 0.01

// rebalance re-partitions the global Σ-tasks budget across the running
// jobs and applies the new shares. It is a pure function of observable
// state (usage, duals, priorities) evaluated in admission order, so a
// fixed seed reproduces every decision. Shrinks take effect immediately
// (the job is trim-rescaled below its new budget before the round's
// slots run); grows only widen the feasible set of the next decision.
// Because Σ shares ≤ TotalTaskBudget by construction and controllers
// project their decisions onto their share, the fleet-wide invariant
// Σ_jobs Σ_ops tasks ≤ B holds at every round of a chaos-free run.
func (m *Manager) rebalance(r int) error {
	if len(m.running) == 0 {
		return nil
	}
	var targets []int
	switch m.cfg.Arbitration {
	case EqualSplit:
		targets = m.equalSplit()
	default:
		targets = m.dualPriceSplit()
	}

	// Hysteresis: keep the previous share when the move is smaller than
	// the threshold — unless keeping every small move would overflow the
	// budget (possible right after an admission squeezed the floors).
	kept := make([]int, len(m.running))
	keptSum := 0
	for i, js := range m.running {
		kept[i] = targets[i]
		if diff := targets[i] - js.budget; js.budget >= js.spec.floor() &&
			diff > -m.cfg.HysteresisTasks && diff < m.cfg.HysteresisTasks {
			kept[i] = js.budget
		}
		keptSum += kept[i]
	}
	if keptSum <= m.cfg.TotalTaskBudget {
		targets = kept
	}

	for i, js := range m.running {
		if targets[i] == js.budget {
			continue
		}
		price := dualPrice(js.ctrl.Duals())
		m.emit(event.TypeGrant, js.spec.Name,
			"price="+strconv.FormatFloat(price, 'g', 6, 64),
			int64(js.budget), int64(targets[i]))
		m.res.ArbiterDecisions = append(m.res.ArbiterDecisions, ArbiterDecision{
			Round: r, Job: js.spec.Name, From: js.budget, To: targets[i], Price: price,
		})
		m.tracer.Event("fleet", "rebalance",
			telemetry.Str("job", js.spec.Name),
			telemetry.Int("from", js.budget), telemetry.Int("to", targets[i]),
			telemetry.Float("price", price))
		m.reg.Inc("fleet_arbiter_decisions")
		m.cfg.Counters.Inc("fleet_arbiter_decisions")
		if err := js.ctrl.SetTaskBudget(targets[i]); err != nil {
			return fmt.Errorf("fleet: job %s: %w", js.spec.Name, err)
		}
		js.budget = targets[i]
		if err := m.shrinkToBudget(js); err != nil {
			return err
		}
	}
	return nil
}

// dualPriceSplit computes the DualPrice shares: every job keeps a base
// of clamp(need, floor, min(prevBudget, maxUseful)) — a ratchet toward
// the utilization-derived demand estimate of what it actually uses (see
// estimateNeed) — and the surplus is split largest-remainder by
// priority × price across the jobs whose dual price exceeds
// minSurplusPrice, with per-rebalance growth capped at MaxGrowTasks and
// per-job budgets capped at maxUseful. When no job is priced the
// surplus stays unallocated.
func (m *Manager) dualPriceSplit() []int {
	n := len(m.running)
	base := make([]int, n)
	total := 0
	for i, js := range m.running {
		hi := js.budget
		if u := js.spec.maxUseful(); hi > u {
			hi = u
		}
		if hi < js.spec.floor() {
			hi = js.spec.floor()
		}
		b := js.need
		if b == 0 {
			b = js.usage // no snapshot yet (just admitted)
		}
		if b < js.spec.floor() {
			b = js.spec.floor()
		}
		if b > hi {
			b = hi
		}
		base[i] = b
		total += b
	}
	// Right after an admission the floors may momentarily not all fit on
	// top of incumbent usage; shave the jobs furthest above their floor
	// (ties: latest admitted first) until the bases fit.
	for total > m.cfg.TotalTaskBudget {
		best := -1
		for i := n - 1; i >= 0; i-- {
			if over := base[i] - m.running[i].spec.floor(); over > 0 &&
				(best < 0 || over > base[best]-m.running[best].spec.floor()) {
				best = i
			}
		}
		if best < 0 {
			break // all at floor; admission guarantees this fits
		}
		base[best]--
		total--
	}

	surplus := m.cfg.TotalTaskBudget - total
	if surplus <= 0 {
		return base
	}
	weights := make([]float64, n)
	var wsum float64
	for i, js := range m.running {
		price := dualPrice(js.ctrl.Duals())
		if price <= minSurplusPrice {
			continue // satisfied: no claim on the surplus
		}
		w := js.spec.Priority * price
		weights[i] = w
		wsum += w
	}
	if wsum == 0 {
		return base // nobody is starved; leave the surplus unallocated
	}
	shares := largestRemainder(surplus, weights, wsum)
	out := make([]int, n)
	for i, js := range m.running {
		grow := shares[i]
		if grow > m.cfg.MaxGrowTasks {
			grow = m.cfg.MaxGrowTasks
		}
		b := base[i] + grow
		if u := js.spec.maxUseful(); b > u {
			b = u
		}
		out[i] = b
	}
	return out
}

// equalSplit is the static baseline: floors, then an equal
// largest-remainder split of the remainder, capped at maxUseful.
func (m *Manager) equalSplit() []int {
	n := len(m.running)
	out := make([]int, n)
	total := 0
	for i, js := range m.running {
		out[i] = js.spec.floor()
		total += out[i]
	}
	surplus := m.cfg.TotalTaskBudget - total
	if surplus <= 0 {
		return out
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	shares := largestRemainder(surplus, weights, float64(n))
	for i, js := range m.running {
		b := out[i] + shares[i]
		if u := js.spec.maxUseful(); b > u {
			b = u
		}
		out[i] = b
	}
	return out
}

// largestRemainder apportions total units proportionally to weights,
// deterministically: floors first, then one extra unit each to the
// largest fractional remainders (ties broken by lowest index).
func largestRemainder(total int, weights []float64, wsum float64) []int {
	n := len(weights)
	out := make([]int, n)
	if total <= 0 || wsum <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	used := 0
	for i, w := range weights {
		exact := float64(total) * w / wsum
		fl := math.Floor(exact)
		out[i] = int(fl)
		used += out[i]
		rems[i] = rem{idx: i, frac: exact - fl}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; k < total-used; k++ {
		out[rems[k%n].idx]++
	}
	return out
}

// shrinkToBudget rescales a job below its (reduced) budget immediately:
// tasks are trimmed from the most-parallel operator first (ties: lowest
// operator index), never below one task per operator. Grows are left to
// the job's own next decision — the controller explores its widened
// budget with its GP posteriors, not a blind scale-up.
func (m *Manager) shrinkToBudget(js *jobState) error {
	desired := js.fj.Parallelism()
	if sum(desired) <= js.budget {
		return nil
	}
	for sum(desired) > js.budget {
		best := -1
		for i, n := range desired {
			if n > 1 && (best < 0 || n > desired[best]) {
				best = i
			}
		}
		if best < 0 {
			break // all operators at 1; floor ≤ budget makes this unreachable
		}
		desired[best]--
	}
	m.emit(event.TypeShrink, js.spec.Name, "", int64(sum(desired)))
	m.tracer.Event("fleet", "shrink",
		telemetry.Str("job", js.spec.Name), telemetry.Int("to", sum(desired)))
	if err := js.fj.Rescale(desired); err != nil {
		return fmt.Errorf("fleet: shrinking job %s: %w", js.spec.Name, err)
	}
	js.usage = sum(desired)
	return nil
}
