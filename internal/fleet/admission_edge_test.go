package fleet

import (
	"strings"
	"testing"

	"dragster/internal/workload"
)

func wcJob(t *testing.T, name string, arrive, depart int, initial []int) JobSpec {
	t.Helper()
	wc := mustSpec(t, workload.WordCount)
	return JobSpec{
		Name: name, Workload: wc, Rates: constRates(t, wc.LowRates),
		ArriveSlot: arrive, DepartSlot: depart, InitialTasks: initial,
	}
}

func groupJob(t *testing.T, name string, arrive int) JobSpec {
	t.Helper()
	g := mustSpec(t, workload.Group)
	return JobSpec{Name: name, Workload: g, Rates: constRates(t, g.LowRates), ArriveSlot: arrive}
}

// admissionOutcomes returns the recorded admission events for one job as
// "outcome@round" strings, in order.
func admissionOutcomes(res *Result, job string) []string {
	var out []string
	for _, ev := range res.Admissions {
		if ev.Job == job {
			out = append(out, ev.Outcome+"@"+itoa(ev.Round))
		}
	}
	return out
}

func jobByName(res *Result, name string) *JobResult {
	for i := range res.Jobs {
		if res.Jobs[i].Name == name {
			return &res.Jobs[i]
		}
	}
	return nil
}

// TestFleetAdmissionEdges drives the admission controller through its
// edge cases as one table. Admissibility is floor-based (running jobs
// above their floor are shrunk by the rebalance that follows), so each
// case engineers blockage through admission grants — max(floor,
// ΣInitialTasks) — against a tight budget.
func TestFleetAdmissionEdges(t *testing.T) {
	cases := []struct {
		name     string
		budget   int
		maxQueue int
		jobs     func(t *testing.T) []JobSpec
		mutate   func(t *testing.T, m *Manager, r int)
		check    func(t *testing.T, res *Result)
	}{
		{
			// The front of the queue asks for more than the budget minus
			// the incumbent's floor; a smaller job behind it COULD fit but
			// must not jump the queue. When the incumbent departs, both are
			// admitted in FIFO order in the same round.
			name:   "head of line blocking",
			budget: 4,
			jobs: func(t *testing.T) []JobSpec {
				return []JobSpec{
					wcJob(t, "incumbent", 0, 4, nil),   // floor 2, departs round 4
					wcJob(t, "big", 1, 0, []int{2, 2}), // grant 4: blocked while incumbent runs
					groupJob(t, "small", 2),            // grant 1: would fit, must wait behind big
				}
			},
			check: func(t *testing.T, res *Result) {
				big, small := jobByName(res, "big"), jobByName(res, "small")
				if big.AdmitSlot != 4 {
					t.Errorf("big admitted at %d, want 4 (incumbent's departure)", big.AdmitSlot)
				}
				if small.AdmitSlot != 4 {
					t.Errorf("small admitted at %d, want 4 (released with the head)", small.AdmitSlot)
				}
				if big.QueuedRounds == 0 || small.QueuedRounds == 0 {
					t.Errorf("queued rounds big=%d small=%d, want both > 0", big.QueuedRounds, small.QueuedRounds)
				}
			},
		},
		{
			// A floor that exceeds the whole budget can never fit: rejected
			// at arrival with a reason, never queued. A job that merely has
			// to wait is queued, not rejected.
			name:   "infeasible floor rejects, tight fit queues",
			budget: 1,
			jobs: func(t *testing.T) []JobSpec {
				return []JobSpec{
					groupJob(t, "incumbent", 0),   // floor 1: fills the budget
					wcJob(t, "toobig", 1, 0, nil), // floor 2 > budget 1: reject
					groupJob(t, "waiter", 2),      // floor 1: queues behind the incumbent
				}
			},
			check: func(t *testing.T, res *Result) {
				toobig := jobByName(res, "toobig")
				if toobig.Status != StatusRejected {
					t.Errorf("toobig status %v, want rejected", toobig.Status)
				}
				got := admissionOutcomes(res, "toobig")
				if len(got) != 1 || !strings.HasPrefix(got[0], "rejected@1") {
					t.Errorf("toobig outcomes %v, want [rejected@1]", got)
				}
				for _, ev := range res.Admissions {
					if ev.Job == "toobig" && !strings.Contains(ev.Reason, "floor") {
						t.Errorf("toobig rejection reason %q, want a floor/budget reason", ev.Reason)
					}
				}
				waiter := jobByName(res, "waiter")
				if waiter.Status != StatusQueued {
					t.Errorf("waiter status %v, want queued (waiting, not rejected)", waiter.Status)
				}
				if got := admissionOutcomes(res, "waiter"); len(got) != 1 || !strings.HasPrefix(got[0], "queued@") {
					t.Errorf("waiter outcomes %v, want a single queued event", got)
				}
			},
		},
		{
			// Queue overflow rejects the newcomer, never evicts the tenant
			// already waiting.
			name:     "queue overflow rejects newcomer",
			budget:   4,
			maxQueue: 1,
			jobs: func(t *testing.T) []JobSpec {
				return []JobSpec{
					wcJob(t, "incumbent", 0, 0, nil),        // floor 2, never departs
					wcJob(t, "first-in", 1, 0, []int{2, 2}), // grant 4: blocked forever
					groupJob(t, "overflow", 2),              // queue already full
				}
			},
			check: func(t *testing.T, res *Result) {
				if res.PeakQueueDepth != 1 {
					t.Errorf("peak queue depth %d, want 1 (MaxQueue)", res.PeakQueueDepth)
				}
				overflow := jobByName(res, "overflow")
				if overflow.Status != StatusRejected {
					t.Errorf("overflow status %v, want rejected (queue full)", overflow.Status)
				}
				for _, ev := range res.Admissions {
					if ev.Job == "overflow" && ev.Outcome == "rejected" &&
						!strings.Contains(ev.Reason, "queue full") {
						t.Errorf("overflow rejection reason %q", ev.Reason)
					}
				}
				if first := jobByName(res, "first-in"); first.Status != StatusQueued {
					t.Errorf("first-in status %v, want still queued", first.Status)
				}
			},
		},
		{
			// A kill that lands while the job is still queued departs it
			// without ever building a stack, and unblocks the queue behind
			// it the same round.
			name:   "cancel while queued",
			budget: 4,
			jobs: func(t *testing.T) []JobSpec {
				return []JobSpec{
					wcJob(t, "incumbent", 0, 0, nil),      // floor 2, never departs
					wcJob(t, "doomed", 1, 0, []int{2, 2}), // grant 4: blocked at the head
					groupJob(t, "heir", 2),                // grant 1: fits once doomed is gone
				}
			},
			mutate: func(t *testing.T, m *Manager, r int) {
				if r == 3 {
					if err := m.Kill("doomed"); err != nil {
						t.Fatalf("kill doomed: %v", err)
					}
				}
			},
			check: func(t *testing.T, res *Result) {
				doomed := jobByName(res, "doomed")
				if doomed.Status != StatusDeparted {
					t.Errorf("doomed status %v, want departed", doomed.Status)
				}
				if doomed.AdmitSlot != -1 {
					t.Errorf("doomed admit slot %d, want -1 (never admitted)", doomed.AdmitSlot)
				}
				if len(doomed.Rounds) != 0 {
					t.Errorf("doomed ran %d rounds while queued", len(doomed.Rounds))
				}
				heir := jobByName(res, "heir")
				if heir.Status != StatusRunning || heir.AdmitSlot != 3 {
					t.Errorf("heir status %v admit %d, want running from round 3 (the kill unblocked it)",
						heir.Status, heir.AdmitSlot)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Jobs:            tc.jobs(t),
				Slots:           10,
				SlotSeconds:     60,
				Seed:            5,
				TotalTaskBudget: tc.budget,
				MaxQueue:        tc.maxQueue,
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatalf("fleet.New: %v", err)
			}
			for !m.Done() {
				if tc.mutate != nil {
					tc.mutate(t, m, m.Round())
				}
				if err := m.Step(); err != nil {
					t.Fatalf("step %d: %v", m.Round(), err)
				}
			}
			tc.check(t, m.Result())
		})
	}
}

// TestFleetDuplicateNames: duplicate tenant names are refused at both
// construction and runtime submission — a name is the identity events,
// checkpoints, and shard ownership all key on.
func TestFleetDuplicateNames(t *testing.T) {
	jobs := []JobSpec{
		wcJob(t, "same", 0, 0, nil),
		groupJob(t, "same", 2),
	}
	cfg := Config{Jobs: jobs, Slots: 4, SlotSeconds: 60, Seed: 5, TotalTaskBudget: 8}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate config names: err=%v, want duplicate error", err)
	}

	cfg.Jobs = []JobSpec{wcJob(t, "solo", 0, 0, nil)}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(groupJob(t, "solo", 0)); err == nil {
		t.Fatal("dynamic submission reusing a live name accepted")
	}
	// Still refused after the original departs: names are forever (the
	// trace, the archive, and checkpoint replay all reference them).
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if err := m.Kill("solo"); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(groupJob(t, "solo", 0)); err == nil {
		t.Fatal("dynamic submission reusing a departed name accepted")
	}
}
