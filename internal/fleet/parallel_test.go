package fleet

import (
	"testing"

	"dragster/internal/chaos"
)

// TestFleetDecideWorkersByteIdentical pins the determinism property of
// the bounded per-round decide fan-out: any DecideWorkers setting must
// reproduce the sequential result byte for byte, with and without a
// cluster-level chaos schedule.
func TestFleetDecideWorkersByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		spec func() *chaos.Spec
	}{
		{"plain", func() *chaos.Spec { return nil }},
		{"chaos", func() *chaos.Spec {
			return chaos.NewSpec("fleet-parallel").CrashLastNode(3).HealNode(5)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 2, 4} {
				cfg := threeJobConfig(t)
				cfg.DecideWorkers = workers
				cfg.Chaos = tc.spec()
				got := resultFingerprint(t, runFleet(t, cfg))
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("DecideWorkers=%d produced different bytes than DecideWorkers=1", workers)
				}
			}
		})
	}
}
