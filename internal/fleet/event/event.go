// Package event is the fleet control plane's message core: typed
// control events with deterministic sequence numbers, a canonical binary
// codec, an append-only Log (the replayable event trace), and a
// dedup-and-order MessageSet for externally injected messages.
//
// The design follows the deterministic message-driven cores of BFT-style
// consensus engines (a core handler consumes an ordered message set and
// appends to a replayable log): every state transition of the fleet —
// arrival, admission, rejection, budget grant, shrink, decision,
// departure — is an Event stamped with the next sequence number at the
// moment the transition is applied, never from inside a worker
// goroutine. Sharding therefore changes which goroutine computes a
// decision but not the order transitions commit, which is what makes the
// headline invariant hold: a fixed seed produces a byte-identical event
// trace at any shard count.
package event

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
)

// Type enumerates the fleet control-plane transitions.
type Type uint8

const (
	// TypeSubmit is an external input: a dynamic job submission.
	TypeSubmit Type = iota + 1
	// TypeKill is an external input: a kill request for a named job.
	TypeKill
	// TypeRoundBegin opens a fleet round; Args[0] = running tenants.
	TypeRoundBegin
	// TypeArrive moves a due job into the admission queue.
	TypeArrive
	// TypeAdmit grants a queued job its admission allocation; Args[0] =
	// the Σ-tasks grant.
	TypeAdmit
	// TypeReject refuses a submission (Note carries the reason).
	TypeReject
	// TypeDepart cancels a tenant (scheduled departure or kill).
	TypeDepart
	// TypeGrant is an arbiter budget change; Args = [from, to],
	// Note = formatted dual price.
	TypeGrant
	// TypeShrink trims a tenant below its reduced budget; Args[0] = the
	// post-trim Σ tasks.
	TypeShrink
	// TypeDecide commits one tenant's round decision; Args = the desired
	// per-operator task vector.
	TypeDecide
	// TypeSkip records a tenant skipping its decision round (no fresh
	// metrics sample).
	TypeSkip
	// TypeRoundEnd closes a fleet round; Args[0] = Σ effective tasks.
	TypeRoundEnd
	// TypePlan journals a capacity plan built at admission; Args = the
	// planned per-operator task floors, Note = plan digest + probe count.
	TypePlan
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeSubmit:
		return "submit"
	case TypeKill:
		return "kill"
	case TypeRoundBegin:
		return "round_begin"
	case TypeArrive:
		return "arrive"
	case TypeAdmit:
		return "admit"
	case TypeReject:
		return "reject"
	case TypeDepart:
		return "depart"
	case TypeGrant:
		return "grant"
	case TypeShrink:
		return "shrink"
	case TypeDecide:
		return "decide"
	case TypeSkip:
		return "skip"
	case TypeRoundEnd:
		return "round_end"
	case TypePlan:
		return "plan"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// validType reports whether t is one of the declared event types.
func validType(t Type) bool { return t >= TypeSubmit && t <= TypePlan }

// Event is one fleet control-plane transition. Seq is assigned by the
// Log (or an Inbox) at commit time and is globally unique and dense
// within its stream. Events deliberately carry no shard identifier: the
// trace must be byte-identical at every shard count, so anything
// shard-dependent belongs in telemetry, not here.
type Event struct {
	Seq   uint64
	Round int
	Type  Type
	Job   string
	Args  []int64
	Note  string
}

// String renders the event as one human-readable trace line.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(e.Seq, 10))
	b.WriteByte(' ')
	b.WriteString("r=")
	b.WriteString(strconv.Itoa(e.Round))
	b.WriteByte(' ')
	b.WriteString(e.Type.String())
	if e.Job != "" {
		b.WriteString(" job=")
		b.WriteString(e.Job)
	}
	if len(e.Args) > 0 {
		b.WriteString(" args=")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(a, 10))
		}
	}
	if e.Note != "" {
		b.WriteString(" note=")
		b.WriteString(strconv.Quote(e.Note))
	}
	return b.String()
}

// equalPayload reports whether two events carry the same content
// (everything but Seq).
func equalPayload(a, b Event) bool {
	if a.Round != b.Round || a.Type != b.Type || a.Job != b.Job || a.Note != b.Note {
		return false
	}
	if len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Log is the append-only, sequence-stamped event history — the fleet's
// replayable trace. Emission is serialized by a mutex but must only
// happen from the manager's sequential commit path; the lock exists so
// read-side accessors (daemon surface, tests) are safe during a run.
type Log struct {
	mu  sync.Mutex
	seq uint64
	evs []Event
}

// NewLog returns an empty log whose first event will carry Seq 1.
func NewLog() *Log { return &Log{} }

// Emit stamps e with the next sequence number and appends it.
func (l *Log) Emit(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	l.evs = append(l.evs, e)
	return e
}

// Len returns the number of committed events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.evs)
}

// NextSeq returns the sequence number the next Emit will assign.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq + 1
}

// Events returns a copy of the committed history in commit order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.evs))
	copy(out, l.evs)
	return out
}

// Bytes returns the canonical binary encoding of the whole history —
// the byte string golden-trace tests compare across shard counts and
// across a failover.
func (l *Log) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf []byte
	for _, e := range l.evs {
		buf = Append(buf, e)
	}
	return buf
}

// Text renders the history one event per line (the JSONL-style golden
// file form: stable, diffable, human-readable).
func (l *Log) Text() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	for _, e := range l.evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash returns the FNV-1a digest of the canonical encoding; checkpoints
// store it so a replica can prove its replayed prefix matches the
// primary's trace without shipping the whole log.
func (l *Log) Hash() uint64 {
	h := fnv.New64a()
	h.Write(l.Bytes())
	return h.Sum64()
}

// HashPrefix returns the digest of the first n events (n past the end
// hashes the whole log).
func (l *Log) HashPrefix(n int) uint64 {
	l.mu.Lock()
	evs := l.evs
	if n < len(evs) {
		evs = evs[:n]
	}
	var buf []byte
	for _, e := range evs {
		buf = Append(buf, e)
	}
	l.mu.Unlock()
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum64()
}
