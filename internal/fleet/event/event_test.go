package event

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Round: 0, Type: TypeRoundBegin, Args: []int64{0}},
		{Round: 0, Type: TypeArrive, Job: "alpha"},
		{Round: 0, Type: TypeAdmit, Job: "alpha", Args: []int64{4}},
		{Round: 0, Type: TypeReject, Job: "giant", Note: "floor 12 exceeds total budget 8"},
		{Round: 1, Type: TypeGrant, Job: "alpha", Args: []int64{4, 7}, Note: "price=0.31"},
		{Round: 1, Type: TypeDecide, Job: "alpha", Args: []int64{2, 3, 2}},
		{Round: 1, Type: TypeSkip, Job: "beta"},
		{Round: 2, Type: TypeShrink, Job: "alpha", Args: []int64{5}},
		{Round: 2, Type: TypeDepart, Job: "alpha"},
		{Round: 2, Type: TypeRoundEnd, Args: []int64{5}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, want := range sampleEvents() {
		want.Seq = uint64(i + 1)
		enc := Encode(want)
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("event %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if !equalPayload(got, want) || got.Seq != want.Seq {
			t.Fatalf("event %d: round-trip mismatch:\n got %s\nwant %s", i, got, want)
		}
		// Canonical: re-encoding the decoded event reproduces the bytes.
		if !bytes.Equal(Encode(got), enc) {
			t.Fatalf("event %d: encoding is not canonical", i)
		}
	}
}

func TestDecodeAllRejectsTrailingGarbage(t *testing.T) {
	var buf []byte
	for i, e := range sampleEvents() {
		e.Seq = uint64(i + 1)
		buf = Append(buf, e)
	}
	evs, err := DecodeAll(buf)
	if err != nil {
		t.Fatalf("decode all: %v", err)
	}
	if len(evs) != len(sampleEvents()) {
		t.Fatalf("decoded %d events, want %d", len(evs), len(sampleEvents()))
	}
	if _, err := DecodeAll(append(buf, 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	good := Encode(Event{Seq: 1, Round: 3, Type: TypeAdmit, Job: "a", Args: []int64{2}})
	cases := map[string][]byte{
		"empty":              nil,
		"truncated":          good[:len(good)-2],
		"bad type":           {0x01, 0x00, 0xEE, 0x00, 0x00, 0x00},
		"huge string":        {0x01, 0x00, byte(TypeAdmit), 0xFF, 0xFF, 0x7F},
		"non-minimal varint": {0x80, 0x00, 0x00, byte(TypeAdmit), 0x00, 0x00, 0x00},
	}
	for name, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestLogSequencesAndHash(t *testing.T) {
	l := NewLog()
	if l.NextSeq() != 1 {
		t.Fatalf("fresh log NextSeq = %d, want 1", l.NextSeq())
	}
	for _, e := range sampleEvents() {
		stamped := l.Emit(e)
		if stamped.Seq == 0 {
			t.Fatal("Emit left Seq unset")
		}
	}
	evs := l.Events()
	if len(evs) != len(sampleEvents()) || l.Len() != len(evs) {
		t.Fatalf("log holds %d events, want %d", len(evs), len(sampleEvents()))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d; sequence numbers must be dense", i, e.Seq)
		}
	}
	decoded, err := DecodeAll(l.Bytes())
	if err != nil {
		t.Fatalf("log bytes do not decode: %v", err)
	}
	if len(decoded) != len(evs) {
		t.Fatalf("decoded %d events from log bytes, want %d", len(decoded), len(evs))
	}
	if l.Hash() != l.HashPrefix(l.Len()) {
		t.Fatal("full-prefix hash differs from Hash")
	}
	if l.HashPrefix(1) == l.Hash() {
		t.Fatal("prefix hash should differ from full hash")
	}
	if !strings.Contains(l.Text(), "admit job=alpha") {
		t.Fatalf("text rendering missing admit line:\n%s", l.Text())
	}
}

func TestMessageSetOrderAndDedup(t *testing.T) {
	s := NewMessageSet()
	a, err := s.Post(Event{Type: TypeSubmit, Job: "a"})
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if a.Seq != 1 {
		t.Fatalf("first post stamped %d, want 1", a.Seq)
	}
	b, err := s.Post(Event{Type: TypeKill, Job: "a"})
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	// Retry of a pending message: deduped, not an error.
	if fresh, err := s.Add(a); fresh || err != nil {
		t.Fatalf("retry add: fresh=%v err=%v, want deduped", fresh, err)
	}
	// Same key pending again: deduped.
	if fresh, err := s.Add(Event{Seq: 9, Type: TypeSubmit, Job: "a"}); fresh || err != nil {
		t.Fatalf("key dup: fresh=%v err=%v, want deduped", fresh, err)
	}
	// Same seq, different payload: diverging producer, must error.
	if _, err := s.Add(Event{Seq: b.Seq, Type: TypeKill, Job: "zzz"}); err == nil {
		t.Fatal("conflicting payload at one seq accepted")
	}
	got := s.Ready()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("ready = %v, want seqs [1 2]", got)
	}
	// Replay of an already-delivered seq: deduped.
	if fresh, err := s.Add(a); fresh || err != nil {
		t.Fatalf("stale add: fresh=%v err=%v, want deduped", fresh, err)
	}
	if s.Deduped() != 3 {
		t.Fatalf("deduped = %d, want 3", s.Deduped())
	}
}

func TestMessageSetGapBlocksDelivery(t *testing.T) {
	s := NewMessageSet()
	if fresh, err := s.Add(Event{Seq: 2, Type: TypeSubmit, Job: "b"}); !fresh || err != nil {
		t.Fatalf("add seq 2: fresh=%v err=%v", fresh, err)
	}
	if got := s.Ready(); got != nil {
		t.Fatalf("delivery across a gap: %v", got)
	}
	if fresh, err := s.Add(Event{Seq: 1, Type: TypeSubmit, Job: "a"}); !fresh || err != nil {
		t.Fatalf("add seq 1: fresh=%v err=%v", fresh, err)
	}
	got := s.Ready()
	if len(got) != 2 || got[0].Job != "a" || got[1].Job != "b" {
		t.Fatalf("ready = %v, want a then b", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after drain", s.Pending())
	}
}

func TestMessageSetSkipTo(t *testing.T) {
	s := NewMessageSet()
	if _, err := s.Post(Event{Type: TypeSubmit, Job: "a"}); err != nil {
		t.Fatal(err)
	}
	s.SkipTo(10)
	if s.Pending() != 0 || s.NextSeq() != 10 {
		t.Fatalf("after SkipTo(10): pending=%d next=%d", s.Pending(), s.NextSeq())
	}
	e, err := s.Post(Event{Type: TypeSubmit, Job: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 10 {
		t.Fatalf("post after SkipTo stamped %d, want 10", e.Seq)
	}
}

func TestTypeStrings(t *testing.T) {
	for typ := TypeSubmit; typ <= TypePlan; typ++ {
		if strings.HasPrefix(typ.String(), "Type(") {
			t.Errorf("type %d has no name", typ)
		}
	}
	if !strings.HasPrefix(Type(99).String(), "Type(") {
		t.Error("unknown type should render as Type(n)")
	}
}
