package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unicode/utf8"
)

// Canonical binary codec. Layout, in order:
//
//	seq    uvarint
//	round  varint
//	type   1 byte
//	job    uvarint length + bytes
//	nargs  uvarint, then each arg as varint
//	note   uvarint length + bytes
//
// Minimal-width varints make the encoding canonical: one event has
// exactly one byte representation, so trace equality is payload
// equality. Decode enforces the bounds below and rejects trailing
// garbage at the event level, which is what lets the fuzz target assert
// Encode∘Decode is the identity on every accepted input.

const (
	// MaxStringLen bounds Job and Note so a corrupt length prefix cannot
	// ask Decode for gigabytes.
	MaxStringLen = 4096
	// MaxArgs bounds the argument vector (the widest real payload is a
	// per-operator task vector).
	MaxArgs = 1024
)

// Append encodes e and appends the bytes to buf, returning the extended
// slice (allocation-free when buf has capacity).
func Append(buf []byte, e Event) []byte {
	buf = binary.AppendUvarint(buf, e.Seq)
	buf = binary.AppendVarint(buf, int64(e.Round))
	buf = append(buf, byte(e.Type))
	buf = binary.AppendUvarint(buf, uint64(len(e.Job)))
	buf = append(buf, e.Job...)
	buf = binary.AppendUvarint(buf, uint64(len(e.Args)))
	for _, a := range e.Args {
		buf = binary.AppendVarint(buf, a)
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.Note)))
	buf = append(buf, e.Note...)
	return buf
}

// Encode returns the canonical encoding of e.
func Encode(e Event) []byte { return Append(nil, e) }

var (
	errShort        = errors.New("event: truncated encoding")
	errNonCanonical = errors.New("event: non-minimal varint")
)

// uvarint decodes a minimal-width uvarint, rejecting the redundant
// encodings binary.Uvarint accepts (e.g. 0x80 0x00 for zero) so one
// event has exactly one byte form.
func uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, errShort
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, errNonCanonical
	}
	return v, n, nil
}

func varint(b []byte) (int64, int, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, 0, errShort
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, errNonCanonical
	}
	return v, n, nil
}

// Decode reads one event from the front of b, returning the event and
// the number of bytes consumed.
func Decode(b []byte) (Event, int, error) {
	var e Event
	off := 0
	seq, n, err := uvarint(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("event: seq: %w", err)
	}
	off += n
	round, n, err := varint(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("event: round: %w", err)
	}
	if round < math.MinInt32 || round > math.MaxInt32 {
		return e, 0, fmt.Errorf("event: round %d out of range", round)
	}
	off += n
	if off >= len(b) {
		return e, 0, fmt.Errorf("event: type: %w", errShort)
	}
	typ := Type(b[off])
	if !validType(typ) {
		return e, 0, fmt.Errorf("event: unknown type %d", b[off])
	}
	off++
	job, n, err := decodeString(b[off:], "job")
	if err != nil {
		return e, 0, err
	}
	off += n
	nargs, n, err := uvarint(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("event: arg count: %w", err)
	}
	if nargs > MaxArgs {
		return e, 0, fmt.Errorf("event: %d args exceeds limit %d", nargs, MaxArgs)
	}
	off += n
	var args []int64
	if nargs > 0 {
		args = make([]int64, nargs)
		for i := range args {
			v, n, err := varint(b[off:])
			if err != nil {
				return e, 0, fmt.Errorf("event: arg %d: %w", i, err)
			}
			args[i] = v
			off += n
		}
	}
	note, n, err := decodeString(b[off:], "note")
	if err != nil {
		return e, 0, err
	}
	off += n
	e = Event{Seq: seq, Round: int(round), Type: typ, Job: job, Args: args, Note: note}
	return e, off, nil
}

func decodeString(b []byte, field string) (string, int, error) {
	l, n, err := uvarint(b)
	if err != nil {
		return "", 0, fmt.Errorf("event: %s length: %w", field, err)
	}
	if l > MaxStringLen {
		return "", 0, fmt.Errorf("event: %s length %d exceeds limit %d", field, l, MaxStringLen)
	}
	if uint64(len(b)-n) < l {
		return "", 0, fmt.Errorf("event: %s: %w", field, errShort)
	}
	s := string(b[n : n+int(l)])
	if !utf8.ValidString(s) {
		return "", 0, fmt.Errorf("event: %s is not valid UTF-8", field)
	}
	return s, n + int(l), nil
}

// DecodeAll decodes a concatenated trace (the Log.Bytes form) back into
// its event list, rejecting trailing bytes.
func DecodeAll(b []byte) ([]Event, error) {
	var out []Event
	for len(b) > 0 {
		e, n, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", len(out), err)
		}
		out = append(out, e)
		b = b[n:]
	}
	return out, nil
}
