package event

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzFleetEvent drives the codec and the message set with arbitrary
// inputs and checks the invariants the control plane's determinism rests
// on:
//
//  1. codec round-trip: every constructible event survives
//     Encode→Decode unchanged, and the encoding is canonical (the only
//     byte form that decodes to that event);
//  2. decode safety: arbitrary bytes either fail to decode or decode to
//     an event whose re-encoding is accepted and equal under re-decode;
//  3. message-set ordering: delivered sequence numbers are strictly
//     ascending and gap-free, re-adding a delivered message is always a
//     dedup, and no delivery window contains two events with the same
//     (Type, Job) key.
func FuzzFleetEvent(f *testing.F) {
	f.Add(uint64(1), 0, byte(TypeAdmit), "alpha", int64(4), int64(7), "grant", []byte{})
	f.Add(uint64(9), 3, byte(TypeDecide), "job-001", int64(2), int64(3), "", []byte{0x01, 0x00, 0x05})
	f.Add(uint64(0), -1, byte(0xEE), "", int64(-1), int64(1<<40), "why", []byte{0x80, 0x00})
	f.Fuzz(func(t *testing.T, seq uint64, round int, typ byte, job string, a0, a1 int64, note string, raw []byte) {
		// --- codec round-trip on the constructed event ---
		if validType(Type(typ)) && len(job) <= MaxStringLen && len(note) <= MaxStringLen &&
			utf8.ValidString(job) && utf8.ValidString(note) &&
			round >= -1<<31 && round < 1<<31 {
			want := Event{Seq: seq, Round: round, Type: Type(typ), Job: job, Args: []int64{a0, a1}, Note: note}
			enc := Encode(want)
			got, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("decode of valid encoding failed: %v", err)
			}
			if n != len(enc) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
			}
			if got.Seq != want.Seq || !equalPayload(got, want) {
				t.Fatalf("round-trip mismatch:\n got %s\nwant %s", got, want)
			}
			if !bytes.Equal(Encode(got), enc) {
				t.Fatal("re-encoding diverged from original encoding")
			}
		}

		// --- decode safety on arbitrary bytes ---
		if e, n, err := Decode(raw); err == nil {
			if n <= 0 || n > len(raw) {
				t.Fatalf("decode reported %d consumed bytes of %d", n, len(raw))
			}
			re := Encode(e)
			e2, _, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encoding of decoded event does not decode: %v", err)
			}
			if e2.Seq != e.Seq || !equalPayload(e2, e) {
				t.Fatal("decode∘encode∘decode is not stable")
			}
		}

		// --- message-set ordering and dedup ---
		s := NewMessageSet()
		type delivered struct {
			seq uint64
			typ Type
			job string
		}
		var all []delivered
		post := func(e Event) {
			stamped, err := s.Post(e)
			if err != nil {
				return // duplicate pending key; legal refusal
			}
			// A posted message must be deliverable exactly once.
			if fresh, err := s.Add(stamped); fresh || err != nil {
				t.Fatalf("re-add of pending message: fresh=%v err=%v", fresh, err)
			}
		}
		jobs := []string{job, note, "x"}
		types := []Type{TypeSubmit, TypeKill}
		for i := 0; i < 6; i++ {
			post(Event{Type: types[i%2], Job: jobs[i%3]})
			if i%2 == 1 {
				for _, e := range s.Ready() {
					all = append(all, delivered{e.Seq, e.Type, e.Job})
				}
			}
		}
		for _, e := range s.Ready() {
			all = append(all, delivered{e.Seq, e.Type, e.Job})
		}
		for i := 1; i < len(all); i++ {
			if all[i].seq != all[i-1].seq+1 {
				t.Fatalf("delivery not gap-free: %d then %d", all[i-1].seq, all[i].seq)
			}
		}
		// Replays of delivered messages are dedups, never fresh.
		for _, d := range all {
			if fresh, err := s.Add(Event{Seq: d.seq, Type: d.typ, Job: d.job}); fresh || err != nil {
				t.Fatalf("replay of delivered seq %d: fresh=%v err=%v", d.seq, fresh, err)
			}
		}
	})
}
