package event

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDuplicate reports a message refused at post time because an
// equivalent (Type, Job) message is already pending delivery — a retry
// the producer may treat as success.
var ErrDuplicate = errors.New("event: duplicate pending message")

// MessageSet collects externally injected messages (dynamic submissions,
// kill requests) and hands them to the round loop deterministically: it
// deduplicates redundant deliveries and releases messages in gap-free
// ascending sequence order. It is the fleet's analogue of a consensus
// core's message set — the boundary where an unordered, at-least-once
// outside world becomes an ordered, exactly-once input stream.
//
// Two dedup rules apply:
//
//   - sequence dedup: a sequence number is accepted once, ever; re-adds
//     (retried deliveries) are dropped and counted;
//   - key dedup: within one undelivered window, a second message with
//     the same (Type, Job) is dropped — a duplicate POST of the same
//     submission must not become two arrivals.
//
// It is safe for concurrent use: the daemon posts from HTTP handlers
// while the round loop drains.
type MessageSet struct {
	mu      sync.Mutex
	seq     uint64 // last stamped sequence number
	next    uint64 // next sequence number to deliver
	pending map[uint64]Event
	keys    map[msgKey]bool // keys pending delivery
	deduped uint64
}

type msgKey struct {
	typ Type
	job string
}

// NewMessageSet returns an empty set; the first posted message is
// stamped with sequence number 1.
func NewMessageSet() *MessageSet {
	return &MessageSet{
		next:    1,
		pending: make(map[uint64]Event),
		keys:    make(map[msgKey]bool),
	}
}

// Post stamps e with the next input sequence number and adds it,
// returning the stamped event. Post is how in-process producers (the
// daemon surface) inject messages; replicas re-adding recorded inputs
// use Add with the original stamp instead.
func (s *MessageSet) Post(e Event) (Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.Seq = s.seq + 1
	if err := s.addLocked(e); err != nil {
		return Event{}, err
	}
	return e, nil
}

// Add inserts an already-stamped message. Duplicate sequence numbers and
// duplicate undelivered (Type, Job) keys are dropped (fresh=false);
// a sequence number that collides with a different payload is an error —
// that is not a retry, it is a diverging producer.
func (s *MessageSet) Add(e Event) (fresh bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Seq == 0 {
		return false, fmt.Errorf("event: message without a sequence number: %s", e)
	}
	if e.Seq < s.next {
		// Already delivered; a retry of old traffic.
		s.deduped++
		return false, nil
	}
	if prev, ok := s.pending[e.Seq]; ok {
		if !equalPayload(prev, e) {
			return false, fmt.Errorf("event: seq %d re-added with different payload", e.Seq)
		}
		s.deduped++
		return false, nil
	}
	if s.keys[msgKey{e.Type, e.Job}] {
		s.deduped++
		return false, nil
	}
	if err := s.addLocked(e); err != nil {
		return false, err
	}
	return true, nil
}

func (s *MessageSet) addLocked(e Event) error {
	if !validType(e.Type) {
		return fmt.Errorf("event: invalid message type %d", e.Type)
	}
	if s.keys[msgKey{e.Type, e.Job}] {
		s.deduped++
		return fmt.Errorf("%w: %s for job %q", ErrDuplicate, e.Type, e.Job)
	}
	s.pending[e.Seq] = e
	s.keys[msgKey{e.Type, e.Job}] = true
	if e.Seq > s.seq {
		s.seq = e.Seq
	}
	return nil
}

// Ready removes and returns the contiguous run of deliverable messages
// starting at the next expected sequence number, in ascending order. A
// gap (a stamped-but-not-yet-added message) stops delivery at the gap so
// no message is ever reordered past a missing predecessor.
func (s *MessageSet) Ready() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for {
		e, ok := s.pending[s.next]
		if !ok {
			break
		}
		delete(s.pending, s.next)
		delete(s.keys, msgKey{e.Type, e.Job})
		out = append(out, e)
		s.next++
	}
	return out
}

// Pending returns the number of undelivered messages.
func (s *MessageSet) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// NextSeq returns the sequence number delivery is waiting on.
func (s *MessageSet) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Deduped returns how many redundant deliveries were dropped.
func (s *MessageSet) Deduped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deduped
}

// SkipTo fast-forwards both the stamp and delivery cursors to resume
// after a checkpoint: the next posted or delivered message will carry
// sequence number seq. Pending messages are discarded (a replica
// reconstructs them from the recorded input log).
func (s *MessageSet) SkipTo(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq = seq - 1
	s.next = seq
	s.pending = make(map[uint64]Event)
	s.keys = make(map[msgKey]bool)
}
