package fleet

import (
	"fmt"
	"math"
	"strings"

	"dragster/internal/store"
	"dragster/internal/workload"
)

// Cross-job GP warm-start: when a tenant departs (or merely keeps
// running), the capacity observations its controller collected are
// harvested into a per-workload-kind archive; when a DAG-compatible
// tenant arrives later, its per-operator GPs are seeded from that
// archive and it skips the cold-start exploration phase.
//
// Compatibility is structural: two jobs share an archive iff their
// workload fingerprint matches — same workload name, same operator
// names in the same order, same parallelism grid bound, and same
// capacity scale. Operator capacity curves are hidden from controllers,
// so the fingerprint is the strongest safe notion of "the same physics"
// the control plane can check.
//
// Every controller owns a private store.DB (seeded at admission), so the
// per-round parallel decide fan-out never shares a history database;
// harvesting copies fresh records into the archive sequentially, in
// admission order, which keeps GP replay — an order-dependent
// computation — deterministic.

// minHarvestUtil drops low-utilization capacity observations from the
// archive: below it the Eq. 8 sample says more about the offered load
// than about the operator's capacity (mirrors core's MinObserveUtil).
const minHarvestUtil = 0.15

// fingerprint is the archive key for a workload spec.
func fingerprint(spec *workload.Spec) string {
	var b strings.Builder
	b.WriteString(spec.Name)
	b.WriteByte('|')
	for i := 0; i < spec.Graph.NumOperators(); i++ {
		b.WriteString(spec.Graph.OperatorName(i))
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "|%d|%g", spec.MaxTasks, spec.YMax)
	return b.String()
}

// warmArchive accumulates harvested capacity observations per workload
// kind. It is only touched from the manager's sequential round loop.
type warmArchive struct {
	byKind map[string]*store.DB
}

func newWarmArchive() *warmArchive {
	return &warmArchive{byKind: make(map[string]*store.DB)}
}

// seed builds a joining job's private history DB. When the archive holds
// compatible history (and warm-start is enabled), up to maxPerOp of the
// most recent records per operator are copied in; core.New replays them
// into the job's GPs. Returns the DB and how many records were seeded.
func (a *warmArchive) seed(spec *workload.Spec, disabled bool, maxPerOp int) (*store.DB, int) {
	db := store.New()
	if disabled {
		return db, 0
	}
	arch, ok := a.byKind[fingerprint(spec)]
	if !ok {
		return db, 0
	}
	n := 0
	for i := 0; i < spec.Graph.NumOperators(); i++ {
		name := spec.Graph.OperatorName(i)
		hist := arch.History(name)
		if len(hist) > maxPerOp {
			hist = hist[len(hist)-maxPerOp:]
		}
		for _, r := range hist {
			if err := db.Append(r); err != nil {
				// Records were validated on the way into the archive; an
				// append failure here would be a programming error.
				continue
			}
			n++
		}
	}
	return db, n
}

// harvest copies each running job's fresh history records into its kind
// archive. Jobs are visited in admission order and each job's records in
// append order, so archive contents — and therefore future warm-start
// replays — are deterministic.
func (m *Manager) harvest() {
	if m.cfg.DisableWarmStart {
		return
	}
	for _, js := range m.running {
		if js.db == nil {
			continue
		}
		key := fingerprint(js.spec.Workload)
		arch, ok := m.archive.byKind[key]
		if !ok {
			arch = store.New()
			m.archive.byKind[key] = arch
		}
		for i := 0; i < js.spec.Workload.Graph.NumOperators(); i++ {
			name := js.spec.Workload.Graph.OperatorName(i)
			hist := js.db.History(name)
			from := js.harvested[name]
			for _, r := range hist[from:] {
				if !harvestable(r) {
					continue
				}
				if err := arch.Append(r); err != nil {
					continue
				}
				m.cfg.Counters.Inc("fleet_warmstart_harvested")
			}
			js.harvested[name] = len(hist)
		}
	}
}

// harvestable keeps only observations that genuinely pin down capacity:
// positive, finite, and taken under meaningful utilization.
func harvestable(r store.Record) bool {
	return r.CapacityObs > 0 &&
		!math.IsNaN(r.CapacityObs) && !math.IsInf(r.CapacityObs, 0) &&
		r.Util >= minHarvestUtil
}
