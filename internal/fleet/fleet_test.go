package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"dragster/internal/chaos"
	"dragster/internal/telemetry"
	"dragster/internal/workload"
)

func mustSpec(t *testing.T, f func() (*workload.Spec, error)) *workload.Spec {
	t.Helper()
	s, err := f()
	if err != nil {
		t.Fatalf("workload spec: %v", err)
	}
	return s
}

func constRates(t *testing.T, rates []float64) workload.RateFunc {
	t.Helper()
	f, err := workload.Constant(rates)
	if err != nil {
		t.Fatalf("rates: %v", err)
	}
	return f
}

// threeJobConfig is the canonical mixed fleet: two tenants from round 0
// (one of which departs mid-run) and a late arrival that warm-starts
// from the first tenant's history.
func threeJobConfig(t *testing.T) Config {
	t.Helper()
	wc := mustSpec(t, workload.WordCount)
	gr := mustSpec(t, workload.Group)
	wc2 := mustSpec(t, workload.WordCount)
	return Config{
		Jobs: []JobSpec{
			{Name: "alpha", Workload: wc, Rates: constRates(t, wc.LowRates)},
			{Name: "beta", Workload: gr, Rates: constRates(t, gr.LowRates), DepartSlot: 6},
			{Name: "gamma", Workload: wc2, Rates: constRates(t, wc2.LowRates), ArriveSlot: 4},
		},
		Slots:           9,
		SlotSeconds:     120,
		Seed:            7,
		TotalTaskBudget: 24,
	}
}

func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	// Counters carries a mutex; compare it via its deterministic string
	// and the rest of the result via JSON.
	cs := res.Counters.String()
	res.Counters = nil
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b) + "\n" + cs
}

func runFleet(t *testing.T, cfg Config) *Result {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	return res
}

// TestFleetDeterministic runs the same mixed fleet twice at one seed and
// requires byte-identical results — the parallel per-round decide fan-out
// must not leak scheduling order into any outcome.
func TestFleetDeterministic(t *testing.T) {
	a := resultFingerprint(t, runFleet(t, threeJobConfig(t)))
	b := resultFingerprint(t, runFleet(t, threeJobConfig(t)))
	if a != b {
		t.Fatalf("fleet run not deterministic at fixed seed:\nrun1: %.400s\nrun2: %.400s", a, b)
	}
}

// TestFleetTracedMatchesUntraced requires the traced (serial-decide) run
// to produce the same decisions as the untraced (parallel-decide) run:
// tracing must be observation, never behaviour.
func TestFleetTracedMatchesUntraced(t *testing.T) {
	plain := resultFingerprint(t, runFleet(t, threeJobConfig(t)))
	cfg := threeJobConfig(t)
	cfg.Tracer = telemetry.NewTracer()
	traced := resultFingerprint(t, runFleet(t, cfg))
	if plain != traced {
		t.Fatalf("traced run diverged from untraced run:\nplain:  %.400s\ntraced: %.400s", plain, traced)
	}
}

// TestFleetBudgetInvariant checks the tentpole guarantee: the fleet's
// effective Σ tasks never exceeds the global budget at any round.
func TestFleetBudgetInvariant(t *testing.T) {
	cfg := threeJobConfig(t)
	res := runFleet(t, cfg)
	if res.BudgetOverruns != 0 {
		t.Fatalf("got %d budget overruns, want 0", res.BudgetOverruns)
	}
	for r, total := range res.TotalTasksByRound {
		if total > cfg.TotalTaskBudget {
			t.Fatalf("round %d: Σ tasks %d > budget %d", r, total, cfg.TotalTaskBudget)
		}
	}
	if got := res.Counters.Get("fleet_budget_overruns"); got != 0 {
		t.Fatalf("fleet_budget_overruns counter = %d, want 0", got)
	}
}

// TestFleetLifecycle checks arrivals, departures, and per-job histories
// line up with the schedule.
func TestFleetLifecycle(t *testing.T) {
	res := runFleet(t, threeJobConfig(t))
	if len(res.Jobs) != 3 {
		t.Fatalf("got %d job results, want 3", len(res.Jobs))
	}
	byName := map[string]JobResult{}
	for _, jr := range res.Jobs {
		byName[jr.Name] = jr
	}
	alpha, beta, gamma := byName["alpha"], byName["beta"], byName["gamma"]
	if alpha.Status != StatusRunning || alpha.AdmitSlot != 0 || len(alpha.Rounds) != 9 {
		t.Fatalf("alpha: status %v admit %d rounds %d; want running/0/9", alpha.Status, alpha.AdmitSlot, len(alpha.Rounds))
	}
	if beta.Status != StatusDeparted || beta.DepartSlot != 6 || len(beta.Rounds) != 6 {
		t.Fatalf("beta: status %v depart %d rounds %d; want departed/6/6", beta.Status, beta.DepartSlot, len(beta.Rounds))
	}
	if gamma.Status != StatusRunning || gamma.AdmitSlot != 4 || len(gamma.Rounds) != 5 {
		t.Fatalf("gamma: status %v admit %d rounds %d; want running/4/5", gamma.Status, gamma.AdmitSlot, len(gamma.Rounds))
	}
	if alpha.Cost <= 0 || beta.Cost <= 0 || gamma.Cost <= 0 {
		t.Fatalf("every tenant should accrue attributed cost: %v %v %v", alpha.Cost, beta.Cost, gamma.Cost)
	}
	if res.ClusterCost <= 0 {
		t.Fatal("shared cluster accrued no cost")
	}
}

// TestFleetWarmStart: gamma shares alpha's workload fingerprint and
// arrives after alpha has produced history, so it must be seeded; beta's
// workload is structurally different and must not be.
func TestFleetWarmStart(t *testing.T) {
	res := runFleet(t, threeJobConfig(t))
	var gamma, beta JobResult
	for _, jr := range res.Jobs {
		switch jr.Name {
		case "gamma":
			gamma = jr
		case "beta":
			beta = jr
		}
	}
	if !gamma.WarmStarted || gamma.WarmStartRecords == 0 {
		t.Fatalf("gamma should warm-start from alpha's archive, got %d records", gamma.WarmStartRecords)
	}
	if beta.WarmStarted {
		t.Fatal("beta has a different workload fingerprint and must not warm-start")
	}

	cfg := threeJobConfig(t)
	cfg.DisableWarmStart = true
	res = runFleet(t, cfg)
	for _, jr := range res.Jobs {
		if jr.WarmStarted {
			t.Fatalf("job %s warm-started with warm-start disabled", jr.Name)
		}
	}
}

// TestFleetAdmissionRejectsImpossibleFloor: a job whose floor exceeds
// the global budget can never run and is rejected outright.
func TestFleetAdmissionRejectsImpossibleFloor(t *testing.T) {
	wc := mustSpec(t, workload.WordCount)
	cfg := Config{
		Jobs: []JobSpec{
			{Name: "giant", Workload: wc, Rates: constRates(t, wc.LowRates)},
		},
		Slots:           2,
		SlotSeconds:     60,
		TotalTaskBudget: 1, // < floor of 2 operators
	}
	res := runFleet(t, cfg)
	if res.Jobs[0].Status != StatusRejected {
		t.Fatalf("got status %v, want rejected", res.Jobs[0].Status)
	}
	if len(res.Admissions) != 1 || res.Admissions[0].Outcome != "rejected" {
		t.Fatalf("admission log %+v, want one rejection", res.Admissions)
	}
}

// TestFleetAdmissionQueuesUntilCapacity: with a budget that only fits
// one tenant, the second waits in the queue until the first departs.
func TestFleetAdmissionQueuesUntilCapacity(t *testing.T) {
	wc := mustSpec(t, workload.WordCount)
	gr := mustSpec(t, workload.Group)
	cfg := Config{
		Jobs: []JobSpec{
			{Name: "first", Workload: wc, Rates: constRates(t, wc.LowRates), DepartSlot: 3},
			{Name: "second", Workload: gr, Rates: constRates(t, gr.LowRates), ArriveSlot: 1},
		},
		Slots:           6,
		SlotSeconds:     60,
		TotalTaskBudget: 2, // wordcount floor = 2; no room for group's 1 until it departs
	}
	res := runFleet(t, cfg)
	var second JobResult
	for _, jr := range res.Jobs {
		if jr.Name == "second" {
			second = jr
		}
	}
	if second.Status != StatusRunning {
		t.Fatalf("second job status %v, want running", second.Status)
	}
	if second.AdmitSlot != 3 {
		t.Fatalf("second admitted at %d, want 3 (when first departs)", second.AdmitSlot)
	}
	if second.QueuedRounds == 0 {
		t.Fatal("second should have waited in the queue")
	}
	if res.PeakQueueDepth < 1 {
		t.Fatalf("peak queue depth %d, want ≥ 1", res.PeakQueueDepth)
	}
}

// TestFleetDynamicSubmitAndKill drives the manager step by step the way
// the daemon does: submit a tenant mid-run, then kill it.
func TestFleetDynamicSubmitAndKill(t *testing.T) {
	wc := mustSpec(t, workload.WordCount)
	gr := mustSpec(t, workload.Group)
	cfg := Config{
		Jobs: []JobSpec{
			{Name: "base", Workload: wc, Rates: constRates(t, wc.LowRates)},
		},
		Slots:           8,
		SlotSeconds:     60,
		TotalTaskBudget: 20,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := m.Submit(JobSpec{Name: "late", Workload: gr, Rates: constRates(t, gr.LowRates)}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := m.Submit(JobSpec{Name: "late", Workload: gr, Rates: constRates(t, gr.LowRates)}); err == nil {
		t.Fatal("duplicate submit should fail")
	}
	if err := m.Step(); err != nil {
		t.Fatalf("step after submit: %v", err)
	}
	jobs := m.Jobs()
	if len(jobs) != 2 || jobs[1].Name != "late" || jobs[1].Status != StatusRunning {
		t.Fatalf("late job not running after submit: %+v", jobs)
	}
	if err := m.Kill("late"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := m.Kill("nope"); err == nil {
		t.Fatal("killing an unknown job should fail")
	}
	if err := m.Step(); err != nil {
		t.Fatalf("step after kill: %v", err)
	}
	for _, jr := range m.Jobs() {
		if jr.Name == "late" && jr.Status != StatusDeparted {
			t.Fatalf("late job status %v after kill, want departed", jr.Status)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run to completion: %v", err)
	}
	if res.Slots != 8 || !m.Done() {
		t.Fatal("manager did not finish its schedule")
	}
}

// TestFleetChaosRun: cluster-level chaos (a node crash) must not break
// the round loop or the budget invariant — lost pods only reduce
// effective parallelism.
func TestFleetChaosRun(t *testing.T) {
	cfg := threeJobConfig(t)
	spec := chaos.NewSpec("fleet-node-crash")
	spec.CrashLastNode(3)
	spec.HealNode(6)
	cfg.Chaos = spec
	res := runFleet(t, cfg)
	if res.BudgetOverruns != 0 {
		t.Fatalf("chaos run had %d budget overruns, want 0", res.BudgetOverruns)
	}
	// Chaos determinism: same seed, same faults, same outcome.
	cfg2 := threeJobConfig(t)
	spec2 := chaos.NewSpec("fleet-node-crash")
	spec2.CrashLastNode(3)
	spec2.HealNode(6)
	cfg2.Chaos = spec2
	a := resultFingerprint(t, res)
	b := resultFingerprint(t, runFleet(t, cfg2))
	if a != b {
		t.Fatal("chaos fleet run not deterministic at fixed seed")
	}
}

// TestFleetGauges: fleet-level gauges are published after every round.
func TestFleetGauges(t *testing.T) {
	cfg := threeJobConfig(t)
	cfg.Metrics = telemetry.NewRegistry()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	reg := m.Metrics()
	if reg != cfg.Metrics {
		t.Fatal("manager should use the supplied registry")
	}
	if v, ok := reg.GaugeValue("fleet_budget_total"); !ok || v != float64(cfg.TotalTaskBudget) {
		t.Fatalf("fleet_budget_total gauge = %v,%v", v, ok)
	}
	if _, ok := reg.GaugeValue(telemetry.Label("fleet_budget_share", "job", "alpha")); !ok {
		t.Fatal("missing per-job budget share gauge")
	}
	if v, ok := reg.GaugeValue("fleet_running_jobs"); !ok || v != 2 {
		t.Fatalf("fleet_running_jobs = %v,%v, want 2 (beta departed)", v, ok)
	}
	if reg.CounterValue("fleet_rounds") != int64(cfg.Slots) {
		t.Fatalf("fleet_rounds = %d, want %d", reg.CounterValue("fleet_rounds"), cfg.Slots)
	}
}

// TestFleetArbiterRespondsToPressure: with one heavily loaded and one
// lightly loaded tenant under a tight budget, the dual-price arbiter
// must end up granting the loaded tenant the larger share.
func TestFleetArbiterRespondsToPressure(t *testing.T) {
	wc := mustSpec(t, workload.WordCount)
	gr := mustSpec(t, workload.Group)
	cfg := Config{
		Jobs: []JobSpec{
			{Name: "hot", Workload: wc, Rates: constRates(t, wc.HighRates)},
			{Name: "cold", Workload: gr, Rates: constRates(t, []float64{2000})},
		},
		Slots:           10,
		SlotSeconds:     120,
		Seed:            3,
		TotalTaskBudget: 12,
		Arbitration:     DualPrice,
	}
	res := runFleet(t, cfg)
	var hot, cold JobResult
	for _, jr := range res.Jobs {
		switch jr.Name {
		case "hot":
			hot = jr
		case "cold":
			cold = jr
		}
	}
	lastHot := hot.Rounds[len(hot.Rounds)-1]
	lastCold := cold.Rounds[len(cold.Rounds)-1]
	if lastHot.Budget <= lastCold.Budget {
		t.Fatalf("dual-price arbiter left hot job budget %d ≤ cold job budget %d",
			lastHot.Budget, lastCold.Budget)
	}
	if len(res.ArbiterDecisions) == 0 {
		t.Fatal("no arbiter decisions recorded")
	}
}

// TestLargestRemainder pins the apportionment helper's determinism and
// exactness.
func TestLargestRemainder(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{10, []float64{1, 1, 1}, []int{4, 3, 3}},      // tie → lowest index first
		{7, []float64{3, 1}, []int{5, 2}},             // 5.25/1.75 → 5,1 + remainder to idx1
		{5, []float64{0, 1}, []int{0, 5}},             // zero weight gets nothing
		{0, []float64{1, 2}, []int{0, 0}},             // nothing to give
		{3, []float64{2, 2, 2, 2}, []int{1, 1, 1, 0}}, // equal fractions, index order
		{12, []float64{1, 2, 3}, []int{2, 4, 6}},      // exact proportions
	}
	for i, c := range cases {
		got := largestRemainder(c.total, c.weights, sumF(c.weights))
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v", i, got)
		}
		s := 0
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
			s += got[j]
		}
		if c.total > 0 && sumF(c.weights) > 0 && s != c.total {
			t.Fatalf("case %d: apportioned %d of %d", i, s, c.total)
		}
	}
}

func sumF(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestFleetConfigValidation spot-checks the config guard rails.
func TestFleetConfigValidation(t *testing.T) {
	wc := mustSpec(t, workload.WordCount)
	ok := func() Config {
		return Config{
			Jobs:            []JobSpec{{Name: "a", Workload: wc, Rates: constRates(t, wc.LowRates)}},
			Slots:           1,
			TotalTaskBudget: 10,
		}
	}
	if _, err := New(ok()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Jobs = nil },
		func(c *Config) { c.Jobs = append(c.Jobs, c.Jobs[0]) }, // duplicate name
		func(c *Config) { c.Slots = 0 },
		func(c *Config) { c.TotalTaskBudget = 0 },
		func(c *Config) { c.Jobs[0].Name = "" },
		func(c *Config) { c.Jobs[0].Rates = nil },
		func(c *Config) { c.Jobs[0].DepartSlot = 1; c.Jobs[0].ArriveSlot = 2 },
		func(c *Config) { c.Jobs[0].Priority = -1 },
		func(c *Config) { c.RebalanceEvery = -1 },
		func(c *Config) { c.ForecastAlpha = 1.5 },
	}
	for i, mutate := range bad {
		cfg := ok()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestFingerprint pins the compatibility rule: same structure → same
// key; different grid bound or name → different key.
func TestFingerprint(t *testing.T) {
	a := mustSpec(t, workload.WordCount)
	b := mustSpec(t, workload.WordCount)
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("identical specs must share a fingerprint")
	}
	c := mustSpec(t, workload.WordCount)
	c.MaxTasks = 5
	if fingerprint(a) == fingerprint(c) {
		t.Fatal("different grid bounds must not share a fingerprint")
	}
	d := mustSpec(t, workload.Group)
	if fingerprint(a) == fingerprint(d) {
		t.Fatal("different workloads must not share a fingerprint")
	}
	if !strings.HasPrefix(fingerprint(a), "wordcount|") {
		t.Fatalf("fingerprint should lead with the workload name: %q", fingerprint(a))
	}
}
