// Package fleet is Dragster's multi-job control plane: it runs N
// concurrent core.Controller instances — one per streaming job — against
// one shared simulated Kubernetes cluster and arbitrates the global
// resource budget between them.
//
// The paper (and the rest of this repo) optimizes one job against one
// cluster; production stream platforms run many jobs that compete for the
// same budget. The fleet manager adds the three pieces that competition
// needs:
//
//   - an admission controller that queues or rejects job submissions
//     against the remaining cluster capacity and task budget;
//   - a deterministic budget arbiter that periodically re-partitions the
//     global Σ-tasks budget across jobs using each job's OSP dual price
//     (a high shadow price means the job's long-term buffer constraint is
//     binding, i.e. it is starved — so it receives more budget), with
//     per-job floors, priorities, and hysteresis to prevent thrash;
//   - cross-job GP warm-start: when a job joins, its per-operator
//     gp.Regressor state is seeded from the capacity history of
//     DAG-compatible jobs that ran before it, so new tenants skip the
//     cold-start exploration phase.
//
// The control plane is event-driven: every externally injected input
// (dynamic submission, kill) enters through an ordered message set, and
// every state transition the round loop commits — arrivals, admissions,
// rejections, budget grants, shrinks, decisions, departures — is
// appended to a sequence-numbered event log with a canonical binary
// encoding. The log is the behavioural identity of a run: two runs are
// the same iff their trace bytes are equal, which is how the tests prove
// that shard count, worker count, and mid-run failover are all invisible
// to the outcome. Per-tenant decide steps are dispatched across
// per-shard controller pools (see the shard subpackage); events are only
// ever emitted from the sequential section of the round loop, never from
// worker goroutines.
//
// Everything is deterministic at a fixed seed: jobs are processed in a
// stable order, the arbiter is a pure function of observable state, and
// the per-round decide fan-out joins before any shared state is touched.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"

	"dragster/internal/chaos"
	"dragster/internal/cluster"
	"dragster/internal/core"
	"dragster/internal/fleet/event"
	"dragster/internal/fleet/shard"
	"dragster/internal/flink"
	"dragster/internal/monitor"
	"dragster/internal/osp"
	"dragster/internal/planner"
	"dragster/internal/stats"
	"dragster/internal/store"
	"dragster/internal/streamsim"
	"dragster/internal/telemetry"
	"dragster/internal/workload"
)

// JobStatus is a tenant's lifecycle state.
type JobStatus int

// Job lifecycle: Pending jobs have not yet arrived; Queued jobs passed
// submission but wait for capacity; Running jobs hold a stack and a
// budget share; Departed jobs were cancelled (scheduled departure or
// kill); Rejected jobs were refused at submission.
const (
	StatusPending JobStatus = iota
	StatusQueued
	StatusRunning
	StatusDeparted
	StatusRejected
)

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDeparted:
		return "departed"
	case StatusRejected:
		return "rejected"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// JobSpec describes one tenant of the fleet.
type JobSpec struct {
	// Name identifies the job; must be unique within the fleet.
	Name string
	// Workload supplies the DAG, ground-truth capacity models, and grid
	// bounds (same contract as a single-job experiment).
	Workload *workload.Spec
	// Rates is the offered-load profile, indexed by the job's own slot
	// count (slot 0 = the job's first round after admission).
	Rates workload.RateFunc
	// ArriveSlot is the fleet round at which the job is submitted
	// (0 = present from the start).
	ArriveSlot int
	// DepartSlot, when positive, cancels the job at the start of that
	// fleet round (it does not run that round).
	DepartSlot int
	// Priority weights the job in the budget arbiter (default 1; higher
	// values attract proportionally more surplus budget).
	Priority float64
	// InitialTasks is the configuration at admission (default all 1 — the
	// admission floor).
	InitialTasks []int
	// Method selects the job's level-1 algorithm (default SaddlePoint).
	Method osp.Method
	// PlanOnAdmit runs the capacity planner when the job reaches the head
	// of the admission queue: the admission grant and initial
	// configuration come from the fitted plan instead of the cold floor
	// (overriding InitialTasks), the plan's probe observations seed the
	// tenant's GP warm-start store, and the plan is journaled as a
	// TypePlan event so replay and failover stay byte-identical.
	PlanOnAdmit bool
	// TargetRates is the sustained per-source load the plan must cover
	// (default: the profile's per-source peak over the fleet horizon).
	// Only meaningful with PlanOnAdmit.
	TargetRates []float64
}

func (j *JobSpec) validate() error {
	if j.Name == "" {
		return errors.New("fleet: job without a name")
	}
	if j.Workload == nil || j.Rates == nil {
		return fmt.Errorf("fleet: job %s needs a Workload and a RateFunc", j.Name)
	}
	if err := j.Workload.Validate(); err != nil {
		return fmt.Errorf("fleet: job %s: %w", j.Name, err)
	}
	if j.ArriveSlot < 0 || j.DepartSlot < 0 {
		return fmt.Errorf("fleet: job %s: negative arrival/departure slot", j.Name)
	}
	if j.DepartSlot > 0 && j.DepartSlot <= j.ArriveSlot {
		return fmt.Errorf("fleet: job %s departs at round %d before arriving at %d", j.Name, j.DepartSlot, j.ArriveSlot)
	}
	if j.Priority < 0 {
		return fmt.Errorf("fleet: job %s: negative priority", j.Name)
	}
	m := j.Workload.Graph.NumOperators()
	if j.InitialTasks != nil && len(j.InitialTasks) != m {
		return fmt.Errorf("fleet: job %s: got %d initial tasks, want %d", j.Name, len(j.InitialTasks), m)
	}
	if j.TargetRates != nil {
		if len(j.TargetRates) != j.Workload.Graph.NumSources() {
			return fmt.Errorf("fleet: job %s: got %d target rates, want %d", j.Name, len(j.TargetRates), j.Workload.Graph.NumSources())
		}
		for i, r := range j.TargetRates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("fleet: job %s: target rate %d = %v invalid", j.Name, i, r)
			}
		}
	}
	return nil
}

// floor is the minimum Σ-tasks allocation that keeps the job alive: one
// task per operator.
func (j *JobSpec) floor() int { return j.Workload.Graph.NumOperators() }

// maxUseful is the largest Σ-tasks budget the job can convert into
// capacity; budget beyond it is pure slack.
func (j *JobSpec) maxUseful() int {
	return j.Workload.Graph.NumOperators() * j.Workload.MaxTasks
}

// Config assembles a fleet Manager.
type Config struct {
	// Jobs are the tenants, with their arrival/departure schedule.
	// Dynamic tenants can additionally be submitted at runtime via
	// Manager.Submit (the daemon surface).
	Jobs []JobSpec
	// Slots is the number of fleet rounds to run.
	Slots int
	// SlotSeconds is the round length in simulated seconds (default 600).
	SlotSeconds int
	// Seed drives all stochastic behaviour (default 1). Each job's
	// dataflow noise uses an independent deterministic stream derived
	// from it.
	Seed int64
	// NoiseSigma / UtilNoiseSigma mirror the single-job scenario knobs.
	NoiseSigma     float64
	UtilNoiseSigma float64
	// TotalTaskBudget is the global Σ_jobs Σ_ops tasks bound the arbiter
	// partitions (required).
	TotalTaskBudget int
	// Arbitration selects the budget re-partitioning rule (default
	// DualPrice; EqualSplit is the static baseline).
	Arbitration Arbitration
	// RebalanceEvery re-runs the arbiter every that many rounds (default
	// 3). Membership changes (admission, departure) always trigger one.
	RebalanceEvery int
	// HysteresisTasks suppresses budget changes smaller than this many
	// tasks (default 2), preventing rescale thrash from price jitter.
	HysteresisTasks int
	// MaxGrowTasks bounds how much one rebalance may grow a single job's
	// budget (default 4); shrinks are not bounded, so the global invariant
	// is restored immediately.
	MaxGrowTasks int
	// MaxQueue bounds the admission queue; submissions beyond it are
	// rejected (default 8).
	MaxQueue int
	// DisableWarmStart turns off cross-job GP seeding (used by ablations).
	DisableWarmStart bool
	// WarmStartMaxPerOperator caps how many history records per operator
	// are replayed into a joining job's GPs (default 48; replay is O(n²)).
	WarmStartMaxPerOperator int
	// PricePerCoreHour sets the shared cost meter (default 0.08 $/core·h).
	PricePerCoreHour float64
	// MaxBufferSeconds caps per-edge backlog (default 120 s of each job's
	// peak rate).
	MaxBufferSeconds float64
	// Nodes overrides the auto-sized node count; NodeSpec the node shape
	// (default 4000m / 8192 MB).
	Nodes    int
	NodeSpec cluster.ResourceSpec
	// Chaos, when set, replays a fault schedule through a seeded engine
	// installed on the shared cluster (node crashes, scheduler delays —
	// the cluster-level faults every tenant feels).
	Chaos *chaos.Spec
	// ChaosSeed seeds chaos victim selection (default Seed+104729).
	ChaosSeed int64
	// Counters receives fault/retry/admission telemetry (default: fresh).
	Counters *telemetry.Counters
	// Metrics receives the fleet gauges (per-job budget shares, queue
	// depth, arbiter decision counts). Defaults to a fresh registry; when
	// a Tracer with an attached registry is supplied, that registry wins
	// so traces and metrics stay in one place.
	Metrics *telemetry.Registry
	// Tracer, when set, records a sim-time span trace of the fleet run
	// with per-job labelled spans. Tracing serializes the per-round decide
	// fan-out (the Tracer is single-threaded by contract), so traced runs
	// trade parallelism for byte-identical traces.
	Tracer *telemetry.Tracer
	// ForecastAlpha enables Holt load forecasting in every controller.
	ForecastAlpha float64
	// DecideWorkers bounds the per-round controller fan-out: each round's
	// independent tenant decisions run on this many goroutines (0 = one
	// per CPU). The reduction is always in admission order, so the result
	// is byte-identical at any worker count; a Tracer forces 1.
	DecideWorkers int
	// Shards partitions the running tenants into deterministic ownership
	// domains — each job name hashes to one shard, and each shard runs its
	// tenants' decide steps on its own pool of DecideWorkers goroutines.
	// Shards is purely a throughput knob: events carry no shard
	// information, so the event trace and every result are byte-identical
	// at any shard count (default 1).
	Shards int
}

func (c *Config) setDefaults() error {
	if len(c.Jobs) == 0 {
		return errors.New("fleet: no jobs")
	}
	seen := make(map[string]bool, len(c.Jobs))
	for i := range c.Jobs {
		if err := c.Jobs[i].validate(); err != nil {
			return err
		}
		if seen[c.Jobs[i].Name] {
			return fmt.Errorf("fleet: duplicate job name %q", c.Jobs[i].Name)
		}
		seen[c.Jobs[i].Name] = true
		if c.Jobs[i].Priority == 0 {
			c.Jobs[i].Priority = 1
		}
	}
	if c.Slots < 1 {
		return errors.New("fleet: Slots must be ≥ 1")
	}
	if c.SlotSeconds == 0 {
		c.SlotSeconds = 600
	}
	if c.SlotSeconds < 1 {
		return errors.New("fleet: SlotSeconds must be ≥ 1")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.05
	}
	if c.UtilNoiseSigma == 0 {
		c.UtilNoiseSigma = 0.02
	}
	if c.NoiseSigma < 0 || c.UtilNoiseSigma < 0 {
		return errors.New("fleet: negative noise")
	}
	if c.DecideWorkers < 0 {
		return errors.New("fleet: negative DecideWorkers")
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 {
		return errors.New("fleet: negative Shards")
	}
	if c.TotalTaskBudget < 1 {
		return errors.New("fleet: TotalTaskBudget must be ≥ 1")
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 3
	}
	if c.RebalanceEvery < 1 {
		return errors.New("fleet: RebalanceEvery must be ≥ 1")
	}
	if c.HysteresisTasks == 0 {
		c.HysteresisTasks = 2
	}
	if c.HysteresisTasks < 1 {
		return errors.New("fleet: HysteresisTasks must be ≥ 1")
	}
	if c.MaxGrowTasks == 0 {
		c.MaxGrowTasks = 4
	}
	if c.MaxGrowTasks < 1 {
		return errors.New("fleet: MaxGrowTasks must be ≥ 1")
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxQueue < 1 {
		return errors.New("fleet: MaxQueue must be ≥ 1")
	}
	if c.WarmStartMaxPerOperator == 0 {
		c.WarmStartMaxPerOperator = 48
	}
	if c.WarmStartMaxPerOperator < 1 {
		return errors.New("fleet: WarmStartMaxPerOperator must be ≥ 1")
	}
	if c.PricePerCoreHour == 0 {
		c.PricePerCoreHour = 0.08
	}
	if c.PricePerCoreHour < 0 {
		return errors.New("fleet: negative price")
	}
	if c.MaxBufferSeconds == 0 {
		c.MaxBufferSeconds = 120
	}
	if c.MaxBufferSeconds < 0 {
		return errors.New("fleet: negative MaxBufferSeconds")
	}
	if c.Nodes < 0 {
		return errors.New("fleet: negative Nodes")
	}
	if c.NodeSpec == (cluster.ResourceSpec{}) {
		c.NodeSpec = cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}
	}
	if c.Chaos != nil {
		if err := c.Chaos.Validate(); err != nil {
			return err
		}
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = c.Seed + 104729
	}
	if c.Counters == nil {
		c.Counters = telemetry.NewCounters()
	}
	if c.Tracer != nil && c.Tracer.Metrics() != nil {
		c.Metrics = c.Tracer.Metrics()
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.ForecastAlpha < 0 || c.ForecastAlpha >= 1 {
		return errors.New("fleet: ForecastAlpha outside [0, 1)")
	}
	return nil
}

// JobRound is one fleet round of one running job.
type JobRound struct {
	Round      int       // fleet round index
	JobSlot    int       // the job's own slot index (0 at admission)
	Rates      []float64 // offered load that round
	Tasks      []int     // effective parallelism during the round
	TotalTasks int
	Budget     int     // the job's Σ-tasks budget share during the round
	Steady     float64 // noise-free steady throughput of Tasks
	Measured   float64 // what the sink actually saw
	CostCum    float64 // job-attributed dollars up to round end
	DualPrice  float64 // mean positive dual after the round's decision
	TargetY    []float64
	Skipped    bool // no fresh metrics sample; decision round skipped
}

// JobResult is the full fleet history of one tenant.
type JobResult struct {
	Name             string
	Workload         string
	Status           JobStatus
	ArriveSlot       int
	AdmitSlot        int // -1 if never admitted
	DepartSlot       int // -1 if still running at the end
	QueuedRounds     int
	WarmStarted      bool
	WarmStartRecords int
	Planned          bool    // admission grant came from a capacity plan
	PlanDigest       string  // canonical plan digest (empty for cold-floor)
	PlanProbes       int     // probe simulations the plan ran
	Cost             float64 // attributed dollars over the job's lifetime
	Rounds           []JobRound
}

// AdmissionEvent records one admission-controller outcome.
type AdmissionEvent struct {
	Round   int
	Job     string
	Outcome string // "admitted" | "queued" | "rejected"
	Reason  string
}

// ArbiterDecision records one applied budget change.
type ArbiterDecision struct {
	Round int
	Job   string
	From  int
	To    int
	Price float64 // the dual price that drove the decision
}

// Result is a full fleet run.
type Result struct {
	Arbitration       Arbitration
	Slots             int
	TotalTaskBudget   int
	Jobs              []JobResult // Config.Jobs order, then dynamic submissions
	Admissions        []AdmissionEvent
	ArbiterDecisions  []ArbiterDecision
	TotalTasksByRound []int // Σ effective tasks across jobs, per round
	BudgetOverruns    int   // rounds where that sum exceeded the budget
	ClusterCost       float64
	PeakQueueDepth    int
	SkippedRounds     int
	Counters          *telemetry.Counters
}

// jobState is the Manager's per-tenant bookkeeping.
type jobState struct {
	idx    int
	spec   JobSpec
	status JobStatus
	// committed reports that the tenant's submission has been delivered
	// through the inbox and appears in the event trace; only committed
	// tenants are visible to admission. Config-declared tenants are
	// committed from construction, dynamic ones at the drain that starts
	// their arrival round.
	committed bool

	ctrl    *core.Controller
	fj      *flink.Job
	mon     *monitor.Monitor
	retrier *core.RescaleRetrier

	// db is the job's private history database (seeded from the kind
	// archive at admission; the controller appends to it during Decide).
	// harvested tracks, per operator, how many of its records have been
	// copied into the archive so far.
	db        *store.DB
	harvested map[string]int

	// plan is the capacity plan built when a PlanOnAdmit tenant first
	// reached the head of the admission queue (nil for cold-floor
	// tenants). Memoized so blocked rounds never re-probe or re-journal.
	plan *planner.Plan

	budget   int // current Σ-tasks share
	usage    int // Σ desired tasks last applied
	need     int // Σ tasks demand estimate from the last snapshot (0 = none yet)
	queuedAt int
	res      *JobResult
}

// Manager owns the shared cluster and drives the fleet one round at a
// time. It is not safe for concurrent use; the daemon serializes access.
type Manager struct {
	cfg     Config
	k8s     *cluster.Cluster
	session *flink.SessionCluster
	chaos   *chaos.Engine
	tracer  *telemetry.Tracer
	reg     *telemetry.Registry

	jobs    []*jobState // all tenants ever seen, submission order
	byName  map[string]*jobState
	queue   []*jobState // admission queue, FIFO
	running []*jobState // admission order
	archive *warmArchive
	round   int
	res     *Result
	kills   map[string]bool // names marked for departure next round

	log    *event.Log        // committed control-plane history (the trace)
	inbox  *event.MessageSet // external inputs awaiting their round
	pool   *shard.Pool       // per-shard decide dispatch
	inputs []InputRecord     // external inputs in stamp order, for replay
}

// InputRecord is one external input (dynamic submission or kill) in the
// order the inbox stamped it. The record — not the full spec — is what a
// checkpoint carries; a replica replays the same inputs at the same
// rounds (specs re-supplied by the caller) and must reproduce the same
// stamps, or the resume is rejected as diverged.
type InputRecord struct {
	Seq   uint64 `json:"seq"`
	Round int    `json:"round"`
	Kind  string `json:"kind"` // "submit" | "kill"
	Job   string `json:"job"`
}

// New validates cfg and builds the shared substrate (cluster, Flink
// session, chaos engine). Jobs are admitted as they arrive during Run.
func New(cfg Config) (*Manager, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		tracer:  cfg.Tracer,
		reg:     cfg.Metrics,
		byName:  make(map[string]*jobState),
		archive: newWarmArchive(),
		kills:   make(map[string]bool),
		log:     event.NewLog(),
		inbox:   event.NewMessageSet(),
	}
	workers := cfg.DecideWorkers
	if workers == 0 {
		// Spread the CPU across the shards; at one shard this matches the
		// historical one-worker-per-core fan-out exactly.
		workers = (runtime.GOMAXPROCS(0) + cfg.Shards - 1) / cfg.Shards
	}
	pool, err := shard.NewPool(cfg.Shards, workers)
	if err != nil {
		return nil, err
	}
	m.pool = pool
	nNodes := cfg.Nodes
	if nNodes == 0 {
		// Size for the budget plus the JobManager, at ~4 task slots per
		// node, with one spare so single-node failures degrade rather than
		// wedge the fleet.
		nNodes = (cfg.TotalTaskBudget+1)/4 + 2
	}
	m.k8s = cluster.New(cluster.WithPricePerCoreHour(cfg.PricePerCoreHour))
	if err := m.k8s.AddNodes("node", nNodes, cfg.NodeSpec); err != nil {
		return nil, err
	}
	m.tracer.SetClock(m.k8s.Clock)
	m.k8s.SetTracer(m.tracer)
	session, err := flink.NewSession(m.k8s, flink.DefaultOptions())
	if err != nil {
		return nil, err
	}
	m.session = session
	if cfg.Chaos != nil {
		eng, err := chaos.NewEngine(cfg.Chaos, cfg.ChaosSeed, cfg.Counters)
		if err != nil {
			return nil, err
		}
		eng.SetTracer(m.tracer)
		// Fleet chaos is cluster-scoped: node crashes, scheduler delays,
		// OOM kills — the faults every tenant shares. Per-job savepoint
		// and metrics faults stay a single-job scenario concern.
		if err := eng.Install(m.k8s, nil, nil); err != nil {
			return nil, err
		}
		m.chaos = eng
	}
	m.res = &Result{
		Arbitration:     cfg.Arbitration,
		Slots:           cfg.Slots,
		TotalTaskBudget: cfg.TotalTaskBudget,
		Counters:        cfg.Counters,
	}
	for i := range cfg.Jobs {
		js := &jobState{
			idx:       i,
			spec:      cfg.Jobs[i],
			status:    StatusPending,
			committed: true,
			res: &JobResult{
				Name:       cfg.Jobs[i].Name,
				Workload:   cfg.Jobs[i].Workload.Name,
				Status:     StatusPending,
				ArriveSlot: cfg.Jobs[i].ArriveSlot,
				AdmitSlot:  -1,
				DepartSlot: -1,
			},
		}
		m.jobs = append(m.jobs, js)
		m.byName[js.spec.Name] = js
	}
	return m, nil
}

// Cluster exposes the shared Kubernetes substrate (diagnostics, tests).
func (m *Manager) Cluster() *cluster.Cluster { return m.k8s }

// Metrics exposes the fleet's metrics registry (budget shares, queue
// depth, arbiter decisions) — the daemon serves it at GET /metrics.
func (m *Manager) Metrics() *telemetry.Registry { return m.reg }

// Round returns the next round index to run.
func (m *Manager) Round() int { return m.round }

// Done reports whether every round has run.
func (m *Manager) Done() bool { return m.round >= m.cfg.Slots }

// Result returns the result accumulated so far (shared, not a copy).
// Job statuses and cluster cost are refreshed on every call.
func (m *Manager) Result() *Result {
	for _, js := range m.jobs {
		js.res.Status = js.status
		js.res.Cost = jobCost(js)
	}
	m.res.Jobs = m.res.Jobs[:0]
	for _, js := range m.jobs {
		m.res.Jobs = append(m.res.Jobs, *js.res)
	}
	m.res.ClusterCost = m.k8s.Cost()
	return m.res
}

func jobCost(js *jobState) float64 {
	if n := len(js.res.Rounds); n > 0 {
		return js.res.Rounds[n-1].CostCum
	}
	return 0
}

// Submit adds a dynamic tenant (the daemon's POST /fleet/jobs surface):
// the submission is stamped into the fleet inbox and committed to the
// event trace at the start of the next round, when the job arrives.
// Returns an error when the name is taken or the spec is invalid.
func (m *Manager) Submit(spec JobSpec) error {
	_, err := m.submitInput(spec)
	return err
}

func (m *Manager) submitInput(spec JobSpec) (uint64, error) {
	if err := spec.validate(); err != nil {
		return 0, err
	}
	if _, ok := m.byName[spec.Name]; ok {
		return 0, fmt.Errorf("fleet: job %q already exists", spec.Name)
	}
	if spec.Priority == 0 {
		spec.Priority = 1
	}
	spec.ArriveSlot = m.round
	stamped, err := m.inbox.Post(event.Event{Type: event.TypeSubmit, Job: spec.Name})
	if err != nil {
		return 0, fmt.Errorf("fleet: submit %s: %w", spec.Name, err)
	}
	js := &jobState{
		idx:    len(m.jobs),
		spec:   spec,
		status: StatusPending,
		res: &JobResult{
			Name:       spec.Name,
			Workload:   spec.Workload.Name,
			Status:     StatusPending,
			ArriveSlot: spec.ArriveSlot,
			AdmitSlot:  -1,
			DepartSlot: -1,
		},
	}
	m.jobs = append(m.jobs, js)
	m.byName[js.spec.Name] = js
	m.inputs = append(m.inputs, InputRecord{Seq: stamped.Seq, Round: m.round, Kind: "submit", Job: spec.Name})
	return stamped.Seq, nil
}

// Kill marks a job for departure at the start of the next round (the
// daemon's kill surface). Unknown names error; already-departed jobs and
// duplicate kills are a no-op.
func (m *Manager) Kill(name string) error {
	_, err := m.killInput(name)
	return err
}

func (m *Manager) killInput(name string) (uint64, error) {
	js, ok := m.byName[name]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown job %q", name)
	}
	if js.status == StatusDeparted || js.status == StatusRejected {
		return 0, nil
	}
	stamped, err := m.inbox.Post(event.Event{Type: event.TypeKill, Job: name})
	if errors.Is(err, event.ErrDuplicate) {
		return 0, nil // a kill for this job is already pending; idempotent
	}
	if err != nil {
		return 0, fmt.Errorf("fleet: kill %s: %w", name, err)
	}
	m.inputs = append(m.inputs, InputRecord{Seq: stamped.Seq, Round: m.round, Kind: "kill", Job: name})
	return stamped.Seq, nil
}

// Events returns the committed control-plane event trace so far.
func (m *Manager) Events() []event.Event { return m.log.Events() }

// TraceBytes returns the canonical binary encoding of the event trace.
// Two runs are behaviourally identical iff these bytes are equal — the
// property the shard-count and failover tests pin.
func (m *Manager) TraceBytes() []byte { return m.log.Bytes() }

// TraceText renders the trace one line per event (golden files, debugging).
func (m *Manager) TraceText() string { return m.log.Text() }

// TraceHash returns the FNV-1a hash of the canonical trace encoding.
func (m *Manager) TraceHash() uint64 { return m.log.Hash() }

// Inputs returns a copy of the recorded external inputs (replica replay).
func (m *Manager) Inputs() []InputRecord {
	return append([]InputRecord(nil), m.inputs...)
}

// emit commits one event to the control-plane log at the current round.
// Emission only ever happens on the sequential section of the round
// loop, so sequence numbers are dense and deterministic.
func (m *Manager) emit(typ event.Type, job, note string, args ...int64) {
	m.log.Emit(event.Event{Round: m.round, Type: typ, Job: job, Args: args, Note: note})
}

// drainInbox delivers the round's external inputs: messages posted since
// the previous round arrive in stamped order and become part of the
// event trace. Dynamic submissions become visible to admission; kills
// are marked for the departure pass that follows.
func (m *Manager) drainInbox() {
	for _, msg := range m.inbox.Ready() {
		switch msg.Type {
		case event.TypeSubmit:
			if js, ok := m.byName[msg.Job]; ok {
				js.committed = true
			}
			m.emit(event.TypeSubmit, msg.Job, "")
		case event.TypeKill:
			m.kills[msg.Job] = true
			m.emit(event.TypeKill, msg.Job, "")
		}
	}
}

// Jobs returns a snapshot of every tenant's result (submission order).
func (m *Manager) Jobs() []JobResult {
	out := make([]JobResult, 0, len(m.jobs))
	for _, js := range m.jobs {
		jr := *js.res
		jr.Status = js.status
		jr.Cost = jobCost(js)
		out = append(out, jr)
	}
	return out
}

// PlanFor returns the capacity plan journaled for a tenant at
// admission, or nil for cold-floor tenants (and unknown names). The
// daemon's plan endpoint reads this.
func (m *Manager) PlanFor(name string) *planner.Plan {
	js, ok := m.byName[name]
	if !ok {
		return nil
	}
	return js.plan
}

// QueueDepth returns the current admission queue length.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Run executes every remaining round.
func (m *Manager) Run() (*Result, error) {
	for !m.Done() {
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.Result(), nil
}

// Step runs one fleet round: departures, arrivals, admission, budget
// arbitration, co-simulated slot execution, per-job decisions, and
// bookkeeping.
func (m *Manager) Step() error {
	if m.Done() {
		return errors.New("fleet: manager already finished")
	}
	r := m.round
	m.tracer.SetSlot(r)
	round := m.tracer.Begin("fleet", "round", telemetry.Int("round", r))
	defer round.End()

	m.emit(event.TypeRoundBegin, "", "", int64(len(m.running)))
	m.drainInbox()
	departed := m.processDepartures(r)
	m.processArrivals(r)
	admitted, err := m.admitQueued(r)
	if err != nil {
		return err
	}
	if departed || admitted || r%m.cfg.RebalanceEvery == 0 {
		if err := m.rebalance(r); err != nil {
			return err
		}
	}
	if m.chaos != nil {
		m.chaos.BeginSlot(r)
	}

	rates, err := m.runSlots(r)
	if err != nil {
		return err
	}
	snaps, err := m.collect()
	if err != nil {
		return err
	}
	decisions, err := m.decideAll(snaps)
	if err != nil {
		return err
	}
	if err := m.applyDecisions(r, snaps, decisions); err != nil {
		return err
	}
	m.harvest()
	total := m.record(r, rates, snaps)
	m.gauges()
	m.emit(event.TypeRoundEnd, "", "", int64(total))
	m.reg.Inc("fleet_rounds")
	m.round++
	return nil
}

// processDepartures cancels jobs whose departure round has come (or that
// were killed via Kill), reporting whether membership changed.
func (m *Manager) processDepartures(r int) (departed bool) {
	keep := m.running[:0]
	for _, js := range m.running {
		due := (js.spec.DepartSlot > 0 && r >= js.spec.DepartSlot) || m.kills[js.spec.Name]
		if !due {
			keep = append(keep, js)
			continue
		}
		m.departJob(js, r)
		departed = true
	}
	m.running = keep
	// Queued or pending jobs can be killed before ever running.
	qkeep := m.queue[:0]
	for _, js := range m.queue {
		due := (js.spec.DepartSlot > 0 && r >= js.spec.DepartSlot) || m.kills[js.spec.Name]
		if !due {
			qkeep = append(qkeep, js)
			continue
		}
		js.status = StatusDeparted
		js.res.DepartSlot = r
		m.emit(event.TypeDepart, js.spec.Name, "queued")
	}
	m.queue = qkeep
	// A kill can land before the job ever arrives (still pending); mark
	// it departed now or the kill would be lost when the map is cleared.
	for _, js := range m.jobs {
		if js.status == StatusPending && m.kills[js.spec.Name] {
			js.status = StatusDeparted
			js.res.DepartSlot = r
			m.emit(event.TypeDepart, js.spec.Name, "pending")
		}
	}
	for name := range m.kills {
		delete(m.kills, name)
	}
	return departed
}

func (m *Manager) departJob(js *jobState, r int) {
	if err := m.session.CancelJob(js.spec.Name); err != nil {
		// Only possible if the job was already cancelled — a manager bug;
		// surface via counters rather than silently diverging.
		m.cfg.Counters.Inc("fleet_cancel_errors")
	}
	js.status = StatusDeparted
	js.res.DepartSlot = r
	js.budget = 0
	m.emit(event.TypeDepart, js.spec.Name, "")
	m.tracer.Event("fleet", "depart", telemetry.Str("job", js.spec.Name), telemetry.Int("round", r))
	m.reg.Inc("fleet_jobs_departed")
	m.cfg.Counters.Inc("fleet_jobs_departed")
}

// processArrivals moves due tenants into the admission queue, rejecting
// the ones that can never fit or that overflow the queue.
func (m *Manager) processArrivals(r int) {
	for _, js := range m.jobs {
		if js.status != StatusPending || !js.committed || r < js.spec.ArriveSlot {
			continue
		}
		if js.spec.floor() > m.cfg.TotalTaskBudget {
			m.reject(js, r, fmt.Sprintf("floor %d exceeds total budget %d", js.spec.floor(), m.cfg.TotalTaskBudget))
			continue
		}
		if len(m.queue) >= m.cfg.MaxQueue {
			m.reject(js, r, fmt.Sprintf("admission queue full (%d)", m.cfg.MaxQueue))
			continue
		}
		js.status = StatusQueued
		js.queuedAt = r
		m.queue = append(m.queue, js)
		m.emit(event.TypeArrive, js.spec.Name, "")
		m.res.Admissions = append(m.res.Admissions, AdmissionEvent{Round: r, Job: js.spec.Name, Outcome: "queued"})
		if d := len(m.queue); d > m.res.PeakQueueDepth {
			m.res.PeakQueueDepth = d
		}
	}
}

func (m *Manager) reject(js *jobState, r int, why string) {
	js.status = StatusRejected
	m.emit(event.TypeReject, js.spec.Name, why)
	m.res.Admissions = append(m.res.Admissions, AdmissionEvent{Round: r, Job: js.spec.Name, Outcome: "rejected", Reason: why})
	m.tracer.Event("fleet", "reject", telemetry.Str("job", js.spec.Name), telemetry.Str("reason", why))
	m.reg.Inc("fleet_jobs_rejected")
	m.cfg.Counters.Inc("fleet_jobs_rejected")
}

// runSlots co-simulates one decision slot for every running job. The
// first running job owns the shared cluster clock (see
// flink.RunSlotDetached); with no tenants the manager ticks it directly
// so cost and chaos schedules stay on sim time. Returns each job's mean
// offered rates for the round, indexed like m.running.
func (m *Manager) runSlots(r int) ([][]float64, error) {
	if len(m.running) == 0 {
		m.k8s.Tick(int64(m.cfg.SlotSeconds))
		return nil, nil
	}
	rates := make([][]float64, len(m.running))
	for i, js := range m.running {
		jobSlot := js.fj.Slot()
		rateAt := func(sec int) []float64 { return js.spec.Rates(jobSlot, sec) }
		rates[i] = append([]float64(nil), js.spec.Rates(jobSlot, 0)...)
		var err error
		if i == 0 {
			_, err = js.fj.RunSlot(m.cfg.SlotSeconds, rateAt)
		} else {
			_, err = js.fj.RunSlotDetached(m.cfg.SlotSeconds, rateAt)
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: job %s round %d: %w", js.spec.Name, r, err)
		}
	}
	return rates, nil
}

// collect fetches each running job's monitor snapshot sequentially (the
// tracer and monitor are single-threaded). A nil entry means the metrics
// pipeline had no fresh sample and the job skips its decision round.
func (m *Manager) collect() ([]*monitor.Snapshot, error) {
	snaps := make([]*monitor.Snapshot, len(m.running))
	for i, js := range m.running {
		snap, err := js.mon.Collect()
		if err != nil {
			if errors.Is(err, monitor.ErrNoSample) {
				m.res.SkippedRounds++
				m.cfg.Counters.Inc("fleet_skipped_rounds")
				continue
			}
			return nil, fmt.Errorf("fleet: job %s: %w", js.spec.Name, err)
		}
		snaps[i] = snap
	}
	return snaps, nil
}

type decision struct {
	desired []int
	diag    *core.LastTargets
}

// decideAll runs every controller's Algorithm-2 pass for the round. The
// controllers are independent (each owns its GPs, duals, and a private
// history DB), so the passes fan out across per-shard controller pools:
// each tenant belongs to the shard its name hashes to, and each shard
// walks its members on Config.DecideWorkers strided goroutines. The
// registry and counters the controllers share are concurrent-safe and
// order-insensitive, and results land in per-tenant slots reduced in
// admission order, so the round is byte-identical at any shard or worker
// count. A tracer serializes the fan-out (span emission is
// single-threaded by contract), visiting tenants in admission order.
func (m *Manager) decideAll(snaps []*monitor.Snapshot) ([]decision, error) {
	out := make([]decision, len(m.running))
	errs := make([]error, len(m.running))
	decideOne := func(i int) {
		js := m.running[i]
		if snaps[i] == nil {
			return
		}
		desired, diag, err := js.ctrl.DecideDetailed(snaps[i])
		if err != nil {
			errs[i] = fmt.Errorf("fleet: job %s decide: %w", js.spec.Name, err)
			return
		}
		out[i] = decision{desired: desired, diag: diag}
	}
	members := m.pool.Partition(len(m.running), func(i int) int {
		return shard.Owner(m.running[i].spec.Name, m.cfg.Shards)
	})
	sp := m.tracer.Begin("fleet", "decide_dispatch",
		telemetry.Int("tenants", len(m.running)), telemetry.Int("shards", m.cfg.Shards))
	m.pool.Dispatch(members, m.tracer != nil, decideOne)
	sp.End()
	// First failure in admission order wins, matching a sequential pass.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applyDecisions rescales each job to its decision, in admission order.
// Injected savepoint/rescale faults are absorbed by the per-job retrier.
func (m *Manager) applyDecisions(r int, snaps []*monitor.Snapshot, decisions []decision) error {
	for i, js := range m.running {
		if snaps[i] == nil {
			m.emit(event.TypeSkip, js.spec.Name, "")
			continue
		}
		if err := js.retrier.Apply(js.fj, decisions[i].desired, nil, r); err != nil {
			return fmt.Errorf("fleet: job %s rescale: %w", js.spec.Name, err)
		}
		js.usage = sum(decisions[i].desired)
		args := make([]int64, len(decisions[i].desired))
		for k, n := range decisions[i].desired {
			args[k] = int64(n)
		}
		m.emit(event.TypeDecide, js.spec.Name, "", args...)
	}
	return nil
}

// record appends each running job's round trace and enforces the global
// budget invariant bookkeeping, returning the round's Σ effective tasks.
func (m *Manager) record(r int, rates [][]float64, snaps []*monitor.Snapshot) int {
	total := 0
	secs := float64(m.cfg.SlotSeconds)
	for i, js := range m.running {
		tasks := js.fj.EffectiveParallelism()
		cpu := js.fj.EffectiveCPUMilli()
		total += sum(tasks)
		// Attributed cost: the CPU this job's pods reserved for the round.
		var cpuMilli int
		for k, n := range tasks {
			cpuMilli += n * cpu[k]
		}
		cost := jobCost(js) + float64(cpuMilli)/1000*secs/3600*m.cfg.PricePerCoreHour
		if snaps[i] != nil {
			js.need = estimateNeed(snaps[i], js.spec.Workload.MaxTasks)
		}
		jr := JobRound{
			Round:      r,
			JobSlot:    js.fj.Slot() - 1,
			Rates:      rates[i],
			Tasks:      tasks,
			TotalTasks: sum(tasks),
			Budget:     js.budget,
			CostCum:    cost,
			DualPrice:  dualPrice(js.ctrl.Duals()),
			Skipped:    snaps[i] == nil,
		}
		if snaps[i] != nil {
			jr.Measured = snaps[i].Throughput
		}
		if steady, ok := m.steadyThroughput(js, rates[i], tasks, cpu); ok {
			jr.Steady = steady
		}
		js.res.Rounds = append(js.res.Rounds, jr)
	}
	for _, js := range m.queue {
		js.res.QueuedRounds++
	}
	m.res.TotalTasksByRound = append(m.res.TotalTasksByRound, total)
	if total > m.cfg.TotalTaskBudget {
		m.res.BudgetOverruns++
		m.cfg.Counters.Inc("fleet_budget_overruns")
	}
	return total
}

// steadyThroughput evaluates the job's ground-truth steady throughput at
// the given allocation (the simulator's hidden capacity curves).
func (m *Manager) steadyThroughput(js *jobState, rates []float64, tasks []int, cpu []int) (float64, bool) {
	models := js.spec.Workload.Models
	caps := make([]float64, len(tasks))
	for i, n := range tasks {
		if ra, ok := models[i].(streamsim.ResourceAware); ok && cpu[i] > 0 {
			caps[i] = ra.CapacityWithCPU(n, cpu[i])
		} else {
			caps[i] = models[i].Capacity(n)
		}
	}
	th, err := js.spec.Workload.Graph.Throughput(rates, caps)
	if err != nil {
		return 0, false
	}
	return th, true
}

// gauges publishes the fleet-level metrics after each round.
func (m *Manager) gauges() {
	reg := m.reg
	reg.SetGauge("fleet_admission_queue_depth", float64(len(m.queue)))
	reg.SetGauge("fleet_running_jobs", float64(len(m.running)))
	allocated := 0
	for _, js := range m.running {
		allocated += js.budget
		reg.SetGauge(telemetry.Label("fleet_budget_share", "job", js.spec.Name), float64(js.budget))
		reg.SetGauge(telemetry.Label("fleet_dual_price", "job", js.spec.Name), dualPrice(js.ctrl.Duals()))
	}
	reg.SetGauge("fleet_budget_allocated", float64(allocated))
	reg.SetGauge("fleet_budget_total", float64(m.cfg.TotalTaskBudget))
	reg.SetGauge("fleet_shards", float64(m.cfg.Shards))
	shardJobs := make([]int, m.cfg.Shards)
	for _, js := range m.running {
		shardJobs[shard.Owner(js.spec.Name, m.cfg.Shards)]++
	}
	for s, n := range shardJobs {
		reg.SetGauge(telemetry.Label("fleet_shard_jobs", "shard", strconv.Itoa(s)), float64(n))
	}
	reg.SetGauge("fleet_inbox_pending", float64(m.inbox.Pending()))
	reg.SetGauge("fleet_inbox_deduped", float64(m.inbox.Deduped()))
	reg.SetGauge("fleet_events_committed", float64(m.log.Len()))
}

// dualPrice condenses a job's dual vector into its scalar shadow price:
// the mean positive multiplier. λ is already normalized to O(1) by
// osp.Config.ViolationScale, so prices are comparable across jobs of
// different capacity scales.
func dualPrice(duals []float64) float64 {
	if len(duals) == 0 {
		return 0
	}
	var s float64
	for _, l := range duals {
		s += math.Max(0, l)
	}
	return s / float64(len(duals))
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// needHeadroom pads the utilization-derived demand estimate so ordinary
// load noise doesn't read as a shrink opportunity.
const needHeadroom = 1.3

// estimateNeed converts a snapshot into the Σ-tasks allocation the job's
// measured load actually requires: per operator, tasks × utilization
// (the DS2-style "true processing requirement") padded with headroom.
// This — not the job's desired configuration — is the arbiter's shrink
// signal: a controller camping on its whole budget for GP exploration
// still *uses* little CPU, and exploration is exactly the spend a
// shared-budget arbiter should claw back from satisfied tenants.
func estimateNeed(snap *monitor.Snapshot, maxTasks int) int {
	need := 0
	for _, om := range snap.Operators {
		n := int(math.Ceil(float64(om.Tasks) * om.Util * needHeadroom))
		if n < 1 {
			n = 1
		}
		if n > maxTasks {
			n = maxTasks
		}
		need += n
	}
	return need
}

// buildStack constructs a newly admitted job's engine, Flink job,
// monitor, controller (warm-started from the kind archive), and retrier.
func (m *Manager) buildStack(js *jobState, r int) error {
	spec := js.spec.Workload
	rng := stats.NewRNG(m.cfg.Seed + int64(js.idx+1)*100003)
	peak := peakRate(js.spec.Rates, m.cfg.Slots)
	var maxBuf float64
	if m.cfg.MaxBufferSeconds > 0 {
		maxBuf = m.cfg.MaxBufferSeconds * math.Max(peak, 1)
	}
	engine, err := streamsim.New(streamsim.Config{
		Graph:            spec.Graph,
		Models:           spec.Models,
		NoiseSigma:       m.cfg.NoiseSigma,
		UtilNoiseSigma:   m.cfg.UtilNoiseSigma,
		MaxBufferPerEdge: maxBuf,
		RNG:              rng,
	})
	if err != nil {
		return err
	}
	initial := js.spec.InitialTasks
	if js.plan != nil {
		initial = append([]int(nil), js.plan.Tasks...)
	}
	if initial == nil {
		initial = make([]int, spec.Graph.NumOperators())
		for i := range initial {
			initial[i] = 1
		}
	}
	fj, err := m.session.SubmitJob(js.spec.Name, spec.Graph, engine, initial)
	if err != nil {
		return err
	}
	fj.SetTracer(m.tracer)
	mon, err := monitor.New(monitor.DirectSource{Job: fj}, monitor.Config{})
	if err != nil {
		return err
	}
	mon.SetTracer(m.tracer)

	db, nRecords := m.archive.seed(spec, m.cfg.DisableWarmStart, m.cfg.WarmStartMaxPerOperator)
	if js.plan != nil {
		// The plan's probe observations are the tenant's own evidence, so
		// they seed its GPs even when cross-job warm-start is disabled.
		// They must land before core.New, whose warm-start pass replays
		// the whole history into the per-operator regressors.
		for _, rec := range js.plan.Records() {
			if err := db.Append(rec); err != nil {
				return err
			}
		}
	}
	capScale := spec.YMax / 3
	noiseSD := math.Max(m.cfg.NoiseSigma, 0.02) * capScale
	ctrl, err := core.New(core.Config{
		Graph:         spec.Graph,
		Method:        js.spec.Method,
		TaskBudget:    js.budget,
		YMax:          spec.YMax,
		NoiseVar:      noiseSD * noiseSD,
		Candidates:    taskCandidates(spec),
		ForecastAlpha: m.cfg.ForecastAlpha,
		Counters:      m.cfg.Counters,
		DB:            db,
	})
	if err != nil {
		return err
	}
	if m.tracer != nil {
		ctrl.SetTracer(m.tracer)
	}
	retrier, err := core.NewRescaleRetrier(core.RetryConfig{
		Retryable: func(err error) bool { return errors.Is(err, chaos.ErrInjected) },
		Counters:  m.cfg.Counters,
	})
	if err != nil {
		return err
	}
	js.ctrl, js.fj, js.mon, js.retrier = ctrl, fj, mon, retrier
	js.db = db
	js.harvested = make(map[string]int, spec.Graph.NumOperators())
	js.usage = sum(initial)
	js.res.AdmitSlot = r
	js.res.WarmStarted = nRecords > 0
	js.res.WarmStartRecords = nRecords
	if js.plan != nil {
		js.res.Planned = true
		js.res.PlanDigest = js.plan.DigestHex()
		js.res.PlanProbes = len(js.plan.Probes)
	}
	return nil
}

func taskCandidates(spec *workload.Spec) [][][]float64 {
	grid := make([][]float64, spec.MaxTasks)
	for n := 1; n <= spec.MaxTasks; n++ {
		grid[n-1] = []float64{float64(n)}
	}
	out := make([][][]float64, spec.Graph.NumOperators())
	for i := range out {
		out[i] = grid
	}
	return out
}

func peakRate(f workload.RateFunc, slots int) float64 {
	var peak float64
	for s := 0; s < slots; s++ {
		for _, r := range f(s, 0) {
			if r > peak {
				peak = r
			}
		}
	}
	return peak
}
