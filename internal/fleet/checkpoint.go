package fleet

// Checkpointed failover by deterministic replay. The fleet is a
// deterministic state machine over (Config, external inputs): the same
// seed and the same input stream reproduce the same event trace byte for
// byte. A checkpoint therefore does not serialize GP posteriors, cluster
// pods, or buffer levels — it records the things replay cannot rederive
// (the external input log) plus enough committed state to *verify* the
// replay: the trace length and hash, the inbox cursor, and the arbiter's
// per-tenant section (budgets, usage, demand estimates, lifecycle
// slots). Resume builds a fresh Manager from the same Config, replays
// the recorded inputs round by round, and then cross-checks every
// verifiable section against the checkpoint; any divergence — a replica
// started with a different config, a corrupted checkpoint, a
// non-deterministic run — is an error, never a silent fork. A replica
// that passes takes over mid-run and produces the exact trace suffix the
// failed primary would have.

import (
	"fmt"
	"io"

	"dragster/internal/store"
)

// CheckpointKind tags fleet checkpoints inside the store envelope.
const CheckpointKind = "fleet"

// fleetMeta pins the run identity a replica must share.
type fleetMeta struct {
	Seed            int64    `json:"seed"`
	Slots           int      `json:"slots"`
	SlotSeconds     int      `json:"slot_seconds"`
	TotalTaskBudget int      `json:"total_task_budget"`
	Arbitration     int      `json:"arbitration"`
	Shards          int      `json:"shards"` // informational; traces are shard-invariant
	Round           int      `json:"round"`  // rounds completed when the checkpoint was cut
	ConfigJobs      []string `json:"config_jobs"`
}

// coreCheckpoint pins the message core's cursors: the committed trace
// prefix and the inbox delivery position.
type coreCheckpoint struct {
	TraceLen     int    `json:"trace_len"`
	TraceHash    uint64 `json:"trace_hash"`
	InboxNextSeq uint64 `json:"inbox_next_seq"`
}

// jobCheckpoint is the arbiter's per-tenant section.
type jobCheckpoint struct {
	Name       string `json:"name"`
	Status     int    `json:"status"`
	Budget     int    `json:"budget"`
	Usage      int    `json:"usage"`
	Need       int    `json:"need"`
	ArriveSlot int    `json:"arrive_slot"`
	AdmitSlot  int    `json:"admit_slot"`
	DepartSlot int    `json:"depart_slot"`
	Rounds     int    `json:"rounds"`
	// PlanDigest pins the capacity plan a PlanOnAdmit tenant was granted
	// from (0 = cold floor). Replay rebuilds the plan from the journaled
	// seed, so a digest mismatch means the replica planned differently.
	PlanDigest uint64 `json:"plan_digest,omitempty"`
}

// BuildCheckpoint captures the manager's replayable state between
// rounds. The manager is not safe for concurrent use; the caller (the
// daemon) serializes checkpointing against Step.
func (m *Manager) BuildCheckpoint() (*store.Checkpoint, error) {
	ck := store.NewCheckpoint(CheckpointKind)
	meta := fleetMeta{
		Seed:            m.cfg.Seed,
		Slots:           m.cfg.Slots,
		SlotSeconds:     m.cfg.SlotSeconds,
		TotalTaskBudget: m.cfg.TotalTaskBudget,
		Arbitration:     int(m.cfg.Arbitration),
		Shards:          m.cfg.Shards,
		Round:           m.round,
	}
	for i := range m.cfg.Jobs {
		meta.ConfigJobs = append(meta.ConfigJobs, m.cfg.Jobs[i].Name)
	}
	if err := ck.Put("meta", meta); err != nil {
		return nil, err
	}
	core := coreCheckpoint{
		TraceLen:     m.log.Len(),
		TraceHash:    m.log.Hash(),
		InboxNextSeq: m.inbox.NextSeq(),
	}
	if err := ck.Put("core", core); err != nil {
		return nil, err
	}
	jobs := make([]jobCheckpoint, 0, len(m.jobs))
	for _, js := range m.jobs {
		jobs = append(jobs, jobCheckpoint{
			Name:       js.spec.Name,
			Status:     int(js.status),
			Budget:     js.budget,
			Usage:      js.usage,
			Need:       js.need,
			ArriveSlot: js.res.ArriveSlot,
			AdmitSlot:  js.res.AdmitSlot,
			DepartSlot: js.res.DepartSlot,
			Rounds:     len(js.res.Rounds),
			PlanDigest: planDigest(js),
		})
	}
	if err := ck.Put("arbiter", jobs); err != nil {
		return nil, err
	}
	inputs := m.inputs
	if inputs == nil {
		inputs = []InputRecord{}
	}
	if err := ck.Put("inputs", inputs); err != nil {
		return nil, err
	}
	return ck, nil
}

// WriteCheckpoint snapshots the manager to w (the daemon's checkpoint
// surface; deterministic bytes for a given state).
func (m *Manager) WriteCheckpoint(w io.Writer) error {
	ck, err := m.BuildCheckpoint()
	if err != nil {
		return err
	}
	return ck.Snapshot(w)
}

// ResumeReader restores a replica from a serialized checkpoint.
func ResumeReader(cfg Config, r io.Reader, specs map[string]JobSpec) (*Manager, error) {
	ck, err := store.RestoreCheckpoint(r, CheckpointKind)
	if err != nil {
		return nil, err
	}
	return Resume(cfg, ck, specs)
}

// Resume builds a replica Manager that takes over a checkpointed run:
// it constructs a fresh Manager from cfg (which must match the
// primary's), replays the recorded external inputs through the rounds
// the primary completed, and verifies the result against every section
// of the checkpoint — trace prefix hash, inbox cursor, and the arbiter's
// per-tenant state. specs supplies the JobSpec of every dynamic
// submission by name (specs are not serializable: they carry workload
// models and rate functions); it may be nil when the run had none.
func Resume(cfg Config, ck *store.Checkpoint, specs map[string]JobSpec) (*Manager, error) {
	var meta fleetMeta
	if err := ck.Get("meta", &meta); err != nil {
		return nil, err
	}
	var core coreCheckpoint
	if err := ck.Get("core", &core); err != nil {
		return nil, err
	}
	var jobs []jobCheckpoint
	if err := ck.Get("arbiter", &jobs); err != nil {
		return nil, err
	}
	var inputs []InputRecord
	if err := ck.Get("inputs", &inputs); err != nil {
		return nil, err
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if m.cfg.Seed != meta.Seed || m.cfg.Slots != meta.Slots ||
		m.cfg.SlotSeconds != meta.SlotSeconds ||
		m.cfg.TotalTaskBudget != meta.TotalTaskBudget ||
		int(m.cfg.Arbitration) != meta.Arbitration {
		return nil, fmt.Errorf("fleet: resume config mismatch: checkpoint (seed %d, %d slots × %ds, budget %d, arbitration %d)",
			meta.Seed, meta.Slots, meta.SlotSeconds, meta.TotalTaskBudget, meta.Arbitration)
	}
	if len(m.cfg.Jobs) != len(meta.ConfigJobs) {
		return nil, fmt.Errorf("fleet: resume config has %d jobs, checkpoint %d", len(m.cfg.Jobs), len(meta.ConfigJobs))
	}
	for i := range meta.ConfigJobs {
		if m.cfg.Jobs[i].Name != meta.ConfigJobs[i] {
			return nil, fmt.Errorf("fleet: resume config job %d is %q, checkpoint %q", i, m.cfg.Jobs[i].Name, meta.ConfigJobs[i])
		}
	}
	if meta.Round > meta.Slots {
		return nil, fmt.Errorf("fleet: checkpoint at round %d of a %d-slot run", meta.Round, meta.Slots)
	}
	byRound := make(map[int][]InputRecord)
	for _, rec := range inputs {
		byRound[rec.Round] = append(byRound[rec.Round], rec)
	}
	for r := 0; r < meta.Round; r++ {
		if err := m.replayInputs(byRound[r], specs); err != nil {
			return nil, err
		}
		if err := m.Step(); err != nil {
			return nil, fmt.Errorf("fleet: replaying round %d: %w", r, err)
		}
	}
	// Inputs posted at the checkpoint round were pending, not delivered;
	// repost them so the replica's next Step commits them identically.
	if err := m.replayInputs(byRound[meta.Round], specs); err != nil {
		return nil, err
	}
	if m.log.Len() != core.TraceLen || m.log.Hash() != core.TraceHash {
		return nil, fmt.Errorf("fleet: replay diverged: trace len %d hash %#x, checkpoint len %d hash %#x",
			m.log.Len(), m.log.Hash(), core.TraceLen, core.TraceHash)
	}
	if got := m.inbox.NextSeq(); got != core.InboxNextSeq {
		return nil, fmt.Errorf("fleet: replay inbox cursor %d, checkpoint %d", got, core.InboxNextSeq)
	}
	if len(jobs) != len(m.jobs) {
		return nil, fmt.Errorf("fleet: replay produced %d tenants, checkpoint %d", len(m.jobs), len(jobs))
	}
	for i, jc := range jobs {
		js := m.jobs[i]
		if js.spec.Name != jc.Name {
			return nil, fmt.Errorf("fleet: tenant %d is %q after replay, checkpoint %q", i, js.spec.Name, jc.Name)
		}
		if int(js.status) != jc.Status || js.usage != jc.Usage || js.need != jc.Need ||
			js.res.ArriveSlot != jc.ArriveSlot || js.res.AdmitSlot != jc.AdmitSlot ||
			js.res.DepartSlot != jc.DepartSlot || len(js.res.Rounds) != jc.Rounds {
			return nil, fmt.Errorf("fleet: job %s diverged from checkpoint (status %v/%d, usage %d/%d, need %d/%d, rounds %d/%d)",
				jc.Name, js.status, jc.Status, js.usage, jc.Usage, js.need, jc.Need, len(js.res.Rounds), jc.Rounds)
		}
		if js.budget != jc.Budget {
			return nil, fmt.Errorf("fleet: job %s budget %d after replay, checkpoint %d", jc.Name, js.budget, jc.Budget)
		}
		if got := planDigest(js); got != jc.PlanDigest {
			return nil, fmt.Errorf("fleet: job %s plan digest %#x after replay, checkpoint %#x", jc.Name, got, jc.PlanDigest)
		}
		// The checkpoint's arbiter section is authoritative (a no-op once
		// verified, but the restore path — not the replay — owns the value).
		js.budget = jc.Budget
	}
	return m, nil
}

// planDigest is the tenant's capacity-plan identity (0 = cold floor).
func planDigest(js *jobState) uint64 {
	if js.plan == nil {
		return 0
	}
	return js.plan.Digest()
}

// replayInputs re-posts recorded external inputs and verifies each one
// receives its original sequence stamp.
func (m *Manager) replayInputs(recs []InputRecord, specs map[string]JobSpec) error {
	for _, rec := range recs {
		var seq uint64
		var err error
		switch rec.Kind {
		case "submit":
			spec, ok := specs[rec.Job]
			if !ok {
				return fmt.Errorf("fleet: resume needs the spec of dynamic job %q", rec.Job)
			}
			if spec.Name != rec.Job {
				return fmt.Errorf("fleet: resume spec for %q is named %q", rec.Job, spec.Name)
			}
			seq, err = m.submitInput(spec)
		case "kill":
			seq, err = m.killInput(rec.Job)
		default:
			return fmt.Errorf("fleet: checkpoint has unknown input kind %q", rec.Kind)
		}
		if err != nil {
			return fmt.Errorf("fleet: replaying input %d (%s %s): %w", rec.Seq, rec.Kind, rec.Job, err)
		}
		if seq != rec.Seq {
			return fmt.Errorf("fleet: replayed %s %s stamped seq %d, recorded %d", rec.Kind, rec.Job, seq, rec.Seq)
		}
	}
	return nil
}
