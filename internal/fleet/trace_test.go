package fleet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dragster/internal/telemetry"
	"dragster/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// deltaSpec is the dynamic tenant the event scenario submits mid-run.
func deltaSpec(t *testing.T) JobSpec {
	t.Helper()
	wc := mustSpec(t, workload.WordCount)
	return JobSpec{Name: "delta", Workload: wc, Rates: constRates(t, wc.LowRates)}
}

// scenarioInputs injects the event scenario's dynamic inputs before the
// given round runs: a submission at round 2, a kill of a running tenant
// at round 5, and a kill at round 6 (the round the failover test uses as
// its checkpoint cut, so the input is pending — not yet delivered — when
// the checkpoint is taken).
func scenarioInputs(t *testing.T, m *Manager, r int) {
	t.Helper()
	switch r {
	case 2:
		if err := m.Submit(deltaSpec(t)); err != nil {
			t.Fatalf("submit delta: %v", err)
		}
	case 5:
		if err := m.Kill("alpha"); err != nil {
			t.Fatalf("kill alpha: %v", err)
		}
	case 6:
		if err := m.Kill("gamma"); err != nil {
			t.Fatalf("kill gamma: %v", err)
		}
	}
}

// runEventScenario drives the canonical mixed fleet plus the dynamic
// schedule above to completion at the given shard/worker shape.
func runEventScenario(t *testing.T, shards, workers int) *Manager {
	t.Helper()
	cfg := threeJobConfig(t)
	cfg.Shards = shards
	cfg.DecideWorkers = workers
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	for !m.Done() {
		scenarioInputs(t, m, m.Round())
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", m.Round(), err)
		}
	}
	return m
}

// firstTraceDiff renders the first line where two traces diverge.
func firstTraceDiff(a, b string) string {
	al, bl := splitLines(a), splitLines(b)
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return "line " + itoa(i) + ":\n got " + la + "\nwant " + lb
		}
	}
	return "traces equal"
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFleetTraceByteIdenticalAcrossShards is the headline invariant of
// the event-driven control plane: a fixed seed produces the exact same
// event trace and grant sequence at ANY shard count and worker count —
// sharding is a throughput knob, never a behaviour knob.
func TestFleetTraceByteIdenticalAcrossShards(t *testing.T) {
	base := runEventScenario(t, 1, 1)
	baseTrace := base.TraceBytes()
	baseText := base.TraceText()
	baseFP := resultFingerprint(t, base.Result())
	if len(base.Events()) == 0 {
		t.Fatal("scenario committed no events")
	}
	for _, tc := range []struct {
		shards, workers int
	}{
		{1, 0}, {1, 4}, {4, 1}, {4, 2}, {16, 0}, {16, 3},
	} {
		m := runEventScenario(t, tc.shards, tc.workers)
		if !bytes.Equal(m.TraceBytes(), baseTrace) {
			t.Fatalf("shards=%d workers=%d: trace diverged from shards=1 workers=1:\n%s",
				tc.shards, tc.workers, firstTraceDiff(m.TraceText(), baseText))
		}
		if m.TraceHash() != base.TraceHash() {
			t.Fatalf("shards=%d workers=%d: trace hash diverged with equal bytes", tc.shards, tc.workers)
		}
		if fp := resultFingerprint(t, m.Result()); fp != baseFP {
			t.Fatalf("shards=%d workers=%d: result fingerprint diverged", tc.shards, tc.workers)
		}
	}
}

// TestFleetTracedRunKeepsTrace: installing a Tracer serializes dispatch
// but must not change the committed event trace.
func TestFleetTracedRunKeepsTrace(t *testing.T) {
	base := runEventScenario(t, 4, 2)

	cfg := threeJobConfig(t)
	cfg.Shards = 4
	cfg.DecideWorkers = 2
	cfg.Tracer = telemetry.NewTracer()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	for !m.Done() {
		scenarioInputs(t, m, m.Round())
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", m.Round(), err)
		}
	}
	if !bytes.Equal(m.TraceBytes(), base.TraceBytes()) {
		t.Fatalf("traced run's event trace diverged:\n%s",
			firstTraceDiff(m.TraceText(), base.TraceText()))
	}
}

// TestFleetShardsFromEnv re-runs the event scenario at the shard count
// named by the FLEET_SHARDS environment variable and holds its trace to
// the committed golden. This is CI's shard-matrix entry point: the
// fleet-race job runs the package at FLEET_SHARDS ∈ {1, 4, 16} under
// -race, so every matrix leg proves both memory safety and byte-identity
// at its shard count.
func TestFleetShardsFromEnv(t *testing.T) {
	v := os.Getenv("FLEET_SHARDS")
	if v == "" {
		t.Skip("FLEET_SHARDS not set (CI shard-matrix knob)")
	}
	shards := 0
	for i := 0; i < len(v); i++ {
		if v[i] < '0' || v[i] > '9' {
			t.Fatalf("FLEET_SHARDS=%q: want a positive integer", v)
		}
		shards = shards*10 + int(v[i]-'0')
	}
	if shards < 1 {
		t.Fatalf("FLEET_SHARDS=%q: want ≥ 1", v)
	}
	m := runEventScenario(t, shards, 0)
	want, err := os.ReadFile(filepath.Join("testdata", "fleet_trace.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TraceText(); got != string(want) {
		t.Fatalf("shards=%d: trace diverged from golden:\n%s",
			shards, firstTraceDiff(got, string(want)))
	}
}

// TestFleetGoldenTrace pins the scenario's full event trace as a golden
// file, so any change to control-plane behaviour — ordering, event
// payloads, admission outcomes — shows up as a reviewable diff.
// Regenerate with: go test ./internal/fleet -run TestFleetGoldenTrace -update
func TestFleetGoldenTrace(t *testing.T) {
	m := runEventScenario(t, 4, 2)
	got := m.TraceText()
	path := filepath.Join("testdata", "fleet_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("event trace diverged from golden:\n%s", firstTraceDiff(got, string(want)))
	}
}
