// Package storm models an Apache Storm cluster on Kubernetes — the second
// substrate the paper names (§3.2: "We can also apply Dragster in Storm
// and Heron to adjust the number of executors for each Bolt via
// rebalancing"). Compared to the Flink substrate:
//
//   - components are spouts (sources) and bolts (operators);
//   - parallelism changes go through the `rebalance` command, which stalls
//     the topology for a few seconds rather than Flink's ~30 s
//     savepoint stop-and-resume;
//   - there is no vertical (per-pod CPU) dimension — Storm workers are
//     homogeneous slots.
//
// The dataflow dynamics are delegated to a streamsim.Engine exactly like
// the Flink substrate, and slot reports use the shared telemetry types,
// so the Job Monitor and the Dragster controller run unmodified on top.
package storm

import (
	"errors"
	"fmt"
	"strings"

	"dragster/internal/cluster"
	"dragster/internal/dag"
	"dragster/internal/streamsim"
	"dragster/internal/telemetry"
)

// Options configures a Storm cluster.
type Options struct {
	// WorkerSpec is the pod template of each supervisor worker slot
	// (default 1 CPU / 2 GB, matching the Flink setup for comparability).
	WorkerSpec cluster.ResourceSpec
	// NimbusSpec is the master pod template.
	NimbusSpec cluster.ResourceSpec
	// RebalancePauseSeconds stalls processing on every rebalance (Storm
	// deactivates the topology while reassigning executors; default 10 s,
	// the "faster, more dynamic reconfiguration mechanism" regime the
	// paper contrasts with Flink checkpoints).
	RebalancePauseSeconds int
}

// DefaultOptions returns the standard setup.
func DefaultOptions() Options {
	return Options{
		WorkerSpec:            cluster.ResourceSpec{CPUMilli: 1000, MemoryMB: 2048},
		NimbusSpec:            cluster.ResourceSpec{CPUMilli: 1000, MemoryMB: 2048},
		RebalancePauseSeconds: 10,
	}
}

// Cluster hosts one Storm topology on a Kubernetes cluster.
type Cluster struct {
	k8s  *cluster.Cluster
	opts Options
	topo *Topology
}

// NewCluster creates the Storm control plane (the Nimbus deployment).
func NewCluster(k8s *cluster.Cluster, opts Options) (*Cluster, error) {
	if k8s == nil {
		return nil, errors.New("storm: nil cluster")
	}
	if err := opts.WorkerSpec.Validate(); err != nil {
		return nil, fmt.Errorf("storm: worker spec: %w", err)
	}
	if err := opts.NimbusSpec.Validate(); err != nil {
		return nil, fmt.Errorf("storm: nimbus spec: %w", err)
	}
	if opts.RebalancePauseSeconds < 0 {
		return nil, errors.New("storm: negative rebalance pause")
	}
	if err := k8s.CreateDeployment("storm-nimbus", opts.NimbusSpec, 1); err != nil {
		return nil, err
	}
	if k8s.RunningPods("storm-nimbus") != 1 {
		return nil, errors.New("storm: cluster cannot schedule the Nimbus pod")
	}
	return &Cluster{k8s: k8s, opts: opts}, nil
}

// Cluster returns the underlying Kubernetes cluster.
func (c *Cluster) Cluster() *cluster.Cluster { return c.k8s }

// Topology is a running Storm topology.
type Topology struct {
	name    string
	storm   *Cluster
	graph   *dag.Graph
	engine  *streamsim.Engine
	desired []int
	deps    []string // supervisor deployment per bolt (dense operator idx)

	slot       int
	lastReport *telemetry.SlotReport

	// depUtil is reportPodUsage's deployment→utilization working map,
	// cleared and refilled once per tick instead of allocated per call.
	depUtil map[string]float64
}

// SubmitTopology deploys a topology: one supervisor deployment per bolt
// with the initial executor counts. A cluster hosts one topology.
func (c *Cluster) SubmitTopology(name string, g *dag.Graph, engine *streamsim.Engine, initial []int) (*Topology, error) {
	if c.topo != nil {
		return nil, fmt.Errorf("storm: cluster already hosts topology %q", c.topo.name)
	}
	if g == nil || engine == nil {
		return nil, errors.New("storm: nil graph or engine")
	}
	if len(initial) != g.NumOperators() {
		return nil, fmt.Errorf("storm: got %d initial executor counts, want %d", len(initial), g.NumOperators())
	}
	t := &Topology{
		name:    name,
		storm:   c,
		graph:   g,
		engine:  engine,
		desired: append([]int(nil), initial...),
		deps:    make([]string, g.NumOperators()),
	}
	for i := 0; i < g.NumOperators(); i++ {
		if initial[i] < 1 {
			return nil, fmt.Errorf("storm: bolt %d needs at least one executor", i)
		}
		dep := workerDeployment(name, g.OperatorName(i))
		if err := c.k8s.CreateDeployment(dep, c.opts.WorkerSpec, initial[i]); err != nil {
			return nil, err
		}
		t.deps[i] = dep
	}
	if err := t.syncEngine(); err != nil {
		return nil, err
	}
	c.topo = t
	return t, nil
}

func workerDeployment(topo, bolt string) string {
	san := strings.ToLower(strings.ReplaceAll(bolt, " ", "-"))
	return fmt.Sprintf("worker-%s-%s", strings.ToLower(topo), san)
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// Graph returns the application DAG.
func (t *Topology) Graph() *dag.Graph { return t.graph }

// EffectiveParallelism returns the Running worker pods per bolt.
func (t *Topology) EffectiveParallelism() []int {
	out := make([]int, len(t.deps))
	for i, dep := range t.deps {
		out[i] = t.storm.k8s.RunningPods(dep)
	}
	return out
}

// EffectiveCPUMilli returns the per-worker CPU template (constant: Storm
// workers are homogeneous slots).
func (t *Topology) EffectiveCPUMilli() []int {
	out := make([]int, len(t.deps))
	for i, dep := range t.deps {
		if spec, ok := t.storm.k8s.DeploymentSpec(dep); ok {
			out[i] = spec.CPUMilli
		}
	}
	return out
}

// Rebalance applies new executor counts (the `storm rebalance` surface),
// charging the deactivation pause when anything changes.
func (t *Topology) Rebalance(executors []int) error {
	if len(executors) != len(t.desired) {
		return fmt.Errorf("storm: got %d executor counts, want %d", len(executors), len(t.desired))
	}
	changed := false
	for i, p := range executors {
		if p < 1 {
			return fmt.Errorf("storm: bolt %d needs at least one executor", i)
		}
		if p != t.desired[i] {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	for i, p := range executors {
		if p != t.desired[i] {
			if err := t.storm.k8s.Scale(t.deps[i], p); err != nil {
				return err
			}
			t.desired[i] = p
		}
	}
	if err := t.syncEngine(); err != nil {
		return err
	}
	t.engine.Pause(t.storm.opts.RebalancePauseSeconds)
	return nil
}

// RescaleResources satisfies the harness's runtime surface; Storm has no
// vertical dimension, so a non-nil CPU vector is rejected unless it
// matches the homogeneous worker spec.
func (t *Topology) RescaleResources(executors []int, cpuMilli []int) error {
	if cpuMilli != nil {
		for i, cpu := range cpuMilli {
			if cpu != 0 && cpu != t.storm.opts.WorkerSpec.CPUMilli {
				return fmt.Errorf("storm: bolt %d requested %dm but Storm workers are fixed at %dm", i, cpu, t.storm.opts.WorkerSpec.CPUMilli)
			}
		}
	}
	return t.Rebalance(executors)
}

func (t *Topology) syncEngine() error {
	if err := t.engine.SetTasks(t.EffectiveParallelism()); err != nil {
		return err
	}
	return t.engine.SetCPU(t.EffectiveCPUMilli())
}

// RunSlot advances the topology by `seconds` ticks, mirroring
// flink.Job.RunSlot.
func (t *Topology) RunSlot(seconds int, rateAt func(sec int) []float64) (*telemetry.SlotReport, error) {
	if err := t.syncEngine(); err != nil {
		return nil, err
	}
	t.engine.BeginSlot()
	acc, err := telemetry.NewSlotAccumulator(t.name, t.slot, t.graph.NumOperators(), t.graph.NumSources(), seconds)
	if err != nil {
		return nil, fmt.Errorf("storm: %w", err)
	}
	droppedBefore := t.engine.DroppedTotal()
	for sec := 0; sec < seconds; sec++ {
		rates := rateAt(sec)
		st, err := t.engine.Tick(rates)
		if err != nil {
			return nil, err
		}
		if err := acc.Tick(rates, st); err != nil {
			return nil, err
		}
		if err := t.reportPodUsage(st.Ops); err != nil {
			return nil, err
		}
		t.storm.k8s.Tick(1)
	}
	names := make([]string, t.graph.NumOperators())
	for i := range names {
		names[i] = t.graph.OperatorName(i)
	}
	rep, err := acc.Finish(names, t.desired, t.EffectiveParallelism(), t.EffectiveCPUMilli(),
		t.engine.DroppedTotal()-droppedBefore, t.storm.k8s.Cost())
	if err != nil {
		return nil, err
	}
	t.slot++
	t.lastReport = rep
	return rep, nil
}

// reportPodUsage mirrors flink.Job.reportPodUsage: per-tick usage fan-out
// over a reused deployment map and the cluster's no-copy pod view.
//
//lint:hotpath
func (t *Topology) reportPodUsage(ops []streamsim.OpTick) error {
	if t.depUtil == nil {
		t.depUtil = make(map[string]float64, len(t.deps))
	}
	clear(t.depUtil)
	for i, dep := range t.deps {
		t.depUtil[dep] = ops[i].Util
	}
	for _, p := range t.storm.k8s.PodsView() {
		util, ok := t.depUtil[p.Deployment]
		if !ok || p.Phase != cluster.PodRunning {
			continue
		}
		if err := t.storm.k8s.ReportCPUUsage(p.Name, int(util*float64(p.Spec.CPUMilli))); err != nil {
			// Only ErrUnknownPod is possible, and only if the pod list went
			// stale mid-loop — a real bug worth surfacing, not swallowing.
			//lint:allow hotpath cold error path: unknown pod is a cluster bug, never hit in steady state
			return fmt.Errorf("storm: report usage for %s: %w", p.Name, err)
		}
	}
	return nil
}

// LastReport returns the most recent slot report (nil before the first).
func (t *Topology) LastReport() *telemetry.SlotReport { return t.lastReport }

// Slot returns the index of the next slot to run.
func (t *Topology) Slot() int { return t.slot }
