package storm

import (
	"math"
	"testing"

	"dragster/internal/cluster"
	"dragster/internal/dag"
	"dragster/internal/streamsim"
)

func chainGraph(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	src := b.Source("spout")
	split := b.Operator("split")
	count := b.Operator("count")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, split, count, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(2), dag.Selectivity(1)}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTopology(t testing.TB, perTask float64, initial []int) (*Cluster, *Topology) {
	t.Helper()
	g := chainGraph(t)
	lin, err := streamsim.NewLinearCurve(perTask)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamsim.New(streamsim.Config{Graph: g, Models: []streamsim.CapacityModel{lin, lin}})
	if err != nil {
		t.Fatal(err)
	}
	k8s := cluster.New()
	if err := k8s.AddNodes("n", 8, cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(k8s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := c.SubmitTopology("wordcount", g, eng, initial)
	if err != nil {
		t.Fatal(err)
	}
	return c, topo
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, DefaultOptions()); err == nil {
		t.Error("nil cluster accepted")
	}
	empty := cluster.New() // nimbus unschedulable
	if _, err := NewCluster(empty, DefaultOptions()); err == nil {
		t.Error("unschedulable nimbus accepted")
	}
	k8s := cluster.New()
	if err := k8s.AddNode("n", cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.RebalancePauseSeconds = -1
	if _, err := NewCluster(k8s, bad); err == nil {
		t.Error("negative pause accepted")
	}
}

func TestSubmitTopology(t *testing.T) {
	c, topo := newTopology(t, 150, []int{2, 3})
	if topo.Name() != "wordcount" {
		t.Errorf("Name = %q", topo.Name())
	}
	if got := topo.EffectiveParallelism(); got[0] != 2 || got[1] != 3 {
		t.Errorf("parallelism = %v", got)
	}
	cpus := topo.EffectiveCPUMilli()
	if cpus[0] != 1000 || cpus[1] != 1000 {
		t.Errorf("worker CPUs = %v", cpus)
	}
	deps := c.Cluster().Deployments()
	want := map[string]bool{"storm-nimbus": true, "worker-wordcount-split": true, "worker-wordcount-count": true}
	for _, d := range deps {
		if !want[d] {
			t.Errorf("unexpected deployment %q", d)
		}
	}
	if _, err := c.SubmitTopology("again", topo.Graph(), nil, []int{1, 1}); err == nil {
		t.Error("second topology accepted")
	}
}

func TestSubmitTopologyValidation(t *testing.T) {
	k8s := cluster.New()
	if err := k8s.AddNodes("n", 2, cluster.ResourceSpec{CPUMilli: 4000, MemoryMB: 8192}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(k8s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := chainGraph(t)
	if _, err := c.SubmitTopology("x", nil, nil, []int{1, 1}); err == nil {
		t.Error("nil graph accepted")
	}
	lin, _ := streamsim.NewLinearCurve(10)
	eng, err := streamsim.New(streamsim.Config{Graph: g, Models: []streamsim.CapacityModel{lin, lin}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitTopology("x", g, eng, []int{1}); err == nil {
		t.Error("wrong initial length accepted")
	}
	if _, err := c.SubmitTopology("x", g, eng, []int{0, 1}); err == nil {
		t.Error("zero executors accepted")
	}
}

func TestRunSlotSteadyState(t *testing.T) {
	_, topo := newTopology(t, 150, []int{2, 3})
	rep, err := topo.RunSlot(60, func(int) []float64 { return []float64{100} })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Throughput-200) > 5 {
		t.Errorf("Throughput = %v, want ≈200", rep.Throughput)
	}
	if rep.Vertices[0].Name != "split" || rep.Vertices[0].RunningTasks != 2 {
		t.Errorf("vertex 0 = %+v", rep.Vertices[0])
	}
	if topo.LastReport() != rep || topo.Slot() != 1 {
		t.Error("report bookkeeping wrong")
	}
	if rep.CostSoFar <= 0 {
		t.Error("no cost accrued")
	}
}

func TestRebalancePauseShorterThanFlink(t *testing.T) {
	_, topo := newTopology(t, 150, []int{1, 1})
	rates := func(int) []float64 { return []float64{100} }
	if _, err := topo.RunSlot(30, rates); err != nil {
		t.Fatal(err)
	}
	if err := topo.Rebalance([]int{2, 2}); err != nil {
		t.Fatal(err)
	}
	rep, err := topo.RunSlot(60, rates)
	if err != nil {
		t.Fatal(err)
	}
	// Storm rebalance stalls 10 s, not Flink's 30 s.
	if rep.PausedSeconds != 10 {
		t.Errorf("PausedSeconds = %d, want 10", rep.PausedSeconds)
	}
	// No-op rebalance costs nothing.
	if err := topo.Rebalance([]int{2, 2}); err != nil {
		t.Fatal(err)
	}
	rep, err = topo.RunSlot(30, rates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PausedSeconds != 0 {
		t.Errorf("no-op rebalance paused %ds", rep.PausedSeconds)
	}
}

func TestRebalanceValidation(t *testing.T) {
	_, topo := newTopology(t, 150, []int{1, 1})
	if err := topo.Rebalance([]int{1}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := topo.Rebalance([]int{0, 1}); err == nil {
		t.Error("zero executors accepted")
	}
}

func TestRescaleResourcesRejectsVertical(t *testing.T) {
	_, topo := newTopology(t, 150, []int{1, 1})
	if err := topo.RescaleResources([]int{2, 2}, []int{2000, 1000}); err == nil {
		t.Error("heterogeneous CPU accepted on storm")
	}
	// Matching or zero CPU entries are fine (harness compatibility).
	if err := topo.RescaleResources([]int{2, 2}, []int{1000, 0}); err != nil {
		t.Errorf("homogeneous rescale rejected: %v", err)
	}
	if got := topo.EffectiveParallelism(); got[0] != 2 || got[1] != 2 {
		t.Errorf("parallelism = %v", got)
	}
}
