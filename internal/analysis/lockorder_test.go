package analysis

import "testing"

func TestLockorderFixture(t *testing.T) {
	runFixture(t, "dragster/internal/lockorderbad", LockorderAnalyzer())
}
