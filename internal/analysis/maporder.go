package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer flags `range` over a map whose body does something
// order-sensitive: appends to a slice, writes to an output/figure writer,
// or accumulates floating-point values. Go randomizes map iteration order,
// so any of those turns a rendered table or accumulated statistic into a
// different byte stream on every run — the classic nondeterministic-figures
// bug. Iterate a sorted key slice (or a stable order list like
// experiment.PolicyOrder) instead.
//
// The canonical fix is itself a map range that appends:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// so appends are exempt when every appended slice is passed to a sort. or
// slices. function later in the same block. Output writes and float
// accumulation have no such repair and are always flagged.
func MaporderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc: "flag range-over-map loops that append to slices, write output, or " +
			"accumulate floats; map order is randomized, so such loops make " +
			"figures and statistics nondeterministic (collect-then-sort is exempt)",
		Run: runMaporder,
	}
}

// fmtWriters are fmt functions that emit bytes; calling one inside a
// map-ordered loop interleaves output nondeterministically.
var fmtWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// writerMethods are method names that, called on anything, count as
// writing to an output sink (io.Writer, strings.Builder, bufio.Writer,
// csv.Writer, tabwriter...).
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteRune": true,
	"WriteByte": true, "WriteAll": true, "Printf": true,
}

// mapEffect is one order-sensitive operation found in a range body.
type mapEffect struct {
	reason string
	pos    token.Pos
	root   string // appended slice's root identifier ("" for non-appends)
}

func runMaporder(pass *Pass) []Diagnostic {
	if !inModule(pass) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, s := range list {
				rng, ok := unlabel(s).(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass.Info, rng) {
					continue
				}
				for _, eff := range orderEffects(pass, rng) {
					if eff.root != "" && sortedLater(pass, list[i+1:], eff.root) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:  eff.pos,
						Rule: "maporder",
						Message: fmt.Sprintf("range over map %s %s inside the loop; map order is "+
							"randomized per run — iterate sorted keys (or a stable order slice) instead",
							exprString(rng.X), eff.reason),
					})
					break // one diagnostic per range statement
				}
			}
			return true
		})
	}
	return diags
}

// stmtList returns the statement list a node carries, if any. Every
// statement lives in exactly one of these, so visiting them covers all
// range statements while exposing their following siblings.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderEffects scans a range body for order-dependent operations. Nested
// statements count too: the nondeterminism of the outer map range taints
// everything under it. Irreparable effects (output writes, float
// accumulation) are ordered before appends, which may yet be excused by a
// following sort.
func orderEffects(pass *Pass, rng *ast.RangeStmt) []mapEffect {
	var hard, appends []mapEffect
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAppend(pass.Info, n) {
				root := ""
				if len(n.Args) > 0 {
					root = rootIdent(n.Args[0])
				}
				appends = append(appends, mapEffect{"appends to a slice", n.Pos(), root})
				return true
			}
			if name, ok := pkgFunc(pass.Info, n, "fmt"); ok && fmtWriters[name] {
				hard = append(hard, mapEffect{"writes output via fmt." + name, n.Pos(), ""})
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
				// Method call (not a package-qualified function): a writer sink.
				if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if _, isPkg := pass.Info.Uses[base].(*types.PkgName); isPkg {
						return true
					}
				}
				hard = append(hard, mapEffect{"writes output via ." + sel.Sel.Name, n.Pos(), ""})
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloat(pass.Info, n.Lhs[0]) {
					hard = append(hard, mapEffect{
						"accumulates floating-point values (rounding is order-dependent)", n.Pos(), ""})
				}
			}
		}
		return true
	})
	return append(hard, appends...)
}

// sortedLater reports whether a following sibling statement passes the
// named slice to a sort.* or slices.* function — the collect-then-sort
// idiom that restores determinism.
func sortedLater(pass *Pass, rest []ast.Stmt, root string) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, pkg := range []string{"sort", "slices"} {
				if _, ok := pkgFunc(pass.Info, call, pkg); ok {
					for _, arg := range call.Args {
						if rootIdent(arg) == root {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rootIdent returns the base identifier of a possibly nested selector,
// index, star, or paren expression ("out" for out.Paths[name]), or "".
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// exprString renders a short source-ish form of an expression for
// diagnostics (identifiers and selectors; anything else is elided).
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "expression"
	}
}
