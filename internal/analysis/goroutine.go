package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer requires every `go` statement under internal/ to
// launch through a supervised lifecycle, so the event-driven fleet core
// stays joinable and seed-deterministic: an unjoined goroutine races the
// round loop and makes trace replay order-dependent.
//
// A launch is supervised when one of these holds:
//
//   - the goroutine body calls Done on a *sync.WaitGroup (usually
//     deferred), so a wg.Wait() can join it;
//   - the goroutine body sends on or closes a channel, signalling
//     completion to a receiver;
//   - the launched function takes a *sync.WaitGroup argument (the
//     `go worker(&wg, ...)` form);
//   - the launch site is inside a function whose doc comment carries
//     `//lint:workerpool` — the designated, audited pool helper through
//     which unsupervised-looking launches are funneled.
//
// cmd/ and examples/ own their runtime concerns and are out of scope, as
// are _test.go files (tests poll and time out with the testing package's
// own lifecycle).
func GoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine",
		Doc: "require every go statement in internal/ to be supervised: join " +
			"via sync.WaitGroup.Done, signal a done channel, take a " +
			"*sync.WaitGroup, or launch inside a //lint:workerpool helper",
		Run: runGoroutine,
	}
}

func runGoroutine(pass *Pass) []Diagnostic {
	if !hasPathPrefix(pass.Path(), ModulePath+"/internal") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isTestFile(pass.Fset, fd.Pos()) || hasDirective(fd.Doc, "//lint:workerpool") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if supervisedLaunch(pass, gs) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  gs.Pos(),
					Rule: "goroutine",
					Message: fmt.Sprintf("unsupervised goroutine in %s: join it via a "+
						"sync.WaitGroup or done channel, or launch through a "+
						"//lint:workerpool helper, so the run stays replayable",
						fd.Name.Name),
				})
				return true
			})
		}
	}
	return diags
}

// supervisedLaunch applies the lifecycle tests to one go statement.
func supervisedLaunch(pass *Pass, gs *ast.GoStmt) bool {
	// go worker(&wg, ...): the callee receives the WaitGroup and is
	// responsible for Done.
	for _, arg := range gs.Call.Args {
		if t := pass.Info.TypeOf(arg); t != nil && isWaitGroupPtr(t) {
			return true
		}
	}
	var body *ast.BlockStmt
	switch fn := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fn.Body
	default:
		// Named same-package function: inspect its declaration if we can
		// find it; cross-package launches must use one of the other forms.
		obj := calledFunc(pass.Info, gs.Call)
		if obj == nil {
			return false
		}
		body = funcDeclBody(pass, obj)
		if body == nil {
			return false
		}
	}
	return signalsCompletion(pass, body)
}

// signalsCompletion reports whether a goroutine body joins a WaitGroup or
// signals a channel (send or close), directly or deferred.
func signalsCompletion(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isWaitGroupDone(pass.Info, n) || isChanClose(pass.Info, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone matches x.Done() where x is a sync.WaitGroup (or
// pointer / struct field thereof).
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && (isWaitGroup(t) || isWaitGroupPtr(t))
}

func isChanClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func isWaitGroupPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	return ok && isWaitGroup(p.Elem())
}

// funcDeclBody finds the body of a function declared in this package.
func funcDeclBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if def := pass.Info.Defs[fd.Name]; def == fn {
				return fd.Body
			}
		}
	}
	return nil
}
