package analysis

import "testing"

func TestChaoshookFixture(t *testing.T) {
	runFixture(t, "dragster/internal/chaoshookbad", ChaoshookAnalyzer())
}

// TestChaoshookAllowsChaosPackage runs the analyzer over the fixture
// chaos package, which uses every fault entry point: as the owner of the
// fault model it must produce zero findings.
func TestChaoshookAllowsChaosPackage(t *testing.T) {
	runFixture(t, "dragster/internal/chaos", ChaoshookAnalyzer())
}
