package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable diagnostic output. Two formats:
//
//   - -json mirrors golang.org/x/tools unitchecker's shape — one
//     {"<pkg>": {"<rule>": [{posn, message}]}} object per package — so
//     existing vet-JSON consumers work unchanged.
//   - -sarif emits one SARIF 2.1.0 document per package on stdout.
//
// `go vet` runs the tool once per package and concatenates stdout, so a
// whole-module run produces a stream of JSON documents. The -merge-sarif
// mode turns such a stream (either format) back into a single valid
// SARIF file for CI upload:
//
//	go vet -vettool=bin/dragsterlint -sarif ./... > lint.stream
//	bin/dragsterlint -merge-sarif lint.stream > dragsterlint.sarif
//
// In either machine mode the per-package exit code is 0 even with
// findings — the consumer decides; the text mode stays the CI gate.

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// sarif* model the subset of SARIF 2.1.0 this tool emits. Field presence
// follows the spec's minimum for a result with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifMultiMessage `json:"shortDescription"`
}

type sarifMultiMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// writeJSON emits the x/tools-compatible per-package JSON object.
func writeJSON(w io.Writer, pkgID string, fset *token.FileSet, diags []Diagnostic) error {
	byRule := make(map[string][]jsonDiagnostic)
	for _, d := range diags {
		byRule[d.Rule] = append(byRule[d.Rule], jsonDiagnostic{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiagnostic{pkgID: byRule}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// writeSARIF emits one SARIF 2.1.0 document for the package's findings.
// Paths are made repo-relative when possible so CI annotation maps them
// onto the checkout.
func writeSARIF(w io.Writer, analyzers []*Analyzer, fset *token.FileSet, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(sarifFor(analyzers, fset, diags))
}

func sarifFor(analyzers []*Analyzer, fset *token.FileSet, diags []Diagnostic) sarifLog {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMultiMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "suppress", ShortDescription: sarifMultiMessage{
		Text: "suppression hygiene: //lint:allow directives must carry a reason and suppress something"}})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: relativeURI(pos.Filename)},
				Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
			}}},
		})
	}
	return sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dragsterlint", Rules: rules}},
			Results: results,
		}},
	}
}

// relativeURI rewrites a filename relative to the module root so CI
// annotation maps it onto the checkout. `go vet` runs the tool from the
// package directory, not the module root, so the root is found by
// walking up from the working directory to the nearest go.mod; paths
// outside it fall back to slash form unchanged.
func relativeURI(filename string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filepath.ToSlash(filename)
	}
	if !filepath.IsAbs(filename) {
		filename = filepath.Join(wd, filename)
	}
	for dir := wd; ; {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			if rel, err := filepath.Rel(dir, filename); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return filepath.ToSlash(filename)
}

// MergeSARIF reads a concatenated stream of SARIF documents — the
// output of a -sarif whole-module vet run — and writes one merged
// document with a single run: the union of rules, the concatenation of
// results, in input order. cmd/go echoes each package's tool output on
// its own stderr prefixed with `# <package>` comment lines, so lines
// starting with '#' are skipped (the tab-indented documents this tool
// emits never start a line with one).
func MergeSARIF(r io.Reader, w io.Writer) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("merge-sarif: %v", err)
	}
	lines := strings.Split(string(raw), "\n")
	kept := lines[:0]
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			kept = append(kept, l)
		}
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(kept, "\n")))
	rules := []sarifRule{}
	haveRule := make(map[string]bool)
	results := []sarifResult{} // non-nil: an all-clean run merges to "results": []
	n := 0
	for {
		var doc sarifLog
		if err := dec.Decode(&doc); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("merge-sarif: document %d: %v", n+1, err)
		}
		n++
		if doc.Version != "2.1.0" {
			return fmt.Errorf("merge-sarif: document %d: version %q, want 2.1.0", n, doc.Version)
		}
		for _, run := range doc.Runs {
			for _, rule := range run.Tool.Driver.Rules {
				if !haveRule[rule.ID] {
					haveRule[rule.ID] = true
					rules = append(rules, rule)
				}
			}
			results = append(results, run.Results...)
		}
	}
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	merged := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dragsterlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(merged)
}
