package analysis

// The detrandbad fixture carries both directions of every rule: the
// flagged global-generator calls (want annotations) and the allowlist
// edge cases — rand.New(rand.NewSource(seed)) and the v2 equivalent are
// permitted everywhere, including inside a package full of violations.
// runFixture fails on any unexpected diagnostic, so a false positive on
// the seeded pattern fails this test.

import "testing"

func TestDetrandFixture(t *testing.T) {
	runFixture(t, "dragster/internal/detrandbad", DetrandAnalyzer())
}
