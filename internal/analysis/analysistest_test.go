package analysis

// Test harness: fixture packages live under testdata/src/<import path>/
// and are parsed and type-checked in-process. Expected findings are
// declared inline with
//
//	code() // want `regexp`
//
// comments: every diagnostic must match a want on its line, and every
// want must be matched by a diagnostic. Fixture packages may import each
// other (testdata/src is consulted first) and the standard library (the
// source importer resolves it from GOROOT).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

type fixtureLoader struct {
	fset     *token.FileSet
	root     string // testdata/src
	passes   map[string]*Pass
	fallback types.Importer
}

func newFixtureLoader() *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		fset:     fset,
		root:     filepath.Join("testdata", "src"),
		passes:   make(map[string]*Pass),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture tree with a standard
// library fallback.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pass, ok := l.passes[path]; ok {
		return pass.Pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		pass, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pass.Pkg, nil
	}
	return l.fallback.Import(path)
}

// load parses and type-checks the fixture package at the given import
// path (relative to testdata/src).
func (l *fixtureLoader) load(path string) (*Pass, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := &types.Config{Importer: l}
	info := newTypesInfo()
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %v", path, err)
	}
	pass := &Pass{Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.passes[path] = pass
	return pass, nil
}

var wantRE = regexp.MustCompile("// want (`[^`]+`(?: `[^`]+`)*)")

// runFixture loads the fixture package, runs the analyzers through
// RunSuite (so //lint:allow suppression is active), and verifies the
// diagnostics against the package's want annotations.
func runFixture(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	loader := newFixtureLoader()
	pass, err := loader.load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				for _, quoted := range strings.Split(m[1], "` `") {
					pat := strings.Trim(quoted, "`")
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
				// A want marker on a //lint: directive comment describes the
				// directive itself (e.g. a reasonless allow that must be
				// diagnosed). Trim the marker so the directive parser doesn't
				// read it as part of the reason.
				if strings.HasPrefix(c.Text, "//lint:") {
					if i := strings.Index(c.Text, "// want "); i >= 0 {
						c.Text = strings.TrimRight(c.Text[:i], " \t")
					}
				}
			}
		}
	}

	diags := RunSuite(pass, analyzers)

	for _, d := range diags {
		pos := pass.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, d.Rule, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// expectClean asserts the analyzers produce no diagnostics at all on the
// fixture package (used for allowlisted-package fixtures).
func expectClean(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	loader := newFixtureLoader()
	pass, err := loader.load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunSuite(pass, analyzers) {
		t.Errorf("%s: unexpected diagnostic [%s] %s", pass.Fset.Position(d.Pos), d.Rule, d.Message)
	}
}
