package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errflowPkgs are the packages whose every error-returning function and
// method is in the configured fallible set: these are the simulator's
// stateful substrates (k8s-model cluster, Flink/Storm adapters, the
// observation store), where a swallowed error silently desynchronizes the
// model from the controller's view of it.
var errflowPkgs = []string{
	ModulePath + "/internal/store",
	ModulePath + "/internal/flink",
	ModulePath + "/internal/cluster",
}

// errflowExtras names additional fallible functions outside those
// packages, as "importpath.Name". ObserveRates rejects invalid throughput
// samples via its error; dropping it hides learner starvation.
var errflowExtras = map[string]bool{
	ModulePath + "/internal/dag.ObserveRates": true,
}

// ErrflowAnalyzer flags discarded error returns — `_ = f(...)`, bare
// `f(...)` statements, `defer f(...)`, and `go f(...)` — for the
// configured set of fallible functions. Handle the error, or carry an
// explicit `//lint:allow errflow <reason>`.
func ErrflowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errflow",
		Doc: "flag discarded error returns (`_ =` and bare calls) for fallible " +
			"functions in internal/store, internal/flink, internal/cluster (and " +
			"configured extras); every error must be handled, propagated, or " +
			"explicitly waived with a reasoned //lint:allow",
		Run: runErrflow,
	}
}

func runErrflow(pass *Pass) []Diagnostic {
	if !inModule(pass) {
		return nil
	}
	var diags []Diagnostic
	flag := func(call *ast.CallExpr, how string) {
		if isTestFile(pass.Fset, call.Pos()) {
			return // tests discard errors on purpose when exercising panics etc.
		}
		name, ok := fallibleCall(pass.Info, call)
		if !ok {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  call.Pos(),
			Rule: "errflow",
			Message: fmt.Sprintf("%s discards the error from %s; handle or propagate it "+
				"(or waive with //lint:allow errflow <reason>)", how, name),
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					flag(call, "statement")
				}
			case *ast.DeferStmt:
				flag(n.Call, "defer")
			case *ast.GoStmt:
				flag(n.Call, "go statement")
			case *ast.AssignStmt:
				// `_ = f(...)` or `v, _ := f(...)` with the error position blank.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if errPos := errResultIndex(pass.Info, call); errPos >= 0 && errPos < len(n.Lhs) {
					if id, ok := n.Lhs[errPos].(*ast.Ident); ok && id.Name == "_" {
						flag(call, "blank assignment")
					}
				}
			}
			return true
		})
	}
	return diags
}

// fallibleCall reports whether the call targets a configured fallible
// function that returns an error, and names it for the diagnostic.
func fallibleCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calledFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if !returnsError(fn) {
		return "", false
	}
	path := fn.Pkg().Path()
	qualified := path + "." + fn.Name()
	if errflowExtras[qualified] {
		return qualified, true
	}
	for _, p := range errflowPkgs {
		if path == p || hasPathPrefix(path, p) {
			return qualified, true
		}
	}
	return "", false
}

// calledFunc resolves the called function or method object, if static.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// returnsError reports whether the function's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// errResultIndex returns the index of the error result in the call's
// result tuple for a configured fallible call, or -1.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	fn := calledFunc(info, call)
	if fn == nil || !returnsError(fn) {
		return -1
	}
	if _, ok := fallibleCall(info, call); !ok {
		return -1
	}
	sig := fn.Type().(*types.Signature)
	return sig.Results().Len() - 1
}
