package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives have the form
//
//	//lint:allow <rule> <reason>
//
// and silence diagnostics of <rule> on the same line (trailing comment) or
// on the line directly below the comment. A reason is mandatory — a bare
// `//lint:allow simclock` suppresses nothing AND is itself diagnosed
// (rule "suppress"), so every exemption is forced to document itself.
// An allow that no longer matches any diagnostic is likewise diagnosed
// as stale, but only when the analyzer it names is part of the run —
// `-check=simclock` must not condemn an errflow waiver it never tested.

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Pos
	rule      string
	hasReason bool
	used      bool // suppressed at least one diagnostic this run
}

// suppressionIndex maps file:line keys to the directives covering them.
type suppressionIndex struct {
	byLine     map[suppression][]*allowDirective
	directives []*allowDirective
}

type suppression struct {
	file string
	line int
	rule string
}

// collectSuppressions parses every //lint:allow directive in the pass,
// well-formed or not, keyed by the lines it exempts.
func collectSuppressions(pass *Pass) *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[suppression][]*allowDirective)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, hasReason, isDirective := parseAllow(c.Text)
				if !isDirective {
					continue
				}
				d := &allowDirective{pos: c.Pos(), rule: rule, hasReason: hasReason}
				idx.directives = append(idx.directives, d)
				if !hasReason {
					continue // malformed: diagnosed, never suppresses
				}
				pos := pass.Fset.Position(c.Pos())
				// Exempt the comment's own line (trailing form) and the
				// next line (preceding form).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := suppression{pos.Filename, line, rule}
					idx.byLine[k] = append(idx.byLine[k], d)
				}
			}
		}
	}
	return idx
}

// parseAllow dissects a `//lint:allow <rule> <reason>` comment.
// isDirective is true for any comment starting with //lint:allow;
// hasReason requires at least one word after the rule.
func parseAllow(text string) (rule string, hasReason, isDirective bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return "", false, false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false, false // e.g. //lint:allowother
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false, true
	}
	return fields[0], len(fields) >= 2, true
}

// filterSuppressed drops diagnostics covered by an allow directive, then
// reports suppression hygiene: directives missing a reason, and reasoned
// directives that suppressed nothing although their analyzer ran (stale).
func filterSuppressed(pass *Pass, diags []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	idx := collectSuppressions(pass)
	if len(idx.directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pass.Fset.Position(d.Pos)
		covering := idx.byLine[suppression{pos.Filename, pos.Line, d.Rule}]
		if len(covering) == 0 {
			kept = append(kept, d)
			continue
		}
		for _, dir := range covering {
			dir.used = true
		}
	}
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	for _, dir := range idx.directives {
		switch {
		case !dir.hasReason:
			kept = append(kept, Diagnostic{
				Pos:  dir.pos,
				Rule: "suppress",
				Message: "//lint:allow without a reason suppresses nothing; write " +
					"`//lint:allow <rule> <reason>` so the exemption documents itself",
			})
		case !dir.used && active[dir.rule]:
			kept = append(kept, Diagnostic{
				Pos:  dir.pos,
				Rule: "suppress",
				Message: "stale //lint:allow " + dir.rule + ": it suppresses no " +
					"diagnostic on its line or the next; delete it (or fix the rule name)",
			})
		}
	}
	return kept
}

// isTestFile reports whether the file a node belongs to is a _test.go
// file. Several analyzers relax their rules inside tests.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(posFile(fset, pos), "_test.go")
}
