package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives have the form
//
//	//lint:allow <rule> <reason>
//
// and silence diagnostics of <rule> on the same line (trailing comment) or
// on the line directly below the comment. A reason is mandatory — a bare
// `//lint:allow simclock` does not suppress anything, so every exemption
// is forced to document itself.

type suppression struct {
	file string
	line int
	rule string
}

// suppressions collects every well-formed //lint:allow directive in the
// pass, keyed by the line it exempts.
func collectSuppressions(pass *Pass) map[suppression]bool {
	out := make(map[suppression]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				// Exempt the comment's own line (trailing form) and the
				// next line (preceding form).
				out[suppression{pos.Filename, pos.Line, rule}] = true
				out[suppression{pos.Filename, pos.Line + 1, rule}] = true
			}
		}
	}
	return out
}

// parseAllow extracts the rule from a `//lint:allow <rule> <reason>`
// comment. It returns ok=false for comments that are not directives or
// that omit the reason.
func parseAllow(text string) (rule string, ok bool) {
	const prefix = "//lint:allow "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 { // rule plus at least one word of reason
		return "", false
	}
	return fields[0], true
}

// filterSuppressed drops diagnostics covered by an allow directive.
func filterSuppressed(pass *Pass, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	allowed := collectSuppressions(pass)
	kept := diags[:0]
	for _, d := range diags {
		pos := pass.Fset.Position(d.Pos)
		if allowed[suppression{pos.Filename, pos.Line, d.Rule}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// isTestFile reports whether the file a node belongs to is a _test.go
// file. Several analyzers relax their rules inside tests.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(posFile(fset, pos), "_test.go")
}
