package analysis

import (
	"bytes"
	"encoding/json"
	"io"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureDiags runs the given analyzers over a fixture package and
// returns the pass and surviving diagnostics.
func fixtureDiags(t *testing.T, pkgPath string, analyzers []*Analyzer) (*Pass, []Diagnostic) {
	t.Helper()
	pass, err := newFixtureLoader().load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	return pass, RunSuite(pass, analyzers)
}

var posnRE = regexp.MustCompile(`\.go:\d+:\d+$`)

func TestWriteJSONShape(t *testing.T) {
	pass, diags := fixtureDiags(t, "dragster/internal/simclockbad", []*Analyzer{SimclockAnalyzer()})
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, "dragster/internal/simclockbad", pass.Fset, diags); err != nil {
		t.Fatal(err)
	}
	// x/tools vet-json shape: {"<pkg>": {"<rule>": [{posn, message}]}}.
	var decoded map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	byRule, ok := decoded["dragster/internal/simclockbad"]
	if !ok || len(decoded) != 1 {
		t.Fatalf("top-level keys = %v, want exactly the package ID", keysOf(decoded))
	}
	n := 0
	for rule, ds := range byRule {
		if rule == "" {
			t.Error("empty rule key")
		}
		for _, d := range ds {
			n++
			if !posnRE.MatchString(d.Posn) {
				t.Errorf("posn %q does not end in file.go:line:col", d.Posn)
			}
			if d.Message == "" {
				t.Error("empty message")
			}
		}
	}
	if n != len(diags) {
		t.Errorf("JSON carries %d findings, run produced %d", n, len(diags))
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// validateSARIF structurally checks a SARIF 2.1.0 document decoded from
// raw JSON: the schema/version pair, tool identity, rule references, and
// physical locations — the subset CI annotation consumes.
func validateSARIF(t *testing.T, raw []byte) (results int) {
	t.Helper()
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v\n%s", err, raw)
	}
	if doc.Schema != sarifSchemaURI {
		t.Errorf("$schema = %q, want %q", doc.Schema, sarifSchemaURI)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "dragsterlint" {
		t.Errorf("driver name = %q, want dragsterlint", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
		if ruleIDs[r.ID] {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q not declared in driver rules", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level = %q, want error", res.Level)
		}
		if res.Message.Text == "" {
			t.Error("result with empty message")
		}
		if len(res.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("artifact uri %q must be non-empty and slash-separated", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("startLine %d < 1", loc.Region.StartLine)
		}
	}
	return len(run.Results)
}

func TestWriteSARIFValidates(t *testing.T) {
	pass, diags := fixtureDiags(t, "dragster/internal/simclockbad", []*Analyzer{SimclockAnalyzer()})
	var buf bytes.Buffer
	if err := writeSARIF(&buf, All(), pass.Fset, diags); err != nil {
		t.Fatal(err)
	}
	if got := validateSARIF(t, buf.Bytes()); got != len(diags) {
		t.Errorf("SARIF carries %d results, run produced %d", got, len(diags))
	}
	// URIs must be module-root-relative (CI maps them onto the checkout),
	// even though this test — like `go vet` — runs from a subdirectory.
	if !strings.Contains(buf.String(), `"uri": "internal/analysis/testdata/`) {
		t.Errorf("SARIF artifact URIs are not repo-relative:\n%s", buf.String())
	}
}

// TestMergeSARIF concatenates two per-package documents — the way `go
// vet` concatenates per-package stdout — and checks the merge is one
// valid document with deduplicated rules and all results.
func TestMergeSARIF(t *testing.T) {
	passA, diagsA := fixtureDiags(t, "dragster/internal/simclockbad", []*Analyzer{SimclockAnalyzer()})
	passB, diagsB := fixtureDiags(t, "dragster/internal/detrandbad", []*Analyzer{DetrandAnalyzer()})
	if len(diagsA) == 0 || len(diagsB) == 0 {
		t.Fatalf("fixtures produced %d and %d diagnostics; both must fire", len(diagsA), len(diagsB))
	}

	// Interleave the `# <package>` comment lines cmd/go prints around each
	// package's tool output: the merge must skip them.
	var stream bytes.Buffer
	stream.WriteString("# dragster/internal/simclockbad\n")
	if err := writeSARIF(&stream, All(), passA.Fset, diagsA); err != nil {
		t.Fatal(err)
	}
	stream.WriteString("# dragster/internal/detrandbad\n# [dragster/internal/detrandbad]\n")
	if err := writeSARIF(&stream, All(), passB.Fset, diagsB); err != nil {
		t.Fatal(err)
	}

	var merged bytes.Buffer
	if err := MergeSARIF(&stream, &merged); err != nil {
		t.Fatal(err)
	}
	// Exactly one document comes out.
	dec := json.NewDecoder(bytes.NewReader(merged.Bytes()))
	var first json.RawMessage
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		t.Fatalf("merged output holds more than one document (err %v)", err)
	}
	if got := validateSARIF(t, merged.Bytes()); got != len(diagsA)+len(diagsB) {
		t.Errorf("merged results = %d, want %d", got, len(diagsA)+len(diagsB))
	}
}

func TestMergeSARIFRejectsWrongVersion(t *testing.T) {
	in := strings.NewReader(`{"$schema":"x","version":"2.0.0","runs":[]}`)
	if err := MergeSARIF(in, io.Discard); err == nil {
		t.Fatal("MergeSARIF accepted a non-2.1.0 document")
	}
}
