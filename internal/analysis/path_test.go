package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// Pass.Path() must strip the " [pkg.test]" suffix cmd/go appends to
// test-variant compilations: allowlists and the module gate are keyed by
// real import paths, and `go vet` type-checks every package twice (plain
// and test variant) when _test.go files exist. A regression here makes
// every allowlisted package light up — but only under `go vet ./...`,
// never in unit tests — so this is pinned explicitly.

const pathVariantSrc = `package p

import "time"

func F() time.Time { return time.Now() }
`

// checkVariant type-checks the probe source under the given package path
// (which may carry a test-variant suffix) and returns its Pass.
func checkVariant(t *testing.T, pkgPath string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", pathVariantSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := newTypesInfo()
	pkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func TestPathStripsTestVariant(t *testing.T) {
	cases := []struct{ in, want string }{
		{"dragster/internal/streamsim", "dragster/internal/streamsim"},
		{"dragster/internal/streamsim [dragster/internal/streamsim.test]", "dragster/internal/streamsim"},
		{"dragster/internal/daemon [dragster/internal/daemon.test]", "dragster/internal/daemon"},
	}
	for _, c := range cases {
		pass := checkVariant(t, c.in)
		if got := pass.Path(); got != c.want {
			t.Errorf("Path() for %q = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestTestVariantBehavesLikePlainPackage runs the suite over the same
// source type-checked as "pkg" and as "pkg [pkg.test]" and requires
// identical diagnostics — both for a flagged package and for an
// allowlisted one.
func TestTestVariantBehavesLikePlainPackage(t *testing.T) {
	run := func(pkgPath string) []Diagnostic {
		return RunSuite(checkVariant(t, pkgPath), []*Analyzer{SimclockAnalyzer()})
	}

	plain := run("dragster/internal/streamsim")
	variant := run("dragster/internal/streamsim [dragster/internal/streamsim.test]")
	if len(plain) != 1 {
		t.Fatalf("plain streamsim path: got %d diagnostics, want 1 (time.Now)", len(plain))
	}
	if len(variant) != len(plain) || variant[0].Rule != plain[0].Rule || variant[0].Message != plain[0].Message {
		t.Errorf("test variant diverged from plain package:\nplain:   %+v\nvariant: %+v", plain, variant)
	}

	if diags := run("dragster/internal/daemon"); len(diags) != 0 {
		t.Errorf("allowlisted daemon package flagged: %v", diags)
	}
	if diags := run("dragster/internal/daemon [dragster/internal/daemon.test]"); len(diags) != 0 {
		t.Errorf("allowlisted daemon test variant flagged: %v", diags)
	}
	if diags := run("github.com/other/mod"); len(diags) != 0 {
		t.Errorf("foreign module flagged: %v", diags)
	}
}
