package analysis

import (
	"go/ast"
	"testing"
)

func TestHotpathFixture(t *testing.T) {
	runFixture(t, "dragster/internal/hotpathbad", HotpathAnalyzer())
}

// TestHotpathSeededName verifies the seeded list fires without an
// annotation: the fixture's Engine.Tick is injected as a seed for the
// duration of the test, while Engine.Other stays exempt.
func TestHotpathSeededName(t *testing.T) {
	const seed = "dragster/internal/hotpathseed.(*Engine).Tick"
	hotpathSeeds[seed] = true
	defer delete(hotpathSeeds, seed)
	runFixture(t, "dragster/internal/hotpathseed", HotpathAnalyzer())
}

// TestHotpathSeedsResolve pins the real seeded names to the functions
// they must match: a renamed Tick loop or posterior query must not
// silently drop out of the hot set.
func TestHotpathSeedsResolve(t *testing.T) {
	// The seeds live in packages outside this one; resolving them against
	// the build would drag the whole module into this test. Instead pin
	// the naming convention: every seed must parse as pkg.(recv).method
	// or pkg.func under the module path.
	for seed := range hotpathSeeds {
		if len(seed) <= len(ModulePath) || seed[:len(ModulePath)] != ModulePath {
			t.Errorf("seed %q is not under the module path", seed)
		}
	}
	if len(hotpathSeeds) < 8 {
		t.Errorf("seeded hot-path list shrank to %d entries; the tick loop, GP posterior, "+
			"UCB select, and cluster metrics paths must stay seeded", len(hotpathSeeds))
	}
}

func TestFuncFullName(t *testing.T) {
	// Exercised end-to-end by the fixtures; here pin the receiver forms
	// via the fixture ASTs.
	loader := newFixtureLoader()
	pass, err := loader.load("dragster/internal/hotpathseed")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"dragster/internal/hotpathseed.(*Engine).Tick":  true,
		"dragster/internal/hotpathseed.(*Engine).Other": true,
	}
	got := map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				got[funcFullName(pass, fd)] = true
			}
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("funcFullName never produced %q (got %v)", name, got)
		}
	}
}
