package analysis

import (
	"fmt"
	"go/ast"
)

// chaoshookMethods maps substrate package → the fault entry points that
// only the chaos engine may invoke. RemoveNode/KillPod mutate the k8s
// model outside the scheduler's control, and the three Set* installers
// rebind the injection hooks; a stray call from controller or experiment
// code would fork the fault model away from the seeded, traced engine and
// break deterministic replay.
var chaoshookMethods = map[string]map[string]bool{
	ModulePath + "/internal/cluster": {
		"RemoveNode":  true,
		"KillPod":     true,
		"SetInjector": true,
	},
	ModulePath + "/internal/flink": {
		"SetChaosHooks": true,
	},
	ModulePath + "/internal/monitor": {
		"SetInterceptor": true,
	},
}

// chaoshookAllowed lists the packages that own the fault model. Each
// substrate package may also call its own entry points.
var chaoshookAllowed = []string{
	ModulePath + "/internal/chaos",
}

// ChaoshookAnalyzer forbids direct use of the substrate fault entry
// points outside internal/chaos (and the defining packages themselves).
func ChaoshookAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "chaoshook",
		Doc: "forbid direct calls to substrate fault entry points (cluster " +
			"RemoveNode/KillPod/SetInjector, flink SetChaosHooks, monitor " +
			"SetInterceptor) outside internal/chaos; faults must flow through the " +
			"seeded chaos engine so every injected failure is traced and replayable",
		Run: runChaoshook,
	}
}

func runChaoshook(pass *Pass) []Diagnostic {
	if !inModule(pass) || chaoshookPkgAllowed(pass.Path()) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if !chaoshookMethods[path][fn.Name()] || path == pass.Path() {
				return true
			}
			// Tests exercise the primitives directly on purpose.
			if isTestFile(pass.Fset, call.Pos()) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  call.Pos(),
				Rule: "chaoshook",
				Message: fmt.Sprintf("%s.%s is a fault entry point reserved for the chaos "+
					"engine; inject the fault through a chaos.Spec instead (allowed only "+
					"under %v)", path, fn.Name(), chaoshookAllowed),
			})
			return true
		})
	}
	return diags
}

func chaoshookPkgAllowed(path string) bool {
	for _, p := range chaoshookAllowed {
		if path == p || hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}
