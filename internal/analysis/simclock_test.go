package analysis

import "testing"

func TestSimclockFlagsWallClock(t *testing.T) {
	runFixture(t, "dragster/internal/simclockbad", SimclockAnalyzer())
}

func TestSimclockAllowsDaemon(t *testing.T) {
	expectClean(t, "dragster/internal/daemon", SimclockAnalyzer())
}

func TestSimclockAllowsCmd(t *testing.T) {
	expectClean(t, "dragster/cmd/faketool", SimclockAnalyzer())
}

func TestSimclockPkgAllowlist(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"dragster/internal/daemon", true},
		{"dragster/internal/daemon/sub", true},
		{"dragster/internal/telemetry", true},
		{"dragster/cmd/dragsterd", true},
		{"dragster/examples/yahoo", true},
		{"dragster/internal/daemonx", false}, // prefix must stop at a path boundary
		{"dragster/internal/experiment", false},
		{"dragster/internal/streamsim", false},
	}
	for _, c := range cases {
		if got := simclockPkgAllowed(c.path); got != c.want {
			t.Errorf("simclockPkgAllowed(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
