package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockorderAnalyzer builds a per-package lock-acquisition graph from
// sync.Mutex / sync.RWMutex call sites and diagnoses inconsistent
// pairwise ordering: if one function acquires A then B while another
// acquires B then A, the two interleaved can deadlock. Ahead of the
// multi-shard arbiter refactor this pins a single global order per
// package before cross-shard locking exists.
//
// Locks are identified structurally: `x.mu.Lock()` keys on the named
// type of x plus the field name ("Cluster.mu"), an embedded
// `x.Lock()` keys on the named type of x, and a plain `mu.Lock()` keys
// on the variable's qualified name. The analysis is intraprocedural and
// lexical — a lock passed through a call boundary is out of scope (and
// out of idiom for this repo, where every mutex guards one struct).
func LockorderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc: "diagnose inconsistent pairwise mutex acquisition order within a " +
			"package (A held while taking B in one function, B held while " +
			"taking A in another): pick one global lock order",
		Run: runLockorder,
	}
}

// lockEdge records "from held while acquiring to" at pos.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string
}

func runLockorder(pass *Pass) []Diagnostic {
	if !inModule(pass) {
		return nil
	}
	var edges []lockEdge
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			edges = append(edges, lockEdgesIn(pass, fd)...)
		}
	}
	if len(edges) == 0 {
		return nil
	}
	// Index ordered pairs, then report every edge whose reverse also
	// exists. Both directions are reported so each function involved in
	// the inversion gets a diagnostic at its own acquisition site.
	first := make(map[[2]string]lockEdge)
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if prev, ok := first[k]; !ok || e.pos < prev.pos {
			first[k] = e
		}
	}
	var diags []Diagnostic
	seen := make(map[[2]string]bool)
	for _, e := range edges {
		rev, ok := first[[2]string{e.to, e.from}]
		if !ok {
			continue
		}
		k := [2]string{e.from, e.to}
		if seen[k] {
			continue
		}
		seen[k] = true
		diags = append(diags, Diagnostic{
			Pos:  e.pos,
			Rule: "lockorder",
			Message: fmt.Sprintf("%s acquired while holding %s in %s, but %s reverses the "+
				"order at %s; pick one global lock order",
				e.to, e.from, e.fn, rev.fn, pass.Fset.Position(rev.pos)),
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// lockEdgesIn walks one function body in lexical order, tracking held
// locks and recording an edge for every acquisition made while another
// lock is held. Deferred unlocks hold to function end (their window is
// exactly what matters for ordering); block-structured Lock/Unlock pairs
// release in place. Closures are walked as their own lexical context —
// they run at an unknown time, so locks held at the go/assignment site
// are not assumed held inside.
func lockEdgesIn(pass *Pass, fd *ast.FuncDecl) []lockEdge {
	return lockEdgesInBlock(pass, fd.Body, fd.Name.Name)
}

func lockEdgesInBlock(pass *Pass, body *ast.BlockStmt, fn string) []lockEdge {
	var edges []lockEdge
	var held []string
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			edges = append(edges, lockEdgesInBlock(pass, n.Body, fn)...)
			return false
		case *ast.CallExpr:
			key, op, ok := lockOp(pass, n)
			if !ok {
				return true
			}
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h != key {
						edges = append(edges, lockEdge{from: h, to: key, pos: n.Pos(), fn: fn})
					}
				}
				held = append(held, key)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
	return edges
}

// lockOp matches a call to (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex and returns the lock's structural key.
func lockOp(pass *Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return lockKey(pass, sel.X), op, true
}

// lockKey names the mutex operand: Owner.field for a struct-held mutex,
// the named type for an embedded one, the qualified variable name for a
// package-level or local mutex, and a source-ish fallback otherwise.
func lockKey(pass *Pass, operand ast.Expr) string {
	switch x := ast.Unparen(operand).(type) {
	case *ast.SelectorExpr:
		// c.mu → type-of(c).fieldname; drop pointers.
		if owner := namedTypeName(pass.Info.TypeOf(x.X)); owner != "" {
			return owner + "." + x.Sel.Name
		}
		return exprString(x)
	case *ast.Ident:
		// Embedded mutex (x.Lock() with x a struct) keys on the type;
		// a bare mutex variable keys on its name.
		if t := pass.Info.TypeOf(x); t != nil {
			if name := namedTypeName(t); name != "" && !isMutexType(t) {
				return name
			}
		}
		return x.Name
	default:
		return exprString(operand)
	}
}

// namedTypeName returns the name of t's named type, through pointers.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
