package analysis

import "testing"

func TestGoroutineFixture(t *testing.T) {
	runFixture(t, "dragster/internal/goroutinebad", GoroutineAnalyzer())
}
