package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` unit-checker protocol with
// the standard library only, mirroring the contract of
// golang.org/x/tools/go/analysis/unitchecker:
//
//   1. cmd/go invokes the tool once with -V=full; the tool prints a line
//      ending in "buildID=<hash>" that fingerprints its executable so vet
//      results can be cached.
//   2. For every package in the build graph, cmd/go writes a JSON config
//      (*.cfg) describing the package's files and the export data of its
//      dependencies, and invokes the tool with the config path as the last
//      argument.
//   3. The tool type-checks the package against that export data, runs its
//      analyzers, writes the (empty — we use no cross-package facts) facts
//      file at VetxOutput, prints diagnostics to stderr, and exits
//      non-zero if there were any.

// vetConfig is the JSON schema cmd/go writes for each package. Field names
// match cmd/go/internal/work's vetConfig struct; unknown fields are
// ignored for forward compatibility.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/dragsterlint. It dispatches between the
// -V=full handshake, the -merge-sarif aggregation mode, and per-package
// analysis, and returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	var cfgFile, mergeFile string
	var names []string
	var emitJSON, emitSARIF, merge bool
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion(stdout, stderr)
		case arg == "-flags":
			// cmd/go probes supported flags in JSON and re-exposes them on
			// the `go vet` command line; advertising -check here is what
			// makes `go vet -vettool=... -check=simclock ./...` work, and
			// likewise -json / -sarif for machine-readable output.
			fmt.Fprintln(stdout, `[{"Name":"check","Bool":false,"Usage":"comma-separated list of analyzers to run (default: all)"},`+
				`{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON on stdout (exit 0)"},`+
				`{"Name":"sarif","Bool":true,"Usage":"emit diagnostics as one SARIF 2.1.0 document per package on stdout (exit 0)"}]`)
			return 0
		case arg == "-json" || arg == "-json=true":
			emitJSON = true
		case arg == "-sarif" || arg == "-sarif=true":
			emitSARIF = true
		case arg == "-json=false" || arg == "-sarif=false":
			// explicit defaults
		case arg == "-merge-sarif":
			merge = true
		case strings.HasPrefix(arg, "-merge-sarif="):
			merge = true
			mergeFile = strings.TrimPrefix(arg, "-merge-sarif=")
		case strings.HasPrefix(arg, "-check="):
			for _, n := range strings.Split(strings.TrimPrefix(arg, "-check="), ",") {
				if n != "" {
					names = append(names, n)
				}
			}
		case strings.HasPrefix(arg, "-"):
			// Ignore pass-through vet flags we don't implement.
		default:
			if merge && mergeFile == "" {
				mergeFile = arg
			} else {
				cfgFile = arg
			}
		}
	}
	if merge {
		return runMergeSARIF(mergeFile, stdout, stderr)
	}
	if emitJSON && emitSARIF {
		fmt.Fprintln(stderr, "dragsterlint: -json and -sarif are mutually exclusive")
		return 2
	}
	if cfgFile == "" {
		fmt.Fprintln(stderr, "dragsterlint: no *.cfg file argument; run via `go vet -vettool=$(which dragsterlint) ./...` or `make lint`")
		return 2
	}
	analyzers, err := ByName(names)
	if err != nil {
		fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
		return 2
	}
	diags, fset, cfg, err := runUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
		return 1
	}
	switch {
	case emitJSON:
		if cfg == nil {
			return 0 // dependency-only or foreign package: nothing to report
		}
		if err := writeJSON(stdout, cfg.ID, fset, diags); err != nil {
			fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
			return 1
		}
		return 0
	case emitSARIF:
		if cfg == nil {
			return 0
		}
		if err := writeSARIF(stdout, analyzers, fset, diags); err != nil {
			fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
			return 1
		}
		return 0
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Rule, d.Message)
	}
	return 2
}

// runMergeSARIF implements `dragsterlint -merge-sarif [stream-file]`:
// stdin (or the file) holds concatenated per-package SARIF documents;
// stdout gets one merged document.
func runMergeSARIF(path string, stdout, stderr io.Writer) int {
	in := io.Reader(os.Stdin)
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	if err := MergeSARIF(in, stdout); err != nil {
		fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake: the final field must be a
// content fingerprint of the executable, so that rebuilding the tool
// invalidates cmd/go's vet cache.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "dragsterlint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "dragsterlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
	return 0
}

// runUnit analyzes the single package described by the config file. The
// returned config is nil when the invocation was dependency-only or the
// package lies outside this module.
func runUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, *vetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// Facts file first: cmd/go expects it to exist even when we have
	// nothing to say (we exchange no cross-package facts).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, nil, nil, err
		}
	}
	// Dependency-only invocation, or a package outside this module (the
	// standard library is full of time.Now): nothing to analyze.
	path := cfg.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i] // "pkg [pkg.test]" test variants
	}
	if cfg.VetxOnly || (path != ModulePath && !hasPathPrefix(path, ModulePath)) {
		return nil, nil, nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, nil, nil
			}
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, nil, nil
		}
		return nil, nil, nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
	return RunSuite(pass, analyzers), fset, &cfg, nil
}

// typeCheck type-checks the package against the export data of its
// compiled dependencies, exactly as the compiler saw them.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is already canonical (post-ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:     func(error) {}, // collect via the returned error; keep going
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// newTypesInfo allocates the fact tables the analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
