package analysis

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		rule string
		ok   bool
	}{
		{"//lint:allow simclock startup banner needs real time", "simclock", true},
		{"//lint:allow errflow best-effort metrics push", "errflow", true},
		{"//lint:allow detrand", "", false},            // reason is mandatory
		{"//lint:allow  detrand why", "detrand", true}, // extra spaces tolerated
		{"// lint:allow simclock reason", "", false},   // space before lint: not a directive
		{"//nolint:simclock", "", false},
		{"// regular comment", "", false},
	}
	for _, c := range cases {
		rule, ok := parseAllow(c.text)
		if ok != c.ok || (ok && rule != c.rule) {
			t.Errorf("parseAllow(%q) = (%q, %v), want (%q, %v)", c.text, rule, ok, c.rule, c.ok)
		}
	}
}
