package analysis

import (
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text        string
		rule        string
		hasReason   bool
		isDirective bool
	}{
		{"//lint:allow simclock startup banner needs real time", "simclock", true, true},
		{"//lint:allow errflow best-effort metrics push", "errflow", true, true},
		{"//lint:allow detrand", "detrand", false, true}, // directive, but reasonless
		{"//lint:allow", "", false, true},                // degenerate directive
		{"//lint:allow  detrand why", "detrand", true, true},
		{"// lint:allow simclock reason", "", false, false}, // space before lint: not a directive
		{"//lint:allowother x y", "", false, false},
		{"//nolint:simclock", "", false, false},
		{"// regular comment", "", false, false},
	}
	for _, c := range cases {
		rule, hasReason, isDirective := parseAllow(c.text)
		if isDirective != c.isDirective || hasReason != c.hasReason || (isDirective && rule != c.rule) {
			t.Errorf("parseAllow(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.text, rule, hasReason, isDirective, c.rule, c.hasReason, c.isDirective)
		}
	}
}

// TestSuppressHygiene runs the simclock analyzer over the suppressbad
// fixture: used waivers are silent, stale waivers and reasonless waivers
// are diagnosed, and waivers for rules outside the run are left alone.
func TestSuppressHygiene(t *testing.T) {
	runFixture(t, "dragster/internal/suppressbad", SimclockAnalyzer())
}

// TestStaleRequiresActiveAnalyzer verifies the errflow waiver in the
// fixture IS condemned as stale once errflow joins the run.
func TestStaleRequiresActiveAnalyzer(t *testing.T) {
	loader := newFixtureLoader()
	pass, err := loader.load("dragster/internal/suppressbad")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunSuite(pass, []*Analyzer{SimclockAnalyzer(), ErrflowAnalyzer()})
	found := false
	for _, d := range diags {
		if d.Rule == "suppress" && strings.Contains(d.Message, "stale //lint:allow errflow") {
			found = true
		}
	}
	if !found {
		t.Errorf("errflow active but its unused waiver not reported stale; got %v", diags)
	}
}
