package analysis

import (
	"fmt"
	"go/ast"
)

// detrandSourcePkgs are the randomness packages whose process-global
// generators are forbidden. math/rand's top-level functions share a
// runtime-seeded global Rand; math/rand/v2 has no Seed at all, so its
// top-level functions can never be made reproducible.
var detrandSourcePkgs = []string{"math/rand", "math/rand/v2"}

// DetrandAnalyzer forbids nondeterministic randomness: top-level math/rand
// calls and rand.New with anything but an inline rand.NewSource(seed).
// Stochastic components must draw from internal/stats.RNG (or a *rand.Rand
// derived from an explicit seed), which is what makes every experiment
// replayable from its seed.
func DetrandAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "detrand",
		Doc: "forbid top-level math/rand functions and unseeded rand.New; all " +
			"randomness must flow through internal/stats.RNG or an explicit " +
			"rand.New(rand.NewSource(seed))",
		Run: runDetrand,
	}
}

func runDetrand(pass *Pass) []Diagnostic {
	if !inModule(pass) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, pkg := range detrandSourcePkgs {
				name, ok := pkgFunc(pass.Info, call, pkg)
				if !ok {
					continue
				}
				switch name {
				case "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
					// Source constructors take explicit seeds; fine anywhere.
					return true
				case "New":
					if seededSource(pass, call, pkg) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:  call.Pos(),
						Rule: "detrand",
						Message: "rand.New with an opaque source; construct the source inline " +
							"as rand.New(rand.NewSource(seed)) or use internal/stats.RNG so " +
							"the seed provenance is auditable",
					})
					return true
				default:
					diags = append(diags, Diagnostic{
						Pos:  call.Pos(),
						Rule: "detrand",
						Message: fmt.Sprintf("rand.%s uses the process-global generator and breaks "+
							"run-to-run reproducibility; draw from internal/stats.RNG (seeded) instead", name),
					})
					return true
				}
			}
			return true
		})
	}
	return diags
}

// seededSource reports whether the sole argument of rand.New is an inline
// seeded source constructor from the same rand package.
func seededSource(pass *Pass, call *ast.CallExpr, pkg string) bool {
	if len(call.Args) == 0 {
		return false
	}
	argCall, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := pkgFunc(pass.Info, argCall, pkg)
	if !ok {
		return false
	}
	switch name {
	case "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
