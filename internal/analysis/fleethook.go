package analysis

import (
	"fmt"
	"go/ast"
)

// fleethookMethods maps package → the budget re-partitioning entry
// points that only the fleet arbiter may invoke. SetTaskBudget edits a
// controller's share of the shared cluster budget; an uncoordinated call
// from experiment or policy code would break the fleet-wide invariant
// Σ_jobs Σ_ops tasks ≤ B that the arbiter maintains by construction.
var fleethookMethods = map[string]map[string]bool{
	ModulePath + "/internal/core": {
		"SetTaskBudget": true,
	},
}

// fleethookAllowed lists the packages that own budget arbitration. The
// defining package may also call its own entry points.
var fleethookAllowed = []string{
	ModulePath + "/internal/fleet",
}

// FleethookAnalyzer forbids direct use of the controller budget
// re-partitioning entry points outside internal/fleet (and the defining
// packages themselves).
func FleethookAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "fleethook",
		Doc: "forbid direct calls to core.Controller.SetTaskBudget outside " +
			"internal/fleet; per-job budget shares must be assigned by the fleet " +
			"arbiter so the fleet-wide Σ-tasks budget invariant holds at every round",
		Run: runFleethook,
	}
}

func runFleethook(pass *Pass) []Diagnostic {
	if !inModule(pass) || fleethookPkgAllowed(pass.Path()) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if !fleethookMethods[path][fn.Name()] || path == pass.Path() {
				return true
			}
			// Tests exercise the primitive directly on purpose.
			if isTestFile(pass.Fset, call.Pos()) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  call.Pos(),
				Rule: "fleethook",
				Message: fmt.Sprintf("%s.%s re-partitions a shared budget and is reserved "+
					"for the fleet arbiter; set the share through fleet arbitration instead "+
					"(allowed only under %v)", path, fn.Name(), fleethookAllowed),
			})
			return true
		})
	}
	return diags
}

func fleethookPkgAllowed(path string) bool {
	for _, p := range fleethookAllowed {
		if path == p || hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}
