package analysis

import (
	"fmt"
	"go/ast"
)

// simclockAllowed lists the wall-clock packages: everything under these
// prefixes may talk to the real clock. The rest of the module must take
// the simulation clock (slot indices / streamsim ticks) instead, because a
// single time.Now() in a measurement path makes runs non-repeatable.
var simclockAllowed = []string{
	ModulePath + "/internal/daemon",    // bridges sim slots to wall time by design
	ModulePath + "/internal/telemetry", // stamps reports for external consumers
	ModulePath + "/cmd",                // binaries own their own runtime concerns
	ModulePath + "/examples",           // runnable demos, not measurement code
}

// simclockForbidden are the time functions that read or wait on the wall
// clock. Pure-value helpers (time.Duration arithmetic, time.Unix, ...)
// stay legal everywhere.
var simclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// SimclockAnalyzer forbids wall-clock time access outside the allowlist.
func SimclockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "simclock",
		Doc: "forbid time.Now/Sleep/After and friends outside wall-clock packages " +
			"(internal/daemon, internal/telemetry, cmd/, examples/); simulation code " +
			"must take the simulated clock so seeded runs replay bit-for-bit",
		Run: runSimclock,
	}
}

func runSimclock(pass *Pass) []Diagnostic {
	if !inModule(pass) || simclockPkgAllowed(pass.Path()) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pkgFunc(pass.Info, call, "time")
			if !ok || !simclockForbidden[name] {
				return true
			}
			// Tests may time out / poll with the real clock.
			if isTestFile(pass.Fset, call.Pos()) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  call.Pos(),
				Rule: "simclock",
				Message: fmt.Sprintf("time.%s reads the wall clock in simulation package %s; "+
					"plumb the simulated clock instead (allowed only under %v)",
					name, pass.Path(), simclockAllowed),
			})
			return true
		})
	}
	return diags
}

func simclockPkgAllowed(path string) bool {
	for _, p := range simclockAllowed {
		if path == p || hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}
