package analysis

import (
	"go/parser"
	"testing"
)

func TestMaporderFixture(t *testing.T) {
	runFixture(t, "dragster/internal/maporderbad", MaporderAnalyzer())
}

// rootIdent drives the collect-then-sort exemption: the appended slice
// and the sorted slice are matched by base identifier.
func TestRootIdent(t *testing.T) {
	cases := map[string]string{
		"out":             "out",
		"out.Paths[name]": "out",
		"(*p).xs":         "p",
		"m[k].field":      "m",
		"f().xs":          "", // calls have no stable root
		"3 + 4":           "",
	}
	for src, want := range cases {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if got := rootIdent(e); got != want {
			t.Errorf("rootIdent(%q) = %q, want %q", src, got, want)
		}
	}
}
