package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("Main(-V=full) = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "dragsterlint version ") || !strings.Contains(got, "buildID=") {
		t.Errorf("handshake line = %q, want name/version/buildID shape", got)
	}
}

func TestMainRequiresConfig(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main(nil, &out, &errb); code != 2 {
		t.Errorf("Main() = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "cfg") {
		t.Errorf("stderr = %q, want usage hint", errb.String())
	}
}

func TestMainRejectsUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-check=nosuch", "x.cfg"}, &out, &errb); code != 2 {
		t.Errorf("Main(-check=nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", errb.String())
	}
}

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(nil) = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	two, err := ByName([]string{"errflow", "simclock"})
	if err != nil || len(two) != 2 || two[0].Name != "errflow" || two[1].Name != "simclock" {
		t.Fatalf("ByName(errflow, simclock) = %v, %v", two, err)
	}
	if _, err := ByName([]string{"bogus"}); err == nil {
		t.Fatal("ByName(bogus) succeeded, want error")
	}
}

func TestMainRejectsJSONPlusSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-json", "-sarif", "x.cfg"}, &out, &errb); code != 2 {
		t.Errorf("Main(-json -sarif) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr = %q, want mutual-exclusion error", errb.String())
	}
}

func TestMainFlagsAdvertisesMachineOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("Main(-flags) = %d, stderr: %s", code, errb.String())
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out.String())
	}
	want := map[string]bool{"check": false, "json": false, "sarif": false}
	for _, f := range flags {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("-flags does not advertise %q", name)
		}
	}
}

// TestMainMergeSARIFFromFile drives the -merge-sarif mode end to end:
// two concatenated per-package documents in a file become one merged
// document on stdout.
func TestMainMergeSARIFFromFile(t *testing.T) {
	pass, err := newFixtureLoader().load("dragster/internal/simclockbad")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunSuite(pass, []*Analyzer{SimclockAnalyzer()})
	var stream bytes.Buffer
	for i := 0; i < 2; i++ {
		if err := writeSARIF(&stream, All(), pass.Fset, diags); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "lint.stream")
	if err := os.WriteFile(path, stream.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := Main([]string{"-merge-sarif", path}, &out, &errb); code != 0 {
		t.Fatalf("Main(-merge-sarif) = %d, stderr: %s", code, errb.String())
	}
	if got, want := validateSARIF(t, out.Bytes()), 2*len(diags); got != want {
		t.Errorf("merged results = %d, want %d", got, want)
	}
}

// writeCfg drops a minimal vet config into dir and returns its path.
func writeCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUnitSkipsVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeCfg(t, dir, vetConfig{
		ImportPath: "dragster/internal/whatever",
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	diags, _, _, err := runUnit(cfg, All())
	if err != nil || len(diags) != 0 {
		t.Fatalf("runUnit(vetxOnly) = %v diags, err %v", diags, err)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestRunUnitSkipsForeignModules(t *testing.T) {
	dir := t.TempDir()
	cfg := writeCfg(t, dir, vetConfig{
		ImportPath: "time", // standard library: full of time.Now, must be skipped
		GoFiles:    []string{"does-not-exist.go"},
	})
	diags, _, _, err := runUnit(cfg, All())
	if err != nil || len(diags) != 0 {
		t.Fatalf("runUnit(stdlib pkg) = %v diags, err %v (must skip before parsing)", diags, err)
	}
}

// TestVettoolIntegration builds cmd/dragsterlint and runs it the way the
// Makefile does — through `go vet -vettool` — asserting the repo itself
// is violation-free end to end. This exercises the real -V=full
// handshake, cfg parsing, and export-data type-checking paths.
func TestVettoolIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go-vet integration run")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	tool := filepath.Join(t.TempDir(), "dragsterlint")
	build := exec.Command(goTool, "build", "-o", tool, "dragster/cmd/dragsterlint")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dragsterlint: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = repoRoot(t)
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
