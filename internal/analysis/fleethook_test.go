package analysis

import "testing"

func TestFleethookFixture(t *testing.T) {
	runFixture(t, "dragster/internal/fleethookbad", FleethookAnalyzer())
}

// TestFleethookAllowsFleetPackage runs the analyzer over the fixture
// fleet package, which assigns a budget share: as the owner of budget
// arbitration it must produce zero findings.
func TestFleethookAllowsFleetPackage(t *testing.T) {
	runFixture(t, "dragster/internal/fleet", FleethookAnalyzer())
}

// TestFleethookAllowsFleetSubpackages: the sharded control plane splits
// internal/fleet into subpackages (event, shard); the allowlist is a
// path prefix, so they inherit the fleet's arbitration ownership.
func TestFleethookAllowsFleetSubpackages(t *testing.T) {
	runFixture(t, "dragster/internal/fleet/shard", FleethookAnalyzer())
}
