// Command faketool stands in for a binary under dragster/cmd/: the whole
// cmd/ tree is allowlisted for wall-clock use.
package main

import "time"

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Since(start)
}
