// Package core stands in for dragster/internal/core in fleethook
// fixtures.
package core

import "errors"

type Controller struct{}

func (c *Controller) SetTaskBudget(budget int) error {
	if budget < 0 {
		return errors.New("negative budget")
	}
	return nil
}

func (c *Controller) TaskBudget() int { return 0 }
