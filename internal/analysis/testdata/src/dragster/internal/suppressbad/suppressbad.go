// Package suppressbad exercises suppression hygiene: a reasoned waiver
// that suppresses a real diagnostic is silent, a reasoned waiver that
// suppresses nothing is stale, and a reasonless waiver is diagnosed and
// waives nothing.
package suppressbad

import "time"

// Used carries a reasoned, matching waiver: nothing fires.
func Used() time.Time {
	//lint:allow simclock fixture exercises the used waiver
	return time.Now()
}

// Stale waives a rule that produces nothing on the covered lines.
func Stale() int {
	//lint:allow simclock nothing below reads the clock // want `stale //lint:allow simclock`
	return 1
}

// WrongRule waives a rule that is not part of the run: with only
// simclock active, the errflow waiver is left untested, not condemned.
func WrongRule() int {
	//lint:allow errflow this rule is not in the simclock-only run
	return 2
}

// NoReason is diagnosed and does not suppress the finding below it.
func NoReason() time.Time {
	//lint:allow simclock // want `//lint:allow without a reason suppresses nothing`
	return time.Now() // want `time\.Now reads the wall clock`
}
