// Package goroutinebad exercises the goroutine analyzer: unsupervised
// launches are flagged; WaitGroup-joined, channel-signalling,
// WaitGroup-passing, and //lint:workerpool launches are not.
package goroutinebad

import "sync"

// FireAndForget drops a goroutine on the floor.
func FireAndForget(f func()) {
	go f() // want `unsupervised goroutine in FireAndForget`
}

// LiteralNoJoin launches a literal with no lifecycle.
func LiteralNoJoin() {
	go func() { // want `unsupervised goroutine in LiteralNoJoin`
		_ = 1 + 1
	}()
}

// WaitGroupJoin is the canonical supervised form.
func WaitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// DoneChannel signals completion over a channel.
func DoneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}

// ResultChannel sends its result; the receiver joins implicitly.
func ResultChannel() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}

// worker joins through the WaitGroup it receives.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// PassWaitGroup hands the WaitGroup to a named worker.
func PassWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

// orphan has no lifecycle of its own.
func orphan() {}

// LaunchOrphan launches a named function that never signals.
func LaunchOrphan() {
	go orphan() // want `unsupervised goroutine in LaunchOrphan`
}

// Run is the designated pool helper: launches inside it are audited by
// the annotation, not the analyzer.
//
//lint:workerpool
func Run(f func()) {
	go f()
}

// Waived documents why this launch is exempt.
func Waived(f func()) {
	//lint:allow goroutine fixture demonstrates the reasoned waiver
	go f()
}

// ShardPoolDispatch is the fleet shard-pool pattern: per-shard strided
// workers writing to caller-owned result slots, joined on a WaitGroup
// before the (sequential) reduction. Supervised — zero findings.
func ShardPoolDispatch(members [][]int, workers int, fn func(i int)) {
	var wg sync.WaitGroup
	for _, shard := range members {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(shard []int, w int) {
				defer wg.Done()
				for k := w; k < len(shard); k += workers {
					fn(shard[k])
				}
			}(shard, w)
		}
	}
	wg.Wait()
}

// ShardPoolNoJoin is the same strided walk with the join forgotten: the
// round loop would race its own decide workers and the event trace would
// depend on scheduling. Flagged.
func ShardPoolNoJoin(members [][]int, workers int, fn func(i int)) {
	for _, shard := range members {
		for w := 0; w < workers; w++ {
			go func(shard []int, w int) { // want `unsupervised goroutine in ShardPoolNoJoin`
				for k := w; k < len(shard); k += workers {
					fn(shard[k])
				}
			}(shard, w)
		}
	}
}
