// Package simclockbad exercises the simclock analyzer. Its import path is
// NOT on the wall-clock allowlist, so every wall-clock read below must be
// flagged, while pure time-value arithmetic stays legal.
package simclockbad

import (
	"time"

	tt "time"
)

func Bad() time.Duration {
	t0 := time.Now()                    // want `time\.Now reads the wall clock`
	time.Sleep(10 * time.Millisecond)   // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)      // want `time\.After reads the wall clock`
	_ = tt.Now()                        // want `time\.Now reads the wall clock`
	tick := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	tick.Stop()
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func PureValuesAllowed() time.Duration {
	// Value helpers never touch the wall clock: legal everywhere.
	d := 3 * time.Second
	t := time.Unix(0, 0)
	return d + time.Duration(t.Nanosecond())
}

func Waived() time.Time {
	//lint:allow simclock fixture demonstrates the preceding-line waiver
	return time.Now()
}

func WaivedTrailing() time.Time {
	return time.Now() //lint:allow simclock fixture demonstrates the trailing waiver
}

func MissingReasonDoesNotWaive() time.Time {
	//lint:allow simclock // want `//lint:allow without a reason suppresses nothing`
	return time.Now() // want `time\.Now reads the wall clock`
}
