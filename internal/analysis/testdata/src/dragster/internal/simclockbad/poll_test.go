package simclockbad

import "time"

// _test.go files may poll and time out with the real clock: simclock is
// relaxed there, so nothing in this file is flagged.
func pollUntil(done func() bool) bool {
	deadline := time.After(time.Second)
	for {
		select {
		case <-deadline:
			return false
		default:
			if done() {
				return true
			}
			time.Sleep(time.Millisecond)
		}
	}
}
