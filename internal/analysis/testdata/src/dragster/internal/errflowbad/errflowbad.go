// Package errflowbad exercises the errflow analyzer: discarded error
// returns from the configured fallible set (store/flink/cluster plus
// extras) are flagged in every form; handled errors and out-of-set calls
// are not.
package errflowbad

import (
	"fmt"

	"dragster/internal/cluster"
	"dragster/internal/dag"
	"dragster/internal/store"
)

func Bad(d *store.DB, c *cluster.Cluster, l dag.ThroughputLearner) {
	store.Save("x")         // want `statement discards the error from dragster/internal/store\.Save`
	_ = store.Save("x")     // want `blank assignment discards the error from dragster/internal/store\.Save`
	v, _ := store.Load("x") // want `blank assignment discards the error from dragster/internal/store\.Load`
	_ = v
	d.Append(1)                    // want `statement discards the error from dragster/internal/store\.Append`
	c.ReportCPUUsage("pod-0", 250) // want `statement discards the error from dragster/internal/cluster\.ReportCPUUsage`
	_ = l.ObserveRates(1, 2)       // want `blank assignment discards the error from dragster/internal/dag\.ObserveRates`
	defer store.Save("x")          // want `defer discards the error from dragster/internal/store\.Save`
	go store.Save("x")             // want `go statement discards the error from dragster/internal/store\.Save`
}

func Handled(d *store.DB) error {
	if err := store.Save("x"); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	s, err := store.Load("x")
	if err != nil {
		return err
	}
	_ = s
	return d.Append(1) // propagated, not discarded
}

func OutOfSet() {
	_ = fmt.Errorf("boom") // fmt is not in the fallible set
	_ = store.Count()      // no error result
	localFallible()        // local functions are not configured
}

func localFallible() error { return nil }

func Waived() {
	//lint:allow errflow fixture demonstrates the preceding-line waiver
	store.Save("x")
	_ = store.Save("x") //lint:allow errflow fixture demonstrates the trailing waiver
}

func MissingReasonDoesNotWaive() {
	//lint:allow errflow // want `//lint:allow without a reason suppresses nothing`
	store.Save("x") // want `statement discards the error`
}
