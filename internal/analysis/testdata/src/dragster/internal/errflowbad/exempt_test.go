package errflowbad

import "dragster/internal/store"

// _test.go files are exempt from errflow: tests discard errors on purpose
// when exercising failure paths. Nothing here is flagged.
func helperUsedInTests() {
	_ = store.Save("x")
	store.Save("y")
}
