// Package dag stands in for dragster/internal/dag in errflow fixtures:
// ObserveRates is a configured extra in the fallible set.
package dag

type ThroughputLearner interface {
	ObserveRates(consumed, out float64) error
}
