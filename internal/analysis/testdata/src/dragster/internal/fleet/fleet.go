// Package fleet stands in for dragster/internal/fleet in fleethook
// fixtures: it owns budget arbitration, so the entry point is legal here.
package fleet

import "dragster/internal/core"

func Rebalance(c *core.Controller, share int) error {
	return c.SetTaskBudget(share)
}
