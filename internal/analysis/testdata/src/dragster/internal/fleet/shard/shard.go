// Package shard stands in for dragster/internal/fleet/shard in
// fleethook fixtures: subpackages of internal/fleet share ownership of
// budget arbitration, so the entry point is legal here too.
package shard

import "dragster/internal/core"

func ApplyShare(c *core.Controller, share int) error {
	return c.SetTaskBudget(share)
}
