// Package cluster stands in for dragster/internal/cluster in errflow
// fixtures.
package cluster

import "errors"

type Cluster struct{}

func (c *Cluster) ReportCPUUsage(pod string, milli int) error {
	return errors.New("unknown pod")
}
