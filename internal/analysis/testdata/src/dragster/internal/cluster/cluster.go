// Package cluster stands in for dragster/internal/cluster in errflow
// fixtures.
package cluster

import "errors"

type Cluster struct{}

func (c *Cluster) ReportCPUUsage(pod string, milli int) error {
	return errors.New("unknown pod")
}

// Fault entry points mirrored for the chaoshook fixtures.

type Injector interface{ HoldScheduling(clock int64) bool }

func (c *Cluster) RemoveNode(name string) error { return errors.New("unknown node") }
func (c *Cluster) KillPod(name string) error    { return errors.New("unknown pod") }
func (c *Cluster) SetInjector(in Injector)      {}
