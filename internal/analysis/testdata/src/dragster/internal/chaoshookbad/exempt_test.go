package chaoshookbad

import "dragster/internal/cluster"

// _test.go files are exempt from chaoshook: tests exercise the fault
// primitives directly on purpose. Nothing here is flagged.
func helperUsedInTests(c *cluster.Cluster) {
	_ = c.RemoveNode("n-0")
	_ = c.KillPod("p-0")
}
