// Package chaoshookbad exercises the chaoshook analyzer: substrate fault
// entry points called outside internal/chaos are flagged; ordinary
// substrate calls and same-name local methods are not.
package chaoshookbad

import (
	"dragster/internal/cluster"
	"dragster/internal/flink"
	"dragster/internal/monitor"
)

func Bad(c *cluster.Cluster, j *flink.Job, m *monitor.Monitor) error {
	if err := c.RemoveNode("n-0"); err != nil { // want `dragster/internal/cluster\.RemoveNode is a fault entry point`
		return err
	}
	_ = c.KillPod("p-0")  // want `dragster/internal/cluster\.KillPod is a fault entry point`
	c.SetInjector(nil)    // want `dragster/internal/cluster\.SetInjector is a fault entry point`
	j.SetChaosHooks(nil)  // want `dragster/internal/flink\.SetChaosHooks is a fault entry point`
	m.SetInterceptor(nil) // want `dragster/internal/monitor\.SetInterceptor is a fault entry point`
	return nil
}

type localFake struct{}

func (localFake) RemoveNode(name string) error { return nil }
func (localFake) SetChaosHooks(h any)          {}

func OutOfSet(c *cluster.Cluster) {
	// Non-fault substrate calls and same-name methods on local types are
	// untouched.
	_ = c.ReportCPUUsage("pod-0", 250)
	_ = localFake{}.RemoveNode("n-0")
	localFake{}.SetChaosHooks(nil)
}

func Waived(c *cluster.Cluster) {
	_ = c.KillPod("p-0") //lint:allow chaoshook fixture demonstrates the waiver
}
