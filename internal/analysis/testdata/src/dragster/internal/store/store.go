// Package store stands in for dragster/internal/store in errflow
// fixtures: every error-returning function here is in the fallible set.
package store

import "errors"

var errBoom = errors.New("boom")

func Save(path string) error { return errBoom }

func Load(path string) (string, error) { return "", errBoom }

func Count() int { return 0 } // no error result: never flagged

type DB struct{}

func (d *DB) Append(n int) error { return errBoom }
