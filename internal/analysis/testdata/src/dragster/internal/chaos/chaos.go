// Package chaos stands in for dragster/internal/chaos in chaoshook
// fixtures: it owns the fault model, so every entry point is legal here.
package chaos

import (
	"dragster/internal/cluster"
	"dragster/internal/flink"
	"dragster/internal/monitor"
)

func Install(c *cluster.Cluster, j *flink.Job, m *monitor.Monitor) error {
	c.SetInjector(nil)
	j.SetChaosHooks(nil)
	m.SetInterceptor(nil)
	if err := c.RemoveNode("n-0"); err != nil {
		return err
	}
	return c.KillPod("p-0")
}
