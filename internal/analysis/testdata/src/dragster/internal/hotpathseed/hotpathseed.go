// Package hotpathseed backs the seeded-list test: TestHotpathSeededName
// injects Engine.Tick below into hotpathSeeds, so its allocation must be
// flagged with no annotation present, while Other stays exempt.
package hotpathseed

// Engine mirrors the shape of the real seeded tick loop.
type Engine struct{}

// Tick is seeded by the test, not annotated.
func (e *Engine) Tick(n int) []int {
	return make([]int, n) // want `calls make per invocation`
}

// Other is neither seeded nor annotated.
func (e *Engine) Other(n int) []int {
	return make([]int, n)
}
