// Package monitor stands in for dragster/internal/monitor in chaoshook
// fixtures.
package monitor

type Interceptor interface {
	InterceptReport(rep any) (any, error)
}

type Monitor struct{}

func (m *Monitor) SetInterceptor(ic Interceptor) {}
