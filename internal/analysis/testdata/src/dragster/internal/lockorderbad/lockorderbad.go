// Package lockorderbad exercises the lockorder analyzer: the shard/
// arbiter pair below is acquired in both orders, the registry/journal
// pair in one consistent order.
package lockorderbad

import "sync"

// Shard and Arbiter model the future multi-shard control plane.
type Shard struct {
	mu    sync.Mutex
	load  int
	owner *Arbiter
}

type Arbiter struct {
	mu     sync.RWMutex
	budget int
}

// Rebalance takes shard then arbiter.
func Rebalance(s *Shard, a *Arbiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a.mu.Lock() // want `Arbiter\.mu acquired while holding Shard\.mu in Rebalance`
	a.budget -= s.load
	a.mu.Unlock()
}

// Grant takes arbiter then shard — the inversion.
func Grant(a *Arbiter, s *Shard) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s.mu.Lock() // want `Shard\.mu acquired while holding Arbiter\.mu in Grant`
	s.load += a.budget
	s.mu.Unlock()
}

// Registry and Journal are always taken in the same order: no finding.
type Registry struct {
	mu sync.Mutex
	n  int
}

type Journal struct {
	mu sync.Mutex
	n  int
}

func RecordA(r *Registry, j *Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
	r.n++
}

func RecordB(r *Registry, j *Journal) {
	r.mu.Lock()
	j.mu.Lock()
	j.n--
	j.mu.Unlock()
	r.mu.Unlock()
}

// Sequential re-acquisition after release is not nesting: no finding.
func Sequential(a *Arbiter, s *Shard) {
	s.mu.Lock()
	s.load++
	s.mu.Unlock()
	a.mu.Lock()
	a.budget++
	a.mu.Unlock()
}

// Reentrant same-lock pairs are ignored (self-deadlock is the race
// detector's and staticcheck's turf, not ordering's).
func SameLockTwice(s *Shard) {
	s.mu.Lock()
	s.mu.Unlock()
}

// Cache/Stats invert too, but one side carries a reasoned waiver: only
// the unwaived side fires.
type Cache struct {
	mu sync.Mutex
	n  int
}

type Stats struct {
	mu sync.Mutex
	n  int
}

func FillA(c *Cache, s *Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock() // want `Stats\.mu acquired while holding Cache\.mu in FillA`
	s.n++
	s.mu.Unlock()
}

func FillB(c *Cache, s *Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockorder migration scaffolding: FillB is being retired this PR
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
