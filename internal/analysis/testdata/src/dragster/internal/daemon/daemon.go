// Package daemon stands in for dragster/internal/daemon: an allowlisted
// wall-clock package. The simclock analyzer must stay silent here.
package daemon

import "time"

func Stamp() int64 {
	time.Sleep(time.Millisecond)
	return time.Now().Unix()
}
