// Package fleethookbad exercises the fleethook analyzer: controller
// budget edits outside internal/fleet are flagged; reads and same-name
// local methods are not.
package fleethookbad

import "dragster/internal/core"

func Bad(c *core.Controller) error {
	return c.SetTaskBudget(8) // want `dragster/internal/core\.SetTaskBudget re-partitions a shared budget`
}

type localFake struct{}

func (localFake) SetTaskBudget(budget int) error { return nil }

func OutOfSet(c *core.Controller) {
	// Budget reads and same-name methods on local types are untouched.
	_ = c.TaskBudget()
	_ = localFake{}.SetTaskBudget(8)
}

func Waived(c *core.Controller) {
	_ = c.SetTaskBudget(8) //lint:allow fleethook fixture demonstrates the waiver
}
