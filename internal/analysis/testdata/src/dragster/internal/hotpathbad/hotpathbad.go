// Package hotpathbad exercises the hotpath analyzer: per-call
// allocations inside annotated (and seeded) hot functions are flagged;
// unannotated functions, the scratch-grow idiom, and reasoned waivers
// are not.
package hotpathbad

import "fmt"

// Sim carries the scratch buffers the clean functions reuse.
type Sim struct {
	buf   []float64
	names []string
}

// HotMake allocates fresh buffers per call.
//
//lint:hotpath
func (s *Sim) HotMake(n int) []float64 {
	out := make([]float64, n) // want `calls make per invocation`
	m := map[string]int{}     // want `allocates a map literal per call`
	_ = m
	return out
}

// HotScratchGrow is the idiom the analyzer promotes: make only runs when
// capacity is short and lands in a reused field.
//
//lint:hotpath
func (s *Sim) HotScratchGrow(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

// HotLiterals covers the escaping-literal forms.
//
//lint:hotpath
func (s *Sim) HotLiterals(x float64) *Sim {
	xs := []float64{x} // want `allocates a slice literal per call`
	_ = xs
	return &Sim{} // want `heap-allocates via &composite literal`
}

// HotStrings covers Sprintf and concatenation.
//
//lint:hotpath
func (s *Sim) HotStrings(name string, v float64) string {
	label := fmt.Sprintf("%s=%v", name, v) // want `builds a string via fmt\.Sprintf`
	label = label + "!"                    // want `concatenates strings`
	label += "?"                           // want `grows a string with \+=`
	return label
}

// sink boxes its argument.
func sink(v any) { _ = v }

// HotBoxing passes a concrete float to an interface parameter.
//
//lint:hotpath
func (s *Sim) HotBoxing(v float64) {
	sink(v)  // want `boxes a float64 into interface parameter v`
	sink(&v) // pointers are already boxed-shape: no allocation
	sink(nil)
}

// HotAppendGrowth grows an unpreallocated slice in a loop.
//
//lint:hotpath
func (s *Sim) HotAppendGrowth(vals []float64) []float64 {
	var out []float64
	for _, v := range vals {
		out = append(out, v*2) // want `appends to out, declared without preallocated capacity`
	}
	return out
}

// HotAppendPrealloc appends into capacity reserved up front; the scratch
// field variant is likewise clean.
//
//lint:hotpath
func (s *Sim) HotAppendPrealloc(vals []float64) []float64 {
	out := s.buf[:0]
	for _, v := range vals {
		out = append(out, v*2)
	}
	s.buf = out
	return out
}

// HotClosureInLoop allocates one closure per iteration.
//
//lint:hotpath
func (s *Sim) HotClosureInLoop(vals []float64, apply func(func() float64)) {
	for _, v := range vals {
		apply(func() float64 { return v }) // want `allocates a closure per loop iteration \(captures v\)`
	}
}

// HotWaived documents its one unavoidable allocation.
//
//lint:hotpath
func (s *Sim) HotWaived(n int) []float64 {
	//lint:allow hotpath result escapes to the caller by contract
	return make([]float64, n)
}

// ColdPath is not annotated or seeded: allocations are fine here.
func ColdPath(n int) []float64 {
	out := make([]float64, n)
	return append(out, float64(n))
}
