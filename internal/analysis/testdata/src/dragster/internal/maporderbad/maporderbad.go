// Package maporderbad exercises the maporder analyzer: order-sensitive
// effects inside range-over-map loops are flagged; the collect-then-sort
// idiom, ordered iteration, and order-free bodies are not.
package maporderbad

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
)

func AppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `range over map m appends to a slice`
	}
	return keys
}

func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // canonical repair: sorted right below
	}
	sort.Strings(keys)
	return keys
}

func CollectThenSlicesSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // slices.Sort counts as a repair too
	}
	slices.Sort(keys)
	return keys
}

func WriteOutput(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%v\n", k, v) // want `writes output via fmt\.Fprintf`
	}
}

func BuilderOutput(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `writes output via \.WriteString`
	}
	return sb.String()
}

func FloatAccum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `accumulates floating-point values`
	}
	return s
}

func IntAccumOK(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v // integer accumulation is order-independent
	}
	return n
}

func MapCopyOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map-to-map copy is order-independent
	}
	return out
}

func SliceRangeOK(xs []string, w io.Writer) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered: fine
		fmt.Fprintln(w, x)
	}
	return out
}

func NestedTaint(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		for _, v := range vs {
			out = append(out, v) // want `range over map m appends to a slice`
		}
	}
	return out
}

func Waived(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //lint:allow maporder fixture demonstrates reasoned suppression
	}
}
