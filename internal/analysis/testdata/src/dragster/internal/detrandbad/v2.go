package detrandbad

import rv2 "math/rand/v2"

// math/rand/v2 has no Seed at all, so its top-level functions can never
// be reproducible; its seeded source constructors remain fine.
func BadV2() int {
	_ = rv2.Float64()  // want `rand\.Float64 uses the process-global generator`
	return rv2.IntN(3) // want `rand\.IntN uses the process-global generator`
}

func SeededV2() uint64 {
	r := rv2.New(rv2.NewPCG(1, 2)) // explicitly seeded source: allowed
	return r.Uint64()
}
