// Package detrandbad exercises the detrand analyzer: top-level math/rand
// calls and opaque-source rand.New are flagged everywhere; explicitly
// seeded constructors are allowed everywhere.
package detrandbad

import (
	"math/rand"

	mrand "math/rand"
)

func Bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn uses the process-global generator`
	_ = rand.Float64()                 // want `rand\.Float64 uses the process-global generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the process-global generator`
	_ = mrand.Int63()                  // want `rand\.Int63 uses the process-global generator`
	_ = rand.Perm(4)                   // want `rand\.Perm uses the process-global generator`
	src := rand.NewSource(1)           // source constructors take explicit seeds: allowed
	_ = rand.New(src)                  // want `rand\.New with an opaque source`
}

func SeededAllowedEverywhere() int {
	// The canonical explicitly-seeded pattern is legal in any package.
	r := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(r.Int63()))
	return r.Intn(10) + r2.Intn(10) // methods on a *rand.Rand are always fine
}

func Waived() int {
	//lint:allow detrand fixture demonstrates reasoned suppression
	return rand.Int()
}
