// Package flink stands in for dragster/internal/flink in chaoshook
// fixtures.
package flink

type ChaosHooks interface {
	InterceptRescale(job string, slot int) error
}

type Job struct{}

func (j *Job) SetChaosHooks(h ChaosHooks) {}
