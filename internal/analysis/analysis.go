// Package analysis implements dragsterlint, the project's static-analysis
// suite. It enforces the determinism, lock, and error-handling invariants
// the reproduction depends on: simulated time instead of wall-clock time,
// seeded randomness through stats.RNG, order-stable iteration wherever
// output or float accumulation is involved, and no silently discarded
// errors from the fallible cluster/store/flink APIs.
//
// The package is intentionally stdlib-only (go/ast + go/types); the driver
// in cmd/dragsterlint speaks the `go vet -vettool` unit-checker protocol so
// the suite runs with full, build-accurate type information and no
// third-party dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository. Analyzers only
// fire inside the module; dependencies and the standard library are never
// diagnosed.
const ModulePath = "dragster"

// Pass carries one type-checked package through the analyzers, mirroring
// the shape of golang.org/x/tools/go/analysis.Pass without the dependency.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed syntax trees of the package, with comments.
	Files []*ast.File
	// Pkg is the type-checked package (never nil, but may be incomplete if
	// type checking partially failed).
	Pkg *types.Package
	// Info holds the type-checker's fact tables for the files.
	Info *types.Info
}

// Path returns the package's import path. Test-variant suffixes such as
// "pkg [pkg.test]" are stripped so allowlist prefix checks see the real
// import path.
func (p *Pass) Path() string {
	if p.Pkg == nil {
		return ""
	}
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string // analyzer name, e.g. "simclock"
	Message string
}

// Analyzer is a single invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimclockAnalyzer(),
		DetrandAnalyzer(),
		MaporderAnalyzer(),
		ErrflowAnalyzer(),
		ChaoshookAnalyzer(),
		FleethookAnalyzer(),
		HotpathAnalyzer(),
		GoroutineAnalyzer(),
		LockorderAnalyzer(),
	}
}

// ByName returns the named analyzers, or an error naming the first unknown
// one. An empty list selects the whole suite.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %v)", n, known)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunSuite runs the analyzers over the pass, drops suppressed findings
// (//lint:allow), appends the suppression-hygiene diagnostics (reasonless
// and stale allow directives), and returns the survivors sorted by
// position.
func RunSuite(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(pass)...)
	}
	diags = filterSuppressed(pass, diags, analyzers)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// inModule reports whether the pass's package belongs to this repository.
func inModule(p *Pass) bool {
	path := p.Path()
	return path == ModulePath || hasPathPrefix(path, ModulePath)
}

// hasPathPrefix reports whether path is prefix itself or a slash-separated
// descendant of it ("a/b" matches prefix "a", "a/bc" does not).
func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}

// pkgFunc resolves a call expression to a top-level function of the named
// package (e.g. pkg="time", returning "Now" for time.Now()). It returns
// "", false when the call is anything else — a method, a local function, a
// conversion, or a selector on a non-package operand. Renamed and
// dot-imports are resolved through the type-checker, so `import t "time";
// t.Now()` is still caught.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// Only package-qualified selectors: the operand must be a PkgName.
		base, ok := ast.Unparen(fn.X).(*ast.Ident)
		if !ok {
			return "", false
		}
		if _, ok := info.Uses[base].(*types.PkgName); !ok {
			return "", false
		}
		id = fn.Sel
	case *ast.Ident:
		id = fn // dot-imported
	default:
		return "", false
	}
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// posFile returns the filename a position belongs to.
func posFile(fset *token.FileSet, pos token.Pos) string {
	return fset.Position(pos).Filename
}
