package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathSeeds are the functions on the simulator's per-tick and
// per-round critical paths, diagnosed even without an annotation: the
// streamsim tick loop, the GP posterior query, UCB candidate selection,
// and the cluster metrics/buffer updates. Keys are fully qualified names
// as produced by funcFullName ("pkg.(*Type).Method" or "pkg.Func").
var hotpathSeeds = map[string]bool{
	ModulePath + "/internal/streamsim.(*Engine).Tick":           true,
	ModulePath + "/internal/streamsim.(*Engine).tickOperator":   true,
	ModulePath + "/internal/streamsim.(*Engine).addToEdge":      true,
	ModulePath + "/internal/streamsim.(*Engine).BufferedTotal":  true,
	ModulePath + "/internal/gp.(*Regressor).Posterior":          true,
	ModulePath + "/internal/gp.(*Regressor).PosteriorFromCross": true,
	ModulePath + "/internal/gp.(*Regressor).posteriorFromCross": true,
	ModulePath + "/internal/ucb.(*Searcher).Select":             true,
	ModulePath + "/internal/cluster.(*Cluster).Tick":            true,
	ModulePath + "/internal/cluster.(*Cluster).PodMetrics":      true,
	ModulePath + "/internal/cluster.(*Cluster).ReportCPUUsage":  true,
}

// sprintfFamily are the fmt functions that build a string (or error) per
// call; each call allocates at least once.
var sprintfFamily = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
}

// HotpathAnalyzer diagnoses per-call allocations inside hot-path
// functions: those annotated `//lint:hotpath` in their doc comment, plus
// the seeded tick/posterior/select/metrics set above. It flags
//
//   - make of slices, maps, and channels (hoist to a reused scratch
//     buffer; `x.field = make(...)` — the grow-in-place scratch idiom —
//     is exempt),
//   - escaping composite literals: &T{...}, slice and map literals,
//   - append growth in loops on slices declared in the function without
//     preallocated capacity,
//   - fmt.Sprintf/Errorf and string concatenation,
//   - interface boxing: a concrete non-pointer value passed to an
//     interface-typed parameter,
//   - closures declared inside loops (one allocation per iteration).
//
// Cold sub-paths inside a hot function (validation guards that never run
// in steady state) carry a reasoned //lint:allow hotpath instead.
func HotpathAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc: "flag per-call allocations (make, escaping composite literals, " +
			"unpreallocated append growth, Sprintf/string concat, interface " +
			"boxing, closures in loops) in functions annotated //lint:hotpath " +
			"or on the seeded tick/posterior/select critical paths",
		Run: runHotpath,
	}
}

func runHotpath(pass *Pass) []Diagnostic {
	if !inModule(pass) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			name := funcFullName(pass, fd)
			if !hotpathSeeds[name] && !hasDirective(fd.Doc, "//lint:hotpath") {
				continue
			}
			short := name[strings.LastIndexByte(name, '/')+1:]
			diags = append(diags, hotpathFunc(pass, fd, short)...)
		}
	}
	return diags
}

// hasDirective reports whether a doc comment group contains a comment
// line starting with the given directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// funcFullName returns "pkgpath.Func" for functions and
// "pkgpath.(Recv).Method" / "pkgpath.(*Recv).Method" for methods, using
// the stripped package path so test-variant compilations resolve to the
// same names.
func funcFullName(pass *Pass, fd *ast.FuncDecl) string {
	path := pass.Path()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return path + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = se.X
	}
	// Strip any type parameters (generic receivers).
	switch r := recv.(type) {
	case *ast.IndexExpr:
		recv = r.X
	case *ast.IndexListExpr:
		recv = r.X
	}
	base := "?"
	if id, ok := recv.(*ast.Ident); ok {
		base = id.Name
	}
	return path + ".(" + star + base + ")." + fd.Name.Name
}

// hotpathFunc runs every allocation check over one hot function body.
func hotpathFunc(pass *Pass, fd *ast.FuncDecl, short string) []Diagnostic {
	var diags []Diagnostic
	flag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  pos,
			Rule: "hotpath",
			Message: fmt.Sprintf("hot path %s %s; hoist the allocation out of the "+
				"per-call path or waive with //lint:allow hotpath <reason>",
				short, fmt.Sprintf(format, args...)),
		})
	}
	bare := nilDeclaredSlices(pass, fd.Body)

	var walk func(n ast.Node, inLoop bool)
	walk = func(root ast.Node, inLoop bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop)
				}
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.Body, true)
				return false
			case *ast.FuncLit:
				if inLoop {
					flag(n.Pos(), "allocates a closure per loop iteration%s", loopCaptureNote(pass, n))
				}
				// The literal's body is a different (deferred) execution
				// context; its own allocations run when it is called, which
				// the per-iteration closure diagnostic already covers.
				return false
			case *ast.CallExpr:
				checkHotCall(pass, n, flag)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						flag(n.Pos(), "heap-allocates via &composite literal")
					}
				}
			case *ast.CompositeLit:
				if t := pass.Info.TypeOf(n); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						flag(n.Pos(), "allocates a slice literal per call")
					case *types.Map:
						flag(n.Pos(), "allocates a map literal per call")
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isString(pass.Info, n.X) {
					flag(n.Pos(), "concatenates strings (allocates per call); use a reused buffer")
					return false // don't re-flag nested + chains
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.Info, n.Lhs[0]) {
					flag(n.Pos(), "grows a string with += (allocates per call)")
				}
			}
			return true
		})
	}
	walk(fd.Body, false)

	// Append growth: appends in loops to slices the function declared
	// without capacity.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isAppend(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && bare[obj] {
					flag(call.Pos(), "appends to %s, declared without preallocated capacity; "+
						"reuse a scratch buffer or make(..., 0, n) outside the loop", id.Name)
				}
			}
			return true
		})
		return true
	})
	return diags
}

// checkHotCall flags per-call allocations at a call site: make of
// slice/map/chan (unless immediately stored into a struct field — the
// grow-in-place scratch idiom), new(T), the Sprintf family, and interface
// boxing of concrete non-pointer arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, flag func(token.Pos, string, ...any)) {
	info := pass.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !scratchGrow(pass, call) {
					flag(call.Pos(), "calls make per invocation; grow a reused scratch "+
						"field instead (x.buf = make(...) when cap is short)")
				}
			case "new":
				flag(call.Pos(), "calls new per invocation")
			}
			return
		}
	}
	if name, ok := pkgFunc(info, call, "fmt"); ok && sprintfFamily[name] {
		flag(call.Pos(), "builds a string via fmt.%s per call", name)
		return
	}
	// Interface boxing: concrete non-pointer argument to an interface
	// parameter allocates (except small cached values) on every call.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil {
			break
		}
		pt := param.Type()
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isBoxFree(at) {
			continue
		}
		flag(arg.Pos(), "boxes a %s into interface parameter %s (allocates per call)",
			at.String(), paramName(param, i))
	}
}

// scratchGrow reports whether the make call is the right-hand side of an
// assignment into a struct field or package variable — the amortized
// grow-in-place scratch idiom this analyzer exists to promote.
func scratchGrow(pass *Pass, call *ast.CallExpr) bool {
	path := enclosingPath(pass, call)
	for i := len(path) - 1; i >= 0; i-- {
		asg, ok := path[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		for j, rhs := range asg.Rhs {
			if containsNode(rhs, call) {
				if j < len(asg.Lhs) {
					if _, ok := ast.Unparen(asg.Lhs[j]).(*ast.SelectorExpr); ok {
						return true
					}
				}
			}
		}
	}
	return false
}

// enclosingPath returns the chain of nodes from the file root down to
// (and excluding) the target node.
func enclosingPath(pass *Pass, target ast.Node) []ast.Node {
	var path, found []ast.Node
	for _, f := range pass.Files {
		if found != nil {
			break
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if n == nil {
				path = path[:len(path)-1]
				return true
			}
			if n == target {
				found = append([]ast.Node(nil), path...)
				return false
			}
			path = append(path, n)
			return true
		})
		path = path[:0]
	}
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// nilDeclaredSlices collects the objects of slice variables declared in
// the body with no backing capacity: `var x []T`, `x := []T(nil)`, or an
// empty literal / zero-length make without a capacity argument.
func nilDeclaredSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.Info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !zeroCapSliceExpr(pass, n.Rhs[i]) {
					continue
				}
				mark(id)
			}
		}
		return true
	})
	return out
}

// zeroCapSliceExpr matches `[]T{}`, `[]T(nil)`, and `make([]T, 0)` — the
// no-capacity slice initializers whose appends reallocate as they grow.
func zeroCapSliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		t := pass.Info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Slice)
		return ok && len(e.Elts) == 0
	case *ast.CallExpr:
		if isMakeCall(pass.Info, e) && len(e.Args) == 2 {
			if tv, ok := pass.Info.Types[e.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				return true
			}
		}
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

func isMakeCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// loopCaptureNote names loop variables the closure captures, if any.
func loopCaptureNote(pass *Pass, fn *ast.FuncLit) string {
	// Best effort: report free identifiers defined by an enclosing range
	// or for clause. We only need the note, not precision, so we look for
	// uses whose declaration position lies outside the literal.
	var captured []string
	seen := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || obj.Pos() == token.NoPos || obj.Pkg() == nil {
			return true
		}
		if obj.Pos() < fn.Pos() && obj.Parent() != obj.Pkg().Scope() && !seen[id.Name] {
			if _, isVar := obj.(*types.Var); isVar {
				seen[id.Name] = true
				captured = append(captured, id.Name)
			}
		}
		return true
	})
	if len(captured) == 0 {
		return ""
	}
	return " (captures " + strings.Join(captured, ", ") + ")"
}

// callSignature resolves the static signature of a call, or nil for type
// conversions and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func paramAt(sig *types.Signature, i int) *types.Var {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		return sig.Params().At(n - 1)
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i)
}

func paramName(p *types.Var, i int) string {
	if p.Name() != "" {
		return p.Name()
	}
	return fmt.Sprintf("#%d", i)
}

// isBoxFree reports whether converting a value of type t to an interface
// does not allocate: interfaces (already boxed), pointers, channels,
// maps, funcs, and unsafe pointers are pointer-shaped; untyped nil too.
func isBoxFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UntypedNil
	}
	return false
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
