package analysis

import "testing"

func TestErrflowFixture(t *testing.T) {
	runFixture(t, "dragster/internal/errflowbad", ErrflowAnalyzer())
}
