package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// submitVia posts a dynamic job through the daemon's HTTP surface — the
// path a real operator uses, which is also what records the submission
// for checkpoint replay.
func submitVia(t *testing.T, d *FleetDaemon, req SubmitRequest) {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/fleet/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d", req.Name, resp.StatusCode)
	}
}

func traceOf(t *testing.T, d *FleetDaemon) string {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/fleet/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetDaemonFailover: a replica daemon resumed from the primary's
// checkpoint — including a dynamic tenant that arrived over HTTP —
// finishes the run with a byte-identical event trace.
func TestFleetDaemonFailover(t *testing.T) {
	const slots = 8
	dyn := SubmitRequest{Name: "dyn", Workload: "group", Profile: "low"}

	// Uninterrupted reference run.
	ref, err := NewFleet(testFleetConfig(t, slots))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.StepN(2); err != nil {
		t.Fatal(err)
	}
	submitVia(t, ref, dyn)
	if err := ref.StepN(slots); err != nil {
		t.Fatal(err)
	}
	refTrace := traceOf(t, ref)
	if !strings.Contains(refTrace, "submit job=dyn") {
		t.Fatalf("reference trace missing dynamic submission:\n%s", refTrace)
	}

	// Primary fails after round 4.
	primary, err := NewFleet(testFleetConfig(t, slots))
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.StepN(2); err != nil {
		t.Fatal(err)
	}
	submitVia(t, primary, dyn)
	if err := primary.StepN(2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(primary.Handler())
	resp, err := http.Get(srv.URL + "/fleet/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Replica takes over on a different shard count.
	repCfg := testFleetConfig(t, slots)
	repCfg.Fleet.Shards = 4
	replica, err := ResumeFleet(repCfg, bytes.NewReader(ckBytes))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := replica.StepN(slots); err != nil {
		t.Fatal(err)
	}
	repTrace := traceOf(t, replica)
	if repTrace != refTrace {
		t.Fatalf("replica trace diverged from uninterrupted run:\nreplica:\n%s\nreference:\n%s", repTrace, refTrace)
	}

	// The replica's own checkpoint surface keeps working (second failover).
	var buf bytes.Buffer
	if err := replica.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "daemon_submits") {
		t.Fatal("replica checkpoint lost the submission record")
	}
}

// TestResumeFleetRejectsGarbage: malformed checkpoints are refused.
func TestResumeFleetRejectsGarbage(t *testing.T) {
	if _, err := ResumeFleet(testFleetConfig(t, 4), strings.NewReader("not json")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	if _, err := ResumeFleet(testFleetConfig(t, 4), strings.NewReader(`{"kind":"wrong","version":1}`)); err == nil {
		t.Fatal("foreign kind accepted")
	}
}
