package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dragster/internal/fleet"
	"dragster/internal/workload"
)

func testFleetConfig(t testing.TB, slots int) FleetConfig {
	t.Helper()
	wc, err := workload.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.Group()
	if err != nil {
		t.Fatal(err)
	}
	wcRates, err := workload.Constant(wc.LowRates)
	if err != nil {
		t.Fatal(err)
	}
	gRates, err := workload.Constant(g.LowRates)
	if err != nil {
		t.Fatal(err)
	}
	return FleetConfig{
		Fleet: fleet.Config{
			Jobs: []fleet.JobSpec{
				{Name: "alpha", Workload: wc, Rates: wcRates},
				{Name: "beta", Workload: g, Rates: gRates},
			},
			Slots:           slots,
			SlotSeconds:     60,
			Seed:            11,
			TotalTaskBudget: 12,
		},
	}
}

func TestNewFleetValidation(t *testing.T) {
	cfg := testFleetConfig(t, 3)
	cfg.SlotWallInterval = -time.Second
	if _, err := NewFleet(cfg); err == nil {
		t.Error("negative wall interval accepted")
	}
	cfg = testFleetConfig(t, 3)
	cfg.Fleet.TotalTaskBudget = 0
	if _, err := NewFleet(cfg); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestFleetDaemonEndpoints(t *testing.T) {
	d, err := NewFleet(testFleetConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	var st FleetState
	getJSON(t, srv.URL+"/fleet/status", &st)
	if !st.Done || st.Round != 4 || st.TaskBudget != 12 {
		t.Errorf("fleet status: %+v", st)
	}
	if st.Arbitration != "dual-price" {
		t.Errorf("arbitration label %q", st.Arbitration)
	}
	if st.BudgetOverruns != 0 {
		t.Errorf("budget overruns %d", st.BudgetOverruns)
	}
	if st.ClusterCost <= 0 {
		t.Errorf("cluster cost %v", st.ClusterCost)
	}

	var jobs []FleetJobState
	getJSON(t, srv.URL+"/fleet/jobs", &jobs)
	if len(jobs) != 2 || jobs[0].Name != "alpha" || jobs[1].Name != "beta" {
		t.Fatalf("jobs listing: %+v", jobs)
	}
	for _, j := range jobs {
		if j.Status != "running" || j.Rounds != 4 || j.Budget <= 0 || j.CostDollars <= 0 {
			t.Errorf("job state: %+v", j)
		}
	}

	var beta FleetJobState
	getJSON(t, srv.URL+"/fleet/jobs/beta", &beta)
	if beta.Workload != "group" || len(beta.Tasks) != 1 {
		t.Errorf("beta detail: %+v", beta)
	}
	resp, err = http.Get(srv.URL + "/fleet/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("metrics content type %q", got)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE fleet_rounds counter",
		"fleet_rounds 4",
		"# TYPE fleet_budget_total gauge",
		"fleet_budget_total 12",
		`fleet_budget_share{job="alpha"}`,
		`fleet_dual_price{job="beta"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestFleetDaemonSubmitAndKill(t *testing.T) {
	d, err := NewFleet(testFleetConfig(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Submit a third tenant and kill an initial one before the loop
	// starts: the manager picks both up on its first round.
	req := SubmitRequest{Name: "gamma", Workload: "group", Profile: "low"}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/fleet/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Duplicate name conflicts.
	resp, err = http.Post(srv.URL+"/fleet/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate submit = %d", resp.StatusCode)
	}
	// Unknown workload is a bad request.
	bad, err := json.Marshal(SubmitRequest{Name: "delta", Workload: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/fleet/jobs", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad workload submit = %d", resp.StatusCode)
	}

	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/fleet/jobs/alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("kill = %d", resp.StatusCode)
	}
	del, err = http.NewRequest(http.MethodDelete, srv.URL+"/fleet/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("kill unknown = %d", resp.StatusCode)
	}

	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var jobs []FleetJobState
	getJSON(t, srv.URL+"/fleet/jobs", &jobs)
	byName := map[string]FleetJobState{}
	for _, j := range jobs {
		byName[j.Name] = j
	}
	if got := byName["alpha"].Status; got != "departed" {
		t.Errorf("killed job status %q", got)
	}
	if got := byName["gamma"]; got.Status != "running" || got.Rounds != 6 {
		t.Errorf("submitted job: %+v", got)
	}
}

func TestFleetDaemonHonoursContextCancel(t *testing.T) {
	cfg := testFleetConfig(t, 1000)
	cfg.SlotWallInterval = time.Millisecond
	d, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled Run returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestFleetDaemonPlanEndpoint(t *testing.T) {
	cfg := testFleetConfig(t, 4)
	cfg.Fleet.TotalTaskBudget = 20
	cfg.Fleet.Jobs[0].PlanOnAdmit = true
	d, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/fleet/jobs/alpha/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("planned tenant plan: status %d", resp.StatusCode)
	}
	var plan struct {
		Workload   string  `json:"workload"`
		Tasks      []int   `json:"tasks"`
		TotalTasks int     `json:"total_tasks"`
		ProbeCost  float64 `json:"probe_cost"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatalf("decoding plan: %v", err)
	}
	if plan.Workload != "wordcount" || len(plan.Tasks) == 0 || plan.TotalTasks == 0 || plan.ProbeCost <= 0 {
		t.Errorf("implausible plan payload: %+v", plan)
	}

	// Cold-floor and unknown tenants both 404.
	for _, name := range []string{"beta", "nosuch"} {
		resp, err := http.Get(srv.URL + "/fleet/jobs/" + name + "/plan")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s plan: status %d, want 404", name, resp.StatusCode)
		}
	}

	// The job state surfaces the plan identity.
	resp, err = http.Get(srv.URL + "/fleet/jobs/alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js FleetJobState
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if !js.Planned || js.PlanDigest == "" {
		t.Errorf("planned tenant state missing plan identity: %+v", js)
	}
}

func TestSubmitRequestPlanPassthrough(t *testing.T) {
	req := SubmitRequest{
		Name:        "p",
		Workload:    "wordcount",
		PlanOnAdmit: true,
		TargetRates: []float64{12000},
	}
	spec, err := req.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !spec.PlanOnAdmit {
		t.Error("PlanOnAdmit not passed through")
	}
	if len(spec.TargetRates) != 1 || spec.TargetRates[0] != 12000 {
		t.Errorf("TargetRates = %v, want [12000]", spec.TargetRates)
	}
}
