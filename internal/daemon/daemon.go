// Package daemon wraps the experiment Runner into a long-running
// controller process with the operational surface a Kubernetes operator
// is expected to have: a health endpoint, a JSON status endpoint, and a
// Prometheus-format metrics endpoint. cmd/dragsterd is the thin main.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dragster/internal/experiment"
)

// Config assembles a Daemon.
type Config struct {
	// Scenario and Factory define what to run (see experiment.Scenario).
	Scenario experiment.Scenario
	Factory  experiment.PolicyFactory
	// SlotWallInterval paces the loop in wall-clock time (0 = run slots
	// back-to-back; a real deployment would set this to the slot length).
	SlotWallInterval time.Duration
}

// State is the JSON payload of /status.
type State struct {
	Policy          string    `json:"policy"`
	Workload        string    `json:"workload"`
	SlotsCompleted  int       `json:"slots_completed"`
	SlotsTotal      int       `json:"slots_total"`
	Done            bool      `json:"done"`
	Tasks           []int     `json:"tasks"`
	TargetCapacity  []float64 `json:"target_capacity,omitempty"`
	Throughput      float64   `json:"throughput_tuples_per_sec"`
	SteadyThpt      float64   `json:"steady_throughput_tuples_per_sec"`
	ProcessedTotal  float64   `json:"processed_tuples_total"`
	CostDollars     float64   `json:"cost_dollars_total"`
	AvgLatencySec   float64   `json:"avg_latency_sec"`
	PausedSeconds   int       `json:"paused_seconds_last_slot"`
	OperatorNames   []string  `json:"operator_names"`
	LastUpdatedUnix int64     `json:"last_updated_unix"`
}

// Daemon drives the runner and serves its state.
type Daemon struct {
	cfg    Config
	runner *experiment.Runner

	mu        sync.RWMutex
	state     State
	processed float64
	lastErr   error
}

// New validates the configuration and builds the stack.
func New(cfg Config) (*Daemon, error) {
	if cfg.Factory == nil {
		return nil, errors.New("daemon: nil policy factory")
	}
	if cfg.SlotWallInterval < 0 {
		return nil, errors.New("daemon: negative wall interval")
	}
	r, err := experiment.NewRunner(cfg.Scenario, cfg.Factory)
	if err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, runner: r}
	names := make([]string, cfg.Scenario.Spec.Graph.NumOperators())
	for i := range names {
		names[i] = cfg.Scenario.Spec.Graph.OperatorName(i)
	}
	d.state = State{
		Policy:        r.PolicyName(),
		Workload:      cfg.Scenario.Spec.Name,
		SlotsTotal:    cfg.Scenario.Slots,
		OperatorNames: names,
	}
	return d, nil
}

// Run executes slots until the scenario finishes or ctx is cancelled.
// It returns nil on normal completion.
func (d *Daemon) Run(ctx context.Context) error {
	var ticker *time.Ticker
	if d.cfg.SlotWallInterval > 0 {
		ticker = time.NewTicker(d.cfg.SlotWallInterval)
		defer ticker.Stop()
	}
	for !d.runner.Done() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		tr, err := d.runner.Step()
		if err != nil {
			d.mu.Lock()
			d.lastErr = err
			d.mu.Unlock()
			return err
		}
		d.mu.Lock()
		d.processed += tr.Processed
		d.state.SlotsCompleted = tr.Slot + 1
		d.state.Done = d.runner.Done()
		d.state.Tasks = append([]int(nil), tr.Tasks...)
		d.state.TargetCapacity = append([]float64(nil), tr.TargetY...)
		d.state.Throughput = tr.MeasuredThroughput
		d.state.SteadyThpt = tr.SteadyThroughput
		d.state.ProcessedTotal = d.processed
		d.state.CostDollars = tr.CostCum
		d.state.AvgLatencySec = tr.AvgLatencySec
		d.state.PausedSeconds = tr.PausedSeconds
		d.state.LastUpdatedUnix = time.Now().Unix()
		d.mu.Unlock()
		if ticker != nil && !d.runner.Done() {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-ticker.C:
			}
		}
	}
	return nil
}

// Result exposes the accumulated run result.
func (d *Daemon) Result() *experiment.Result { return d.runner.Result() }

// Snapshot returns a copy of the current state.
func (d *Daemon) Snapshot() State {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := d.state
	s.Tasks = append([]int(nil), d.state.Tasks...)
	s.TargetCapacity = append([]float64(nil), d.state.TargetCapacity...)
	s.OperatorNames = append([]string(nil), d.state.OperatorNames...)
	return s
}

// Handler returns the HTTP surface:
//
//	GET /healthz  → 200 "ok" (503 after a loop error)
//	GET /status   → State as JSON
//	GET /metrics  → Prometheus text format
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		d.mu.RLock()
		err := d.lastErr
		d.mu.RUnlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(d.Snapshot()); err != nil {
			return // headers already sent
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := d.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		scalar := func(name, typ, help string, v float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
		}
		scalar("dragster_slots_completed", "counter", "Decision slots completed.", float64(s.SlotsCompleted))
		scalar("dragster_throughput_tuples_per_second", "gauge", "Measured sink throughput last slot.", s.Throughput)
		scalar("dragster_steady_throughput_tuples_per_second", "gauge", "Steady-state throughput of the current configuration.", s.SteadyThpt)
		scalar("dragster_processed_tuples_total", "counter", "Tuples absorbed by sinks.", s.ProcessedTotal)
		scalar("dragster_cost_dollars_total", "counter", "Dollars accrued by the cluster.", s.CostDollars)
		scalar("dragster_latency_seconds", "gauge", "Little's-law end-to-end latency estimate, last slot mean.", s.AvgLatencySec)
		scalar("dragster_paused_seconds", "gauge", "Reconfiguration pause within the last slot.", float64(s.PausedSeconds))

		fmt.Fprintf(w, "# HELP dragster_operator_tasks Running tasks per operator.\n# TYPE dragster_operator_tasks gauge\n")
		for i, name := range s.OperatorNames {
			if i < len(s.Tasks) {
				fmt.Fprintf(w, "dragster_operator_tasks{operator=%q} %d\n", name, s.Tasks[i])
			}
		}
		if len(s.TargetCapacity) > 0 {
			fmt.Fprintf(w, "# HELP dragster_target_capacity_tuples_per_second Level-1 target capacity per operator.\n# TYPE dragster_target_capacity_tuples_per_second gauge\n")
			for i, name := range s.OperatorNames {
				if i < len(s.TargetCapacity) {
					fmt.Fprintf(w, "dragster_target_capacity_tuples_per_second{operator=%q} %g\n", name, s.TargetCapacity[i])
				}
			}
		}
	})
	return mux
}
