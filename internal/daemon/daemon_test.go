package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dragster/internal/experiment"
	"dragster/internal/workload"
)

func testConfig(t testing.TB, slots int) Config {
	t.Helper()
	spec, err := workload.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := workload.Constant(spec.HighRates)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Scenario: experiment.Scenario{
			Spec:        spec,
			Rates:       rates,
			Slots:       slots,
			SlotSeconds: 30,
			Seed:        2,
		},
		Factory: experiment.DragsterSaddle(),
	}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.Factory = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil factory accepted")
	}
	cfg = testConfig(t, 3)
	cfg.SlotWallInterval = -time.Second
	if _, err := New(cfg); err == nil {
		t.Error("negative interval accepted")
	}
	cfg = testConfig(t, 0)
	if _, err := New(cfg); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestRunToCompletionAndEndpoints(t *testing.T) {
	d, err := New(testConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if !s.Done || s.SlotsCompleted != 5 {
		t.Fatalf("state after run: %+v", s)
	}
	if s.Policy != "dragster-saddle-point" || s.Workload != "wordcount" {
		t.Errorf("labels: %s / %s", s.Policy, s.Workload)
	}
	if s.ProcessedTotal <= 0 || s.CostDollars <= 0 {
		t.Errorf("missing accounting: %+v", s)
	}
	if len(s.Tasks) != 2 || len(s.TargetCapacity) != 2 {
		t.Errorf("per-operator state: %+v", s)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got State
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.SlotsCompleted != 5 || got.Workload != "wordcount" {
		t.Errorf("status payload: %+v", got)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	text := string(body[:n])
	for _, want := range []string{
		"dragster_slots_completed 5",
		"dragster_processed_tuples_total",
		`dragster_operator_tasks{operator="map"}`,
		`dragster_target_capacity_tuples_per_second{operator="shuffle"}`,
		"# TYPE dragster_cost_dollars_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	// HELP lines must not repeat per labelled series.
	if strings.Count(text, "# HELP dragster_operator_tasks") != 1 {
		t.Error("duplicated HELP block for labelled metric")
	}

	// The full result is available for post-hoc analysis.
	if got := d.Result(); len(got.Trace) != 5 {
		t.Errorf("result trace length %d", len(got.Trace))
	}
}

func TestRunHonoursContextCancel(t *testing.T) {
	d, err := New(testConfig(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	// Let at least one slot complete, then cancel.
	deadline := time.After(5 * time.Second)
	for d.Snapshot().SlotsCompleted == 0 {
		select {
		case <-deadline:
			t.Fatal("no slot completed in time")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled Run returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	if d.Snapshot().Done {
		t.Error("cancelled run reported Done")
	}
}

func TestWallPacing(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.SlotWallInterval = 30 * time.Millisecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 3 slots with 2 inter-slot waits ≥ 60 ms.
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Errorf("pacing ignored: run took %v", elapsed)
	}
}
