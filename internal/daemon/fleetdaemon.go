package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dragster/internal/fleet"
	"dragster/internal/store"
	"dragster/internal/telemetry"
	"dragster/internal/workload"
)

// FleetConfig assembles a FleetDaemon.
type FleetConfig struct {
	// Fleet is the multi-job control-plane configuration. Jobs listed in
	// it form the initial schedule; more can arrive over HTTP while the
	// daemon runs.
	Fleet fleet.Config
	// SlotWallInterval paces the round loop in wall-clock time (0 = run
	// rounds back-to-back).
	SlotWallInterval time.Duration
}

// FleetDaemon drives a fleet.Manager and serves its operational surface.
// The Manager is not safe for concurrent use, so every access — the
// round loop and each HTTP mutation — goes through one mutex.
type FleetDaemon struct {
	cfg FleetConfig

	mu      sync.Mutex
	m       *fleet.Manager
	lastErr error
	// submits records every accepted dynamic submission in arrival order.
	// Unlike fleet.JobSpec (which carries workload models and rate
	// functions), SubmitRequest is JSON-serializable, so the record rides
	// inside checkpoints and lets a replica rebuild the specs it must
	// replay.
	submits []SubmitRequest
}

// NewFleet validates the configuration and builds the fleet stack.
func NewFleet(cfg FleetConfig) (*FleetDaemon, error) {
	if cfg.SlotWallInterval < 0 {
		return nil, errors.New("daemon: negative wall interval")
	}
	m, err := fleet.New(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	return &FleetDaemon{cfg: cfg, m: m}, nil
}

// submitsSection names the daemon's extra checkpoint section.
const submitsSection = "daemon_submits"

// WriteCheckpoint snapshots the fleet plus the daemon's dynamic
// submission record into one envelope (GET /fleet/checkpoint).
func (d *FleetDaemon) WriteCheckpoint(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	ck, err := d.m.BuildCheckpoint()
	if err != nil {
		return err
	}
	submits := d.submits
	if submits == nil {
		submits = []SubmitRequest{}
	}
	if err := ck.Put(submitsSection, submits); err != nil {
		return err
	}
	return ck.Snapshot(w)
}

// ResumeFleet builds a replica daemon from a checkpoint written by
// WriteCheckpoint: the recorded submissions are resolved back into job
// specs and the fleet manager is reconstructed by verified deterministic
// replay (see fleet.Resume). cfg must match the primary's.
func ResumeFleet(cfg FleetConfig, r io.Reader) (*FleetDaemon, error) {
	if cfg.SlotWallInterval < 0 {
		return nil, errors.New("daemon: negative wall interval")
	}
	ck, err := store.RestoreCheckpoint(r, fleet.CheckpointKind)
	if err != nil {
		return nil, err
	}
	var submits []SubmitRequest
	if ck.Has(submitsSection) {
		if err := ck.Get(submitsSection, &submits); err != nil {
			return nil, err
		}
	}
	specs := make(map[string]fleet.JobSpec, len(submits))
	for i := range submits {
		spec, err := submits[i].ToSpec()
		if err != nil {
			return nil, fmt.Errorf("daemon: resolving recorded submission %q: %w", submits[i].Name, err)
		}
		specs[spec.Name] = spec
	}
	m, err := fleet.Resume(cfg.Fleet, ck, specs)
	if err != nil {
		return nil, err
	}
	return &FleetDaemon{cfg: cfg, m: m, submits: submits}, nil
}

// Run executes fleet rounds until the schedule finishes or ctx is
// cancelled. It returns nil on normal completion.
func (d *FleetDaemon) Run(ctx context.Context) error {
	var ticker *time.Ticker
	if d.cfg.SlotWallInterval > 0 {
		ticker = time.NewTicker(d.cfg.SlotWallInterval)
		defer ticker.Stop()
	}
	for {
		d.mu.Lock()
		done := d.m.Done()
		d.mu.Unlock()
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		d.mu.Lock()
		err := d.m.Step()
		if err != nil {
			d.lastErr = err
		}
		d.mu.Unlock()
		if err != nil {
			return err
		}
		if ticker != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-ticker.C:
			}
		}
	}
}

// StepN runs up to n fleet rounds synchronously (manual pacing and
// deterministic tests; Run is the wall-clock loop). Stops early without
// error when the schedule finishes.
func (d *FleetDaemon) StepN(n int) error {
	for i := 0; i < n; i++ {
		d.mu.Lock()
		if d.m.Done() {
			d.mu.Unlock()
			return nil
		}
		err := d.m.Step()
		if err != nil {
			d.lastErr = err
		}
		d.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Result exposes the accumulated fleet result.
func (d *FleetDaemon) Result() *fleet.Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.Result()
}

// FleetState is the JSON payload of GET /fleet/status.
type FleetState struct {
	Round          int     `json:"round"`
	Slots          int     `json:"slots"`
	Done           bool    `json:"done"`
	Arbitration    string  `json:"arbitration"`
	TaskBudget     int     `json:"task_budget"`
	RunningJobs    int     `json:"running_jobs"`
	QueueDepth     int     `json:"queue_depth"`
	BudgetOverruns int     `json:"budget_overruns"`
	ClusterCost    float64 `json:"cluster_cost_dollars"`
}

// FleetJobState is one tenant in GET /fleet/jobs. LastRound fields are
// zero until the job has run at least one round.
type FleetJobState struct {
	Name             string  `json:"name"`
	Workload         string  `json:"workload"`
	Status           string  `json:"status"`
	ArriveSlot       int     `json:"arrive_slot"`
	AdmitSlot        int     `json:"admit_slot"`
	DepartSlot       int     `json:"depart_slot"`
	Rounds           int     `json:"rounds"`
	Budget           int     `json:"budget"`
	Tasks            []int   `json:"tasks,omitempty"`
	DualPrice        float64 `json:"dual_price"`
	Steady           float64 `json:"steady_throughput_tuples_per_sec"`
	CostDollars      float64 `json:"cost_dollars"`
	WarmStartRecords int     `json:"warm_start_records"`
	Planned          bool    `json:"planned,omitempty"`
	PlanDigest       string  `json:"plan_digest,omitempty"`
}

// SubmitRequest is the JSON body of POST /fleet/jobs.
type SubmitRequest struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	// Profile selects the offered load: "high" or "low" (constant rates
	// from the workload spec). Rates overrides it with explicit
	// per-source tuples/s when non-empty.
	Profile  string    `json:"profile,omitempty"`
	Rates    []float64 `json:"rates,omitempty"`
	Priority float64   `json:"priority,omitempty"`
	// DepartSlot schedules a departure (0 = runs until killed or the
	// fleet finishes).
	DepartSlot int `json:"depart_slot,omitempty"`
	// PlanOnAdmit asks admission to build a capacity plan first: the
	// grant and initial configuration come from the plan instead of the
	// cold floor (see internal/planner).
	PlanOnAdmit bool `json:"plan_on_admit,omitempty"`
	// TargetRates is the sustained per-source load the plan must cover;
	// empty = the profile's per-slot peak.
	TargetRates []float64 `json:"target_rates,omitempty"`
}

// ToSpec resolves the request into a fleet job spec (also used by
// cmd/dragsterd to parse its -fleet flag).
func (r *SubmitRequest) ToSpec() (fleet.JobSpec, error) {
	spec, err := workload.ByName(r.Workload)
	if err != nil {
		return fleet.JobSpec{}, err
	}
	rateVec := r.Rates
	if len(rateVec) == 0 {
		switch r.Profile {
		case "", "low":
			rateVec = spec.LowRates
		case "high":
			rateVec = spec.HighRates
		default:
			return fleet.JobSpec{}, fmt.Errorf("unknown profile %q", r.Profile)
		}
	}
	rates, err := workload.Constant(rateVec)
	if err != nil {
		return fleet.JobSpec{}, err
	}
	return fleet.JobSpec{
		Name:        r.Name,
		Workload:    spec,
		Rates:       rates,
		Priority:    r.Priority,
		DepartSlot:  r.DepartSlot,
		PlanOnAdmit: r.PlanOnAdmit,
		TargetRates: r.TargetRates,
	}, nil
}

func (d *FleetDaemon) state() FleetState {
	res := d.m.Result()
	running := 0
	for _, j := range res.Jobs {
		if j.Status == fleet.StatusRunning {
			running++
		}
	}
	return FleetState{
		Round:          d.m.Round(),
		Slots:          res.Slots,
		Done:           d.m.Done(),
		Arbitration:    res.Arbitration.String(),
		TaskBudget:     res.TotalTaskBudget,
		RunningJobs:    running,
		QueueDepth:     d.m.QueueDepth(),
		BudgetOverruns: res.BudgetOverruns,
		ClusterCost:    res.ClusterCost,
	}
}

func jobStateOf(jr *fleet.JobResult) FleetJobState {
	out := FleetJobState{
		Name:             jr.Name,
		Workload:         jr.Workload,
		Status:           jr.Status.String(),
		ArriveSlot:       jr.ArriveSlot,
		AdmitSlot:        jr.AdmitSlot,
		DepartSlot:       jr.DepartSlot,
		Rounds:           len(jr.Rounds),
		CostDollars:      jr.Cost,
		WarmStartRecords: jr.WarmStartRecords,
		Planned:          jr.Planned,
		PlanDigest:       jr.PlanDigest,
	}
	if n := len(jr.Rounds); n > 0 {
		last := jr.Rounds[n-1]
		out.Budget = last.Budget
		out.Tasks = append([]int(nil), last.Tasks...)
		out.DualPrice = last.DualPrice
		out.Steady = last.Steady
	}
	return out
}

// Handler returns the fleet HTTP surface:
//
//	GET    /healthz            → 200 "ok" (503 after a loop error)
//	GET    /fleet/status       → FleetState as JSON
//	GET    /fleet/jobs         → []FleetJobState (submission order)
//	POST   /fleet/jobs         → submit a job (SubmitRequest body)
//	GET    /fleet/jobs/{name}  → one FleetJobState
//	GET    /fleet/jobs/{name}/plan → the job's capacity plan (404 when
//	       the tenant was admitted on the cold floor or is unknown)
//	DELETE /fleet/jobs/{name}  → mark the job for departure next round
//	GET    /fleet/checkpoint   → replayable checkpoint (see ResumeFleet)
//	GET    /fleet/trace        → the event trace, one line per event
//	GET    /metrics            → fleet telemetry registry, Prometheus text
func (d *FleetDaemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		err := d.lastErr
		d.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /fleet/status", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		s := d.state()
		d.mu.Unlock()
		writeJSON(w, s)
	})
	mux.HandleFunc("GET /fleet/jobs", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		jobs := d.m.Jobs()
		d.mu.Unlock()
		out := make([]FleetJobState, len(jobs))
		for i := range jobs {
			out[i] = jobStateOf(&jobs[i])
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /fleet/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		spec, err := req.ToSpec()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		d.mu.Lock()
		err = d.m.Submit(spec)
		if err == nil {
			d.submits = append(d.submits, req)
		}
		d.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "job %q submitted\n", spec.Name)
	})
	mux.HandleFunc("GET /fleet/jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		d.mu.Lock()
		jobs := d.m.Jobs()
		d.mu.Unlock()
		for i := range jobs {
			if jobs[i].Name == name {
				writeJSON(w, jobStateOf(&jobs[i]))
				return
			}
		}
		http.Error(w, fmt.Sprintf("unknown job %q", name), http.StatusNotFound)
	})
	mux.HandleFunc("GET /fleet/jobs/{name}/plan", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		d.mu.Lock()
		p := d.m.PlanFor(name)
		d.mu.Unlock()
		if p == nil {
			http.Error(w, fmt.Sprintf("no capacity plan for job %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("DELETE /fleet/jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		d.mu.Lock()
		err := d.m.Kill(name)
		d.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "job %q marked for departure\n", name)
	})
	mux.HandleFunc("GET /fleet/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := d.WriteCheckpoint(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	})
	mux.HandleFunc("GET /fleet/trace", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		text := d.m.TraceText()
		d.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, text)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		reg := d.m.Metrics()
		d.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := telemetry.WritePrometheus(w, reg); err != nil {
			return // headers already sent
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return // headers already sent
	}
}
