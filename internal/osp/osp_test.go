package osp

import (
	"math"
	"testing"

	"dragster/internal/dag"
)

// twoOpChain builds source → map(sel 2) → shuffle(sel 1) → sink.
func twoOpChain(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	src := b.Source("source")
	mp := b.Operator("map")
	sh := b.Operator("shuffle")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, mp, sh, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(2), dag.Selectivity(1)}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := twoOpChain(t)
	if _, err := New(nil, Config{YMax: 100}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, Config{}); err == nil {
		t.Error("zero YMax accepted")
	}
	if _, err := New(g, Config{YMax: 100, GammaScale: -1}); err == nil {
		t.Error("negative gamma accepted")
	}
	if _, err := New(g, Config{YMax: 100, Eta: -1}); err == nil {
		t.Error("negative eta accepted")
	}
	if _, err := New(g, Config{YMax: 100, InnerIters: -3}); err == nil {
		t.Error("negative iters accepted")
	}
	if _, err := New(g, Config{YMax: 100, HeadroomFactor: 0.5}); err == nil {
		t.Error("headroom < 1 accepted")
	}
}

func TestSaddlePointTargetsCoverDemand(t *testing.T) {
	g := twoOpChain(t)
	o, err := New(g, Config{YMax: 1000, HeadroomFactor: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	y, err := o.Step([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	// Demand at map = 200 output/s; shuffle demand = what map emits.
	// Targets must cover demand with headroom.
	if y[0] < 200 {
		t.Errorf("map target %v below demand 200", y[0])
	}
	if y[1] < y[0]*0.9 { // shuffle must roughly track map output
		t.Errorf("shuffle target %v far below map emission %v", y[1], y[0])
	}
	if y[0] > 1000 || y[1] > 1000 {
		t.Errorf("targets exceed YMax: %v", y)
	}
	if o.Slot() != 1 {
		t.Errorf("Slot = %d", o.Slot())
	}
}

func TestSaddlePointScalesDownWhenLoadDrops(t *testing.T) {
	g := twoOpChain(t)
	o, err := New(g, Config{YMax: 1000})
	if err != nil {
		t.Fatal(err)
	}
	yHigh, err := o.Step([]float64{200})
	if err != nil {
		t.Fatal(err)
	}
	yLow, err := o.Step([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if yLow[0] >= yHigh[0] {
		t.Errorf("target did not shrink with load: high=%v low=%v", yHigh[0], yLow[0])
	}
	// At rate 50 the map demand is 100 — target should be close to it, not
	// pinned at YMax (this is the economy property behind the cost savings).
	if yLow[0] > 300 {
		t.Errorf("low-load target %v wastes capacity", yLow[0])
	}
}

func TestOGDMovesSmoothly(t *testing.T) {
	g := twoOpChain(t)
	o, err := New(g, Config{YMax: 1000, Method: GradientDescent, Eta: 20, HeadroomFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated steps move targets by bounded increments (|Δ| ≤ η per step)
	// and hover within one step of the demand kink (map demand = 200 at
	// rate 100; OGD has no hard floor, it tracks).
	prev, err := o.Step([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		y, err := o.Step([]float64{100})
		if err != nil {
			t.Fatal(err)
		}
		for j := range y {
			if math.Abs(y[j]-prev[j]) > 20+1e-9 {
				t.Errorf("step %d: OGD jump %v → %v exceeds η", i, prev[j], y[j])
			}
		}
		if y[0] < 200-20-1e-9 {
			t.Errorf("step %d: map target %v more than one step below demand 200", i, y[0])
		}
		prev = y
	}
	// The economy regularizer must pull an over-provisioned start downward.
	if prev[0] >= 250 {
		t.Errorf("OGD did not drift down from warm start: %v", prev[0])
	}
}

func TestDualUpdateAndDecay(t *testing.T) {
	g := twoOpChain(t)
	o, err := New(g, Config{YMax: 1000, GammaScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step([]float64{100}); err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveViolations([]float64{50, -10}); err != nil {
		t.Fatal(err)
	}
	d := o.Duals()
	// γ_1 = 1, ViolationScale = YMax = 1000: λ_0 = 50/1000, λ_1 = 0.
	if math.Abs(d[0]-0.05) > 1e-9 || d[1] != 0 {
		t.Errorf("duals = %v, want [0.05 0]", d)
	}
	// Negative violation drives λ back down but never below zero.
	if err := o.ObserveViolations([]float64{-1e6, -1}); err != nil {
		t.Fatal(err)
	}
	d = o.Duals()
	if d[0] != 0 || d[1] != 0 {
		t.Errorf("duals after huge slack = %v, want [0 0]", d)
	}
	// Validation.
	if err := o.ObserveViolations([]float64{1}); err == nil {
		t.Error("wrong violation length accepted")
	}
	if err := o.ObserveViolations([]float64{math.NaN(), 0}); err == nil {
		t.Error("NaN violation accepted")
	}
}

func TestDualsRaiseTargets(t *testing.T) {
	// With a large λ on the shuffle operator, the Lagrangian pushes its
	// target capacity up relative to the dual-free solution.
	g := twoOpChain(t)
	base, err := New(g, Config{YMax: 1000, HeadroomFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	yBase, err := base.Step([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	pressured, err := New(g, Config{YMax: 1000, HeadroomFactor: 1, GammaScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pressured.Step([]float64{100}); err != nil { // t=1
		t.Fatal(err)
	}
	if err := pressured.ObserveViolations([]float64{0, 500}); err != nil {
		t.Fatal(err)
	}
	yDual, err := pressured.Step([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if yDual[1] < yBase[1] {
		t.Errorf("dual pressure did not raise shuffle target: %v vs %v", yDual[1], yBase[1])
	}
}

func TestStepValidation(t *testing.T) {
	g := twoOpChain(t)
	o, err := New(g, Config{YMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step([]float64{1, 2}); err == nil {
		t.Error("wrong rate count accepted")
	}
	bad := &Optimizer{g: g, cfg: Config{Method: Method(99), YMax: 100}}
	bad.lambda = make([]float64, 2)
	bad.yPrev = make([]float64, 2)
	if _, err := bad.Step([]float64{1}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	if SaddlePoint.String() != "saddle-point" || GradientDescent.String() != "online-gradient-descent" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method has empty name")
	}
}

func TestBottlenecks(t *testing.T) {
	bn, err := Bottlenecks([]float64{100, 100, 100}, []float64{100, 80, 130}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bn) != 2 || bn[0] != 1 || bn[1] != 2 {
		t.Errorf("bottlenecks = %v, want [1 2]", bn)
	}
	if _, err := Bottlenecks([]float64{1}, []float64{1, 2}, 0.1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Bottlenecks([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	// Zero realized capacity should not divide by zero.
	bn, err = Bottlenecks([]float64{5}, []float64{0}, 0.1)
	if err != nil || len(bn) != 1 {
		t.Errorf("zero-capacity bottleneck = %v err=%v", bn, err)
	}
}

func BenchmarkSaddlePointStep(b *testing.B) {
	g := twoOpChain(b)
	o, err := New(g, Config{YMax: 1000, InnerIters: 200})
	if err != nil {
		b.Fatal(err)
	}
	rates := []float64{100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Step(rates); err != nil {
			b.Fatal(err)
		}
	}
}
