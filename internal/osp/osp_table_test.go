package osp

import (
	"math"
	"testing"

	"dragster/internal/dag"
)

// singleOpChain builds the smallest legal job: source → work(sel 1) → sink.
func singleOpChain(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	src := b.Source("source")
	op := b.Operator("work")
	snk := b.Sink("sink")
	if err := b.Chain([]dag.NodeID{src, op, snk}, []dag.ThroughputFunc{nil, dag.Selectivity(1)}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSingleOperatorJobs runs both methods on a one-operator graph across
// a spread of offered loads: the degenerate M=1 case must still produce a
// one-element target inside [0, YMax], and the saddle-point floor must
// cover demand·headroom whenever YMax allows it.
func TestSingleOperatorJobs(t *testing.T) {
	cases := []struct {
		name   string
		method Method
		rate   float64
	}{
		{"saddle/idle", SaddlePoint, 0},
		{"saddle/light", SaddlePoint, 50},
		{"saddle/heavy", SaddlePoint, 800},
		{"saddle/over-ymax", SaddlePoint, 5000},
		{"ogd/light", GradientDescent, 50},
		{"ogd/heavy", GradientDescent, 800},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := singleOpChain(t)
			o, err := New(g, Config{Method: tc.method, YMax: 1000})
			if err != nil {
				t.Fatal(err)
			}
			for slot := 0; slot < 5; slot++ {
				y, err := o.Step([]float64{tc.rate})
				if err != nil {
					t.Fatal(err)
				}
				if len(y) != 1 {
					t.Fatalf("got %d targets for single-operator graph, want 1", len(y))
				}
				if y[0] < 0 || y[0] > 1000 {
					t.Fatalf("slot %d: target %g outside [0, YMax]", slot, y[0])
				}
			}
			if tc.method == SaddlePoint {
				y, err := o.Step([]float64{tc.rate})
				if err != nil {
					t.Fatal(err)
				}
				need := math.Min(tc.rate*1.05, 1000)
				if y[0] < need-1e-6 {
					t.Errorf("converged target %g below demand floor %g", y[0], need)
				}
			}
		})
	}
}

// TestOGDStepSizeEdgeCases pins the two extremes of the Eq. 16 step size:
// a tiny η may move the iterate at most η per slot, and a huge η must be
// absorbed by the [0, YMax] projection rather than overshoot.
func TestOGDStepSizeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		eta  float64
		// maxMove bounds |y_t − y_{t−1}| per slot (the normalized step
		// length is exactly η before projection, and projection only
		// shrinks it).
		maxMove float64
	}{
		{"tiny-eta", 1e-6, 1e-6 + 1e-12},
		{"unit-eta", 1, 1 + 1e-9},
		{"huge-eta", 1e9, 1000}, // clamped by the box, never beyond YMax
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := twoOpChain(t)
			o, err := New(g, Config{Method: GradientDescent, YMax: 1000, Eta: tc.eta})
			if err != nil {
				t.Fatal(err)
			}
			prev := []float64{250, 250} // the neutral warm start YMax/4
			for slot := 0; slot < 4; slot++ {
				y, err := o.Step([]float64{300})
				if err != nil {
					t.Fatal(err)
				}
				for i := range y {
					if y[i] < 0 || y[i] > 1000 {
						t.Fatalf("slot %d: y[%d] = %g escapes [0, YMax]", slot, i, y[i])
					}
					if move := math.Abs(y[i] - prev[i]); move > tc.maxMove {
						t.Fatalf("slot %d: op %d moved %g, step bound %g", slot, i, move, tc.maxMove)
					}
				}
				prev = y
			}
		})
	}
}

// TestDualUpdateClampTable drives ObserveViolations through its edge
// cases as a table: the normalized step is clamped to ±ViolationClamp,
// multipliers never go negative, γ_t falls as 1/√t, and non-finite
// violations are rejected without corrupting state.
func TestDualUpdateClampTable(t *testing.T) {
	const (
		ymax  = 1000.0
		gamma = 0.4
		clamp = 0.1
	)
	cases := []struct {
		name       string
		violations [][]float64 // one row per ObserveViolations call
		wantErr    bool
		wantLambda []float64 // checked when wantErr is false
	}{
		{
			name:       "huge-violation-clamps",
			violations: [][]float64{{1e12, 1e12}},
			wantLambda: []float64{gamma * clamp, gamma * clamp},
		},
		{
			name:       "huge-slack-floors-at-zero",
			violations: [][]float64{{-1e12, -1e12}},
			wantLambda: []float64{0, 0},
		},
		{
			name: "small-violation-linear",
			// l/scale = 0.05 is inside the clamp, so the step is exact.
			violations: [][]float64{{0.05 * ymax, 0}},
			wantLambda: []float64{gamma * 0.05, 0},
		},
		{
			name: "gamma-decays-with-slots",
			// Two maximal steps: γ_1·clamp + γ_2·clamp with γ_t = γ/√t.
			violations: [][]float64{{1e12, 0}, {1e12, 0}},
			wantLambda: []float64{gamma*clamp + gamma*clamp/math.Sqrt(2), 0},
		},
		{
			name:       "nan-rejected",
			violations: [][]float64{{math.NaN(), 0}},
			wantErr:    true,
		},
		{
			name:       "inf-rejected",
			violations: [][]float64{{0, math.Inf(1)}},
			wantErr:    true,
		},
		{
			name:       "length-mismatch-rejected",
			violations: [][]float64{{1}},
			wantErr:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := twoOpChain(t)
			o, err := New(g, Config{YMax: ymax, GammaScale: gamma, ViolationClamp: clamp})
			if err != nil {
				t.Fatal(err)
			}
			var lastErr error
			for _, l := range tc.violations {
				if _, err := o.Step([]float64{100}); err != nil {
					t.Fatal(err)
				}
				lastErr = o.ObserveViolations(l)
			}
			if tc.wantErr {
				if lastErr == nil {
					t.Fatal("invalid violations accepted")
				}
				return
			}
			if lastErr != nil {
				t.Fatal(lastErr)
			}
			got := o.Duals()
			for i, want := range tc.wantLambda {
				if math.Abs(got[i]-want) > 1e-12 {
					t.Errorf("λ[%d] = %g, want %g", i, got[i], want)
				}
			}
		})
	}
}

// TestObserveViolationsBeforeFirstStep pins the t=0 guard: a dual update
// arriving before any Step uses γ_1, not a division by √0.
func TestObserveViolationsBeforeFirstStep(t *testing.T) {
	g := twoOpChain(t)
	o, err := New(g, Config{YMax: 1000, GammaScale: 0.4, ViolationClamp: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ObserveViolations([]float64{1e12, 0}); err != nil {
		t.Fatal(err)
	}
	got := o.Duals()
	want := 0.4 * 0.1 // γ_1 · clamp
	if math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("λ[0] = %g, want %g (γ_1 step)", got[0], want)
	}
	if math.IsInf(got[0], 0) || math.IsNaN(got[0]) {
		t.Error("pre-Step dual update produced non-finite multiplier")
	}
}

// TestConfigValidationTable covers the Config fields the original
// validation test leaves untouched.
func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{YMax: 100}, true},
		{"negative-violation-scale", Config{YMax: 100, ViolationScale: -1}, false},
		{"negative-violation-clamp", Config{YMax: 100, ViolationClamp: -0.1}, false},
		{"economy-weight-one", Config{YMax: 100, EconomyWeight: 1}, false},
		{"negative-economy-weight", Config{YMax: 100, EconomyWeight: -0.2}, false},
		{"explicit-valid", Config{YMax: 100, GammaScale: 0.2, Eta: 5, InnerIters: 50, HeadroomFactor: 1.2, EconomyWeight: 0.1, ViolationScale: 50, ViolationClamp: 0.3}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := twoOpChain(t)
			_, err := New(g, tc.cfg)
			if tc.ok && err != nil {
				t.Errorf("valid config rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestBottlenecksTable exercises the relative-deviation selector at its
// edges: the 1e-9 scale floor for zero realized capacity, the strict >tol
// comparison, and both deviation directions.
func TestBottlenecksTable(t *testing.T) {
	cases := []struct {
		name     string
		target   []float64
		realized []float64
		tol      float64
		want     []int
		wantErr  bool
	}{
		{
			name:     "zero-realized-uses-scale-floor",
			target:   []float64{1, 0},
			realized: []float64{0, 0},
			tol:      0.1,
			want:     []int{0}, // |1−0|/1e-9 is enormous; op 1 deviates 0
		},
		{
			name:     "exact-tolerance-excluded",
			target:   []float64{110, 100},
			realized: []float64{100, 100},
			tol:      0.1,
			want:     nil, // deviation exactly 0.1 is not > tol
		},
		{
			name:     "both-directions-qualify",
			target:   []float64{150, 50},
			realized: []float64{100, 100},
			tol:      0.2,
			want:     []int{0, 1},
		},
		{
			name:     "zero-tolerance-flags-any-drift",
			target:   []float64{100 + 1e-6, 100},
			realized: []float64{100, 100},
			tol:      0,
			want:     []int{0},
		},
		{
			name:     "length-mismatch",
			target:   []float64{1},
			realized: []float64{1, 2},
			tol:      0.1,
			wantErr:  true,
		},
		{
			name:     "negative-tolerance",
			target:   []float64{1},
			realized: []float64{1},
			tol:      -0.1,
			wantErr:  true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Bottlenecks(tc.target, tc.realized, tc.tol)
			if tc.wantErr {
				if err == nil {
					t.Fatal("invalid input accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}
